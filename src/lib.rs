//! `cedar` — a full-system reproduction of *The Cedar System and an
//! Initial Performance Study* (Kuck et al.) in Rust.
//!
//! Cedar was a cluster-based shared-memory multiprocessor: four
//! modified Alliant FX/8 clusters (eight vector processors each)
//! joined through two unidirectional omega networks to an interleaved
//! global memory with per-module synchronization processors. This
//! workspace rebuilds the machine as a simulator, the CEDAR FORTRAN
//! programming model as a runtime, the paper's kernels and Perfect
//! Benchmark study as calibrated models, and its
//! judging-parallelism methodology as a library — and regenerates
//! every table and figure of the paper's evaluation (see
//! EXPERIMENTS.md).
//!
//! This crate is the façade: it re-exports each subsystem under a
//! short name and hosts the runnable examples and cross-crate
//! integration tests.
//!
//! # Quickstart
//!
//! ```
//! use cedar::core::{CedarParams, CedarSystem};
//! use cedar::kernels::rank_update::{self, RankUpdateVersion};
//!
//! // Build the machine the paper describes…
//! let mut machine = CedarSystem::new(CedarParams::paper());
//! // …and run Table 1's cached rank-64 update on all four clusters.
//! let report = rank_update::simulate(&mut machine, 1024, RankUpdateVersion::GmCache, 4);
//! assert!(report.mflops > 150.0);
//! ```
//!
//! # Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`sim`] | `cedar-sim` | discrete-event engine, performance monitor |
//! | [`net`] | `cedar-net` | omega networks, crossbars, round-trip fabric |
//! | [`mem`] | `cedar-mem` | global/cluster memory, cache, sync processors, VM |
//! | [`cpu`] | `cedar-cpu` | CE vector unit, prefetch unit, concurrency bus |
//! | [`core`] | `cedar-core` | assembled machine, parameters, cost model |
//! | [`runtime`] | `cedar-runtime` | XDOALL/SDOALL/CDOALL, placement, barriers |
//! | [`kernels`] | `cedar-kernels` | RK/VL/TM/CG/banded kernels |
//! | [`perfect`] | `cedar-perfect` | Perfect Benchmarks study |
//! | [`metrics`] | `cedar-metrics` | PPTs, bands, stability |
//! | [`baselines`] | `cedar-baselines` | YMP/8, Cray-1, CM-5, workstations |
//! | [`faults`] | `cedar-faults` | fault plans, retry policy, degraded mode |
//! | [`obs`] | `cedar-obs` | metrics registry, span tracing, exporters |
//! | [`exec`] | `cedar-exec` | deterministic parallel sweep executor |
//! | [`snap`] | `cedar-snap` | snapshot codec, checkpoints, result cache |
//! | [`serve`] | `cedar-serve` | batching simulation service, job queue, loadgen |
//! | [`cluster`] | `cedar-cluster` | supervised worker fleet, exactly-once sweeps |
//! | [`track`] | `cedar-track` | benchmark history, regression gating, dashboard |
//! | [`zoo`] | `cedar-zoo` | machine-model zoo judged by the PPTs |

#![warn(missing_docs)]

pub use cedar_baselines as baselines;
pub use cedar_cluster as cluster;
pub use cedar_core as core;
pub use cedar_cpu as cpu;
pub use cedar_exec as exec;
pub use cedar_faults as faults;
pub use cedar_kernels as kernels;
pub use cedar_mem as mem;
pub use cedar_metrics as metrics;
pub use cedar_net as net;
pub use cedar_obs as obs;
pub use cedar_perfect as perfect;
pub use cedar_runtime as runtime;
pub use cedar_serve as serve;
pub use cedar_sim as sim;
pub use cedar_snap as snap;
pub use cedar_track as track;
pub use cedar_zoo as zoo;
