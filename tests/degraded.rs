//! Cross-crate degraded-mode acceptance tests: deterministic fault
//! schedules, byte-identical degraded reports, and watchdog diagnosis
//! of an injected multicluster-barrier deadlock.

use cedar::core::{CedarParams, CedarSystem};
use cedar::faults::{CedarError, FaultConfig, FaultPlan, MachineShape, RetryPolicy};
use cedar::net::fabric::{FabricConfig, PrefetchTraffic, RoundTripFabric};
use cedar::runtime::sync::{run_multicluster_round, GlobalBarrier};
use cedar::sim::watchdog::Watchdog;

/// Same fault seed, same machine: the degraded-run report is
/// byte-identical across builds of the whole stack.
#[test]
fn same_seed_gives_byte_identical_degraded_report() {
    let run = || {
        let plan = FaultPlan::generate(
            &FaultConfig::degraded(0xD15EA5E, 0.02),
            &MachineShape::cedar(),
        )
        .unwrap();
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        fabric.attach_faults(plan, RetryPolicy::fabric());
        let report =
            fabric.run_prefetch_experiment(8, PrefetchTraffic::rk_aggressive(4), 64_000_000);
        format!(
            "lat={:.9} inter={:.9} bw={:.9} drops={} retries={} failed={}",
            report.mean_first_word_latency_ce(),
            report.mean_interarrival_ce(),
            report.words_per_ce_cycle(),
            report.words_dropped(),
            report.retries(),
            report.failed_requests(),
        )
    };
    let a = run();
    assert_eq!(a, run(), "degraded runs must replay exactly");
    assert!(a.contains("drops="), "sanity: report rendered");
}

/// Distinct seeds genuinely reshuffle the fault schedule.
#[test]
fn different_seeds_differ() {
    let measure = |seed: u64| {
        let plan = FaultPlan::generate(&FaultConfig::degraded(seed, 0.05), &MachineShape::cedar())
            .unwrap();
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        fabric.attach_faults(plan, RetryPolicy::fabric());
        fabric
            .run_prefetch_experiment(8, PrefetchTraffic::rk_aggressive(4), 64_000_000)
            .words_dropped()
    };
    assert_ne!(measure(1), measure(2), "seeds must steer the schedule");
}

/// The degraded sweep's rate-0 column is the healthy machine.
#[test]
fn degraded_sweep_rate_zero_is_healthy() {
    let p = cedar_bench::degraded::measure(0.0, 8);
    let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
    let healthy = fabric.run_prefetch_experiment(8, cedar_bench::degraded::traffic(), 64_000_000);
    assert_eq!(p.latency, healthy.mean_first_word_latency_ce());
    assert_eq!(p.interarrival, healthy.mean_interarrival_ce());
    assert_eq!(p.words_per_cycle, healthy.words_per_ce_cycle());
}

/// A dead synchronization processor deadlocks the multicluster
/// barrier; the watchdog detects it within its budget and names the
/// stalled context in the diagnostic.
#[test]
fn watchdog_diagnoses_injected_barrier_deadlock() {
    let mut sys = CedarSystem::new(CedarParams::paper());
    let plan = FaultPlan::generate(
        &FaultConfig::dead_sync_processor(42, 3),
        &MachineShape::cedar(),
    )
    .unwrap();
    sys.attach_faults(&plan, RetryPolicy::sync());
    let barrier = GlobalBarrier::new(3, 32); // word 3 -> dead module 3
    let budget = 50_000;
    let mut dog = Watchdog::new(budget, "multicluster barrier");
    match run_multicluster_round(&mut sys, &barrier, &mut dog) {
        Err(CedarError::Stalled(report)) => {
            let text = report.to_string();
            assert!(text.contains("multicluster barrier"), "diagnostic: {text}");
            assert!(
                report.now - report.progress <= budget + 26,
                "detected within one spin past the budget"
            );
        }
        other => panic!("expected a stalled diagnosis, got {other:?}"),
    }
    // The same round on the healthy machine completes under the same
    // watchdog budget.
    let mut healthy = CedarSystem::new(CedarParams::paper());
    let mut dog = Watchdog::new(budget, "multicluster barrier");
    run_multicluster_round(&mut healthy, &barrier, &mut dog).unwrap();
}
