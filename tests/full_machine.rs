//! Cross-crate integration: drive the whole machine through the
//! façade crate — runtime loops scheduling real work over real sync
//! cells, kernels timed by fabric measurements, the monitor watching.

use cedar::core::costmodel::AccessMode;
use cedar::core::{CedarParams, CedarSystem};
use cedar::kernels::rank_update::{self, RankUpdateVersion};
use cedar::mem::sync::SyncInstruction;
use cedar::net::fabric::PrefetchTraffic;
use cedar::runtime::loops::{cdoall, xdoall, Schedule, Work};
use cedar::runtime::movement;
use cedar::runtime::sync::{GlobalBarrier, Ticket};

fn machine() -> CedarSystem {
    CedarSystem::new(CedarParams::paper())
}

#[test]
fn parallel_loop_computes_real_results_with_simulated_time() {
    let mut sys = machine();
    let n = 2048usize;
    let mut data = vec![0.0f64; n];
    let report = xdoall(&mut sys, n as u64, Schedule::SelfScheduled, |i| {
        data[i as usize] = (i as f64).sqrt();
        Work::new(100.0, 1.0)
    });
    assert!((data[1024] - 32.0).abs() < 1e-12);
    assert_eq!(report.iterations, n as u64);
    // 2048 iterations x 100 cycles over 32 CEs = 6400 cycles of body
    // work plus scheduling overhead.
    assert!(report.makespan_cycles > 6400.0);
    assert!(report.flops == n as f64);
}

#[test]
fn nested_sdoall_cdoall_structure_is_cheaper_than_flat_xdoall() {
    // The paper's recommendation: an SDOALL/CDOALL nest has lower
    // scheduling cost than one big XDOALL for fine-grained loops.
    let mut sys = machine();
    let iters = 512u64;
    let body = 50.0;
    let flat = xdoall(&mut sys, iters, Schedule::SelfScheduled, |_| {
        Work::cycles(body)
    });
    // Nest: 4 cluster-iterations, each running a CDOALL of 128.
    let mut cluster_costs = Vec::new();
    for c in 0..4 {
        let inner = cdoall(&mut sys, c, iters / 4, Schedule::SelfScheduled, |_| {
            Work::cycles(body)
        });
        cluster_costs.push(inner.makespan_cycles);
    }
    let nest_makespan = cluster_costs.iter().cloned().fold(0.0, f64::max)
        + sys.params().xdoall_startup_cycles() as f64;
    assert!(
        nest_makespan < flat.makespan_cycles / 2.0,
        "nest {nest_makespan} should beat flat {}",
        flat.makespan_cycles
    );
}

#[test]
fn self_scheduling_runs_on_real_memory_sync_cells() {
    let mut sys = machine();
    let mut ticket = Ticket::new(100);
    let barrier = GlobalBarrier::new(101, 4);
    // Four simulated cluster leaders claim work then synchronize.
    let mut claims = Vec::new();
    for _ in 0..4 {
        claims.push(ticket.take(&mut sys));
    }
    assert_eq!(claims, [0, 1, 2, 3]);
    let mut done = 0;
    for _ in 0..4 {
        if barrier.arrive(&mut sys) {
            done += 1;
        }
    }
    assert_eq!(done, 1, "exactly one arrival completes the barrier");
    // The sync traffic hit the memory modules' sync processors.
    assert!(sys.global().sync_op_count() >= 9);
}

#[test]
fn explicit_movement_feeds_the_cache_version() {
    let mut sys = machine();
    // Put a block in global memory, move it to cluster 0, verify both
    // the functional copy and that the cached mode is then cheapest.
    let block: Vec<u64> = (0..256).map(|i| i * 3).collect();
    sys.global_mut().copy_in(0, &block);
    let report = movement::global_to_cluster(&mut sys, 0, 0, 0, 256, 8);
    assert!(report.cycles > 0.0);
    assert_eq!(sys.cluster_mut(0).memory.read_word(255), 255 * 3);

    let cached = sys.cycles_per_word(AccessMode::ClusterCache, 8);
    let global = sys.cycles_per_word(
        AccessMode::GlobalPrefetch(PrefetchTraffic::compiler_default(4)),
        8,
    );
    assert!(cached <= global);
}

#[test]
fn table1_ordering_holds_at_every_cluster_count() {
    let mut sys = machine();
    for clusters in 1..=4 {
        let nopref = rank_update::simulate(&mut sys, 512, RankUpdateVersion::GmNoPref, clusters);
        let pref = rank_update::simulate(&mut sys, 512, RankUpdateVersion::GmPref, clusters);
        let cache = rank_update::simulate(&mut sys, 512, RankUpdateVersion::GmCache, clusters);
        assert!(
            nopref.mflops < pref.mflops,
            "{clusters} clusters: prefetch must beat no-prefetch"
        );
        assert!(
            pref.mflops < cache.mflops * 1.05,
            "{clusters} clusters: cache competitive with or better than prefetch"
        );
    }
}

#[test]
fn weak_ordering_allows_sync_to_order_plain_writes() {
    // The global memory is weakly ordered; software uses sync cells as
    // release flags. Model check: data written, then flag set with a
    // sync op; a reader testing the flag sees the data.
    let mut sys = machine();
    sys.global_mut().write_word(10, 0xDA7A);
    sys.global_mut().sync_op(11, SyncInstruction::write(1));
    let flag = sys.global_mut().sync_op(11, SyncInstruction::read());
    assert_eq!(flag.old_value, 1);
    assert_eq!(sys.global_mut().read_word(10), 0xDA7A);
}

#[test]
fn monitor_observes_fabric_measurements() {
    let mut sys = machine();
    let profile = sys.measure_memory(PrefetchTraffic::compiler_default(4), 8);
    let sig = sys.monitor_mut().signal("itest.latency");
    sys.monitor_mut().start();
    let sample = profile.latency.round() as u32;
    sys.monitor_mut()
        .post(sig, cedar::sim::time::Cycle::new(1), sample);
    sys.monitor_mut().stop();
    assert_eq!(
        sys.monitor().stats(sig).map(|s| s.count()),
        Some(1),
        "monitor captured the measurement"
    );
}
