//! Golden-snapshot regression layer: the deterministic experiment
//! reports are compared byte-for-byte against committed snapshots in
//! `tests/golden/`. Any change to simulator behaviour — intentional or
//! not — shows up as a readable text diff instead of a silently
//! shifted number.
//!
//! When a change is intentional, regenerate the snapshots with
//!
//! ```text
//! CEDAR_BLESS=1 cargo test --release --test golden_snapshots
//! ```
//!
//! and commit the updated `.snap` files. On mismatch the actual output
//! is written next to the golden file as `<name>.rej` so CI can upload
//! it as a diff artifact.

use std::fs;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` to the committed golden snapshot `name`, or
/// rewrites the snapshot when `CEDAR_BLESS` is set.
fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("CEDAR_BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        fs::write(&path, actual).expect("write blessed snapshot");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with CEDAR_BLESS=1",
            path.display()
        )
    });
    if expected != actual {
        let rej = path.with_extension("rej");
        fs::write(&rej, actual).expect("write rejected output");
        panic!(
            "golden mismatch for {name}: actual output written to {}.\n\
             Diff it against {} — if the behaviour change is intentional,\n\
             re-bless with CEDAR_BLESS=1 and commit the new snapshot.",
            rej.display(),
            path.display()
        );
    }
}

#[test]
fn table2_report_matches_golden() {
    check("table2.snap", &cedar_bench::table2::report());
}

#[test]
fn degraded_report_matches_golden() {
    check("degraded.snap", &cedar_bench::degraded::report());
}

#[test]
fn fig3_report_matches_golden() {
    check("fig3.snap", &cedar_bench::fig3::report());
}
