//! The zoo's Cedar row must be the *same* Cedar the repo already
//! judges: its PPT1–PPT4 inputs and verdicts are bit-identical to the
//! `examples/judging_machines` computations and to `cedar-bench`'s
//! PPT4 study. Any drift here means the zoo is judging a different
//! machine than the rest of the repo simulates.

use cedar::core::{CedarParams, CedarSystem};
use cedar::metrics::ppt::{ppt1, ppt2};
use cedar::perfect::manual::{fig3_cedar_efficiencies, fig3_width, MACHINE_CES};
use cedar::perfect::model::ExecutionModel;
use cedar::zoo::cell::{run_cell, Workload, ZooCellSpec};
use cedar::zoo::judge::{judge_machine, PPT2_EXCEPTIONS};
use cedar::zoo::Machine;
use cedar_bench::ppt4 as bench_ppt4;

fn cedar_cells(smoke: bool) -> Vec<cedar::zoo::ZooCell> {
    [
        Workload::PerfectCompiled,
        Workload::PerfectManual,
        Workload::Scalability,
        Workload::SyncHotspot,
    ]
    .into_iter()
    .map(|w| {
        run_cell(ZooCellSpec {
            machine: Machine::Cedar.tag(),
            workload: w.tag(),
            smoke,
        })
    })
    .collect()
}

#[test]
fn zoo_cedar_ppt1_and_ppt2_match_judging_machines() {
    let mut sys = CedarSystem::new(CedarParams::paper());
    let model = ExecutionModel::calibrate(&mut sys);

    // The judging_machines example, verbatim.
    let speedups: Vec<f64> = fig3_cedar_efficiencies(&model)
        .iter()
        .map(|p| p.efficiency * fig3_width(p.name) as f64)
        .collect();
    let expected1 = ppt1(&speedups, MACHINE_CES);
    let expected2 = ppt2(&model.cedar_mflops_ensemble(), PPT2_EXCEPTIONS);

    let verdict = judge_machine(&cedar_cells(true), Machine::Cedar, true);
    assert_eq!(verdict.summary.ppt1, expected1);
    assert_eq!(verdict.summary.ppt2, expected2);
}

#[test]
fn zoo_cedar_ppt4_matches_the_bench_study() {
    let expected = bench_ppt4::cedar_verdict();
    let verdict = judge_machine(&cedar_cells(true), Machine::Cedar, true);
    assert_eq!(verdict.summary.ppt4, expected);
    // The published conclusion, pinned: scalable, nothing
    // unacceptable (rates are not size-stable across the full 1K-172K
    // span — the small sizes fall off — and the zoo must report that
    // exactly as the bench study does).
    assert!(!verdict.summary.ppt4.any_unacceptable);
    assert_eq!(verdict.summary.ppt4.size_stable, expected.size_stable);
}

#[test]
fn zoo_cedar_grid_constants_match_the_bench_grid() {
    assert_eq!(cedar::zoo::cell::CEDAR_PROCS, bench_ppt4::CEDAR_PROCS);
    assert_eq!(cedar::zoo::cell::CEDAR_SIZES, bench_ppt4::CEDAR_SIZES);
}
