//! The paper's headline quantitative claims, asserted end-to-end
//! against the reproduction. Each test names the claim it pins.

use cedar::baselines::cm5::Cm5Model;
use cedar::core::{CedarParams, CedarSystem};
use cedar::kernels::{cg, rank_update};
use cedar::metrics::bands::{classify, PerfBand};
use cedar::metrics::stability::exceptions_to_stability;
use cedar::perfect::model::ExecutionModel;
use cedar::perfect::versions::Version;

fn machine() -> CedarSystem {
    CedarSystem::new(CedarParams::paper())
}

#[test]
fn claim_peak_performance_figures() {
    let p = CedarParams::paper();
    assert!(
        (p.peak_mflops() - 376.0).abs() < 2.0,
        "376 MFLOPS absolute peak"
    );
    assert!(
        (p.effective_peak_mflops() - 274.0).abs() < 5.0,
        "274 MFLOPS effective peak"
    );
    assert!(
        (p.ce.peak_mflops() - 11.8).abs() < 0.1,
        "11.8 MFLOPS per CE"
    );
}

#[test]
fn claim_table1_shape() {
    // "performance improvement factors of 3.5 and 2.9 on 8 and 16 CEs";
    // "GM/cache achieves improvements ... 3.5 on one cluster to 3.8 on
    // four"; "74% efficiency compared to the effective peak".
    let mut sys = machine();
    let t = rank_update::table1(&mut sys, 1024);
    let nopref = &t[0].1;
    let pref = &t[1].1;
    let cache = &t[2].1;
    let imp1 = pref[0] / nopref[0];
    let imp4 = pref[3] / nopref[3];
    assert!(
        (3.0..4.2).contains(&imp1),
        "1-cluster prefetch improvement {imp1}"
    );
    assert!(imp4 < imp1, "prefetch effectiveness declines with clusters");
    let cache_imp4 = cache[3] / nopref[3];
    assert!(
        (3.3..4.3).contains(&cache_imp4),
        "4-cluster cache improvement {cache_imp4}"
    );
    let frac = cache[3] / 274.0;
    assert!(
        (0.65..0.85).contains(&frac),
        "fraction of effective peak {frac}"
    );
}

#[test]
fn claim_table2_contention_mechanism() {
    // "global memory degradation due to contention causes the
    // reduction in the effectiveness of prefetching as the number of
    // CES used increases" and "RK degrades most quickly".
    let rows = cedar_bench::table2::run();
    for row in &rows {
        assert!(
            row.latency[2] > row.latency[0],
            "{}: latency must grow 8->32 CEs",
            row.kernel
        );
        assert!(
            row.interarrival[2] > row.interarrival[0],
            "{}: interarrival must grow 8->32 CEs",
            row.kernel
        );
        assert!(
            row.speedup[2] < row.speedup[0] + 0.3,
            "{}: prefetch speedup must not grow with contention",
            row.kernel
        );
        assert!(row.latency[0] >= 8.0, "minimal latency is 8 cycles");
        assert!(
            row.interarrival[0] >= 0.99,
            "minimal interarrival is ~1 cycle"
        );
    }
    let rk = rows.iter().find(|r| r.kernel == "RK").unwrap();
    let others_max_latency = rows
        .iter()
        .filter(|r| r.kernel != "RK")
        .map(|r| r.latency[2])
        .fold(0.0, f64::max);
    assert!(
        rk.latency[2] > others_max_latency,
        "RK degrades most (latency): {} vs {}",
        rk.latency[2],
        others_max_latency
    );
}

#[test]
fn claim_table3_reproduced_within_tolerance() {
    let mut sys = machine();
    let model = ExecutionModel::calibrate(&mut sys);
    for code in model.codes() {
        let published = code.published.auto_time.unwrap();
        let modelled = model.time(code, Version::Automatable);
        assert!(
            (modelled - published).abs() / published < 0.06,
            "{}: {modelled} vs {published}",
            code.name
        );
    }
}

#[test]
fn claim_sync_and_prefetch_attributions() {
    // "DYFESM and OCEAN" hurt without Cedar sync; "TRACK" dominated by
    // scalar accesses; "DYFESM benefits significantly from prefetch".
    let mut sys = machine();
    let model = ExecutionModel::calibrate(&mut sys);
    let slowdown = |name: &str, a: Version, b: Version| {
        let c = model.code(name).unwrap();
        model.time(c, b) / model.time(c, a)
    };
    assert!(slowdown("DYFESM", Version::Automatable, Version::NoSync) > 1.08);
    assert!(slowdown("OCEAN", Version::Automatable, Version::NoSync) > 1.12);
    assert!(slowdown("TRACK", Version::NoSync, Version::NoPrefetch) < 1.02);
    assert!(slowdown("DYFESM", Version::NoSync, Version::NoPrefetch) > 1.35);
}

#[test]
fn claim_table5_exception_structure() {
    // "two exceptions are sufficient on the Cray 1 ... whereas the YMP
    // needs six". Our Cedar ensemble needs three (paper: two) — the
    // deviation is recorded in EXPERIMENTS.md.
    let mut sys = machine();
    let model = ExecutionModel::calibrate(&mut sys);
    assert_eq!(
        exceptions_to_stability(&cedar::baselines::cray1::rates()),
        Some(2)
    );
    assert_eq!(
        exceptions_to_stability(&model.ymp_mflops_ensemble()),
        Some(6)
    );
    let cedar_needs = exceptions_to_stability(&model.cedar_mflops_ensemble());
    assert!(
        cedar_needs.is_some_and(|e| e <= 3),
        "Cedar stabilizes with few exceptions, got {cedar_needs:?}"
    );
    let ymp = exceptions_to_stability(&model.ymp_mflops_ensemble()).unwrap();
    assert!(
        ymp > cedar_needs.unwrap(),
        "the YMP needs more exceptions than Cedar"
    );
}

#[test]
fn claim_table6_censuses() {
    let (cedar_census, ymp_census) = cedar_bench::table6::run();
    assert_eq!(
        (
            cedar_census.high,
            cedar_census.intermediate,
            cedar_census.unacceptable
        ),
        (1, 9, 3),
        "Cedar: 1 high, 9 intermediate, 3 unacceptable"
    );
    assert_eq!(
        (
            ymp_census.high,
            ymp_census.intermediate,
            ymp_census.unacceptable
        ),
        (0, 6, 7),
        "YMP: 0 high, 6 intermediate, 7 unacceptable"
    );
}

#[test]
fn claim_cg_scalability_window() {
    // "Cedar exhibits scalable high performance for matrices larger
    // than something between 10K and 16K" at 32 CEs; "between 34 and
    // 48 MFLOPS as the problem size ranges from 10K to 172K".
    let mut sys = machine();
    let band = |n: usize, sys: &mut CedarSystem| classify(cg::speedup(sys, n, 32), 32);
    assert_eq!(band(172_000, &mut sys), PerfBand::High);
    assert_eq!(band(16_000, &mut sys), PerfBand::High);
    assert_eq!(band(10_000, &mut sys), PerfBand::Intermediate);
    assert_eq!(band(1_000, &mut sys), PerfBand::Intermediate);
    let m = cg::simulate_iteration(&mut sys, 172_000, 32).mflops;
    assert!((30.0..60.0).contains(&m), "32-CE CG MFLOPS {m}");
}

#[test]
fn claim_cm5_vs_cedar_per_processor_parity() {
    // "the per-processor MFLOPS of the two systems on these problems
    // are roughly equivalent".
    let mut sys = machine();
    let cedar_pp = cg::simulate_iteration(&mut sys, 172_000, 32).mflops / 32.0;
    let cm5 = Cm5Model::paper();
    let cm5_pp_bw11 = cm5.matvec_mflops(262_144, 11, 32) / 32.0;
    let cm5_pp_bw3 = cm5.matvec_mflops(262_144, 3, 32) / 32.0;
    let ratio_hi = cedar_pp / cm5_pp_bw3;
    let ratio_lo = cedar_pp / cm5_pp_bw11;
    assert!(
        (0.4..3.0).contains(&ratio_hi) && (0.4..3.0).contains(&ratio_lo),
        "per-processor rates roughly equivalent: cedar {cedar_pp}, cm5 {cm5_pp_bw3}/{cm5_pp_bw11}"
    );
}

#[test]
fn claim_trfd_vm_story() {
    let outcomes = cedar_bench::ablation_vm::run();
    let ratio = outcomes[1].faults as f64 / outcomes[0].faults as f64;
    assert!(
        (3.5..4.5).contains(&ratio),
        "almost 4x the faults, got {ratio}"
    );
    assert!(
        (0.4..0.6).contains(&outcomes[1].vm_fraction),
        "close to 50% of time in VM, got {}",
        outcomes[1].vm_fraction
    );
    assert_eq!(
        outcomes[2].faults, outcomes[0].faults,
        "distributed version returns to first-touch faults"
    );
}

#[test]
fn claim_network_degradation_is_implementation_not_topology() {
    let points = cedar_bench::ablation_network::run();
    let cedar_cfg = &points[0];
    let fast_modules = points
        .iter()
        .find(|p| p.service_net_cycles == 2 && p.queue_words == 2)
        .unwrap();
    assert!(
        fast_modules.latency < cedar_cfg.latency * 0.7,
        "faster modules fix latency: {} -> {}",
        cedar_cfg.latency,
        fast_modules.latency
    );
    assert!(
        fast_modules.bandwidth > cedar_cfg.bandwidth * 1.5,
        "and recover bandwidth: {} -> {}",
        cedar_cfg.bandwidth,
        fast_modules.bandwidth
    );
}
