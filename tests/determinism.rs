//! Whole-stack determinism: the paper's experiments are replayed here
//! bit-for-bit. Every experiment run twice from scratch must produce
//! byte-identical structured results — the property DESIGN.md §5
//! commits to and everything else (golden regressions, calibration)
//! rests on.

#[test]
fn table1_is_deterministic() {
    assert_eq!(cedar_bench::table1::run(), cedar_bench::table1::run());
}

#[test]
fn table2_is_deterministic() {
    let a = cedar_bench::table2::run();
    let b = cedar_bench::table2::run();
    assert_eq!(a, b);
}

#[test]
fn perfect_model_is_deterministic() {
    use cedar::core::{CedarParams, CedarSystem};
    use cedar::perfect::model::ExecutionModel;
    let build = || {
        let mut sys = CedarSystem::new(CedarParams::paper());
        ExecutionModel::calibrate(&mut sys)
    };
    assert_eq!(build(), build());
}

#[test]
fn memory_profiles_are_deterministic() {
    use cedar::core::{CedarParams, CedarSystem};
    use cedar::net::fabric::PrefetchTraffic;
    let measure = || {
        let mut sys = CedarSystem::new(CedarParams::paper());
        sys.measure_memory(PrefetchTraffic::rk_aggressive(4), 32)
    };
    assert_eq!(measure(), measure());
}

#[test]
fn hotspot_and_ablations_are_deterministic() {
    assert_eq!(cedar_bench::hotspot::run(), cedar_bench::hotspot::run());
    assert_eq!(
        cedar_bench::ablation_network::run(),
        cedar_bench::ablation_network::run()
    );
    assert_eq!(
        cedar_bench::ablation_vm::run(),
        cedar_bench::ablation_vm::run()
    );
}

#[test]
fn loop_scheduling_is_deterministic() {
    use cedar::core::{CedarParams, CedarSystem};
    use cedar::runtime::loops::{xdoall, Schedule, Work};
    let run = || {
        let mut sys = CedarSystem::new(CedarParams::paper());
        let mut order = Vec::new();
        let report = xdoall(&mut sys, 500, Schedule::SelfScheduled, |i| {
            order.push(i);
            Work::cycles((i % 7) as f64 * 100.0)
        });
        (order, report)
    };
    assert_eq!(run(), run());
}
