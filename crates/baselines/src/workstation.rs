//! Workstation stability anchors.
//!
//! "For the past 20 years, from the VAX 780 through various modern
//! workstations (Sun SPARC2, IBM RS6000), an instability of about 5
//! has been common for the Perfect benchmarks." These reference
//! ensembles define the stability bar Cedar and the Crays are judged
//! against; the shapes are reconstructions with the documented
//! instability level.

/// A representative workstation Perfect ensemble (relative rates)
/// whose raw instability is about 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workstation {
    /// Machine name.
    pub name: &'static str,
    /// Overall scalar MFLOPS scale of the machine.
    pub scale_mflops: f64,
}

/// The anchor machines the paper names.
pub const ANCHORS: [Workstation; 3] = [
    Workstation {
        name: "VAX 11/780",
        scale_mflops: 0.2,
    },
    Workstation {
        name: "Sun SPARC2",
        scale_mflops: 2.0,
    },
    Workstation {
        name: "IBM RS/6000",
        scale_mflops: 8.0,
    },
];

/// Relative per-code rate factors common to scalar machines on the
/// Perfect codes: an ~5× spread, no wild outliers (scalar machines
/// have no vectorization cliff).
pub const RELATIVE_RATES: [f64; 13] = [
    0.55, 1.0, 0.70, 0.80, 0.95, 0.45, 0.60, 0.75, 0.35, 0.85, 0.22, 0.40, 1.05,
];

impl Workstation {
    /// The machine's Perfect ensemble in MFLOPS.
    #[must_use]
    pub fn rates(&self) -> Vec<f64> {
        RELATIVE_RATES
            .iter()
            .map(|r| r * self.scale_mflops)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_metrics::stability::instability;

    #[test]
    fn anchors_have_workstation_level_instability() {
        for w in &ANCHORS {
            let inst = instability(&w.rates(), 0);
            assert!(
                (3.0..=5.5).contains(&inst),
                "{}: In(13,0) = {inst}, expected about 5",
                w.name
            );
        }
    }

    #[test]
    fn instability_is_scale_invariant() {
        let vax = ANCHORS[0].rates();
        let rs6k = ANCHORS[2].rates();
        assert!((instability(&vax, 0) - instability(&rs6k, 0)).abs() < 1e-9);
    }

    #[test]
    fn performance_spans_the_machines() {
        // The 10x/7-years improvement curve: RS/6000 >> SPARC2 >> VAX.
        assert!(ANCHORS[2].scale_mflops > ANCHORS[1].scale_mflops);
        assert!(ANCHORS[1].scale_mflops > ANCHORS[0].scale_mflops);
    }
}
