//! The Thinking Machines CM-5 baseline (banded matvec, \[FWPS92\]).
//!
//! "The CM-5 used does not have floating-point accelerators. For
//! problem sizes run, 16K ≤ N ≤ 256K, high performance was not
//! achieved relative to 32, 256, or 512 processors. The communication
//! structure of the CM-5 evidently causes these performance
//! difficulties … the 32-processor CM-5 delivers between 28 and 32
//! MFLOPS for BW=3 and between 58 and 67 MFLOPS for BW=11."
//!
//! The model: each SPARC node (no FPU accelerator) sustains a few
//! MFLOPS of scalar floating point; a banded matvec moves halo data
//! through the fat tree, paying a per-element communication charge
//! that grows slowly with machine size and is *independent of the
//! bandwidth* — so the narrow band (fewer flops per communicated
//! element) suffers a worse compute:communication ratio, exactly the
//! paper's diagnosis.

use cedar_metrics::bands::{classify, PerfBand};

/// CM-5 analytic parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cm5Model {
    /// Sustained scalar floating-point rate per node in the
    /// data-parallel code, MFLOPS (no FPU accelerators).
    pub node_mflops: f64,
    /// Base per-element communication charge at 32 nodes, µs.
    pub comm_us_per_element: f64,
    /// Growth of the communication charge per doubling of machine
    /// size beyond 32 nodes (fat-tree depth).
    pub comm_growth_per_doubling: f64,
    /// Fixed per-operation overhead (reduction/startup), µs.
    pub fixed_overhead_us: f64,
    /// How much faster the single-node serial version computes per
    /// flop than a node of the data-parallel version (no distributed
    /// addressing, cache-friendly layout); this is what keeps the
    /// measured 32-node MFLOPS below the high-performance band.
    pub serial_advantage: f64,
}

impl Cm5Model {
    /// Calibrated to the \[FWPS92\] numbers quoted in the paper: solving
    /// the two published 32-node MFLOPS bands for the per-flop compute
    /// charge and the (bandwidth-independent) communication charge
    /// gives 3.3 MFLOPS/node and 4.58 µs/element.
    #[must_use]
    pub fn paper() -> Self {
        Cm5Model {
            node_mflops: 3.3,
            comm_us_per_element: 4.58,
            comm_growth_per_doubling: 0.15,
            fixed_overhead_us: 400.0,
            serial_advantage: 1.35,
        }
    }

    /// Per-element communication charge at `processors` nodes, µs.
    #[must_use]
    pub fn comm_us(&self, processors: usize) -> f64 {
        let doublings = (processors as f64 / 32.0).log2().max(0.0);
        self.comm_us_per_element * (1.0 + self.comm_growth_per_doubling * doublings)
    }

    /// Time of one banded matvec, seconds.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    #[must_use]
    pub fn matvec_seconds(&self, n: usize, bandwidth: usize, processors: usize) -> f64 {
        assert!(
            n > 0 && bandwidth > 0 && processors > 0,
            "arguments must be nonzero"
        );
        let flops_per_element = 2.0 * bandwidth as f64;
        let compute_us = flops_per_element / self.node_mflops;
        let per_element_us = compute_us + self.comm_us(processors);
        (n as f64 / processors as f64 * per_element_us + self.fixed_overhead_us) * 1e-6
    }

    /// Achieved MFLOPS of one banded matvec.
    #[must_use]
    pub fn matvec_mflops(&self, n: usize, bandwidth: usize, processors: usize) -> f64 {
        let flops = 2.0 * bandwidth as f64 * n as f64;
        flops / self.matvec_seconds(n, bandwidth, processors) / 1e6
    }

    /// Speedup over the single-node serial version (communication-free
    /// and faster per flop by `serial_advantage`).
    #[must_use]
    pub fn speedup(&self, n: usize, bandwidth: usize, processors: usize) -> f64 {
        let serial =
            n as f64 * (2.0 * bandwidth as f64 / (self.node_mflops * self.serial_advantage)) * 1e-6;
        serial / self.matvec_seconds(n, bandwidth, processors)
    }

    /// Performance band of a configuration.
    #[must_use]
    pub fn band(&self, n: usize, bandwidth: usize, processors: usize) -> PerfBand {
        classify(self.speedup(n, bandwidth, processors), processors)
    }
}

impl Default for Cm5Model {
    fn default() -> Self {
        Cm5Model::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_two_node_mflops_match_paper_ranges() {
        let m = Cm5Model::paper();
        for n in [16_384usize, 65_536, 262_144] {
            let bw3 = m.matvec_mflops(n, 3, 32);
            assert!(
                (26.0..36.0).contains(&bw3),
                "BW=3 at N={n}: {bw3} (paper: 28-32)"
            );
            let bw11 = m.matvec_mflops(n, 11, 32);
            assert!(
                (54.0..70.0).contains(&bw11),
                "BW=11 at N={n}: {bw11} (paper: 58-67)"
            );
        }
    }

    #[test]
    fn never_reaches_the_high_band() {
        // "high performance was not achieved relative to 32, 256, or
        // 512 processors".
        let m = Cm5Model::paper();
        for p in [32, 256, 512] {
            for bw in [3, 11] {
                for n in [16_384usize, 262_144] {
                    assert_ne!(
                        m.band(n, bw, p),
                        PerfBand::High,
                        "N={n} bw={bw} P={p} must not be high"
                    );
                }
            }
        }
    }

    #[test]
    fn intermediate_at_reported_sizes() {
        // "scalable intermediate performance" across the reported range.
        let m = Cm5Model::paper();
        for p in [32, 256, 512] {
            for n in [16_384usize, 262_144] {
                assert_eq!(
                    m.band(n, 11, p),
                    PerfBand::Intermediate,
                    "N={n} P={p} bw=11"
                );
            }
        }
    }

    #[test]
    fn communication_term_explains_the_band_gap() {
        // The narrow band has the worse compute:comm ratio and thus
        // lower per-processor MFLOPS, while both see the *same*
        // communication charge — the paper's diagnosis.
        let m = Cm5Model::paper();
        // Achieved MFLOPS: the wide band amortizes the fixed per-element
        // communication charge over more flops…
        let bw3 = m.matvec_mflops(65_536, 3, 32);
        let bw11 = m.matvec_mflops(65_536, 11, 32);
        assert!(
            bw11 > 1.5 * bw3,
            "wide band amortizes communication better: {bw11} vs {bw3}"
        );
        // …while in *element* throughput the narrow band is faster,
        // confirming communication is not the only term.
        assert!(bw3 / 6.0 > bw11 / 22.0);
    }

    #[test]
    fn per_processor_rate_roughly_matches_cedar_cg() {
        // "the per-processor MFLOPS of the two systems on these
        // problems are roughly equivalent": Cedar CG at 32 CEs gives
        // 34-48 MFLOPS -> 1.1-1.5 per processor; CM-5 BW=11 at 32
        // nodes gives ~1.9, BW=3 ~1.0.
        let m = Cm5Model::paper();
        let per_proc_bw11 = m.matvec_mflops(262_144, 11, 32) / 32.0;
        let per_proc_bw3 = m.matvec_mflops(262_144, 3, 32) / 32.0;
        assert!((0.8..2.5).contains(&per_proc_bw11));
        assert!((0.8..2.5).contains(&per_proc_bw3));
    }

    #[test]
    fn comm_grows_with_machine_size() {
        let m = Cm5Model::paper();
        assert!(m.comm_us(512) > m.comm_us(256));
        assert!(m.comm_us(256) > m.comm_us(32));
        assert_eq!(m.comm_us(32), m.comm_us_per_element);
    }

    #[test]
    fn small_problems_hurt_from_fixed_overhead() {
        let m = Cm5Model::paper();
        let small = m.matvec_mflops(1_024, 11, 512);
        let large = m.matvec_mflops(262_144, 11, 512);
        assert!(small < large / 2.0, "tiny problems drown in overhead");
    }

    #[test]
    #[should_panic(expected = "arguments must be nonzero")]
    fn zero_arguments_rejected() {
        let _ = Cm5Model::paper().matvec_seconds(0, 3, 32);
    }
}
