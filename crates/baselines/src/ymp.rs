//! The Cray YMP/8 baseline.
//!
//! Transcribed facts: 6 ns clock (the paper quotes the 170/6 ≈ 28.33
//! clock ratio), eight processors, and the per-code YMP:Cedar MFLOPS
//! ratios of Table 3. Reconstructed: per-code parallel efficiencies
//! for Table 6 (automatic restructuring: 0 high / 6 intermediate / 7
//! unacceptable) and Figure 3 (manually optimized: about half high,
//! half intermediate, one unacceptable) — the paper plots these but
//! prints no numbers, so the values below are synthetic, ordered by
//! each code's vectorizability (its YMP:Cedar ratio), and pinned to
//! the published censuses by the tests.

use cedar_metrics::bands::{classify_efficiency, PerfBand};

/// YMP/8 machine constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YmpModel {
    /// Clock period in nanoseconds.
    pub clock_ns: f64,
    /// Processor count.
    pub processors: usize,
}

impl YmpModel {
    /// The machine as the paper describes it.
    #[must_use]
    pub fn paper() -> Self {
        YmpModel {
            clock_ns: 6.0,
            processors: 8,
        }
    }

    /// The Cedar:YMP clock ratio the paper quotes (28.33).
    #[must_use]
    pub fn clock_ratio_vs_cedar(&self) -> f64 {
        170.0 / self.clock_ns
    }
}

impl Default for YmpModel {
    fn default() -> Self {
        YmpModel::paper()
    }
}

/// A named efficiency sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeEfficiency {
    /// Perfect code name.
    pub name: &'static str,
    /// Parallel efficiency on the YMP/8.
    pub efficiency: f64,
}

/// Reconstructed YMP/8 efficiencies under *automatic* (baseline
/// compiler) restructuring — the Table 6 column: no code reaches the
/// high band, six sit in the intermediate band (the highly
/// vectorizable codes), seven are unacceptable.
pub const TABLE6_EFFICIENCIES: [CodeEfficiency; 13] = [
    CodeEfficiency {
        name: "ARC2D",
        efficiency: 0.45,
    },
    CodeEfficiency {
        name: "FLO52",
        efficiency: 0.42,
    },
    CodeEfficiency {
        name: "MDG",
        efficiency: 0.33,
    },
    CodeEfficiency {
        name: "BDNA",
        efficiency: 0.28,
    },
    CodeEfficiency {
        name: "MG3D",
        efficiency: 0.25,
    },
    CodeEfficiency {
        name: "OCEAN",
        efficiency: 0.20,
    },
    CodeEfficiency {
        name: "SPEC77",
        efficiency: 0.14,
    },
    CodeEfficiency {
        name: "DYFESM",
        efficiency: 0.12,
    },
    CodeEfficiency {
        name: "TRFD",
        efficiency: 0.10,
    },
    CodeEfficiency {
        name: "ADM",
        efficiency: 0.08,
    },
    CodeEfficiency {
        name: "TRACK",
        efficiency: 0.05,
    },
    CodeEfficiency {
        name: "QCD",
        efficiency: 0.02,
    },
    CodeEfficiency {
        name: "SPICE",
        efficiency: 0.01,
    },
];

/// Reconstructed YMP/8 efficiencies for the *manually optimized*
/// codes — the Figure 3 vertical axis: "about half high and half
/// intermediate … the YMP has one unacceptable performance".
pub const FIG3_EFFICIENCIES: [CodeEfficiency; 13] = [
    CodeEfficiency {
        name: "ARC2D",
        efficiency: 0.72,
    },
    CodeEfficiency {
        name: "FLO52",
        efficiency: 0.68,
    },
    CodeEfficiency {
        name: "MDG",
        efficiency: 0.60,
    },
    CodeEfficiency {
        name: "BDNA",
        efficiency: 0.58,
    },
    CodeEfficiency {
        name: "MG3D",
        efficiency: 0.55,
    },
    CodeEfficiency {
        name: "OCEAN",
        efficiency: 0.52,
    },
    CodeEfficiency {
        name: "SPEC77",
        efficiency: 0.40,
    },
    CodeEfficiency {
        name: "DYFESM",
        efficiency: 0.33,
    },
    CodeEfficiency {
        name: "TRFD",
        efficiency: 0.30,
    },
    CodeEfficiency {
        name: "ADM",
        efficiency: 0.25,
    },
    CodeEfficiency {
        name: "TRACK",
        efficiency: 0.22,
    },
    CodeEfficiency {
        name: "QCD",
        efficiency: 0.20,
    },
    CodeEfficiency {
        name: "SPICE",
        efficiency: 0.08,
    },
];

/// Band census of an efficiency set on the YMP's eight processors.
#[must_use]
pub fn band_census(effs: &[CodeEfficiency]) -> (usize, usize, usize) {
    let p = YmpModel::paper().processors;
    let mut high = 0;
    let mut inter = 0;
    let mut unacc = 0;
    for e in effs {
        match classify_efficiency(e.efficiency, p) {
            PerfBand::High => high += 1,
            PerfBand::Intermediate => inter += 1,
            PerfBand::Unacceptable => unacc += 1,
        }
    }
    (high, inter, unacc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_ratio_matches_paper() {
        let m = YmpModel::paper();
        assert!((m.clock_ratio_vs_cedar() - 28.33).abs() < 0.01);
    }

    #[test]
    fn table6_census_is_0_6_7() {
        // Paper Table 6, Cray YMP column: 0 high, 6 intermediate, 7
        // unacceptable. (Intermediate threshold at P=8: E > 1/6.)
        assert_eq!(band_census(&TABLE6_EFFICIENCIES), (0, 6, 7));
    }

    #[test]
    fn fig3_census_half_high_half_intermediate_one_unacceptable() {
        let (high, inter, unacc) = band_census(&FIG3_EFFICIENCIES);
        assert_eq!(unacc, 1, "the YMP has one unacceptable performance");
        assert_eq!(high, 6);
        assert_eq!(inter, 6);
    }

    #[test]
    fn manual_never_loses_to_automatic() {
        for (auto, manual) in TABLE6_EFFICIENCIES.iter().zip(&FIG3_EFFICIENCIES) {
            assert_eq!(auto.name, manual.name);
            assert!(
                manual.efficiency >= auto.efficiency,
                "{}: manual {} < auto {}",
                auto.name,
                manual.efficiency,
                auto.efficiency
            );
        }
    }

    #[test]
    fn spice_is_the_unacceptable_one() {
        let p = YmpModel::paper().processors;
        let spice = FIG3_EFFICIENCIES
            .iter()
            .find(|e| e.name == "SPICE")
            .unwrap();
        assert_eq!(
            classify_efficiency(spice.efficiency, p),
            PerfBand::Unacceptable
        );
    }

    #[test]
    fn all_thirteen_codes_present_once() {
        let mut names: Vec<&str> = TABLE6_EFFICIENCIES.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
    }
}
