//! The Cray T3D baseline: MIMD NUMA message passing.
//!
//! A documented reconstruction calibrated from the lattice-QCD
//! performance study of the T3D (PAPERS.md): 150 MHz Alpha 21064
//! nodes sustaining ~18 MFLOPS on the QCD kernels, ~140 MB/s
//! neighbour links, and a few microseconds of message latency. The
//! study's communication/compute profile — a 4D lattice whose halo
//! exchange scales with the surface-to-volume ratio of each node's
//! subgrid — drives the analytic scalability model, exactly as
//! [`Cm5Model`](crate::cm5::Cm5Model) does for the CM-5 CG study.
//!
//! The Perfect-ensemble numbers are likewise reconstructions: the
//! Perfect codes were never bulk-ported to the T3D (the hand
//! message-passing port the QCD team describes was weeks of work per
//! code), so the per-code rates below follow the scalar Alpha rate
//! shaped by each code's communication intensity, and the
//! portable-path recovery fractions encode how little of that tuned
//! rate a data-parallel compiler recovered — the T3D's PPT3 story.

/// Sustained floating-point work per lattice site per CG iteration in
/// the QCD study's staggered-fermion kernel.
pub const QCD_FLOPS_PER_SITE: f64 = 1_146.0;

/// Halo bytes exchanged per boundary site (SU(3) gauge links plus
/// spinors, both directions).
pub const QCD_HALO_BYTES_PER_SITE: f64 = 312.0;

/// Per-code tuned (hand message-passing) rates and portable-path
/// recovery, in the Perfect order used across `cedar-baselines`:
/// `(name, tuned MFLOPS at 64 PEs, portable/tuned recovery)`.
///
/// Regular grid codes (ARC2D, FLO52, OCEAN) scale well once ported;
/// irregular ones (SPICE, TRACK, MDG) barely parallelize over
/// distributed memory at all. Recovery fractions are low across the
/// board — message passing made performance portable only by hand.
pub const PERFECT_T3D: [(&str, f64, f64); 13] = [
    ("ADM", 180.0, 0.40),
    ("ARC2D", 620.0, 0.55),
    ("BDNA", 240.0, 0.45),
    ("DYFESM", 210.0, 0.35),
    ("FLO52", 660.0, 0.55),
    ("MDG", 90.0, 0.30),
    ("MG3D", 470.0, 0.50),
    ("OCEAN", 520.0, 0.50),
    ("QCD", 560.0, 0.45),
    ("SPEC77", 330.0, 0.40),
    ("SPICE", 6.0, 0.20),
    ("TRACK", 30.0, 0.25),
    ("TRFD", 410.0, 0.45),
];

/// T3D machine constants, QCD-study calibrated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct T3dModel {
    /// Processing elements.
    pub pes: usize,
    /// Sustained per-node MFLOPS on the QCD kernels.
    pub node_mflops: f64,
    /// Neighbour-link bandwidth in MB/s.
    pub link_mbytes_s: f64,
    /// Per-message latency in microseconds.
    pub msg_latency_us: f64,
    /// Single-node advantage of the serial code (no halo buffers, no
    /// message setup in the inner loop).
    pub serial_advantage: f64,
}

impl T3dModel {
    /// The configuration the QCD study measured.
    #[must_use]
    pub fn paper() -> Self {
        T3dModel {
            pes: 64,
            node_mflops: 18.0,
            link_mbytes_s: 140.0,
            msg_latency_us: 3.0,
            serial_advantage: 1.05,
        }
    }

    /// Seconds for one CG iteration over `sites` lattice sites on `p`
    /// PEs: per-node compute plus the 8-face halo exchange of a 4D
    /// subgrid (surface ~ volume^(3/4)).
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero or `sites < p`.
    #[must_use]
    pub fn sweep_seconds(&self, sites: usize, p: usize) -> f64 {
        assert!(p > 0, "need at least one PE");
        assert!(sites >= p, "fewer sites than PEs");
        let local = sites as f64 / p as f64;
        let compute = local * QCD_FLOPS_PER_SITE / (self.node_mflops * 1e6);
        if p == 1 {
            return compute / self.serial_advantage;
        }
        let surface = 8.0 * local.powf(0.75);
        let bytes = surface * QCD_HALO_BYTES_PER_SITE;
        let comm = bytes / (self.link_mbytes_s * 1e6) + 8.0 * self.msg_latency_us * 1e-6;
        compute + comm
    }

    /// Delivered MFLOPS of the whole machine on that sweep.
    #[must_use]
    pub fn sweep_mflops(&self, sites: usize, p: usize) -> f64 {
        sites as f64 * QCD_FLOPS_PER_SITE / self.sweep_seconds(sites, p) / 1e6
    }

    /// Speedup over the single-PE run.
    #[must_use]
    pub fn speedup(&self, sites: usize, p: usize) -> f64 {
        self.sweep_seconds(sites, 1) / self.sweep_seconds(sites, p)
    }

    /// The tuned (hand-ported) Perfect ensemble in MFLOPS.
    #[must_use]
    pub fn tuned_rates(&self) -> Vec<f64> {
        PERFECT_T3D.iter().map(|&(_, r, _)| r).collect()
    }

    /// The portable-path (data-parallel compiler) ensemble.
    #[must_use]
    pub fn portable_rates(&self) -> Vec<f64> {
        PERFECT_T3D.iter().map(|&(_, r, f)| r * f).collect()
    }

    /// Best-effort per-code speedups over one PE, taking the tuned
    /// rate against the scalar Alpha rate implied by each code's
    /// single-node fraction of [`Self::node_mflops`].
    #[must_use]
    pub fn tuned_speedups(&self) -> Vec<f64> {
        // A tuned port cannot beat linear scaling on its own node
        // rate; the implied scalar rate is tuned/pes at perfect
        // efficiency, so express speedup relative to the best
        // per-code node rate observed across the ensemble.
        let node_peak = self.node_mflops * 1.2;
        PERFECT_T3D
            .iter()
            .map(|&(_, r, _)| (r / node_peak).min(self.pes as f64))
            .collect()
    }
}

impl Default for T3dModel {
    fn default() -> Self {
        T3dModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_metrics::stability::instability;

    #[test]
    fn halo_exchange_caps_small_lattices() {
        let m = T3dModel::paper();
        // 16^4 lattice on 64 PEs: communication-bound, well under
        // linear; a 32^4 lattice recovers most of it.
        let small = m.speedup(65_536, 64);
        let large = m.speedup(1_048_576, 64);
        assert!(small < large, "surface-to-volume must favour large N");
        assert!(large > 32.0, "large lattices should scale past half");
        assert!(small > 8.0, "even 16^4 beats an eighth of the machine");
    }

    #[test]
    fn speedup_grows_with_pes() {
        let m = T3dModel::paper();
        let s16 = m.speedup(1_048_576, 16);
        let s64 = m.speedup(1_048_576, 64);
        assert!(s64 > s16);
        assert!(s64 < 64.0, "communication always costs something");
    }

    #[test]
    fn perfect_ensemble_is_message_passing_unstable() {
        let m = T3dModel::paper();
        let inst = instability(&m.tuned_rates(), 2);
        assert!(
            inst > 5.0,
            "distributed memory punishes irregular codes even with \
             two exceptions, got In(13,2) = {inst}"
        );
    }

    #[test]
    fn portable_path_recovers_less_than_half() {
        let m = T3dModel::paper();
        let recovered = PERFECT_T3D.iter().filter(|&&(_, _, f)| f >= 0.5).count();
        assert!(
            2 * recovered < PERFECT_T3D.len(),
            "the T3D's portability story must fail PPT3"
        );
        assert_eq!(m.portable_rates().len(), m.tuned_rates().len());
    }

    #[test]
    fn qcd_rate_matches_the_study_scale() {
        let m = T3dModel::paper();
        let rate = m.sweep_mflops(1_048_576, 64);
        // 64 nodes at ~18 MFLOPS sustained, minus halo overhead:
        // several hundred MFLOPS, not GFLOPS.
        assert!((400.0..1_152.0).contains(&rate), "got {rate}");
    }
}
