//! A SPARC T3-style baseline: massively multithreaded NUMA.
//!
//! A documented reconstruction following the SPARC T3 characterization
//! (PAPERS.md): many simple cores, eight hardware threads per core
//! hiding memory latency, one floating-point unit per core, and a
//! glueless NUMA fabric. The design point is the inverse of the
//! Crays': low peak rate per core, but almost no sensitivity to
//! memory access patterns — the thread scheduler fills stall cycles
//! with other threads' work, so delivered performance is *flat*
//! across codes. That flatness is what the zoo measures: the T3-style
//! machine is the modern heir of the paper's workstation stability
//! anchors, with commodity parts and near-automatic threading.

use crate::workstation::RELATIVE_RATES;

/// T3-style machine constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct T3Model {
    /// Cores (each with one FPU).
    pub cores: usize,
    /// Hardware threads per core.
    pub threads_per_core: usize,
    /// Sustained MFLOPS of one core with its threads saturated.
    pub core_mflops: f64,
    /// How far multithreading flattens the scalar per-code spread:
    /// 0 keeps the workstation shape, 1 makes every code identical.
    pub smoothing: f64,
    /// Remote-memory penalty per doubling of active cores.
    pub numa_penalty_per_doubling: f64,
}

impl T3Model {
    /// The characterized configuration: 16 cores × 8 threads.
    #[must_use]
    pub fn paper() -> Self {
        T3Model {
            cores: 16,
            threads_per_core: 8,
            core_mflops: 9.0,
            smoothing: 0.8,
            numa_penalty_per_doubling: 0.04,
        }
    }

    /// Hardware thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.cores * self.threads_per_core
    }

    /// Per-code efficiency: the workstation scalar shape pulled
    /// toward 1 by latency hiding.
    fn code_efficiency(rel: f64, smoothing: f64) -> f64 {
        let flat = 1.0;
        rel + (flat - rel) * smoothing
    }

    /// The machine's Perfect ensemble in MFLOPS with automatic
    /// threading — flat enough to be workstation-stable.
    #[must_use]
    pub fn rates(&self) -> Vec<f64> {
        RELATIVE_RATES
            .iter()
            .map(|&rel| {
                Self::code_efficiency(rel, self.smoothing)
                    * self.core_mflops
                    * self.cores as f64
                    * self.parallel_efficiency(self.cores)
            })
            .collect()
    }

    /// The hand-tuned ensemble: explicit thread placement buys a
    /// little over the automatic path, uniformly.
    #[must_use]
    pub fn tuned_rates(&self) -> Vec<f64> {
        self.rates().iter().map(|r| r * 1.15).collect()
    }

    /// Parallel efficiency at `p` active cores under the NUMA
    /// penalty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero.
    #[must_use]
    pub fn parallel_efficiency(&self, p: usize) -> f64 {
        assert!(p > 0, "need at least one core");
        let doublings = (p as f64).log2();
        1.0 / (1.0 + self.numa_penalty_per_doubling * doublings)
    }

    /// Per-code speedups over one core at `p` cores: flat and
    /// near-linear, because stalls are hidden rather than removed.
    #[must_use]
    pub fn speedups(&self, p: usize) -> Vec<f64> {
        RELATIVE_RATES
            .iter()
            .map(|_| p as f64 * self.parallel_efficiency(p))
            .collect()
    }

    /// Seconds to sweep a working set of `n` elements (one flop per
    /// element, latency hidden) on `p` cores.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero.
    #[must_use]
    pub fn sweep_seconds(&self, n: usize, p: usize) -> f64 {
        assert!(p > 0, "need at least one core");
        n as f64 / (self.core_mflops * 1e6 * p as f64 * self.parallel_efficiency(p))
    }

    /// Delivered MFLOPS on that sweep.
    #[must_use]
    pub fn sweep_mflops(&self, n: usize, p: usize) -> f64 {
        n as f64 / self.sweep_seconds(n, p) / 1e6
    }

    /// Speedup of `p` cores over one on that sweep.
    #[must_use]
    pub fn speedup(&self, n: usize, p: usize) -> f64 {
        self.sweep_seconds(n, 1) / self.sweep_seconds(n, p)
    }
}

impl Default for T3Model {
    fn default() -> Self {
        T3Model::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_metrics::stability::instability;

    #[test]
    fn multithreading_delivers_workstation_stability() {
        let m = T3Model::paper();
        let inst = instability(&m.rates(), 0);
        assert!(
            inst <= 5.0,
            "latency hiding must flatten the ensemble, got In(13,0) = {inst}"
        );
    }

    #[test]
    fn flatter_than_the_scalar_shape_it_starts_from() {
        let m = T3Model::paper();
        let scalar_inst = instability(&RELATIVE_RATES, 0);
        assert!(instability(&m.rates(), 0) < scalar_inst);
    }

    #[test]
    fn near_linear_core_scaling() {
        let m = T3Model::paper();
        let s = m.speedup(1_000_000, 16);
        assert!(s > 13.0 && s < 16.0, "got {s}");
        assert!(m.parallel_efficiency(16) > 0.8);
    }

    #[test]
    fn low_peak_is_the_price_of_flatness() {
        let m = T3Model::paper();
        let max = m.rates().iter().cloned().fold(0.0, f64::max);
        // Well under the Crays' hundreds of ensemble MFLOPS.
        assert!(max < 200.0, "got {max}");
    }

    #[test]
    fn tuning_buys_little() {
        let m = T3Model::paper();
        let auto: f64 = m.rates().iter().sum();
        let tuned: f64 = m.tuned_rates().iter().sum();
        assert!(tuned / auto < 1.3, "automatic threading must be close");
    }
}
