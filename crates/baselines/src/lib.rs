//! `cedar-baselines` — the comparison systems of §4.3.
//!
//! The paper judges Cedar against the Cray YMP/8 and Cray-1 (Perfect
//! ensembles) and the Thinking Machines CM-5 (banded matrix-vector
//! scalability), plus a workstation stability anchor (VAX 780 through
//! SPARC2/RS6000). None of those machines' raw per-code data sets are
//! fully printed in the paper, so this crate mixes:
//!
//! * **transcribed data** — the YMP:Cedar MFLOPS ratios of Table 3
//!   ([`ymp`]);
//! * **analytic models** — the CM-5 banded matvec (compute rate of a
//!   no-FPU SPARC node plus a fat-tree communication term,
//!   [`cm5`]);
//! * **documented reconstructions** — per-code efficiencies and the
//!   Cray-1 ensemble, synthesized to satisfy exactly the qualitative
//!   facts the paper states (band censuses, exception counts), and
//!   flagged as reconstructions in EXPERIMENTS.md ([`ymp`],
//!   [`cray1`], [`workstation`]).

#![warn(missing_docs)]

pub mod cm5;
pub mod cray1;
pub mod workstation;
pub mod ymp;

pub use cm5::Cm5Model;
pub use ymp::YmpModel;
