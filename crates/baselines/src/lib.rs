//! `cedar-baselines` — the comparison systems of §4.3.
//!
//! The paper judges Cedar against the Cray YMP/8 and Cray-1 (Perfect
//! ensembles) and the Thinking Machines CM-5 (banded matrix-vector
//! scalability), plus a workstation stability anchor (VAX 780 through
//! SPARC2/RS6000). None of those machines' raw per-code data sets are
//! fully printed in the paper, so this crate mixes:
//!
//! * **transcribed data** — the YMP:Cedar MFLOPS ratios of Table 3
//!   ([`ymp`]);
//! * **analytic models** — the CM-5 banded matvec (compute rate of a
//!   no-FPU SPARC node plus a fat-tree communication term,
//!   [`cm5`]);
//! * **documented reconstructions** — per-code efficiencies and the
//!   Cray-1 ensemble, synthesized to satisfy exactly the qualitative
//!   facts the paper states (band censuses, exception counts), and
//!   flagged as reconstructions in EXPERIMENTS.md ([`ymp`],
//!   [`cray1`], [`workstation`]).
//!
//! The machine zoo (ROADMAP item 4) extends the roster with two
//! post-paper designs reconstructed from the related work in
//! PAPERS.md: the Cray T3D MIMD NUMA message-passing machine,
//! calibrated from its lattice-QCD performance study ([`t3d`]), and a
//! SPARC T3-style massively multithreaded NUMA machine ([`t3`]).

#![warn(missing_docs)]

pub mod cm5;
pub mod cray1;
pub mod t3;
pub mod t3d;
pub mod workstation;
pub mod ymp;

pub use cm5::Cm5Model;
pub use t3::T3Model;
pub use t3d::T3dModel;
pub use ymp::YmpModel;
