//! The Cray-1 ensemble for Table 5.
//!
//! Table 5 compares the instability of Cedar, the Cray YMP/8, and the
//! Cray-1 on the Perfect codes, concluding that "two exceptions are
//! sufficient on the Cray 1 and Cedar, whereas the YMP needs six".
//! The per-code Cray-1 rates come from the Perfect Report addenda,
//! which the paper cites but does not reprint; the ensemble below is a
//! documented reconstruction with the right scale (a single-pipe
//! vector machine of the late 1970s: single-digit MFLOPS typical on
//! whole applications) and the stated stability structure — a terrible
//! raw instability driven by one very poor and one very strong
//! performer, repaired by exactly two exclusions.

/// Reconstructed Cray-1 MFLOPS over the thirteen Perfect codes
/// (compiled, baseline rules).
pub const CRAY1_MFLOPS: [(&str, f64); 13] = [
    ("ADM", 3.0),
    ("ARC2D", 9.0),
    ("BDNA", 5.0),
    ("DYFESM", 6.0),
    ("FLO52", 11.0),
    ("MDG", 4.0),
    ("MG3D", 7.0),
    ("OCEAN", 5.5),
    ("QCD", 2.6),
    ("SPEC77", 8.0),
    ("SPICE", 0.4),
    ("TRACK", 2.8),
    ("TRFD", 28.0),
];

/// The rates alone, in Table 3 code order.
#[must_use]
pub fn rates() -> Vec<f64> {
    CRAY1_MFLOPS.iter().map(|&(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_metrics::stability::{exceptions_to_stability, instability};

    #[test]
    fn raw_ensemble_is_terribly_unstable() {
        let r = rates();
        assert!(
            instability(&r, 0) > 20.0,
            "In(13,0) must be terrible, got {}",
            instability(&r, 0)
        );
    }

    #[test]
    fn two_exceptions_suffice() {
        // The paper's headline fact for the Cray-1.
        let r = rates();
        assert!(
            instability(&r, 2) <= 5.0,
            "In(13,2) = {}",
            instability(&r, 2)
        );
        assert_eq!(exceptions_to_stability(&r), Some(2));
    }

    #[test]
    fn the_outliers_are_spice_and_trfd() {
        use cedar_metrics::stability::stability;
        let r = rates();
        let report = stability(&r, 2);
        assert_eq!(report.dropped_low, vec![0.4], "SPICE is the poor outlier");
        assert_eq!(report.dropped_high, vec![28.0], "TRFD is the star outlier");
    }

    #[test]
    fn scale_is_single_pipe_vector_machine() {
        let r = rates();
        let max = r.iter().cloned().fold(0.0, f64::max);
        assert!(max < 40.0, "Cray-1 cannot exceed a few tens of MFLOPS");
    }
}
