//! Randomized property tests for the kernels' numerics, driven by the
//! simulator's deterministic SplitMix64 generator.

use cedar_kernels::banded::Banded;
use cedar_kernels::cg::{self, Penta};
use cedar_kernels::rank_update;
use cedar_kernels::tridiag::Tridiagonal;
use cedar_sim::rng::SplitMix64;

const CASES: usize = 32;

/// The rank-64 update is linear: updating with U,V then U',V' of the
/// same shapes equals one update with concatenated effect — checked
/// via additivity of two sequential updates versus summed expected
/// entries.
#[test]
fn rank_update_is_additive() {
    let mut rng = SplitMix64::new(0x4e01);
    for _ in 0..CASES {
        let n = 2 + rng.next_below(6) as usize;
        let u_val = rng.next_f64() * 4.0 - 2.0;
        let v_val = rng.next_f64() * 4.0 - 2.0;
        let mut a = vec![0.0; n * n];
        let u = vec![u_val; n * rank_update::RANK];
        let v = vec![v_val; n * rank_update::RANK];
        rank_update::compute(&mut a, &u, &v, n);
        rank_update::compute(&mut a, &u, &v, n);
        let expected = 2.0 * rank_update::RANK as f64 * u_val * v_val;
        for &x in &a {
            assert!((x - expected).abs() < 1e-9 * (1.0 + expected.abs()));
        }
    }
}

/// Tridiagonal matvec is linear in x: A(ax + by) = aAx + bAy.
#[test]
fn tridiag_matvec_is_linear() {
    let mut rng = SplitMix64::new(0x4e02);
    for _ in 0..CASES {
        let n = 2 + rng.next_below(38) as usize;
        let a_scale = rng.next_f64() * 6.0 - 3.0;
        let b_scale = rng.next_f64() * 6.0 - 3.0;
        let mut r =
            |len: usize| -> Vec<f64> { (0..len).map(|_| rng.next_f64() * 2.0 - 1.0).collect() };
        let m = Tridiagonal::new(r(n - 1), r(n), r(n - 1));
        let x = r(n);
        let y = r(n);
        let combo: Vec<f64> = x
            .iter()
            .zip(&y)
            .map(|(xi, yi)| a_scale * xi + b_scale * yi)
            .collect();
        let mut ax = vec![0.0; n];
        let mut ay = vec![0.0; n];
        let mut acombo = vec![0.0; n];
        m.matvec(&x, &mut ax);
        m.matvec(&y, &mut ay);
        m.matvec(&combo, &mut acombo);
        for i in 0..n {
            let expected = a_scale * ax[i] + b_scale * ay[i];
            assert!((acombo[i] - expected).abs() < 1e-9 * (1.0 + expected.abs()));
        }
    }
}

/// A banded matrix with bandwidth 3 agrees with the dedicated
/// tridiagonal kernel on random symmetric data.
#[test]
fn banded_bw3_equals_tridiagonal() {
    let mut rng = SplitMix64::new(0x4e03);
    for _ in 0..CASES {
        let n = 3 + rng.next_below(29) as usize;
        let diag: Vec<f64> = (0..n).map(|_| rng.next_f64() * 4.0).collect();
        let off: Vec<f64> = (0..n - 1).map(|_| rng.next_f64() - 0.5).collect();
        let banded = {
            let diag = diag.clone();
            let off = off.clone();
            Banded::from_fn(n, 3, move |i, d| if d == 0 { diag[i] } else { off[i] })
        };
        // Symmetric tridiagonal: sub == sup.
        let tri = Tridiagonal::new(off.clone(), diag, off);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
        let mut yb = vec![0.0; n];
        let mut yt = vec![0.0; n];
        banded.matvec(&x, &mut yb);
        tri.matvec(&x, &mut yt);
        for i in 0..n {
            assert!((yb[i] - yt[i]).abs() < 1e-10, "row {i}");
        }
    }
}

/// CG solves every manufactured Poisson system to the requested
/// tolerance.
#[test]
fn cg_solves_manufactured_systems() {
    let mut rng = SplitMix64::new(0x4e04);
    for _ in 0..CASES {
        let k = 3 + rng.next_below(9) as usize;
        let a = Penta::laplacian(k);
        let n = a.n();
        let x_true: Vec<f64> = (0..n).map(|_| rng.next_f64() * 4.0 - 2.0).collect();
        let mut b = vec![0.0; n];
        a.matvec(&x_true, &mut b);
        let sol = cg::solve(&a, &b, 1e-10, 20 * n);
        let err: f64 = sol
            .x
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        let scale: f64 = x_true.iter().map(|v| v * v).sum::<f64>().sqrt().max(1.0);
        assert!(err / scale < 1e-6, "relative error {}", err / scale);
    }
}

/// The Laplacian matvec is a positive semidefinite quadratic form:
/// xᵀAx ≥ 0 for every x.
#[test]
fn laplacian_is_positive_semidefinite() {
    let mut rng = SplitMix64::new(0x4e05);
    for _ in 0..CASES {
        let k = 2 + rng.next_below(8) as usize;
        let a = Penta::laplacian(k);
        let n = a.n();
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
        let mut ax = vec![0.0; n];
        a.matvec(&x, &mut ax);
        let quad: f64 = x.iter().zip(&ax).map(|(u, v)| u * v).sum();
        assert!(quad >= -1e-9, "x'Ax = {quad}");
    }
}
