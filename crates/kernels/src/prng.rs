//! Parallel random-number generation — the QCD optimization.
//!
//! QCD's automatable version improves only 1.8× because its Monte
//! Carlo sweep serializes on a random-number generator; "if a
//! hand-coded parallel random number generator is used, QCD can be
//! improved to yield a speed improvement of 20.8 rather than the 1.8
//! reported for the automatable code."
//!
//! The classic fix is a *leapfrog* linear congruential generator: CE
//! `k` of `P` starts at the `k`-th value and strides by `P`, using the
//! algebraically derived stride constants, so the union of the `P`
//! streams is exactly the serial sequence. [`Lcg64`] is the serial
//! generator, [`leapfrog`] builds the per-CE streams, and
//! [`qcd_speed_improvement`] shows the Amdahl arithmetic of the fix.

/// Multiplier of the 64-bit LCG (Knuth's MMIX constants).
pub const LCG_MUL: u64 = 6364136223846793005;
/// Increment of the 64-bit LCG.
pub const LCG_INC: u64 = 1442695040888963407;

/// A 64-bit linear congruential generator.
///
/// # Examples
///
/// ```
/// use cedar_kernels::prng::Lcg64;
///
/// let mut a = Lcg64::new(1);
/// let mut b = Lcg64::new(1);
/// assert_eq!(a.next_value(), b.next_value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lcg64 {
    state: u64,
    mul: u64,
    inc: u64,
}

impl Lcg64 {
    /// Creates the serial generator (stride one).
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Lcg64 {
            state: seed,
            mul: LCG_MUL,
            inc: LCG_INC,
        }
    }

    /// Creates a generator with explicit constants (used by leapfrog).
    #[must_use]
    pub const fn with_constants(seed: u64, mul: u64, inc: u64) -> Self {
        Lcg64 {
            state: seed,
            mul,
            inc,
        }
    }

    /// Advances and returns the next value.
    pub fn next_value(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(self.mul).wrapping_add(self.inc);
        self.state
    }

    /// The current state without advancing.
    #[must_use]
    pub const fn state(&self) -> u64 {
        self.state
    }

    /// Jumps the generator `n` steps in O(log n) via modular
    /// exponentiation of the affine map.
    pub fn jump(&mut self, n: u64) {
        let (mul, inc) = affine_power(self.mul, self.inc, n);
        self.state = self.state.wrapping_mul(mul).wrapping_add(inc);
    }
}

/// Computes the affine map `x -> mul^n x + inc·(mul^(n-1)+…+1)`
/// composed `n` times, returning the composed `(mul, inc)`.
fn affine_power(mul: u64, inc: u64, mut n: u64) -> (u64, u64) {
    // Square-and-multiply over affine maps.
    let mut acc_mul: u64 = 1;
    let mut acc_inc: u64 = 0;
    let mut base_mul = mul;
    let mut base_inc = inc;
    while n > 0 {
        if n & 1 == 1 {
            acc_mul = acc_mul.wrapping_mul(base_mul);
            acc_inc = acc_inc.wrapping_mul(base_mul).wrapping_add(base_inc);
        }
        base_inc = base_inc.wrapping_mul(base_mul).wrapping_add(base_inc);
        base_mul = base_mul.wrapping_mul(base_mul);
        n >>= 1;
    }
    (acc_mul, acc_inc)
}

/// Builds `p` leapfrog streams over the serial sequence from `seed`:
/// stream `k` produces values `k, k+p, k+2p, …` of the serial stream
/// (zero-indexed over the serial generator's outputs).
///
/// # Panics
///
/// Panics if `p` is zero.
#[must_use]
pub fn leapfrog(seed: u64, p: usize) -> Vec<Lcg64> {
    assert!(p > 0, "need at least one stream");
    let (stride_mul, stride_inc) = affine_power(LCG_MUL, LCG_INC, p as u64);
    // `next_value` advances by one stride before returning, so each
    // stream starts one stride *behind* its first output: at serial
    // position k+1-p, reached by jumping k+1 forward and one stride
    // back (the multiplier is odd, hence invertible mod 2^64).
    let inv_mul = inverse_mod_pow2(stride_mul);
    (0..p)
        .map(|k| {
            let mut start = Lcg64::new(seed);
            start.jump(k as u64 + 1);
            let rewound = inv_mul.wrapping_mul(start.state().wrapping_sub(stride_inc));
            Lcg64::with_constants(rewound, stride_mul, stride_inc)
        })
        .collect()
}

/// Multiplicative inverse of an odd number modulo 2^64 (Newton
/// iteration, five steps double the correct bits to 64).
fn inverse_mod_pow2(m: u64) -> u64 {
    debug_assert!(m % 2 == 1, "only odd numbers are invertible");
    let mut x = m; // correct to 3 bits
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(m.wrapping_mul(x)));
    }
    x
}

/// The Amdahl arithmetic of the QCD fix on `p` processors: with the
/// serial generator, the RNG fraction `rng_fraction` of the work runs
/// on one CE; leapfrogging parallelizes it.
///
/// # Panics
///
/// Panics if the fraction is outside `[0, 1]` or `p` is zero.
#[must_use]
pub fn qcd_speed_improvement(rng_fraction: f64, parallel_speed: f64, p: usize) -> (f64, f64) {
    assert!((0.0..=1.0).contains(&rng_fraction), "fraction in [0,1]");
    assert!(p > 0, "need processors");
    let rest = 1.0 - rng_fraction;
    // Serial RNG: the RNG runs at speed 1; the rest parallelizes.
    let with_serial_rng = 1.0 / (rng_fraction + rest / parallel_speed);
    // Leapfrog: everything parallelizes.
    let with_leapfrog = parallel_speed / 1.0;
    (with_serial_rng, with_leapfrog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_matches_stepping() {
        let mut stepped = Lcg64::new(42);
        for _ in 0..1000 {
            stepped.next_value();
        }
        let mut jumped = Lcg64::new(42);
        jumped.jump(1000);
        assert_eq!(jumped.state(), stepped.state());
    }

    #[test]
    fn jump_zero_is_identity() {
        let mut g = Lcg64::new(7);
        g.jump(0);
        assert_eq!(g.state(), 7);
    }

    #[test]
    fn leapfrog_streams_interleave_to_the_serial_sequence() {
        let p = 8;
        let n = 64;
        let mut serial = Lcg64::new(123);
        let serial_seq: Vec<u64> = (0..n * p).map(|_| serial.next_value()).collect();
        let mut streams = leapfrog(123, p);
        for (k, stream) in streams.iter_mut().enumerate() {
            for i in 0..n {
                let got = stream.next_value();
                assert_eq!(
                    got,
                    serial_seq[i * p + k],
                    "stream {k} element {i} diverged"
                );
            }
        }
    }

    #[test]
    fn leapfrog_works_for_odd_stream_counts() {
        let p = 5;
        let mut serial = Lcg64::new(9);
        let serial_seq: Vec<u64> = (0..50).map(|_| serial.next_value()).collect();
        let mut streams = leapfrog(9, p);
        for (k, stream) in streams.iter_mut().enumerate() {
            for i in 0..10 {
                assert_eq!(stream.next_value(), serial_seq[i * p + k]);
            }
        }
    }

    #[test]
    fn qcd_improvement_matches_paper_scale() {
        // Automatable QCD improves only 1.8x; the parallel RNG takes it
        // to ~20.8x. With a restructured-section speed of ~22 (QCD is
        // not fully vectorizable), the serial-RNG fraction that yields
        // 1.8 is ~51%, and removing it recovers the full 22.
        let (serial_rng, leapfrog) = qcd_speed_improvement(0.51, 22.0, 32);
        assert!(
            (1.6..2.1).contains(&serial_rng),
            "serial RNG gives {serial_rng}"
        );
        assert!(
            (20.0..23.0).contains(&leapfrog),
            "parallel RNG gives {leapfrog} (paper: 20.8)"
        );
    }

    #[test]
    #[should_panic(expected = "need at least one stream")]
    fn zero_streams_rejected() {
        let _ = leapfrog(0, 0);
    }
}
