//! Parallel reductions: dot products and global sums.
//!
//! "Parallel reductions" head the paper's list of automatable
//! transformations (§3.3), and CG's dot products are why its
//! iteration pays two multicluster synchronizations (§4.3). The Cedar
//! reduction shape is hierarchical: each CE reduces its strip with
//! chained vector operations, the cluster combines over the
//! concurrency bus, and the four cluster partials combine through
//! global-memory synchronization cells.

use cedar_core::system::CedarSystem;
use cedar_runtime::sync::{cluster_barrier_cycles, multicluster_barrier_cycles};

use crate::KernelReport;

/// Functional dot product (the numerics the timing model charges for).
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product needs equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Functional hierarchical sum, organized exactly as the machine
/// reduces: per-CE strips, per-cluster combines, machine combine.
/// Algebraically equal to the serial sum up to floating-point
/// reassociation; the tests bound the difference.
#[must_use]
pub fn hierarchical_sum(values: &[f64], clusters: usize, ces_per_cluster: usize) -> f64 {
    let p = clusters * ces_per_cluster;
    if p == 0 || values.is_empty() {
        return values.iter().sum();
    }
    let strip = values.len().div_ceil(p);
    let mut cluster_partials = vec![0.0; clusters];
    for (ce, chunk) in values.chunks(strip).enumerate() {
        let cluster = (ce / ces_per_cluster).min(clusters - 1);
        let ce_partial: f64 = chunk.iter().sum();
        cluster_partials[cluster] += ce_partial;
    }
    cluster_partials.iter().sum()
}

/// Simulated time of a length-`n` dot product on `ces` CEs with
/// cluster-cached operands: vector multiply-adds at cache rate, an
/// intracluster combine on the bus, and a multicluster combine through
/// the sync cells.
pub fn simulate_dot(sys: &mut CedarSystem, n: usize, ces: usize) -> KernelReport {
    let p = sys.params();
    let ces_per_cluster = p.ces_per_cluster;
    let clusters_used = ces.div_ceil(ces_per_cluster);
    // Each CE streams 2 operands per element at cache rate (1 w/c per
    // stream via the two cache banks feeding it) and chains the
    // multiply-add: per-element cost ~2 cycles, plus strip startup.
    let per_ce_elems = n.div_ceil(ces.max(1));
    let strip_factor = 1.0 + 12.0 / 32.0;
    let compute = per_ce_elems as f64 * 2.0 * strip_factor;
    let combine = cluster_barrier_cycles()
        + if clusters_used > 1 {
            multicluster_barrier_cycles(clusters_used)
        } else {
            0.0
        };
    KernelReport::new(2.0 * n as f64, compute + combine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_core::params::CedarParams;

    #[test]
    fn dot_matches_hand_value() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn hierarchical_sum_matches_serial() {
        let values: Vec<f64> = (0..10_000)
            .map(|i| ((i * 37) % 101) as f64 - 50.0)
            .collect();
        let serial: f64 = values.iter().sum();
        let parallel = hierarchical_sum(&values, 4, 8);
        assert!(
            (serial - parallel).abs() < 1e-9 * (1.0 + serial.abs()),
            "{serial} vs {parallel}"
        );
    }

    #[test]
    fn hierarchical_sum_handles_ragged_lengths() {
        for n in [0usize, 1, 31, 32, 33, 1000, 1023] {
            let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let expected = (n as f64 - 1.0) * n as f64 / 2.0;
            let got = hierarchical_sum(&values, 4, 8);
            assert!((got - expected.max(0.0)).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn small_reductions_are_dominated_by_synchronization() {
        // The CG story: at small N the reduction's combine overhead
        // dwarfs the arithmetic, which is why CG's bands degrade for
        // small problems.
        let mut sys = CedarSystem::new(CedarParams::paper());
        let small = simulate_dot(&mut sys, 256, 32);
        let combine = cluster_barrier_cycles() + multicluster_barrier_cycles(4);
        assert!(
            combine > small.cycles * 0.3,
            "combine ({combine}) should dominate a 256-element dot ({})",
            small.cycles
        );
        let large = simulate_dot(&mut sys, 1 << 20, 32);
        assert!(
            combine < large.cycles * 0.01,
            "and vanish for a megaword dot ({})",
            large.cycles
        );
    }

    #[test]
    fn dot_speedup_saturates_with_ces_at_fixed_n() {
        let mut sys = CedarSystem::new(CedarParams::paper());
        let t1 = simulate_dot(&mut sys, 4096, 1).cycles;
        let t8 = simulate_dot(&mut sys, 4096, 8).cycles;
        let t32 = simulate_dot(&mut sys, 4096, 32).cycles;
        assert!(t8 < t1 / 4.0, "8 CEs should speed up well: {t1} -> {t8}");
        let marginal = t8 / t32;
        assert!(
            marginal < 4.0,
            "the last 24 CEs buy less than linear: {marginal}"
        );
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_dot_rejected() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
