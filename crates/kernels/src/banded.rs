//! Banded matrix-vector products, bandwidths 3 and 11.
//!
//! §4.3 compares Cedar's CG against CM-5 measurements of "matrix-vector
//! products with bandwidths 3 and 11" from \[FWPS92\]. This module
//! provides the functional kernel (used to validate the baseline
//! model's flop accounting) and the flop/word counts the analytic CM-5
//! model in `cedar-baselines` consumes.

/// A symmetric banded matrix stored by diagonals: `bands` holds the
/// main diagonal first, then the superdiagonals at offsets `1..=half`,
/// with symmetry supplying the subdiagonals. Total bandwidth is
/// `2 * half + 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Banded {
    n: usize,
    half: usize,
    /// `bands[d][i]` is `A[i][i + d]` for `d` in `0..=half` (row `i`
    /// valid while `i + d < n`).
    bands: Vec<Vec<f64>>,
}

impl Banded {
    /// Builds a symmetric banded matrix of order `n` and total
    /// bandwidth `bw` (odd), with every in-band entry set by
    /// `f(row, offset)`.
    ///
    /// # Panics
    ///
    /// Panics if `bw` is even, zero, or wider than the matrix.
    #[must_use]
    pub fn from_fn(n: usize, bw: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        assert!(bw % 2 == 1, "bandwidth must be odd");
        assert!(bw >= 1 && bw < 2 * n, "bandwidth must fit the matrix");
        let half = bw / 2;
        let bands = (0..=half)
            .map(|d| (0..n - d).map(|i| f(i, d)).collect())
            .collect();
        Banded { n, half, bands }
    }

    /// Matrix order.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total bandwidth `2*half + 1`.
    #[must_use]
    pub fn bandwidth(&self) -> usize {
        2 * self.half + 1
    }

    /// `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for i in 0..self.n {
            let mut acc = self.bands[0][i] * x[i];
            for d in 1..=self.half {
                if i + d < self.n {
                    acc += self.bands[d][i] * x[i + d];
                }
                if i >= d {
                    acc += self.bands[d][i - d] * x[i - d];
                }
            }
            y[i] = acc;
        }
    }

    /// Flops in one matvec: one multiply-add per in-band entry (about
    /// `2 * bw * n` for interior-dominated sizes).
    #[must_use]
    pub fn matvec_flops(&self) -> f64 {
        let mut entries = self.n as f64; // main diagonal
        for d in 1..=self.half {
            entries += 2.0 * (self.n - d) as f64;
        }
        2.0 * entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_three_equals_tridiagonal() {
        let n = 8;
        let banded = Banded::from_fn(n, 3, |_, d| if d == 0 { 2.0 } else { -1.0 });
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut y = vec![0.0; n];
        banded.matvec(&x, &mut y);
        // -1,2,-1 against the ramp: interior rows give 0.
        #[allow(clippy::needless_range_loop)]
        for i in 1..n - 1 {
            assert!((y[i]).abs() < 1e-12, "row {i}: {}", y[i]);
        }
        assert_eq!(y[0], -1.0);
        assert_eq!(y[n - 1], 2.0 * (n - 1) as f64 - (n - 2) as f64);
    }

    #[test]
    fn matches_dense_reference_bw11() {
        let n = 20;
        let banded = Banded::from_fn(n, 11, |i, d| (i + d) as f64 * 0.1 + 1.0);
        let x: Vec<f64> = (0..n).map(|i| ((i * i) % 5) as f64 - 2.0).collect();
        let mut y = vec![0.0; n];
        banded.matvec(&x, &mut y);
        // Dense reconstruction.
        let mut dense = vec![vec![0.0; n]; n];
        for d in 0..=5usize {
            for i in 0..n - d {
                let v = (i + d) as f64 * 0.1 + 1.0;
                dense[i][i + d] = v;
                dense[i + d][i] = v;
            }
        }
        for i in 0..n {
            let acc: f64 = (0..n).map(|j| dense[i][j] * x[j]).sum();
            assert!((y[i] - acc).abs() < 1e-10, "row {i}");
        }
    }

    #[test]
    fn symmetry_of_the_operator() {
        let n = 12;
        let a = Banded::from_fn(n, 5, |i, d| (i * 3 + d) as f64);
        let u: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let v: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut au = vec![0.0; n];
        let mut av = vec![0.0; n];
        a.matvec(&u, &mut au);
        a.matvec(&v, &mut av);
        let uav: f64 = u.iter().zip(&av).map(|(a, b)| a * b).sum();
        let vau: f64 = v.iter().zip(&au).map(|(a, b)| a * b).sum();
        assert!((uav - vau).abs() < 1e-9);
    }

    #[test]
    fn flop_counts() {
        let bw3 = Banded::from_fn(100, 3, |_, _| 1.0);
        assert_eq!(bw3.matvec_flops(), 2.0 * (100.0 + 2.0 * 99.0));
        let bw11 = Banded::from_fn(100, 11, |_, _| 1.0);
        let entries = 100.0 + 2.0 * (99.0 + 98.0 + 97.0 + 96.0 + 95.0);
        assert_eq!(bw11.matvec_flops(), 2.0 * entries);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be odd")]
    fn even_bandwidth_rejected() {
        let _ = Banded::from_fn(10, 4, |_, _| 1.0);
    }
}
