//! The TM kernel: tridiagonal matrix-vector multiply.
//!
//! `y = A·x` where `A` is tridiagonal, stored as three diagonals. Per
//! the paper, TM (like CG) is "affected less than the others due to
//! the presence of register-register vector operations which reduce
//! the demand on the memory system."

use cedar_core::costmodel::AccessMode;
use cedar_core::system::CedarSystem;
use cedar_net::fabric::PrefetchTraffic;

use crate::KernelReport;

/// A tridiagonal matrix stored by diagonals: `sub` (length n-1),
/// `diag` (length n), `sup` (length n-1).
#[derive(Debug, Clone, PartialEq)]
pub struct Tridiagonal {
    /// Subdiagonal.
    pub sub: Vec<f64>,
    /// Main diagonal.
    pub diag: Vec<f64>,
    /// Superdiagonal.
    pub sup: Vec<f64>,
}

impl Tridiagonal {
    /// Builds a tridiagonal matrix, validating the diagonal lengths.
    ///
    /// # Panics
    ///
    /// Panics if the lengths are inconsistent.
    #[must_use]
    pub fn new(sub: Vec<f64>, diag: Vec<f64>, sup: Vec<f64>) -> Self {
        let n = diag.len();
        assert!(n > 0, "matrix must be non-empty");
        assert_eq!(sub.len(), n - 1, "subdiagonal length must be n-1");
        assert_eq!(sup.len(), n - 1, "superdiagonal length must be n-1");
        Tridiagonal { sub, diag, sup }
    }

    /// Order of the matrix.
    #[must_use]
    pub fn n(&self) -> usize {
        self.diag.len()
    }

    /// Computes `y = A·x` functionally.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` length differs from the matrix order.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        let n = self.n();
        assert_eq!(x.len(), n, "x length");
        assert_eq!(y.len(), n, "y length");
        for i in 0..n {
            let mut acc = self.diag[i] * x[i];
            if i > 0 {
                acc += self.sub[i - 1] * x[i - 1];
            }
            if i + 1 < n {
                acc += self.sup[i] * x[i + 1];
            }
            y[i] = acc;
        }
    }

    /// Flops in one matvec: ~5 per interior row (3 multiplies, 2 adds).
    #[must_use]
    pub fn matvec_flops(&self) -> f64 {
        let n = self.n() as f64;
        5.0 * n - 4.0
    }
}

/// Simulates one tridiagonal matvec of order `n` on `ces` CEs with
/// global data and prefetch: four streamed words per element (three
/// diagonals plus `x`), five flops, register-register accumulation.
pub fn simulate(sys: &mut CedarSystem, n: usize, ces: usize) -> KernelReport {
    let traffic = PrefetchTraffic::tridiagonal_matvec(4);
    let cpw = sys.cycles_per_word(AccessMode::GlobalPrefetch(traffic), ces);
    let words_per_element = 4.0;
    let compute_cycles_per_element = 2.0; // register-register adds
    let cpe = (words_per_element * cpw).max(words_per_element) + compute_cycles_per_element;
    let flops = 5.0 * n as f64;
    let cycles = n as f64 * cpe / ces as f64;
    KernelReport::new(flops, cycles)
}

/// The same matvec without prefetch.
pub fn simulate_no_prefetch(sys: &mut CedarSystem, n: usize, ces: usize) -> KernelReport {
    let cpw = sys.cycles_per_word(AccessMode::GlobalNoPrefetch, ces);
    let cpe = 4.0 * cpw + 2.0;
    let flops = 5.0 * n as f64;
    KernelReport::new(flops, n as f64 * cpe / ces as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_core::params::CedarParams;

    fn identity(n: usize) -> Tridiagonal {
        Tridiagonal::new(vec![0.0; n - 1], vec![1.0; n], vec![0.0; n - 1])
    }

    #[test]
    fn identity_matvec_copies() {
        let a = identity(5);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut y = [0.0; 5];
        a.matvec(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn laplacian_matvec_known_values() {
        // -1, 2, -1 stencil against a constant vector gives zero in the
        // interior, 1 at the ends.
        let n = 6;
        let a = Tridiagonal::new(vec![-1.0; n - 1], vec![2.0; n], vec![-1.0; n - 1]);
        let x = vec![1.0; n];
        let mut y = vec![0.0; n];
        a.matvec(&x, &mut y);
        assert_eq!(y, [1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn matvec_matches_dense_reference() {
        let n = 16;
        let a = Tridiagonal::new(
            (0..n - 1).map(|i| i as f64 * 0.3 - 1.0).collect(),
            (0..n).map(|i| i as f64 + 1.0).collect(),
            (0..n - 1).map(|i| 0.5 - i as f64 * 0.1).collect(),
        );
        let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut y = vec![0.0; n];
        a.matvec(&x, &mut y);
        // Dense reference.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                let v = if j + 1 == i {
                    a.sub[j]
                } else if j == i {
                    a.diag[i]
                } else if j == i + 1 {
                    a.sup[i]
                } else {
                    0.0
                };
                acc += v * x[j];
            }
            assert!((y[i] - acc).abs() < 1e-12, "row {i}");
        }
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(identity(10).matvec_flops(), 46.0);
    }

    #[test]
    fn prefetch_speedup_in_band() {
        let mut sys = CedarSystem::new(CedarParams::paper());
        let with = simulate(&mut sys, 8192, 8);
        let without = simulate_no_prefetch(&mut sys, 8192, 8);
        let speedup = without.cycles / with.cycles;
        // Paper Table 2: TM prefetch speedup 2.1 at 8 CEs.
        assert!(
            (1.5..6.0).contains(&speedup),
            "TM prefetch speedup {speedup} outside band"
        );
    }

    #[test]
    fn degrades_less_than_rank_update() {
        // TM's register-register work lowers its memory intensity, so
        // its prefetched cost per word should grow less from 8 to 32
        // CEs than RK's.
        let mut sys = CedarSystem::new(CedarParams::paper());
        use cedar_core::costmodel::AccessMode;
        let tm = PrefetchTraffic::tridiagonal_matvec(4);
        let rk = PrefetchTraffic::rk_aggressive(4);
        let growth = |t: PrefetchTraffic, sys: &mut CedarSystem| {
            let a = sys.cycles_per_word(AccessMode::GlobalPrefetch(t), 8);
            let b = sys.cycles_per_word(AccessMode::GlobalPrefetch(t), 32);
            b / a
        };
        let tm_growth = growth(tm, &mut sys);
        let rk_growth = growth(rk, &mut sys);
        assert!(
            tm_growth < rk_growth * 1.3,
            "TM ({tm_growth}) should not degrade much faster than RK ({rk_growth})"
        );
    }

    #[test]
    #[should_panic(expected = "subdiagonal length")]
    fn bad_diagonal_lengths_rejected() {
        let _ = Tridiagonal::new(vec![1.0; 5], vec![1.0; 5], vec![1.0; 4]);
    }
}
