//! The VL/VF vector-load kernel: a pure global-memory read stream.
//!
//! Table 2 calls it VL (and VF in the measurement rows): a vector load
//! of global data through the prefetch unit. It is "dominated by
//! memory accesses but degrades less quickly [than RK] due to the
//! smaller prefetch block which reduces access intensity."

use cedar_core::costmodel::AccessMode;
use cedar_core::system::CedarSystem;
use cedar_net::fabric::PrefetchTraffic;

use crate::KernelReport;

/// Functionally loads `src` into `dst` (the real data movement of a
/// vector load).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn compute(dst: &mut [f64], src: &[f64]) {
    assert_eq!(dst.len(), src.len(), "vector load needs equal lengths");
    dst.copy_from_slice(src);
}

/// Simulates loading `n` words per CE on `ces` CEs with prefetch,
/// counting one flop per element (the consuming operation).
pub fn simulate(sys: &mut CedarSystem, n: usize, ces: usize) -> KernelReport {
    let traffic = PrefetchTraffic::vector_load(4);
    let cpw = sys.cycles_per_word(AccessMode::GlobalPrefetch(traffic), ces);
    let cycles = n as f64 * cpw.max(1.0);
    KernelReport::new(n as f64, cycles)
}

/// Simulates the same load without prefetch, for speedup comparisons.
pub fn simulate_no_prefetch(sys: &mut CedarSystem, n: usize, ces: usize) -> KernelReport {
    let cpw = sys.cycles_per_word(AccessMode::GlobalNoPrefetch, ces);
    KernelReport::new(n as f64, n as f64 * cpw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_core::params::CedarParams;

    #[test]
    fn functional_copy() {
        let src = [1.0, 2.0, 3.0];
        let mut dst = [0.0; 3];
        compute(&mut dst, &src);
        assert_eq!(dst, src);
    }

    #[test]
    fn prefetch_speedup_in_paper_band() {
        let mut sys = CedarSystem::new(CedarParams::paper());
        let with = simulate(&mut sys, 4096, 8);
        let without = simulate_no_prefetch(&mut sys, 4096, 8);
        let speedup = without.cycles / with.cycles;
        // Paper Table 2: VF prefetch speedup 1.8 at 8 CEs (vs up to
        // 3.4 for RK); the envelope accepts the modelled 2-6x range
        // at low load where our latencies are slightly optimistic.
        assert!(
            (1.5..8.0).contains(&speedup),
            "prefetch speedup {speedup} outside plausible band"
        );
    }

    #[test]
    fn speedup_declines_with_ces() {
        let mut sys = CedarSystem::new(CedarParams::paper());
        let sp = |ces: usize, sys: &mut CedarSystem| {
            simulate_no_prefetch(sys, 4096, ces).cycles / simulate(sys, 4096, ces).cycles
        };
        let at8 = sp(8, &mut sys);
        let at32 = sp(32, &mut sys);
        assert!(
            at32 < at8,
            "prefetch effectiveness declines with contention: {at8} -> {at32}"
        );
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_lengths_panic() {
        compute(&mut [0.0], &[1.0, 2.0]);
    }
}
