//! The conjugate-gradient solver used for the PPT4 scalability study.
//!
//! §4.3: "The performance of a conjugate gradient (CG) iterative
//! linear system solver was measured on Cedar while varying the number
//! of processors from 2 to 32. This computation involves 5-diagonal
//! matrix-vector products as well as vector and reduction operations
//! of size N, 1K ≤ N ≤ 172K. Cedar exhibits scalable high performance
//! for matrices larger than something between 10K and 16K … and
//! intermediate performance for smaller matrices … The 32-processor
//! Cedar delivers between 34 and 48 MFLOPS as the CG problem size
//! ranges from 10K to 172K."
//!
//! The functional solver here runs real CG on the 5-point-Laplacian
//! pentadiagonal system; the timing model charges the measured memory
//! rates plus per-iteration loop/reduction overheads, calibrated as
//! documented on the constants below.

use cedar_core::costmodel::AccessMode;
use cedar_core::system::CedarSystem;
use cedar_net::fabric::PrefetchTraffic;

use crate::KernelReport;

/// A symmetric positive-definite pentadiagonal matrix: the 5-point
/// stencil of a `k × k` grid (order `n = k²`), with offsets
/// `{-k, -1, 0, +1, +k}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Penta {
    /// Grid side.
    pub k: usize,
    /// Main-diagonal value (4 for the Laplacian).
    pub diag: f64,
    /// Off-diagonal value (-1 for the Laplacian).
    pub off: f64,
}

impl Penta {
    /// The 2D Laplacian on a `k × k` grid.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    #[must_use]
    pub fn laplacian(k: usize) -> Self {
        assert!(k > 0, "grid side must be nonzero");
        Penta {
            k,
            diag: 4.0,
            off: -1.0,
        }
    }

    /// Matrix order.
    #[must_use]
    pub fn n(&self) -> usize {
        self.k * self.k
    }

    /// `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        let n = self.n();
        let k = self.k;
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), n);
        for i in 0..n {
            let mut acc = self.diag * x[i];
            // -1/+1 neighbours stay within a grid row.
            if i % k > 0 {
                acc += self.off * x[i - 1];
            }
            if i % k + 1 < k {
                acc += self.off * x[i + 1];
            }
            if i >= k {
                acc += self.off * x[i - k];
            }
            if i + k < n {
                acc += self.off * x[i + k];
            }
            y[i] = acc;
        }
    }
}

/// Result of a functional CG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgSolution {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
}

/// Solves `A·x = b` by conjugate gradients to relative tolerance `tol`
/// (or `max_iters`).
///
/// # Panics
///
/// Panics if `b` length differs from the matrix order.
pub fn solve(a: &Penta, b: &[f64], tol: f64, max_iters: usize) -> CgSolution {
    let n = a.n();
    assert_eq!(b.len(), n, "rhs length");
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut q = vec![0.0; n];
    let b_norm = dot(b, b).sqrt().max(f64::MIN_POSITIVE);
    let mut rr = dot(&r, &r);
    let mut iterations = 0;
    while iterations < max_iters && rr.sqrt() / b_norm > tol {
        a.matvec(&p, &mut q);
        let alpha = rr / dot(&p, &q);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rr_new = dot(&r, &r);
        let beta = rr_new / rr;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rr = rr_new;
        iterations += 1;
    }
    CgSolution {
        x,
        iterations,
        residual: rr.sqrt(),
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Flops per element per CG iteration: 9 (matvec) + 4 (two dots) +
/// 6 (three axpys).
pub const FLOPS_PER_ELEMENT_PER_ITER: f64 = 19.0;

/// Streamed words per element per iteration, counting the five
/// diagonals' operands, the vectors of the dots and axpys, and the
/// poor-locality `±k` accesses.
const WORDS_PER_ELEMENT: f64 = 13.0;

/// Fraction of the word traffic the prefetch unit pipelines; the rest
/// (reductions, short vectors, `±k` offsets straddling pages) pays
/// no-prefetch rates. Calibrated so 32 CEs at N = 172K land near the
/// paper's 48 MFLOPS.
const PREFETCHABLE_FRACTION: f64 = 0.35;

/// Scalar (uniprocessor, unvectorized) cost per flop in cycles — the
/// denominator of the speedup band classification. Calibrated so the
/// high-band crossover lands between N = 10K and 16K at 32 CEs, as
/// the paper reports.
pub const SERIAL_SCALAR_CYCLES_PER_FLOP: f64 = 2.1;

/// Per-iteration fixed overhead in CE cycles when running on `ces`
/// processors: six global-scheduled loop launches (the matvec, dots,
/// and axpys) plus two multicluster reduction barriers.
fn iteration_overhead_cycles(sys: &CedarSystem, ces: usize) -> f64 {
    if ces <= 1 {
        return 0.0;
    }
    let p = sys.params();
    let clusters = ces.div_ceil(p.ces_per_cluster);
    6.0 * (p.xdoall_startup_cycles() + p.xdoall_fetch_cycles()) as f64
        + 2.0 * cedar_runtime::sync::multicluster_barrier_cycles(clusters)
}

/// Simulated time of one CG iteration of size `n` on `ces` CEs.
pub fn simulate_iteration(sys: &mut CedarSystem, n: usize, ces: usize) -> KernelReport {
    let traffic = PrefetchTraffic::conjugate_gradient(4);
    let pref = sys.cycles_per_word(AccessMode::GlobalPrefetch(traffic), ces);
    let nopref = sys.cycles_per_word(AccessMode::GlobalNoPrefetch, ces);
    let cpw = PREFETCHABLE_FRACTION * pref.max(1.0) + (1.0 - PREFETCHABLE_FRACTION) * nopref;
    let compute = n as f64 * WORDS_PER_ELEMENT * cpw / ces as f64;
    let cycles = compute + iteration_overhead_cycles(sys, ces);
    KernelReport::new(FLOPS_PER_ELEMENT_PER_ITER * n as f64, cycles)
}

/// Speedup of the parallel CG iteration over the serial scalar version
/// — the quantity the PPT4 bands classify.
pub fn speedup(sys: &mut CedarSystem, n: usize, ces: usize) -> f64 {
    let parallel = simulate_iteration(sys, n, ces);
    let serial_cycles = FLOPS_PER_ELEMENT_PER_ITER * n as f64 * SERIAL_SCALAR_CYCLES_PER_FLOP;
    serial_cycles / parallel.cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_core::params::CedarParams;

    fn machine() -> CedarSystem {
        CedarSystem::new(CedarParams::paper())
    }

    #[test]
    fn matvec_constant_vector_boundary_pattern() {
        let a = Penta::laplacian(3);
        let x = vec![1.0; 9];
        let mut y = vec![0.0; 9];
        a.matvec(&x, &mut y);
        // Corner rows have two neighbours: 4 - 2 = 2; edges 1; center 0.
        assert_eq!(y, [2.0, 1.0, 2.0, 1.0, 0.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn matvec_is_symmetric() {
        let a = Penta::laplacian(4);
        let n = a.n();
        let u: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut au = vec![0.0; n];
        let mut av = vec![0.0; n];
        a.matvec(&u, &mut au);
        a.matvec(&v, &mut av);
        let uav = dot(&u, &av);
        let vau = dot(&v, &au);
        assert!((uav - vau).abs() < 1e-10, "A must be symmetric");
    }

    #[test]
    fn cg_solves_poisson_to_tolerance() {
        let a = Penta::laplacian(10);
        let n = a.n();
        // Manufactured solution: x* known, b = A x*.
        let x_star: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut b = vec![0.0; n];
        a.matvec(&x_star, &mut b);
        let sol = solve(&a, &b, 1e-10, 1000);
        let err: f64 = sol
            .x
            .iter()
            .zip(&x_star)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "CG error {err}");
        assert!(sol.iterations < 1000, "must converge before the cap");
    }

    #[test]
    fn cg_converges_monotonically_in_iterations() {
        let a = Penta::laplacian(8);
        let b = vec![1.0; a.n()];
        let loose = solve(&a, &b, 1e-2, 1000);
        let tight = solve(&a, &b, 1e-8, 1000);
        assert!(tight.iterations > loose.iterations);
        assert!(tight.residual < loose.residual);
    }

    #[test]
    fn cg_on_spd_matrix_converges_within_n_iterations() {
        // Exact-arithmetic CG converges in at most n steps; with
        // roundoff we allow a small factor.
        let a = Penta::laplacian(6);
        let b: Vec<f64> = (0..a.n()).map(|i| (i as f64 * 1.3).sin()).collect();
        let sol = solve(&a, &b, 1e-12, 4 * a.n());
        assert!(sol.residual < 1e-8);
    }

    #[test]
    fn thirty_two_ce_mflops_in_paper_band() {
        let mut sys = machine();
        let large = simulate_iteration(&mut sys, 172_000, 32);
        assert!(
            (30.0..65.0).contains(&large.mflops),
            "CG at N=172K on 32 CEs: {} MFLOPS (paper: 48)",
            large.mflops
        );
        let small = simulate_iteration(&mut sys, 10_000, 32);
        assert!(
            small.mflops < large.mflops,
            "smaller problems must be slower: {} vs {}",
            small.mflops,
            large.mflops
        );
        assert!(small.mflops > 15.0, "N=10K should still be tens of MFLOPS");
    }

    #[test]
    fn speedup_band_crossover_near_paper() {
        let mut sys = machine();
        // High band at 32 CEs means speedup > 16.
        let large = speedup(&mut sys, 172_000, 32);
        assert!(large > 16.0, "N=172K speedup {large} must be high band");
        let small = speedup(&mut sys, 1_000, 32);
        assert!(
            small < 16.0,
            "N=1K speedup {small} must drop out of the high band"
        );
        assert!(
            small > 32.0 / (2.0 * (32.0f64).log2()),
            "N=1K speedup {small} must remain at least intermediate"
        );
    }

    #[test]
    fn speedup_grows_with_processors_at_large_n() {
        let mut sys = machine();
        let s8 = speedup(&mut sys, 172_000, 8);
        let s32 = speedup(&mut sys, 172_000, 32);
        assert!(s32 > s8, "more CEs must help at large N: {s8} -> {s32}");
    }

    #[test]
    fn single_ce_has_no_loop_overhead() {
        let sys = machine();
        assert_eq!(iteration_overhead_cycles(&sys, 1), 0.0);
        assert!(iteration_overhead_cycles(&sys, 32) > 1000.0);
    }
}
