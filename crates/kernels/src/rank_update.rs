//! The rank-64 update: Table 1's matrix primitive.
//!
//! `A ← A + U·Vᵀ` with `A` being `n × n` and `U`, `V` being `n × 64`,
//! all resident in global memory. The three versions differ in "the
//! mode of access of the data and the transfer of subblocks to cluster
//! cache":
//!
//! * **GM/no-pref** — all vector accesses go to global memory without
//!   prefetching: performance is "determined by the 13 cycle latency
//!   of the global memory and the two outstanding requests allowed per
//!   CE".
//! * **GM/pref** — identical but with aggressive prefetching (256-word
//!   blocks overlapped with computation).
//! * **GM/cache** — a submatrix is transferred to a cached work array
//!   in each cluster and all vector accesses hit the work array.
//!
//! All versions "chain two operations per memory request" — two flops
//! per delivered word.

use cedar_core::costmodel::AccessMode;
use cedar_core::system::CedarSystem;
use cedar_net::fabric::PrefetchTraffic;

use crate::KernelReport;

/// Which Table 1 version to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankUpdateVersion {
    /// Global accesses, no prefetch.
    GmNoPref,
    /// Global accesses with aggressive prefetch.
    GmPref,
    /// Block transfer to a cached cluster work array.
    GmCache,
}

impl RankUpdateVersion {
    /// All three versions in Table 1 order.
    pub const ALL: [RankUpdateVersion; 3] = [
        RankUpdateVersion::GmNoPref,
        RankUpdateVersion::GmPref,
        RankUpdateVersion::GmCache,
    ];

    /// The row label used in Table 1.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RankUpdateVersion::GmNoPref => "GM/no pref",
            RankUpdateVersion::GmPref => "GM/pref",
            RankUpdateVersion::GmCache => "GM/Cache",
        }
    }
}

/// Rank of the update, fixed at 64 as in the paper.
pub const RANK: usize = 64;

/// Per-element overhead beyond raw word delivery for the prefetched
/// version: vector startup amortized over 32-element strips plus the
/// arm/fire scalar sequence and address generation per block,
/// calibrated so one cluster lands at Table 1's 50 MFLOPS.
const PREF_OVERHEAD_CPE: f64 = 12.0 / 32.0 + 0.475;

/// Per-element overhead for the cached version: vector startup plus
/// the amortized block transfer in/out of the work array, cache-bank
/// conflicts among eight CEs sharing four banks, and write-backs.
/// Calibrated so one cluster lands at Table 1's 52 MFLOPS.
const CACHE_OVERHEAD_CPE: f64 = 12.0 / 32.0 + 0.43;

/// Computes the rank-64 update functionally: `a[i][j] += Σ_k u[i][k] *
/// v[j][k]`. `a` is row-major `n × n`; `u`, `v` are row-major
/// `n × RANK`.
///
/// # Panics
///
/// Panics if the slices do not match the stated shapes.
pub fn compute(a: &mut [f64], u: &[f64], v: &[f64], n: usize) {
    assert_eq!(a.len(), n * n, "A must be n x n");
    assert_eq!(u.len(), n * RANK, "U must be n x 64");
    assert_eq!(v.len(), n * RANK, "V must be n x 64");
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..RANK {
                acc += u[i * RANK + k] * v[j * RANK + k];
            }
            a[i * n + j] += acc;
        }
    }
}

/// Floating-point operations in a rank-64 update of an `n × n` matrix.
#[must_use]
pub fn flop_count(n: usize) -> f64 {
    2.0 * RANK as f64 * (n * n) as f64
}

/// Effective cycles per delivered element (2 chained flops) for a
/// version at the given machine load.
fn cycles_per_element(sys: &mut CedarSystem, version: RankUpdateVersion, ces: usize) -> f64 {
    match version {
        RankUpdateVersion::GmNoPref => sys.cycles_per_word(AccessMode::GlobalNoPrefetch, ces),
        RankUpdateVersion::GmPref => {
            let traffic = PrefetchTraffic::rk_aggressive(4);
            let interarrival = sys.cycles_per_word(AccessMode::GlobalPrefetch(traffic), ces);
            interarrival.max(1.0) + PREF_OVERHEAD_CPE
        }
        RankUpdateVersion::GmCache => {
            let compute = sys.cycles_per_word(AccessMode::ClusterCache, ces);
            compute + CACHE_OVERHEAD_CPE
        }
    }
}

/// Simulates the rank-64 update of an `n × n` matrix on `clusters`
/// clusters (8 CEs each), returning the achieved MFLOPS — one cell of
/// Table 1.
///
/// # Panics
///
/// Panics if `clusters` is zero or exceeds the machine.
pub fn simulate(
    sys: &mut CedarSystem,
    n: usize,
    version: RankUpdateVersion,
    clusters: usize,
) -> KernelReport {
    assert!(
        clusters >= 1 && clusters <= sys.params().clusters,
        "clusters out of range"
    );
    let ces = clusters * sys.params().ces_per_cluster;
    let cpe = cycles_per_element(sys, version, ces);
    let flops = flop_count(n);
    // Each delivered word feeds one chained 2-flop operation; work is
    // spread evenly over the participating CEs.
    let elements = flops / 2.0;
    let cycles = elements * cpe / ces as f64;
    KernelReport::new(flops, cycles)
}

/// The full Table 1 row set: MFLOPS for each version × cluster count.
pub fn table1(sys: &mut CedarSystem, n: usize) -> Vec<(RankUpdateVersion, Vec<f64>)> {
    RankUpdateVersion::ALL
        .iter()
        .map(|&v| {
            let row = (1..=sys.params().clusters)
                .map(|c| simulate(sys, n, v, c).mflops)
                .collect();
            (v, row)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_core::params::CedarParams;

    fn machine() -> CedarSystem {
        CedarSystem::new(CedarParams::paper())
    }

    #[test]
    fn functional_update_matches_identity() {
        // With U = V = I-ish columns the update is checkable by hand:
        // u[i][k] = 1 iff k == i%64, v[j][k] = 1 iff k == j%64, so
        // a[i][j] += (i%64 == j%64) as f64.
        let n = 8;
        let mut a = vec![0.0; n * n];
        let mut u = vec![0.0; n * RANK];
        let mut v = vec![0.0; n * RANK];
        for i in 0..n {
            u[i * RANK + (i % RANK)] = 1.0;
            v[i * RANK + (i % RANK)] = 1.0;
        }
        compute(&mut a, &u, &v, n);
        for i in 0..n {
            for j in 0..n {
                let expected = f64::from(i % RANK == j % RANK);
                assert_eq!(a[i * n + j], expected, "a[{i}][{j}]");
            }
        }
    }

    #[test]
    fn functional_update_accumulates() {
        let n = 4;
        let mut a = vec![1.0; n * n];
        let u = vec![0.5; n * RANK];
        let v = vec![0.25; n * RANK];
        compute(&mut a, &u, &v, n);
        // Each entry gains 64 * 0.5 * 0.25 = 8.
        for &x in &a {
            assert!((x - 9.0).abs() < 1e-12);
        }
    }

    #[test]
    fn flop_count_matches_paper_scale() {
        // n = 1K: 2 * 64 * 1M = 134.2 Mflop.
        assert!((flop_count(1024) - 134.2e6).abs() < 0.1e6);
    }

    #[test]
    fn single_cluster_mflops_match_table1() {
        let mut sys = machine();
        let nopref = simulate(&mut sys, 1024, RankUpdateVersion::GmNoPref, 1).mflops;
        let pref = simulate(&mut sys, 1024, RankUpdateVersion::GmPref, 1).mflops;
        let cache = simulate(&mut sys, 1024, RankUpdateVersion::GmCache, 1).mflops;
        // Paper row 1: 14.5 / 50 / 52.
        assert!(
            (nopref - 14.5).abs() < 3.0,
            "GM/no-pref {nopref} vs paper 14.5"
        );
        assert!((pref - 50.0).abs() < 20.0, "GM/pref {pref} vs paper 50");
        assert!((cache - 52.0).abs() < 10.0, "GM/cache {cache} vs paper 52");
    }

    #[test]
    fn cache_version_scales_linearly() {
        let mut sys = machine();
        let one = simulate(&mut sys, 1024, RankUpdateVersion::GmCache, 1).mflops;
        let four = simulate(&mut sys, 1024, RankUpdateVersion::GmCache, 4).mflops;
        assert!(
            (four / one - 4.0).abs() < 0.2,
            "cached version scales ~linearly: {one} -> {four}"
        );
    }

    #[test]
    fn prefetch_effectiveness_declines_with_clusters() {
        let mut sys = machine();
        let imp = |cl: usize, sys: &mut CedarSystem| {
            let np = simulate(sys, 1024, RankUpdateVersion::GmNoPref, cl).mflops;
            let p = simulate(sys, 1024, RankUpdateVersion::GmPref, cl).mflops;
            p / np
        };
        let at1 = imp(1, &mut sys);
        let at4 = imp(4, &mut sys);
        assert!(
            at4 < at1,
            "prefetch improvement should shrink with contention: {at1} -> {at4}"
        );
        assert!(
            at1 > 2.0,
            "one-cluster prefetch improvement {at1} should be large"
        );
    }

    #[test]
    fn cache_beats_prefetch_at_scale() {
        let mut sys = machine();
        let pref = simulate(&mut sys, 1024, RankUpdateVersion::GmPref, 4).mflops;
        let cache = simulate(&mut sys, 1024, RankUpdateVersion::GmCache, 4).mflops;
        assert!(
            cache > pref,
            "at four clusters the cache version must win: pref {pref}, cache {cache}"
        );
    }

    #[test]
    fn cache_version_approaches_effective_peak_fraction() {
        let mut sys = machine();
        let cache = simulate(&mut sys, 1024, RankUpdateVersion::GmCache, 4).mflops;
        let eff_peak = sys.params().effective_peak_mflops();
        let fraction = cache / eff_peak;
        // Paper: 74% efficiency against the 274 MFLOPS effective peak.
        assert!(
            (0.6..0.9).contains(&fraction),
            "cache version at {fraction:.2} of effective peak (paper: 0.74)"
        );
    }

    #[test]
    fn table1_has_three_rows_of_four() {
        let mut sys = machine();
        let t = table1(&mut sys, 256);
        assert_eq!(t.len(), 3);
        assert!(t.iter().all(|(_, row)| row.len() == 4));
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(RankUpdateVersion::GmNoPref.label(), "GM/no pref");
        assert_eq!(RankUpdateVersion::GmCache.label(), "GM/Cache");
    }
}
