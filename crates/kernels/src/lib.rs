//! `cedar-kernels` — the computational kernels of the paper's §4.1,
//! with real numerics and simulated Cedar timing.
//!
//! Every kernel computes genuine results on the host (validated
//! against naive references and algebraic identities in the tests)
//! while its Cedar execution time comes from the machine's cost model
//! — measured network/memory profiles plus the vector-unit timing —
//! exactly the two-level approach DESIGN.md describes.
//!
//! * [`rank_update`] — the rank-64 update in its three Table 1
//!   versions (GM/no-pref, GM/pref, GM/cache);
//! * [`vecload`] — the VL/VF vector-load kernel;
//! * [`tridiag`] — the TM tridiagonal matrix-vector multiply;
//! * [`cg`] — the 5-diagonal conjugate-gradient solver used for the
//!   PPT4 scalability study (§4.3);
//! * [`banded`] — banded matrix-vector products with bandwidths 3 and
//!   11, the computation quoted for the CM-5 comparison;
//! * [`prng`] — the leapfrog parallel random-number generator behind
//!   QCD's 1.8× → 20.8× hand optimization;
//! * [`reduction`] — hierarchical dot products and sums (per-CE strip,
//!   concurrency-bus combine, global sync-cell combine).
//!
//! # Examples
//!
//! ```
//! use cedar_core::{CedarParams, CedarSystem};
//! use cedar_kernels::rank_update::{self, RankUpdateVersion};
//!
//! let mut cedar = CedarSystem::new(CedarParams::paper());
//! let report = rank_update::simulate(&mut cedar, 1024, RankUpdateVersion::GmCache, 4);
//! assert!(report.mflops > 100.0, "four-cluster cached rank update is fast");
//! ```

#![warn(missing_docs)]

pub mod banded;
pub mod cg;
pub mod prng;
pub mod rank_update;
pub mod reduction;
pub mod tridiag;
pub mod vecload;

pub use rank_update::RankUpdateVersion;

/// A kernel's simulated execution outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelReport {
    /// Floating-point operations performed.
    pub flops: f64,
    /// Simulated execution time in CE cycles (critical path).
    pub cycles: f64,
    /// Achieved MFLOPS at the 170 ns clock.
    pub mflops: f64,
}

impl KernelReport {
    /// Builds a report from work and time at the Cedar clock.
    #[must_use]
    pub fn new(flops: f64, cycles: f64) -> Self {
        let seconds = cycles * 170e-9;
        KernelReport {
            flops,
            cycles,
            mflops: if seconds > 0.0 {
                flops / seconds / 1e6
            } else {
                0.0
            },
        }
    }
}
