//! CEDAR FORTRAN program descriptions.
//!
//! §3 of the paper: "A program for Cedar can be written using explicit
//! parallelism and memory hierarchy placement directives. Parallelism
//! can be in the form of DOALL loops or concurrent tasks." This module
//! is the structural counterpart: a [`Program`] is a sequence of
//! [`Stmt`]s — serial sections, XDOALL loops, SDOALL/CDOALL nests,
//! explicit global↔cluster moves, barriers, and I/O — built with a
//! fluent builder and executed against a [`CedarSystem`] to produce a
//! time breakdown. It is how the examples and ablations express
//! whole-application structure without hand-wiring every loop.

use cedar_core::costmodel::AccessMode;
use cedar_core::system::CedarSystem;
use cedar_net::fabric::PrefetchTraffic;

use crate::io::{IoSubsystem, RecordFormat};
use crate::loops::{cdoall, sdoall, xdoall, Schedule, Work};
use crate::sync::{cluster_barrier_cycles, multicluster_barrier_cycles};

/// Vector startup surcharge on loop bodies: 12 pipeline-fill cycles
/// per 32-element strip (the 376 vs 274 MFLOPS effective-peak ratio).
const STRIP_STARTUP_FACTOR: f64 = 1.0 + 12.0 / 32.0;

/// Where a parallel loop's vector operands live, determining the
/// per-word cost its body pays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OperandHome {
    /// Cluster cache (after explicit moves or loop-local placement).
    ClusterCache,
    /// Cluster memory.
    ClusterMemory,
    /// Global memory with compiler prefetch.
    GlobalPrefetched,
    /// Global memory without prefetch.
    GlobalUnprefetched,
}

impl OperandHome {
    fn access_mode(self) -> AccessMode {
        match self {
            OperandHome::ClusterCache => AccessMode::ClusterCache,
            OperandHome::ClusterMemory => AccessMode::ClusterMemory,
            OperandHome::GlobalPrefetched => {
                AccessMode::GlobalPrefetch(PrefetchTraffic::compiler_default(4))
            }
            OperandHome::GlobalUnprefetched => AccessMode::GlobalNoPrefetch,
        }
    }
}

/// A statement of a CEDAR FORTRAN program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stmt {
    /// Scalar section on one CE.
    Serial {
        /// Instructions executed.
        instructions: u64,
        /// Flops among them.
        flops: f64,
    },
    /// An XDOALL over every CE: each iteration streams `words` operand
    /// words from `home` and performs `flops` flops.
    XDoall {
        /// Iteration count.
        iterations: u64,
        /// Scheduling policy.
        schedule: Schedule,
        /// Operand words per iteration.
        words: f64,
        /// Flops per iteration.
        flops: f64,
        /// Operand placement.
        home: OperandHome,
    },
    /// An SDOALL over clusters whose body is a CDOALL over the
    /// cluster's CEs.
    SdoallCdoall {
        /// Outer (cluster-level) iterations.
        outer: u64,
        /// Inner (CE-level) iterations per outer iteration.
        inner: u64,
        /// Operand words per inner iteration.
        words: f64,
        /// Flops per inner iteration.
        flops: f64,
        /// Operand placement for the inner loops.
        home: OperandHome,
    },
    /// Explicit block move from global to one cluster's memory.
    MoveToCluster {
        /// Words moved.
        words: u64,
    },
    /// Explicit block move from cluster memory back to global.
    MoveToGlobal {
        /// Words moved.
        words: u64,
    },
    /// A machine-wide barrier through global-memory sync cells.
    MulticlusterBarrier,
    /// A per-cluster barrier on the concurrency bus.
    ClusterBarrier,
    /// Fortran I/O through the Xylem file service.
    Io {
        /// Record encoding.
        format: RecordFormat,
        /// Words transferred.
        words: u64,
    },
}

/// A program: an ordered statement list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    stmts: Vec<Stmt>,
}

impl Program {
    /// An empty program.
    #[must_use]
    pub fn new() -> Self {
        Program::default()
    }

    /// Appends a serial section.
    #[must_use]
    pub fn serial(mut self, instructions: u64, flops: f64) -> Self {
        self.stmts.push(Stmt::Serial {
            instructions,
            flops,
        });
        self
    }

    /// Appends an XDOALL.
    #[must_use]
    pub fn xdoall(
        mut self,
        iterations: u64,
        schedule: Schedule,
        words: f64,
        flops: f64,
        home: OperandHome,
    ) -> Self {
        self.stmts.push(Stmt::XDoall {
            iterations,
            schedule,
            words,
            flops,
            home,
        });
        self
    }

    /// Appends an SDOALL/CDOALL nest.
    #[must_use]
    pub fn sdoall_cdoall(
        mut self,
        outer: u64,
        inner: u64,
        words: f64,
        flops: f64,
        home: OperandHome,
    ) -> Self {
        self.stmts.push(Stmt::SdoallCdoall {
            outer,
            inner,
            words,
            flops,
            home,
        });
        self
    }

    /// Appends a global→cluster block move.
    #[must_use]
    pub fn move_to_cluster(mut self, words: u64) -> Self {
        self.stmts.push(Stmt::MoveToCluster { words });
        self
    }

    /// Appends a cluster→global block move.
    #[must_use]
    pub fn move_to_global(mut self, words: u64) -> Self {
        self.stmts.push(Stmt::MoveToGlobal { words });
        self
    }

    /// Appends a multicluster barrier.
    #[must_use]
    pub fn multicluster_barrier(mut self) -> Self {
        self.stmts.push(Stmt::MulticlusterBarrier);
        self
    }

    /// Appends a per-cluster barrier.
    #[must_use]
    pub fn cluster_barrier(mut self) -> Self {
        self.stmts.push(Stmt::ClusterBarrier);
        self
    }

    /// Appends an I/O statement.
    #[must_use]
    pub fn io(mut self, format: RecordFormat, words: u64) -> Self {
        self.stmts.push(Stmt::Io { format, words });
        self
    }

    /// The statement list.
    #[must_use]
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }
}

/// Per-category time breakdown of a program run, in CE cycles.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Breakdown {
    /// Serial sections.
    pub serial: f64,
    /// Parallel loop bodies (critical path).
    pub parallel: f64,
    /// Loop scheduling overhead.
    pub scheduling: f64,
    /// Explicit data movement.
    pub movement: f64,
    /// Barriers.
    pub barriers: f64,
    /// I/O.
    pub io: f64,
}

impl Breakdown {
    /// Sum of all categories.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.serial + self.parallel + self.scheduling + self.movement + self.barriers + self.io
    }
}

/// The outcome of executing a program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramReport {
    /// Total simulated time, CE cycles.
    pub cycles: f64,
    /// Total time in seconds at the 170 ns clock.
    pub seconds: f64,
    /// Total flops.
    pub flops: f64,
    /// Achieved MFLOPS.
    pub mflops: f64,
    /// Where the time went.
    pub breakdown: Breakdown,
}

/// Executes a program against the machine, returning the report.
pub fn execute(sys: &mut CedarSystem, program: &Program) -> ProgramReport {
    let total_ces = sys.params().total_ces();
    let clusters = sys.params().clusters;
    let ces_per_cluster = sys.params().ces_per_cluster;
    let mut b = Breakdown::default();
    let mut flops = 0.0;
    let mut io = IoSubsystem::new();

    for stmt in program.stmts() {
        match *stmt {
            Stmt::Serial {
                instructions,
                flops: f,
            } => {
                b.serial += instructions as f64;
                flops += f;
            }
            Stmt::XDoall {
                iterations,
                schedule,
                words,
                flops: f,
                home,
            } => {
                let cpw = sys.cycles_per_word(home.access_mode(), total_ces);
                let body = (words * cpw).max(f / 2.0) * STRIP_STARTUP_FACTOR;
                let report = xdoall(sys, iterations, schedule, |_| Work::new(body, f));
                // Ideal work spread is the parallel share; everything
                // the machine adds on top (startup, fetches, join,
                // imbalance) is scheduling.
                let ideal = iterations as f64 * body / total_ces as f64;
                b.parallel += ideal;
                b.scheduling += (report.makespan_cycles - ideal).max(0.0);
                flops += report.flops;
            }
            Stmt::SdoallCdoall {
                outer,
                inner,
                words,
                flops: f,
                home,
            } => {
                let cpw = sys.cycles_per_word(home.access_mode(), ces_per_cluster);
                let body = (words * cpw).max(f / 2.0) * STRIP_STARTUP_FACTOR;
                // Cost one representative inner CDOALL, then spread the
                // outer iterations over the clusters via SDOALL.
                let inner_report = cdoall(sys, 0, inner, Schedule::SelfScheduled, |_| {
                    Work::new(body, f)
                });
                let outer_report = sdoall(sys, outer, Schedule::SelfScheduled, |_| {
                    Work::cycles(inner_report.makespan_cycles)
                });
                let ideal =
                    outer as f64 * inner as f64 * body / (clusters * ces_per_cluster) as f64;
                b.parallel += ideal;
                b.scheduling += (outer_report.makespan_cycles - ideal).max(0.0);
                flops += outer as f64 * inner as f64 * f;
            }
            Stmt::MoveToCluster { words } => {
                let cpw = sys.cycles_per_word(
                    AccessMode::GlobalPrefetch(PrefetchTraffic::compiler_default(4)),
                    ces_per_cluster,
                );
                b.movement += words as f64 * cpw / ces_per_cluster as f64;
            }
            Stmt::MoveToGlobal { words } => {
                b.movement += words as f64 * 2.0 / ces_per_cluster as f64;
            }
            Stmt::MulticlusterBarrier => {
                b.barriers += multicluster_barrier_cycles(clusters);
            }
            Stmt::ClusterBarrier => {
                b.barriers += cluster_barrier_cycles();
            }
            Stmt::Io { format, words } => {
                let report = io.transfer(format, words);
                b.io += report.seconds / 170e-9;
            }
        }
    }

    let cycles = b.total();
    let seconds = cycles * 170e-9;
    ProgramReport {
        cycles,
        seconds,
        flops,
        mflops: if seconds > 0.0 {
            flops / seconds / 1e6
        } else {
            0.0
        },
        breakdown: b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_core::params::CedarParams;

    fn machine() -> CedarSystem {
        CedarSystem::new(CedarParams::paper())
    }

    fn stencil_program(home: OperandHome) -> Program {
        Program::new()
            .serial(10_000, 0.0)
            .move_to_cluster(32_768)
            .xdoall(1_024, Schedule::Static, 512.0, 1_024.0, home)
            .multicluster_barrier()
            .move_to_global(32_768)
            .io(RecordFormat::Unformatted, 4_096)
    }

    #[test]
    fn breakdown_sums_to_total() {
        let mut sys = machine();
        let report = execute(&mut sys, &stencil_program(OperandHome::ClusterCache));
        assert!((report.breakdown.total() - report.cycles).abs() < 1e-6);
        assert!(report.breakdown.serial > 0.0);
        assert!(report.breakdown.parallel > 0.0);
        assert!(report.breakdown.movement > 0.0);
        assert!(report.breakdown.barriers > 0.0);
        assert!(report.breakdown.io > 0.0);
        assert_eq!(report.flops, 1_024.0 * 1_024.0);
    }

    #[test]
    fn placement_changes_program_time() {
        let mut sys = machine();
        let cached = execute(&mut sys, &stencil_program(OperandHome::ClusterCache));
        let global = execute(&mut sys, &stencil_program(OperandHome::GlobalUnprefetched));
        assert!(
            global.cycles > 2.0 * cached.cycles,
            "unprefetched global operands must dominate: {} vs {}",
            global.cycles,
            cached.cycles
        );
    }

    #[test]
    fn prefetch_sits_between_cache_and_unprefetched() {
        let mut sys = machine();
        let cached = execute(&mut sys, &stencil_program(OperandHome::ClusterCache)).cycles;
        let pref = execute(&mut sys, &stencil_program(OperandHome::GlobalPrefetched)).cycles;
        let raw = execute(&mut sys, &stencil_program(OperandHome::GlobalUnprefetched)).cycles;
        assert!(cached <= pref + 1e-6);
        assert!(pref < raw);
    }

    #[test]
    fn nested_loops_schedule_cheaper_than_flat_for_fine_grain() {
        let mut sys = machine();
        let flat = Program::new().xdoall(
            8_192,
            Schedule::SelfScheduled,
            4.0,
            8.0,
            OperandHome::ClusterCache,
        );
        let nested = Program::new().sdoall_cdoall(64, 128, 4.0, 8.0, OperandHome::ClusterCache);
        let t_flat = execute(&mut sys, &flat);
        let t_nested = execute(&mut sys, &nested);
        assert!(
            t_nested.breakdown.scheduling < t_flat.breakdown.scheduling,
            "nest schedules cheaper: {} vs {}",
            t_nested.breakdown.scheduling,
            t_flat.breakdown.scheduling
        );
    }

    #[test]
    fn formatted_io_dominates_a_io_heavy_program() {
        let mut sys = machine();
        let formatted = Program::new().io(RecordFormat::Formatted, 1_000_000);
        let unformatted = Program::new().io(RecordFormat::Unformatted, 1_000_000);
        let f = execute(&mut sys, &formatted);
        let u = execute(&mut sys, &unformatted);
        assert!(f.seconds > 10.0 * u.seconds);
    }

    #[test]
    fn empty_program_costs_nothing() {
        let mut sys = machine();
        let report = execute(&mut sys, &Program::new());
        assert_eq!(report.cycles, 0.0);
        assert_eq!(report.mflops, 0.0);
    }

    #[test]
    fn builder_preserves_statement_order() {
        let p = Program::new()
            .serial(1, 0.0)
            .multicluster_barrier()
            .io(RecordFormat::Formatted, 1);
        assert_eq!(p.stmts().len(), 3);
        assert!(matches!(p.stmts()[0], Stmt::Serial { .. }));
        assert!(matches!(p.stmts()[1], Stmt::MulticlusterBarrier));
        assert!(matches!(p.stmts()[2], Stmt::Io { .. }));
    }
}
