//! The Xylem task abstraction.
//!
//! "All of these make use of the abstractions provided by the Xylem
//! kernel which links the four separate operating systems in Alliant
//! clusters into the Cedar OS. Xylem exports virtual memory,
//! scheduling, and file system services for Cedar."
//!
//! A Xylem *cluster task* is the schedulable unit: it owns a cluster
//! (whose CEs are gang-scheduled onto it via `concurrent start`) and
//! runs until it blocks or completes. This module provides the
//! scheduler the SDOALL machinery stands on: task creation, cluster
//! assignment, and a deterministic run queue, with the global-memory
//! scheduling costs the paper quotes.

use std::collections::VecDeque;
use std::fmt;

use cedar_obs::{CounterId, Obs};
use cedar_sim::event::EventQueue;
use cedar_sim::time::Cycle;

/// Identifies a Xylem task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// A task's scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// On the run queue, no cluster yet.
    Ready,
    /// Gang-scheduled on a cluster.
    Running {
        /// The cluster it owns.
        cluster: usize,
    },
    /// Finished; its cluster has been released.
    Completed,
}

/// One cluster task.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Identity.
    pub id: TaskId,
    /// Human-readable label.
    pub label: String,
    /// Scheduling state.
    pub state: TaskState,
    /// Simulated work remaining, in CE cycles of one cluster.
    pub remaining_cycles: f64,
}

/// The Xylem scheduler: a run queue of cluster tasks over a fixed set
/// of clusters, dispatched deterministically (FIFO, lowest-numbered
/// free cluster first).
///
/// # Examples
///
/// ```
/// use cedar_runtime::task::XylemScheduler;
///
/// let mut xylem = XylemScheduler::new(4);
/// let a = xylem.spawn("sweep-a", 10_000.0);
/// let _b = xylem.spawn("sweep-b", 5_000.0);
/// xylem.dispatch();
/// assert!(xylem.task(a).unwrap().state != cedar_runtime::task::TaskState::Ready);
/// ```
#[derive(Debug, Clone)]
pub struct XylemScheduler {
    clusters_free: Vec<bool>,
    tasks: Vec<Task>,
    run_queue: VecDeque<TaskId>,
    next_id: u64,
    dispatches: u64,
    /// Simulated scheduler time spent, CE cycles (each dispatch goes
    /// through global memory like an XDOALL startup).
    overhead_cycles: f64,
    obs: Option<SchedObs>,
}

/// Interned telemetry handles for the Xylem scheduler.
#[derive(Debug, Clone)]
struct SchedObs {
    obs: Obs,
    spawned: CounterId,
    dispatched: CounterId,
    completed: CounterId,
}

/// Scheduling cost per dispatch, CE cycles: a global-memory scheduling
/// transaction, same order as the XDOALL startup path.
pub const DISPATCH_CYCLES: f64 = 530.0;

impl XylemScheduler {
    /// Creates a scheduler over `clusters` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero.
    #[must_use]
    pub fn new(clusters: usize) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        XylemScheduler {
            clusters_free: vec![true; clusters],
            tasks: Vec::new(),
            run_queue: VecDeque::new(),
            next_id: 0,
            dispatches: 0,
            overhead_cycles: 0.0,
            obs: None,
        }
    }

    /// Attaches a telemetry handle, interning `runtime.tasks_spawned`,
    /// `runtime.task_dispatches` and `runtime.tasks_completed`
    /// counters. A handle without live metrics detaches.
    pub fn set_obs(&mut self, obs: &Obs) {
        if !obs.metrics_enabled() {
            self.obs = None;
            return;
        }
        self.obs = Some(SchedObs {
            spawned: obs
                .counter("runtime.tasks_spawned")
                .expect("metrics enabled"),
            dispatched: obs
                .counter("runtime.task_dispatches")
                .expect("metrics enabled"),
            completed: obs
                .counter("runtime.tasks_completed")
                .expect("metrics enabled"),
            obs: obs.clone(),
        });
    }

    /// Creates a ready task with `cycles` of cluster work.
    pub fn spawn(&mut self, label: &str, cycles: f64) -> TaskId {
        let id = TaskId(self.next_id);
        self.next_id += 1;
        self.tasks.push(Task {
            id,
            label: label.to_owned(),
            state: TaskState::Ready,
            remaining_cycles: cycles,
        });
        self.run_queue.push_back(id);
        if let Some(sched_obs) = &self.obs {
            sched_obs.obs.inc(sched_obs.spawned);
        }
        id
    }

    /// Assigns ready tasks to free clusters (FIFO × lowest cluster).
    /// Returns how many tasks started.
    pub fn dispatch(&mut self) -> usize {
        let mut started = 0;
        while let Some(&next) = self.run_queue.front() {
            let Some(cluster) = self.clusters_free.iter().position(|&f| f) else {
                break;
            };
            self.run_queue.pop_front();
            self.clusters_free[cluster] = false;
            let task = self
                .tasks
                .iter_mut()
                .find(|t| t.id == next)
                .expect("queued task exists");
            task.state = TaskState::Running { cluster };
            self.dispatches += 1;
            self.overhead_cycles += DISPATCH_CYCLES;
            started += 1;
        }
        if started > 0 {
            if let Some(sched_obs) = &self.obs {
                sched_obs.obs.add(sched_obs.dispatched, started as u64);
            }
        }
        started
    }

    /// Advances every running task by `cycles`; completed tasks release
    /// their clusters. Returns the tasks that completed this step.
    pub fn advance(&mut self, cycles: f64) -> Vec<TaskId> {
        let mut done = Vec::new();
        for task in &mut self.tasks {
            if let TaskState::Running { cluster } = task.state {
                task.remaining_cycles -= cycles;
                if task.remaining_cycles <= 0.0 {
                    task.remaining_cycles = 0.0;
                    task.state = TaskState::Completed;
                    self.clusters_free[cluster] = true;
                    done.push(task.id);
                }
            }
        }
        if !done.is_empty() {
            if let Some(sched_obs) = &self.obs {
                sched_obs.obs.add(sched_obs.completed, done.len() as u64);
            }
        }
        done
    }

    /// Runs dispatch/advance to completion with a fixed time quantum,
    /// returning the simulated makespan in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is not positive.
    pub fn run_to_completion(&mut self, quantum: f64) -> f64 {
        assert!(quantum > 0.0, "quantum must be positive");
        let mut elapsed = 0.0;
        loop {
            self.dispatch();
            if self.tasks.iter().all(|t| t.state == TaskState::Completed) {
                return elapsed + self.overhead_cycles;
            }
            self.advance(quantum);
            elapsed += quantum;
        }
    }

    /// Runs to completion *event-driven*: instead of stepping a fixed
    /// quantum, completion events are scheduled on a discrete-event
    /// queue, so the makespan is exact. Returns the makespan in
    /// cycles (including dispatch overhead), and leaves every task
    /// completed.
    pub fn run_event_driven(&mut self) -> f64 {
        let mut queue: EventQueue<TaskId> = EventQueue::new();
        let mut now = 0.0f64;
        loop {
            self.dispatch();
            // (Re)build the completion schedule for the running set at
            // absolute times. Rebuilding per wave is deterministic and
            // O(n log n); waves are bounded by the task count.
            queue.clear();
            let running: Vec<(TaskId, f64)> = self
                .tasks
                .iter()
                .filter(|t| matches!(t.state, TaskState::Running { .. }))
                .map(|t| (t.id, t.remaining_cycles))
                .collect();
            for (id, remaining) in &running {
                queue.schedule(Cycle::new((now + remaining).ceil() as u64), *id);
            }
            let Some((at, id)) = queue.pop() else {
                debug_assert!(
                    self.tasks.iter().all(|t| t.state == TaskState::Completed),
                    "no running tasks but not all completed"
                );
                return now + self.overhead_cycles;
            };
            let completed_at = at.as_u64() as f64;
            let delta = completed_at - now;
            now = completed_at;
            // Advance every running task by the elapsed span; `id`
            // completes (floating-point ceil may complete others too).
            let done = self.advance(delta);
            debug_assert!(
                done.contains(&id) || delta == 0.0,
                "the popped event's task must complete"
            );
        }
    }

    /// Looks up a task.
    #[must_use]
    pub fn task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.iter().find(|t| t.id == id)
    }

    /// All tasks, in spawn order.
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Tasks dispatched so far.
    #[must_use]
    pub fn dispatch_count(&self) -> u64 {
        self.dispatches
    }

    /// Accumulated scheduling overhead, CE cycles.
    #[must_use]
    pub fn overhead_cycles(&self) -> f64 {
        self.overhead_cycles
    }

    /// Number of currently free clusters.
    #[must_use]
    pub fn free_clusters(&self) -> usize {
        self.clusters_free.iter().filter(|&&f| f).count()
    }
}

impl cedar_snap::Snapshot for TaskId {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        w.put_u64(self.0);
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        Ok(TaskId(r.get_u64()?))
    }
}

impl cedar_snap::Snapshot for TaskState {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        match self {
            TaskState::Ready => w.put_u8(0),
            TaskState::Running { cluster } => {
                w.put_u8(1);
                w.put_usize(*cluster);
            }
            TaskState::Completed => w.put_u8(2),
        }
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        match r.get_u8()? {
            0 => Ok(TaskState::Ready),
            1 => Ok(TaskState::Running {
                cluster: r.get_usize()?,
            }),
            2 => Ok(TaskState::Completed),
            _ => Err(cedar_snap::SnapError::Invalid("task state tag")),
        }
    }
}

cedar_snap::snapshot_struct!(Task {
    id,
    label,
    state,
    remaining_cycles,
});

impl cedar_snap::Snapshot for XylemScheduler {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        self.clusters_free.snap(w);
        self.tasks.snap(w);
        self.run_queue.snap(w);
        self.next_id.snap(w);
        self.dispatches.snap(w);
        self.overhead_cycles.snap(w);
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        use cedar_snap::Snapshot;
        Ok(XylemScheduler {
            clusters_free: Snapshot::restore(r)?,
            tasks: Snapshot::restore(r)?,
            run_queue: Snapshot::restore(r)?,
            next_id: Snapshot::restore(r)?,
            dispatches: Snapshot::restore(r)?,
            overhead_cycles: Snapshot::restore(r)?,
            obs: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_dispatch_fifo_onto_lowest_clusters() {
        let mut x = XylemScheduler::new(2);
        let a = x.spawn("a", 100.0);
        let b = x.spawn("b", 100.0);
        let c = x.spawn("c", 100.0);
        assert_eq!(x.dispatch(), 2, "two clusters, two starts");
        assert_eq!(x.task(a).unwrap().state, TaskState::Running { cluster: 0 });
        assert_eq!(x.task(b).unwrap().state, TaskState::Running { cluster: 1 });
        assert_eq!(x.task(c).unwrap().state, TaskState::Ready);
        assert_eq!(x.free_clusters(), 0);
    }

    #[test]
    fn obs_counters_track_the_task_lifecycle() {
        let obs = Obs::new(cedar_obs::ObsConfig::enabled());
        let mut x = XylemScheduler::new(2);
        x.set_obs(&obs);
        x.spawn("a", 50.0);
        x.spawn("b", 50.0);
        x.spawn("c", 50.0);
        x.dispatch();
        x.advance(60.0);
        x.dispatch();
        assert_eq!(obs.counter_value("runtime.tasks_spawned"), 3);
        assert_eq!(obs.counter_value("runtime.task_dispatches"), 3);
        assert_eq!(obs.counter_value("runtime.tasks_completed"), 2);
    }

    #[test]
    fn completion_releases_clusters_for_queued_tasks() {
        let mut x = XylemScheduler::new(1);
        let a = x.spawn("a", 50.0);
        let b = x.spawn("b", 50.0);
        x.dispatch();
        let done = x.advance(60.0);
        assert_eq!(done, vec![a]);
        assert_eq!(x.free_clusters(), 1);
        x.dispatch();
        assert_eq!(x.task(b).unwrap().state, TaskState::Running { cluster: 0 });
    }

    #[test]
    fn run_to_completion_accounts_overhead() {
        let mut x = XylemScheduler::new(4);
        for i in 0..8 {
            x.spawn(&format!("t{i}"), 1_000.0);
        }
        let makespan = x.run_to_completion(100.0);
        // 8 tasks over 4 clusters: two waves of ~1000 cycles plus 8
        // dispatches of overhead.
        assert!(makespan >= 2_000.0 + 8.0 * DISPATCH_CYCLES);
        assert_eq!(x.dispatch_count(), 8);
        assert!(x.tasks().iter().all(|t| t.state == TaskState::Completed));
    }

    #[test]
    fn event_driven_matches_quantum_stepping() {
        let build = || {
            let mut x = XylemScheduler::new(3);
            for (i, w) in [700.0, 1200.0, 300.0, 900.0, 100.0].iter().enumerate() {
                x.spawn(&format!("t{i}"), *w);
            }
            x
        };
        let quantum = build().run_to_completion(1.0);
        let event = build().run_event_driven();
        assert!(
            (quantum - event).abs() <= 2.0,
            "fine-quantum stepping {quantum} and event-driven {event} must agree"
        );
    }

    #[test]
    fn event_driven_completes_everything() {
        let mut x = XylemScheduler::new(2);
        for i in 0..7 {
            x.spawn(&format!("t{i}"), 100.0 * (i + 1) as f64);
        }
        let makespan = x.run_event_driven();
        assert!(x.tasks().iter().all(|t| t.state == TaskState::Completed));
        // 2800 total cycles over 2 clusters: at least 1400 + overhead.
        assert!(makespan >= 1400.0);
    }

    #[test]
    fn more_clusters_shorten_the_makespan() {
        let run = |clusters: usize| {
            let mut x = XylemScheduler::new(clusters);
            for i in 0..8 {
                x.spawn(&format!("t{i}"), 10_000.0);
            }
            x.run_to_completion(100.0)
        };
        assert!(run(4) < run(1));
    }

    #[test]
    fn restored_scheduler_finishes_like_the_original() {
        use cedar_snap::Snapshot;
        let mut x = XylemScheduler::new(2);
        for i in 0..6 {
            x.spawn(&format!("t{i}"), 300.0 * (i + 1) as f64);
        }
        x.dispatch();
        x.advance(500.0);
        let bytes = x.to_snapshot_bytes();
        let mut copy = XylemScheduler::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(copy.tasks(), x.tasks());
        assert_eq!(copy.free_clusters(), x.free_clusters());
        let original = x.run_event_driven();
        let restored = copy.run_event_driven();
        assert_eq!(original, restored, "restored run must be identical");
        assert_eq!(copy.dispatch_count(), x.dispatch_count());
    }

    #[test]
    fn display_and_lookup() {
        let mut x = XylemScheduler::new(1);
        let id = x.spawn("solver", 1.0);
        assert_eq!(id.to_string(), "task#0");
        assert_eq!(x.task(id).unwrap().label, "solver");
        assert!(x.task(TaskId(99)).is_none());
    }
}
