//! Data placement: the `GLOBAL` attribute and loop-local declarations.
//!
//! "Data can be placed in either cluster or shared global memory on
//! Cedar. A user can control this using a GLOBAL attribute. Variable
//! placement is in cluster memory by default. A variable can also be
//! declared inside a parallel loop. The loop-local declaration of a
//! variable makes a private copy for each processor which is placed in
//! cluster memory."

use std::fmt;

/// Where a CEDAR FORTRAN variable lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Placement {
    /// Cluster memory, the default.
    #[default]
    Cluster,
    /// Globally shared memory (the `GLOBAL` attribute).
    Global,
    /// Declared inside a parallel loop: a private per-processor copy
    /// in cluster memory. The paper: "In all Perfect programs we have
    /// found loop-local data placement to be an important factor in
    /// reducing data access latencies."
    LoopLocal,
}

impl Placement {
    /// Whether reads of this data traverse the global network.
    #[must_use]
    pub fn is_global(self) -> bool {
        matches!(self, Placement::Global)
    }

    /// Whether each processor gets its own private copy.
    #[must_use]
    pub fn is_private(self) -> bool {
        matches!(self, Placement::LoopLocal)
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Placement::Cluster => write!(f, "cluster"),
            Placement::Global => write!(f, "global"),
            Placement::LoopLocal => write!(f, "loop-local"),
        }
    }
}

/// A declared array: its logical length and placement. The runtime
/// uses this to cost accesses and moves; element storage itself lives
/// with the program (host vectors), matching the two-level modelling
/// approach described in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Number of 64-bit elements.
    pub words: u64,
    /// Where the array lives.
    pub placement: Placement,
}

impl ArrayDecl {
    /// Declares an array of `words` elements in cluster memory (the
    /// default placement).
    #[must_use]
    pub fn new(words: u64) -> Self {
        ArrayDecl {
            words,
            placement: Placement::Cluster,
        }
    }

    /// Applies the `GLOBAL` attribute.
    #[must_use]
    pub fn global(mut self) -> Self {
        self.placement = Placement::Global;
        self
    }

    /// Declares the array loop-local (private per-CE copies).
    #[must_use]
    pub fn loop_local(mut self) -> Self {
        self.placement = Placement::LoopLocal;
        self
    }

    /// Total words the declaration occupies machine-wide: loop-local
    /// data is replicated once per processor.
    #[must_use]
    pub fn footprint_words(&self, processors: u64) -> u64 {
        match self.placement {
            Placement::LoopLocal => self.words * processors,
            _ => self.words,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_placement_is_cluster() {
        assert_eq!(Placement::default(), Placement::Cluster);
        assert_eq!(ArrayDecl::new(10).placement, Placement::Cluster);
    }

    #[test]
    fn attributes_chain() {
        let a = ArrayDecl::new(100).global();
        assert!(a.placement.is_global());
        let b = ArrayDecl::new(100).loop_local();
        assert!(b.placement.is_private());
    }

    #[test]
    fn loop_local_footprint_replicates() {
        let a = ArrayDecl::new(100).loop_local();
        assert_eq!(a.footprint_words(32), 3200);
        let g = ArrayDecl::new(100).global();
        assert_eq!(g.footprint_words(32), 100);
    }

    #[test]
    fn display_names() {
        assert_eq!(Placement::Global.to_string(), "global");
        assert_eq!(Placement::LoopLocal.to_string(), "loop-local");
    }
}
