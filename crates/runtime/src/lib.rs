//! `cedar-runtime` — the Xylem / CEDAR FORTRAN programming model.
//!
//! CEDAR FORTRAN (§3 of the paper) exposes the machine's key features
//! through language extensions and a run-time library. This crate
//! reproduces that layer over [`cedar_core::CedarSystem`]:
//!
//! * [`loops`] — the three parallel-loop flavours and their measured
//!   overheads: **XDOALL** schedules iterations on every CE in the
//!   machine through global memory (≈90 µs startup, ≈30 µs per
//!   iteration fetch); **SDOALL** schedules iterations on whole
//!   clusters; **CDOALL** uses the concurrency control bus to start a
//!   cluster loop "in a few microseconds". Loops may be statically
//!   scheduled or self-scheduled.
//! * [`placement`] — the `GLOBAL` attribute and loop-local
//!   declarations: data lives in cluster memory by default, global
//!   memory on request, and loop-local data gets a private per-CE copy
//!   in cluster memory.
//! * [`sync`] — the run-time synchronization library built on the
//!   memory modules' Test-And-Operate processors: ticket
//!   self-schedulers, multicluster barriers, and the cheap
//!   intracluster barrier on the concurrency bus.
//! * [`movement`] — explicit block moves between global and cluster
//!   memory ("data can be moved between cluster and global shared
//!   memory only via explicit moves under software control").
//! * [`task`] — the Xylem cluster-task scheduler that SDOALL stands
//!   on: gang-scheduled tasks over the four clusters.
//! * [`io`] — Xylem file-system I/O through the interactive
//!   processors, with the formatted/unformatted cost split behind the
//!   BDNA optimization.
//!
//! # Examples
//!
//! ```
//! use cedar_core::{CedarParams, CedarSystem};
//! use cedar_runtime::loops::{xdoall, Schedule, Work};
//!
//! let mut cedar = CedarSystem::new(CedarParams::paper());
//! let mut sum = 0u64;
//! let report = xdoall(&mut cedar, 64, Schedule::SelfScheduled, |i| {
//!     sum += i; // real work runs on the host...
//!     Work::cycles(1_000.0) // ...while simulated time is accounted
//! });
//! assert_eq!(sum, (0..64).sum());
//! assert!(report.makespan_cycles > 1_000.0);
//! ```

#![warn(missing_docs)]

pub mod io;
pub mod loops;
pub mod movement;
pub mod placement;
pub mod program;
pub mod shared;
pub mod sync;
pub mod task;

pub use io::{IoSubsystem, RecordFormat};
pub use loops::{cdoall, sdoall, xdoall, LoopReport, Schedule, Work};
pub use placement::Placement;
pub use program::{execute, OperandHome, Program, ProgramReport};
pub use shared::SharedArray;
pub use sync::{cluster_barrier_cycles, multicluster_barrier_cycles, Ticket};
pub use task::{TaskId, XylemScheduler};
