//! The run-time synchronization library.
//!
//! "The Cedar synchronization instructions have been mainly used in
//! the implementation of the runtime library, where they have proven
//! useful to control loop self-scheduling. They are also available to
//! a Fortran programmer via run-time library routines."
//!
//! Two barrier flavours matter for the paper's results: the
//! *multicluster* barrier through global-memory sync cells (the FLO52
//! bottleneck) and the *intracluster* barrier on the concurrency
//! control bus (the cheap replacement the hand optimization exploited).

use cedar_core::system::CedarSystem;
use cedar_mem::sync::SyncInstruction;

/// A ticket dispenser backed by a real global-memory sync cell: the
/// runtime library's loop self-scheduling mechanism.
///
/// # Examples
///
/// ```
/// use cedar_core::{CedarParams, CedarSystem};
/// use cedar_runtime::sync::Ticket;
///
/// let mut cedar = CedarSystem::new(CedarParams::paper());
/// let mut ticket = Ticket::new(5);
/// assert_eq!(ticket.take(&mut cedar), 0);
/// assert_eq!(ticket.take(&mut cedar), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    /// Global-memory word index of the counter cell.
    cell: u64,
}

impl Ticket {
    /// Creates a dispenser over the global word at `cell`. The caller
    /// is responsible for zeroing the cell (or calling [`reset`]).
    ///
    /// [`reset`]: Ticket::reset
    #[must_use]
    pub fn new(cell: u64) -> Self {
        Ticket { cell }
    }

    /// Takes the next ticket with an indivisible fetch-and-add at the
    /// memory module.
    pub fn take(&mut self, sys: &mut CedarSystem) -> i32 {
        sys.global_mut()
            .sync_op(self.cell, SyncInstruction::fetch_and_add(1))
            .old_value
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self, sys: &mut CedarSystem) {
        sys.global_mut().sync_op(self.cell, SyncInstruction::write(0));
    }

    /// Reads the counter without changing it.
    pub fn peek(&self, sys: &mut CedarSystem) -> i32 {
        sys.global_mut()
            .sync_op(self.cell, SyncInstruction::read())
            .old_value
    }
}

/// Round-trip cost of one global sync operation in CE cycles: the full
/// 13-cycle unloaded path (the sync processor executes within the
/// module's service slot).
pub const GLOBAL_SYNC_ROUND_TRIP_CYCLES: f64 = 13.0;

/// Poll interval while spinning on a global cell, in CE cycles. Spins
/// back off to avoid hammering the module.
pub const GLOBAL_SPIN_INTERVAL_CYCLES: f64 = 26.0;

/// Cost in CE cycles of a barrier among `participants` arriving
/// through global-memory sync cells: each arrival is a serialized
/// fetch-and-add at one module, then everyone spins until the count
/// completes. This is the multicluster barrier whose overhead
/// "degrades performance for problems that are not sufficiently
/// large" in FLO52.
#[must_use]
pub fn multicluster_barrier_cycles(participants: usize) -> f64 {
    if participants <= 1 {
        return 0.0;
    }
    let p = participants as f64;
    // Arrivals serialize at the sync cell's module (2 cycles service
    // each) after a 13-cycle round trip; the last arriver then releases
    // everyone, observed one spin-poll later on average.
    GLOBAL_SYNC_ROUND_TRIP_CYCLES + 2.0 * p + GLOBAL_SPIN_INTERVAL_CYCLES
        + GLOBAL_SYNC_ROUND_TRIP_CYCLES
}

/// Cost in CE cycles of an intracluster barrier over the concurrency
/// control bus — the cheap join the FLO52 hand optimization
/// substitutes for most multicluster barriers.
#[must_use]
pub fn cluster_barrier_cycles() -> f64 {
    // One bus join transaction.
    12.0
}

/// A software barrier over real global-memory cells: `arrive` returns
/// `true` for the participant that completed the barrier (the one that
/// observed the full count and reset it). Functional counterpart of
/// [`multicluster_barrier_cycles`].
#[derive(Debug, Clone, Copy)]
pub struct GlobalBarrier {
    cell: u64,
    participants: i32,
}

impl GlobalBarrier {
    /// Creates a barrier for `participants` over global word `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is zero.
    #[must_use]
    pub fn new(cell: u64, participants: usize) -> Self {
        assert!(participants > 0, "barrier needs participants");
        GlobalBarrier {
            cell,
            participants: participants as i32,
        }
    }

    /// Registers one arrival; the arrival that completes the count
    /// resets the cell and returns `true`.
    pub fn arrive(&self, sys: &mut CedarSystem) -> bool {
        let old = sys
            .global_mut()
            .sync_op(self.cell, SyncInstruction::fetch_and_add(1))
            .old_value;
        if old + 1 == self.participants {
            sys.global_mut().sync_op(self.cell, SyncInstruction::write(0));
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_core::params::CedarParams;

    fn machine() -> CedarSystem {
        CedarSystem::new(CedarParams::paper())
    }

    #[test]
    fn tickets_are_sequential() {
        let mut sys = machine();
        let mut t = Ticket::new(0);
        let taken: Vec<i32> = (0..5).map(|_| t.take(&mut sys)).collect();
        assert_eq!(taken, [0, 1, 2, 3, 4]);
        assert_eq!(t.peek(&mut sys), 5);
        t.reset(&mut sys);
        assert_eq!(t.peek(&mut sys), 0);
    }

    #[test]
    fn distinct_cells_are_independent() {
        let mut sys = machine();
        let mut a = Ticket::new(1);
        let mut b = Ticket::new(2);
        a.take(&mut sys);
        a.take(&mut sys);
        assert_eq!(b.take(&mut sys), 0);
    }

    #[test]
    fn barrier_completes_on_last_arrival() {
        let mut sys = machine();
        let barrier = GlobalBarrier::new(10, 4);
        assert!(!barrier.arrive(&mut sys));
        assert!(!barrier.arrive(&mut sys));
        assert!(!barrier.arrive(&mut sys));
        assert!(barrier.arrive(&mut sys));
        // Reusable after completion.
        assert!(!barrier.arrive(&mut sys));
    }

    #[test]
    fn multicluster_barrier_is_tens_of_microseconds_scale() {
        let cycles = multicluster_barrier_cycles(4);
        let us = cycles * 170e-9 * 1e6;
        assert!(
            (5.0..50.0).contains(&us),
            "4-way multicluster barrier should be ~10 us, got {us}"
        );
    }

    #[test]
    fn cluster_barrier_is_far_cheaper() {
        assert!(cluster_barrier_cycles() * 4.0 < multicluster_barrier_cycles(4));
    }

    #[test]
    fn barrier_cost_grows_with_participants() {
        assert!(multicluster_barrier_cycles(32) > multicluster_barrier_cycles(4));
        assert_eq!(multicluster_barrier_cycles(1), 0.0);
    }

    #[test]
    fn sync_traffic_is_visible_to_the_module_counters() {
        let mut sys = machine();
        let mut t = Ticket::new(5);
        t.take(&mut sys);
        t.take(&mut sys);
        let module = sys.global().module_of_word(5);
        assert_eq!(sys.global().sync_ops_per_module()[module], 2);
    }
}
