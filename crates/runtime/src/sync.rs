//! The run-time synchronization library.
//!
//! "The Cedar synchronization instructions have been mainly used in
//! the implementation of the runtime library, where they have proven
//! useful to control loop self-scheduling. They are also available to
//! a Fortran programmer via run-time library routines."
//!
//! Two barrier flavours matter for the paper's results: the
//! *multicluster* barrier through global-memory sync cells (the FLO52
//! bottleneck) and the *intracluster* barrier on the concurrency
//! control bus (the cheap replacement the hand optimization exploited).

use cedar_core::system::CedarSystem;
use cedar_faults::{CedarError, RetryPolicy};
use cedar_mem::sync::SyncInstruction;
use cedar_sim::watchdog::Watchdog;

/// A ticket dispenser backed by a real global-memory sync cell: the
/// runtime library's loop self-scheduling mechanism.
///
/// # Examples
///
/// ```
/// use cedar_core::{CedarParams, CedarSystem};
/// use cedar_runtime::sync::Ticket;
///
/// let mut cedar = CedarSystem::new(CedarParams::paper());
/// let mut ticket = Ticket::new(5);
/// assert_eq!(ticket.take(&mut cedar), 0);
/// assert_eq!(ticket.take(&mut cedar), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    /// Global-memory word index of the counter cell.
    cell: u64,
}

impl Ticket {
    /// Creates a dispenser over the global word at `cell`. The caller
    /// is responsible for zeroing the cell (or calling [`reset`]).
    ///
    /// [`reset`]: Ticket::reset
    #[must_use]
    pub fn new(cell: u64) -> Self {
        Ticket { cell }
    }

    /// Takes the next ticket with an indivisible fetch-and-add at the
    /// memory module.
    pub fn take(&mut self, sys: &mut CedarSystem) -> i32 {
        sys.obs().bump("runtime.ticket_takes", 1);
        sys.global_mut()
            .sync_op(self.cell, SyncInstruction::fetch_and_add(1))
            .old_value
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self, sys: &mut CedarSystem) {
        sys.global_mut()
            .sync_op(self.cell, SyncInstruction::write(0));
    }

    /// Reads the counter without changing it.
    pub fn peek(&self, sys: &mut CedarSystem) -> i32 {
        sys.global_mut()
            .sync_op(self.cell, SyncInstruction::read())
            .old_value
    }

    /// Takes the next ticket on a possibly-degraded machine: issues the
    /// fetch-and-add, reads the cell back to verify the sync processor
    /// committed the update, and reissues up to `retry.max_retries`
    /// times when the update was lost.
    ///
    /// # Errors
    ///
    /// [`CedarError::RetriesExhausted`] when the cell's module never
    /// commits (a dead sync processor).
    pub fn take_robust(
        &mut self,
        sys: &mut CedarSystem,
        retry: &RetryPolicy,
    ) -> Result<i32, CedarError> {
        robust_fetch_add(sys, self.cell, 1, retry, "ticket fetch-and-add")
    }
}

/// Issues `fetch_and_add(delta)` on `cell` and verifies commitment by
/// reading the cell back; lost updates are reissued per `retry`.
/// Returns the pre-increment value of the attempt that committed.
fn robust_fetch_add(
    sys: &mut CedarSystem,
    cell: u64,
    delta: i32,
    retry: &RetryPolicy,
    what: &'static str,
) -> Result<i32, CedarError> {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let old = sys
            .global_mut()
            .sync_op(cell, SyncInstruction::fetch_and_add(delta))
            .old_value;
        // Reads carry no update to lose, so the read-back is reliable:
        // the cell advanced iff the sync processor committed.
        let after = sys
            .global_mut()
            .sync_op(cell, SyncInstruction::read())
            .old_value;
        if after == old + delta {
            return Ok(old);
        }
        if attempts > retry.max_retries {
            return Err(CedarError::RetriesExhausted {
                what: what.to_owned(),
                attempts,
            });
        }
    }
}

/// Writes `value` to `cell` and verifies it stuck, reissuing lost
/// writes per `retry`.
fn robust_write(
    sys: &mut CedarSystem,
    cell: u64,
    value: i32,
    retry: &RetryPolicy,
    what: &'static str,
) -> Result<(), CedarError> {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        sys.global_mut()
            .sync_op(cell, SyncInstruction::write(value));
        let after = sys
            .global_mut()
            .sync_op(cell, SyncInstruction::read())
            .old_value;
        if after == value {
            return Ok(());
        }
        if attempts > retry.max_retries {
            return Err(CedarError::RetriesExhausted {
                what: what.to_owned(),
                attempts,
            });
        }
    }
}

/// Round-trip cost of one global sync operation in CE cycles: the full
/// 13-cycle unloaded path (the sync processor executes within the
/// module's service slot).
pub const GLOBAL_SYNC_ROUND_TRIP_CYCLES: f64 = 13.0;

/// Poll interval while spinning on a global cell, in CE cycles. Spins
/// back off to avoid hammering the module.
pub const GLOBAL_SPIN_INTERVAL_CYCLES: f64 = 26.0;

/// Cost in CE cycles of a barrier among `participants` arriving
/// through global-memory sync cells: each arrival is a serialized
/// fetch-and-add at one module, then everyone spins until the count
/// completes. This is the multicluster barrier whose overhead
/// "degrades performance for problems that are not sufficiently
/// large" in FLO52.
#[must_use]
pub fn multicluster_barrier_cycles(participants: usize) -> f64 {
    if participants <= 1 {
        return 0.0;
    }
    let p = participants as f64;
    // Arrivals serialize at the sync cell's module (2 cycles service
    // each) after a 13-cycle round trip; the last arriver then releases
    // everyone, observed one spin-poll later on average.
    GLOBAL_SYNC_ROUND_TRIP_CYCLES
        + 2.0 * p
        + GLOBAL_SPIN_INTERVAL_CYCLES
        + GLOBAL_SYNC_ROUND_TRIP_CYCLES
}

/// Cost in CE cycles of an intracluster barrier over the concurrency
/// control bus — the cheap join the FLO52 hand optimization
/// substitutes for most multicluster barriers.
#[must_use]
pub fn cluster_barrier_cycles() -> f64 {
    // One bus join transaction.
    12.0
}

/// A software barrier over real global-memory cells: `arrive` returns
/// `true` for the participant that completed the barrier (the one that
/// observed the full count and reset it). Functional counterpart of
/// [`multicluster_barrier_cycles`].
#[derive(Debug, Clone, Copy)]
pub struct GlobalBarrier {
    cell: u64,
    participants: i32,
}

impl GlobalBarrier {
    /// Creates a barrier for `participants` over global word `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is zero.
    #[must_use]
    pub fn new(cell: u64, participants: usize) -> Self {
        assert!(participants > 0, "barrier needs participants");
        GlobalBarrier {
            cell,
            participants: participants as i32,
        }
    }

    /// Registers one arrival; the arrival that completes the count
    /// resets the cell and returns `true`.
    pub fn arrive(&self, sys: &mut CedarSystem) -> bool {
        sys.obs().bump("runtime.barrier_arrivals", 1);
        let old = sys
            .global_mut()
            .sync_op(self.cell, SyncInstruction::fetch_and_add(1))
            .old_value;
        if old + 1 == self.participants {
            sys.global_mut()
                .sync_op(self.cell, SyncInstruction::write(0));
            sys.obs().bump("runtime.barrier_releases", 1);
            true
        } else {
            false
        }
    }

    /// The barrier's participant count.
    #[must_use]
    pub fn participants(&self) -> usize {
        self.participants as usize
    }

    /// Registers one arrival on a possibly-degraded machine,
    /// reissuing the fetch-and-add (and the completing reset) when the
    /// sync processor loses the update.
    ///
    /// # Errors
    ///
    /// [`CedarError::RetriesExhausted`] when the cell's module never
    /// commits.
    pub fn arrive_robust(
        &self,
        sys: &mut CedarSystem,
        retry: &RetryPolicy,
    ) -> Result<bool, CedarError> {
        let old = robust_fetch_add(sys, self.cell, 1, retry, "barrier arrival")?;
        if old + 1 == self.participants {
            robust_write(sys, self.cell, 0, retry, "barrier reset")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }
}

/// Executes one full multicluster barrier round — every participant
/// arrives through the global sync cell, then spins until the
/// completing arrival resets it — on a simulated clock guarded by
/// `watchdog`. Returns the cycles the round took.
///
/// On a healthy machine the last arrival releases the round
/// immediately. On a degraded machine arrivals may be lost at the sync
/// processor; the count then never completes, every participant spins,
/// and the watchdog converts the silent hang into a
/// [`CedarError::Stalled`] diagnostic naming its context.
///
/// # Errors
///
/// [`CedarError::Stalled`] when `watchdog` sees no barrier progress for
/// its whole budget.
pub fn run_multicluster_round(
    sys: &mut CedarSystem,
    barrier: &GlobalBarrier,
    watchdog: &mut Watchdog,
) -> Result<u64, CedarError> {
    let mut now: u64 = 0;
    let mut released = false;
    for _ in 0..barrier.participants() {
        // Serialized arrival: round trip plus the module's service slot.
        now += GLOBAL_SYNC_ROUND_TRIP_CYCLES as u64 + 2;
        if barrier.arrive(sys) {
            released = true;
        }
        watchdog.observe(now, now)?;
    }
    // All participants have arrived; everyone spins on the cell until
    // the completing arrival's reset lands. Arrivals lost at the sync
    // processor leave the count short forever (and a lost reset leaves
    // it full forever) — only the watchdog ends those waits. A bare
    // zero is not release: on a dead module nothing ever committed and
    // no participant observed the full count.
    let progress_at = now;
    loop {
        let count = sys
            .global_mut()
            .sync_op(barrier.cell, SyncInstruction::read())
            .old_value;
        if released && count == 0 {
            return Ok(now);
        }
        now += GLOBAL_SPIN_INTERVAL_CYCLES as u64;
        watchdog.observe(now, progress_at)?;
    }
}

cedar_snap::snapshot_struct!(Ticket { cell });
cedar_snap::snapshot_struct!(GlobalBarrier { cell, participants });

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_core::params::CedarParams;

    fn machine() -> CedarSystem {
        CedarSystem::new(CedarParams::paper())
    }

    #[test]
    fn tickets_are_sequential() {
        let mut sys = machine();
        let mut t = Ticket::new(0);
        let taken: Vec<i32> = (0..5).map(|_| t.take(&mut sys)).collect();
        assert_eq!(taken, [0, 1, 2, 3, 4]);
        assert_eq!(t.peek(&mut sys), 5);
        t.reset(&mut sys);
        assert_eq!(t.peek(&mut sys), 0);
    }

    #[test]
    fn obs_counts_tickets_and_barrier_traffic() {
        use cedar_obs::{Obs, ObsConfig};
        let mut sys = machine();
        let obs = Obs::new(ObsConfig::enabled());
        sys.set_obs(&obs);
        let mut t = Ticket::new(0);
        t.take(&mut sys);
        t.take(&mut sys);
        let barrier = GlobalBarrier::new(1, 2);
        assert!(!barrier.arrive(&mut sys));
        assert!(barrier.arrive(&mut sys));
        assert_eq!(obs.counter_value("runtime.ticket_takes"), 2);
        assert_eq!(obs.counter_value("runtime.barrier_arrivals"), 2);
        assert_eq!(obs.counter_value("runtime.barrier_releases"), 1);
        // The system-wide handle also saw the underlying sync ops.
        assert!(obs.counter_value("mem.sync_ops") >= 5);
    }

    #[test]
    fn distinct_cells_are_independent() {
        let mut sys = machine();
        let mut a = Ticket::new(1);
        let mut b = Ticket::new(2);
        a.take(&mut sys);
        a.take(&mut sys);
        assert_eq!(b.take(&mut sys), 0);
    }

    #[test]
    fn barrier_completes_on_last_arrival() {
        let mut sys = machine();
        let barrier = GlobalBarrier::new(10, 4);
        assert!(!barrier.arrive(&mut sys));
        assert!(!barrier.arrive(&mut sys));
        assert!(!barrier.arrive(&mut sys));
        assert!(barrier.arrive(&mut sys));
        // Reusable after completion.
        assert!(!barrier.arrive(&mut sys));
    }

    #[test]
    fn multicluster_barrier_is_tens_of_microseconds_scale() {
        let cycles = multicluster_barrier_cycles(4);
        let us = cycles * 170e-9 * 1e6;
        assert!(
            (5.0..50.0).contains(&us),
            "4-way multicluster barrier should be ~10 us, got {us}"
        );
    }

    #[test]
    fn cluster_barrier_is_far_cheaper() {
        assert!(cluster_barrier_cycles() * 4.0 < multicluster_barrier_cycles(4));
    }

    #[test]
    fn barrier_cost_grows_with_participants() {
        assert!(multicluster_barrier_cycles(32) > multicluster_barrier_cycles(4));
        assert_eq!(multicluster_barrier_cycles(1), 0.0);
    }

    #[test]
    fn sync_traffic_is_visible_to_the_module_counters() {
        let mut sys = machine();
        let mut t = Ticket::new(5);
        t.take(&mut sys);
        t.take(&mut sys);
        let module = sys.global().module_of_word(5);
        assert_eq!(sys.global().sync_ops_per_module()[module], 2);
    }

    mod degraded {
        use super::*;
        use cedar_faults::{FaultConfig, FaultPlan, MachineShape, RetryPolicy};

        fn degraded_machine(cfg: &FaultConfig) -> CedarSystem {
            let mut sys = machine();
            let plan = FaultPlan::generate(cfg, &MachineShape::cedar()).unwrap();
            sys.attach_faults(&plan, RetryPolicy::fabric());
            sys
        }

        #[test]
        fn robust_tickets_recover_lost_updates() {
            let cfg = FaultConfig {
                sync_lost_prob: 0.4,
                ..FaultConfig::none(11)
            };
            let mut sys = degraded_machine(&cfg);
            let retry = RetryPolicy::sync();
            let mut t = Ticket::new(0);
            let taken: Vec<i32> = (0..8)
                .map(|_| t.take_robust(&mut sys, &retry).unwrap())
                .collect();
            assert_eq!(taken, [0, 1, 2, 3, 4, 5, 6, 7]);
            assert!(
                sys.global().sync_lost_count() > 0,
                "the 40% loss rate should have cost at least one reissue"
            );
        }

        #[test]
        fn dead_module_exhausts_ticket_retries() {
            let mut sys = degraded_machine(&FaultConfig::dead_sync_processor(11, 0));
            let retry = RetryPolicy::sync();
            // Word 0 lives on the dead module 0.
            let err = Ticket::new(0).take_robust(&mut sys, &retry).unwrap_err();
            match err {
                CedarError::RetriesExhausted { what, attempts } => {
                    assert_eq!(what, "ticket fetch-and-add");
                    assert_eq!(attempts, retry.max_retries + 1);
                }
                other => panic!("unexpected error: {other}"),
            }
        }

        #[test]
        fn robust_barrier_survives_lossy_sync() {
            let cfg = FaultConfig {
                sync_lost_prob: 0.4,
                ..FaultConfig::none(13)
            };
            let mut sys = degraded_machine(&cfg);
            let retry = RetryPolicy::sync();
            let barrier = GlobalBarrier::new(10, 4);
            for round in 0..3 {
                let mut done = 0;
                for _ in 0..4 {
                    if barrier.arrive_robust(&mut sys, &retry).unwrap() {
                        done += 1;
                    }
                }
                assert_eq!(done, 1, "round {round}: exactly one completer");
            }
        }

        #[test]
        fn watchdog_names_the_deadlocked_barrier() {
            // The barrier cell's sync processor is dead: every arrival's
            // update is lost, the count never completes, and the round
            // hangs in the spin phase until the watchdog trips.
            let mut sys = degraded_machine(&FaultConfig::dead_sync_processor(17, 10));
            let barrier = GlobalBarrier::new(10, 4); // word 10 -> module 10
            let mut dog = Watchdog::new(10_000, "multicluster barrier");
            let err = run_multicluster_round(&mut sys, &barrier, &mut dog).unwrap_err();
            match err {
                CedarError::Stalled(report) => {
                    let text = report.to_string();
                    assert!(
                        text.contains("multicluster barrier"),
                        "diagnostic should name the barrier: {text}"
                    );
                    assert!(dog.is_tripped());
                    assert!(
                        report.now <= 11_000,
                        "detection bounded by the budget, got {}",
                        report.now
                    );
                }
                other => panic!("unexpected error: {other}"),
            }
        }

        #[test]
        fn healthy_round_completes_under_watchdog() {
            let mut sys = machine();
            let barrier = GlobalBarrier::new(10, 4);
            let mut dog = Watchdog::new(10_000, "multicluster barrier");
            let cycles = run_multicluster_round(&mut sys, &barrier, &mut dog).unwrap();
            assert!(cycles > 0 && !dog.is_tripped());
            // Reusable: the reset landed.
            assert!(!barrier.arrive(&mut sys));
        }
    }
}
