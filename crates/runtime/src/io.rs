//! Xylem file-system I/O through the interactive processors.
//!
//! Each Alliant cluster includes interactive processors (IPs) that
//! "perform input/output and various other tasks"; Xylem exports the
//! file-system service over them. The performance-relevant distinction
//! the paper exploits (§4.2, BDNA) is *formatted* versus *unformatted*
//! Fortran I/O: formatted records pay a per-word ASCII conversion on
//! an IP, unformatted records stream binary blocks. "The execution
//! time for BDNA is reduced to 70 secs. by simply replacing formatted
//! with unformatted I/O."

/// I/O cost parameters, in microseconds per 64-bit word.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoCosts {
    /// Formatted (ASCII-converted) transfer cost per word: a scalar
    /// conversion loop on a 68012-class IP.
    pub formatted_us_per_word: f64,
    /// Unformatted (binary block) transfer cost per word: block DMA
    /// through the IP cache.
    pub unformatted_us_per_word: f64,
}

impl IoCosts {
    /// Cedar/Xylem values: conversion dominates by more than an order
    /// of magnitude, which is the entire BDNA optimization.
    #[must_use]
    pub fn cedar() -> Self {
        IoCosts {
            formatted_us_per_word: 22.0,
            unformatted_us_per_word: 1.5,
        }
    }
}

impl Default for IoCosts {
    fn default() -> Self {
        IoCosts::cedar()
    }
}

/// How a Fortran record is encoded on the way to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordFormat {
    /// `WRITE (unit, fmt)` — per-word conversion.
    Formatted,
    /// `WRITE (unit)` — binary block.
    Unformatted,
}

/// The I/O subsystem: cost accounting plus byte-level accounting of
/// what moved.
///
/// # Examples
///
/// ```
/// use cedar_runtime::io::{IoSubsystem, RecordFormat};
///
/// let mut io = IoSubsystem::new();
/// let formatted = io.transfer(RecordFormat::Formatted, 1_000);
/// let unformatted = io.transfer(RecordFormat::Unformatted, 1_000);
/// assert!(formatted.seconds > 10.0 * unformatted.seconds);
/// ```
#[derive(Debug, Clone)]
pub struct IoSubsystem {
    costs: IoCosts,
    words_formatted: u64,
    words_unformatted: u64,
    busy_seconds: f64,
}

/// One transfer's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoReport {
    /// Words moved.
    pub words: u64,
    /// IP time consumed, seconds.
    pub seconds: f64,
}

impl IoSubsystem {
    /// Creates an idle subsystem with Cedar costs.
    #[must_use]
    pub fn new() -> Self {
        IoSubsystem::with_costs(IoCosts::cedar())
    }

    /// Creates a subsystem with explicit costs.
    #[must_use]
    pub fn with_costs(costs: IoCosts) -> Self {
        IoSubsystem {
            costs,
            words_formatted: 0,
            words_unformatted: 0,
            busy_seconds: 0.0,
        }
    }

    /// Transfers `words` words in the given format, returning the cost.
    pub fn transfer(&mut self, format: RecordFormat, words: u64) -> IoReport {
        let per_word = match format {
            RecordFormat::Formatted => {
                self.words_formatted += words;
                self.costs.formatted_us_per_word
            }
            RecordFormat::Unformatted => {
                self.words_unformatted += words;
                self.costs.unformatted_us_per_word
            }
        };
        let seconds = words as f64 * per_word * 1e-6;
        self.busy_seconds += seconds;
        IoReport { words, seconds }
    }

    /// Total IP time consumed so far, seconds.
    #[must_use]
    pub fn busy_seconds(&self) -> f64 {
        self.busy_seconds
    }

    /// Words moved formatted.
    #[must_use]
    pub fn words_formatted(&self) -> u64 {
        self.words_formatted
    }

    /// Words moved unformatted.
    #[must_use]
    pub fn words_unformatted(&self) -> u64 {
        self.words_unformatted
    }

    /// The seconds saved by re-encoding a formatted volume as
    /// unformatted — the BDNA transformation, as a query.
    #[must_use]
    pub fn reformat_savings_seconds(&self, words: u64) -> f64 {
        words as f64
            * (self.costs.formatted_us_per_word - self.costs.unformatted_us_per_word)
            * 1e-6
    }
}

impl Default for IoSubsystem {
    fn default() -> Self {
        IoSubsystem::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatted_costs_an_order_of_magnitude_more() {
        let mut io = IoSubsystem::new();
        let f = io.transfer(RecordFormat::Formatted, 10_000);
        let u = io.transfer(RecordFormat::Unformatted, 10_000);
        assert!(f.seconds > 10.0 * u.seconds);
        assert_eq!(io.words_formatted(), 10_000);
        assert_eq!(io.words_unformatted(), 10_000);
        assert!((io.busy_seconds() - (f.seconds + u.seconds)).abs() < 1e-12);
    }

    #[test]
    fn bdna_scale_savings() {
        // BDNA: 111 s automatable -> 70 s manual by the I/O swap alone:
        // a ~41 s saving from ~2M words of formatted output.
        let io = IoSubsystem::new();
        let savings = io.reformat_savings_seconds(2_000_000);
        assert!(
            (35.0..48.0).contains(&savings),
            "2M words should save about 41 s, got {savings}"
        );
    }

    #[test]
    fn costs_scale_linearly() {
        let mut io = IoSubsystem::new();
        let small = io.transfer(RecordFormat::Formatted, 100);
        let large = io.transfer(RecordFormat::Formatted, 10_000);
        assert!((large.seconds / small.seconds - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_words_cost_nothing() {
        let mut io = IoSubsystem::new();
        assert_eq!(io.transfer(RecordFormat::Formatted, 0).seconds, 0.0);
        assert_eq!(io.busy_seconds(), 0.0);
    }
}
