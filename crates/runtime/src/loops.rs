//! The parallel-loop constructs: XDOALL, SDOALL, CDOALL.
//!
//! From the paper (§3.2):
//!
//! > "XDOALL makes use of all the processors in the machine and
//! > schedules each iteration on a processor … Since these operations
//! > work through the global memory there is a typical loop startup
//! > latency of 90 µs and fetching the next iteration takes about
//! > 30 µs. The second type of parallel loop is the SDOALL which
//! > schedules each iteration on an entire cluster … The CDOALL makes
//! > use of the concurrency control bus to schedule loops on all
//! > processors in a cluster and can typically start in a few
//! > microseconds. The XDOALL has more scheduling flexibility but also
//! > higher overhead. An SDOALL/CDOALL nest has a lower scheduling
//! > cost … Both SDOALL and XDOALL loops can be statically scheduled
//! > or self-scheduled via run-time library options."
//!
//! Loop bodies run for real on the host (so programs compute genuine
//! results) while simulated time is accounted by a deterministic list
//! scheduler that charges the published overheads.

use cedar_core::system::CedarSystem;

/// How iterations are handed to processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// Contiguous blocks assigned up front: no per-iteration fetch
    /// cost, but imbalance is not corrected.
    Static,
    /// Iterations dispensed one at a time from a shared counter: each
    /// fetch pays the scheduling overhead, but load balances.
    SelfScheduled,
}

/// Simulated cost of one loop iteration, as reported by the body.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Work {
    /// CE cycles the iteration keeps its processor busy.
    pub cycles: f64,
    /// Useful floating-point operations performed.
    pub flops: f64,
}

impl Work {
    /// Work of `cycles` cycles and no flops.
    #[must_use]
    pub fn cycles(cycles: f64) -> Self {
        Work { cycles, flops: 0.0 }
    }

    /// Work of `cycles` cycles performing `flops` flops.
    #[must_use]
    pub fn new(cycles: f64, flops: f64) -> Self {
        Work { cycles, flops }
    }
}

/// The outcome of one parallel loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopReport {
    /// Simulated wall-clock of the loop, including startup, fetches
    /// and the final join, in CE cycles.
    pub makespan_cycles: f64,
    /// Busy time per worker (CE for XDOALL/CDOALL, cluster for
    /// SDOALL), excluding startup.
    pub per_worker_busy: Vec<f64>,
    /// Iterations executed.
    pub iterations: u64,
    /// Total scheduling overhead charged (startup + fetches + join).
    pub overhead_cycles: f64,
    /// Total flops reported by the bodies.
    pub flops: f64,
}

impl LoopReport {
    /// Makespan in seconds at the Cedar clock (170 ns).
    #[must_use]
    pub fn makespan_seconds(&self) -> f64 {
        self.makespan_cycles * 170e-9
    }

    /// Load imbalance: max worker busy over mean worker busy (1.0 =
    /// perfectly balanced). Returns 0 for an empty loop.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let n = self.per_worker_busy.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let max = self.per_worker_busy.iter().cloned().fold(0.0, f64::max);
        let mean: f64 = self.per_worker_busy.iter().sum::<f64>() / n;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }
}

/// Deterministic list scheduler shared by all three loop flavours.
///
/// `fetch_cycles` is charged per iteration under self-scheduling (and
/// serialized through the shared dispenser); statics pay nothing per
/// iteration. Bodies are invoked in iteration order so host-side
/// computation is deterministic.
fn run_loop<F>(
    workers: usize,
    iterations: u64,
    schedule: Schedule,
    startup_cycles: f64,
    fetch_cycles: f64,
    join_cycles: f64,
    mut body: F,
) -> LoopReport
where
    F: FnMut(u64) -> Work,
{
    assert!(workers > 0, "a loop needs at least one worker");
    let mut busy = vec![0.0f64; workers];
    let mut flops = 0.0;
    let mut overhead = startup_cycles + join_cycles;
    match schedule {
        Schedule::Static => {
            // Contiguous blocks, like the runtime library's static
            // option: iteration i goes to worker i * workers / n.
            for i in 0..iterations {
                let w = ((i * workers as u64) / iterations.max(1)) as usize;
                let work = body(i);
                busy[w] += work.cycles;
                flops += work.flops;
            }
        }
        Schedule::SelfScheduled => {
            // Greedy dispenser: each fetch goes to the earliest-free
            // worker and pays the fetch overhead. The dispenser itself
            // serializes, so the floor is iterations x fetch.
            for i in 0..iterations {
                let w = busy
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
                    .map(|(idx, _)| idx)
                    .expect("workers is nonzero");
                let work = body(i);
                busy[w] += work.cycles + fetch_cycles;
                overhead += fetch_cycles;
                flops += work.flops;
            }
        }
    }
    let longest = busy.iter().cloned().fold(0.0, f64::max);
    LoopReport {
        makespan_cycles: startup_cycles + longest + join_cycles,
        per_worker_busy: busy,
        iterations,
        overhead_cycles: overhead,
        flops,
    }
}

/// Runs an XDOALL: every CE in the machine, scheduled through global
/// memory (90 µs startup, 30 µs per self-scheduled iteration fetch).
///
/// The body receives the iteration index and returns its simulated
/// [`Work`]; it runs on the host in iteration order, so captured state
/// computes real results.
pub fn xdoall<F>(sys: &mut CedarSystem, iterations: u64, schedule: Schedule, body: F) -> LoopReport
where
    F: FnMut(u64) -> Work,
{
    let p = sys.params();
    run_loop(
        p.total_ces(),
        iterations,
        schedule,
        p.xdoall_startup_cycles() as f64,
        p.xdoall_fetch_cycles() as f64,
        // The final join also goes through global memory: charge one
        // more fetch-equivalent round.
        p.xdoall_fetch_cycles() as f64,
        body,
    )
}

/// Runs a CDOALL on one cluster: gang-scheduled over the concurrency
/// control bus, starting in a few microseconds.
///
/// # Panics
///
/// Panics if `cluster` is out of range.
pub fn cdoall<F>(
    sys: &mut CedarSystem,
    cluster: usize,
    iterations: u64,
    schedule: Schedule,
    body: F,
) -> LoopReport
where
    F: FnMut(u64) -> Work,
{
    assert!(cluster < sys.params().clusters, "cluster out of range");
    let costs = *sys.clusters()[cluster].bus.costs();
    run_loop(
        sys.params().ces_per_cluster,
        iterations,
        schedule,
        costs.concurrent_start_cycles as f64,
        costs.self_schedule_cycles as f64,
        costs.join_cycles as f64,
        body,
    )
}

/// Runs an SDOALL: iterations are scheduled on entire clusters through
/// global memory; each body typically runs a [`cdoall`]-shaped
/// computation and reports the *cluster's* busy cycles for its
/// iteration.
pub fn sdoall<F>(sys: &mut CedarSystem, iterations: u64, schedule: Schedule, body: F) -> LoopReport
where
    F: FnMut(u64) -> Work,
{
    let p = sys.params();
    run_loop(
        p.clusters,
        iterations,
        schedule,
        p.xdoall_startup_cycles() as f64,
        p.xdoall_fetch_cycles() as f64,
        p.xdoall_fetch_cycles() as f64,
        body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_core::params::CedarParams;

    fn machine() -> CedarSystem {
        CedarSystem::new(CedarParams::paper())
    }

    #[test]
    fn xdoall_runs_every_iteration_in_order() {
        let mut sys = machine();
        let mut seen = Vec::new();
        xdoall(&mut sys, 10, Schedule::SelfScheduled, |i| {
            seen.push(i);
            Work::cycles(1.0)
        });
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn xdoall_startup_matches_90_us() {
        let mut sys = machine();
        let report = xdoall(&mut sys, 0, Schedule::Static, |_| Work::cycles(0.0));
        let us = report.makespan_seconds() * 1e6;
        assert!(
            (85.0..125.0).contains(&us),
            "empty XDOALL costs about startup+join, got {us} us"
        );
    }

    #[test]
    fn cdoall_startup_is_microseconds() {
        let mut sys = machine();
        let report = cdoall(&mut sys, 0, 0, Schedule::Static, |_| Work::cycles(0.0));
        let us = report.makespan_seconds() * 1e6;
        assert!(
            us < 10.0,
            "CDOALL must start in a few microseconds, got {us}"
        );
    }

    #[test]
    fn cdoall_is_much_cheaper_than_xdoall() {
        let mut sys = machine();
        let x = xdoall(&mut sys, 64, Schedule::SelfScheduled, |_| {
            Work::cycles(100.0)
        });
        let c = cdoall(&mut sys, 0, 64, Schedule::SelfScheduled, |_| {
            Work::cycles(100.0)
        });
        assert!(
            x.overhead_cycles > 10.0 * c.overhead_cycles,
            "global scheduling {} should dwarf bus scheduling {}",
            x.overhead_cycles,
            c.overhead_cycles
        );
    }

    #[test]
    fn static_schedule_has_no_fetch_overhead() {
        let mut sys = machine();
        let s = xdoall(&mut sys, 320, Schedule::Static, |_| Work::cycles(100.0));
        let d = xdoall(&mut sys, 320, Schedule::SelfScheduled, |_| {
            Work::cycles(100.0)
        });
        assert!(s.overhead_cycles < d.overhead_cycles);
    }

    #[test]
    fn self_scheduling_balances_irregular_work() {
        let mut sys = machine();
        // Pathological: iteration cost alternates tiny/huge.
        let cost = |i: u64| if i.is_multiple_of(32) { 50_000.0 } else { 10.0 };
        let s = xdoall(&mut sys, 320, Schedule::Static, |i| Work::cycles(cost(i)));
        let d = xdoall(&mut sys, 320, Schedule::SelfScheduled, |i| {
            Work::cycles(cost(i))
        });
        assert!(
            d.imbalance() < s.imbalance(),
            "self-scheduling should balance: static {} vs dynamic {}",
            s.imbalance(),
            d.imbalance()
        );
    }

    #[test]
    fn small_granularity_is_dominated_by_fetch_overhead() {
        // The DYFESM/OCEAN effect: parallel loops with small
        // granularity need low-overhead scheduling support.
        let mut sys = machine();
        let tiny = xdoall(&mut sys, 1000, Schedule::SelfScheduled, |_| {
            Work::cycles(10.0)
        });
        assert!(
            tiny.overhead_cycles > 10.0 * 1000.0,
            "fetch overhead should dwarf tiny bodies"
        );
    }

    #[test]
    fn sdoall_uses_clusters_as_workers() {
        let mut sys = machine();
        let report = sdoall(&mut sys, 8, Schedule::Static, |_| Work::cycles(1000.0));
        assert_eq!(report.per_worker_busy.len(), 4);
        assert_eq!(report.iterations, 8);
    }

    #[test]
    fn flops_accumulate() {
        let mut sys = machine();
        let report = xdoall(&mut sys, 10, Schedule::Static, |_| Work::new(10.0, 20.0));
        assert_eq!(report.flops, 200.0);
    }

    #[test]
    fn makespan_at_least_critical_path() {
        let mut sys = machine();
        let report = xdoall(&mut sys, 32, Schedule::Static, |_| Work::cycles(1000.0));
        assert!(report.makespan_cycles >= 1000.0);
        // 32 iterations on 32 CEs: one body each.
        assert!(report.makespan_cycles < 1000.0 * 2.0 + 1000.0);
    }

    #[test]
    #[should_panic(expected = "cluster out of range")]
    fn cdoall_bad_cluster_panics() {
        let mut sys = machine();
        cdoall(&mut sys, 9, 1, Schedule::Static, |_| Work::cycles(0.0));
    }
}
