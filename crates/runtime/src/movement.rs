//! Explicit data movement between global and cluster memory.
//!
//! "Data can be moved between cluster and global shared memory only
//! via explicit moves under software control" — there is no hardware
//! coherence between the levels. These helpers perform the move on the
//! functional state *and* return its simulated cost, which is what the
//! GM/cache rank-update version and the data-distribution
//! optimizations pay.

use cedar_core::costmodel::AccessMode;
use cedar_core::system::CedarSystem;
use cedar_net::fabric::PrefetchTraffic;

/// Result of an explicit block move.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoveReport {
    /// Words moved.
    pub words: u64,
    /// Simulated cost in CE cycles (for the cluster performing it,
    /// with `ces` processors cooperating).
    pub cycles: f64,
}

/// Streaming traffic shape of a bulk block move: long prefetch blocks,
/// fully pipelined, no extra streams.
fn block_move_traffic() -> PrefetchTraffic {
    PrefetchTraffic {
        block_len: 512,
        blocks: 1,
        window: 512,
        gap_ce_cycles: 0,
        blocks_in_flight: 1,
        writes_per_read: 0.0,
        streams: 1,
        pattern: cedar_net::fabric::AddressPattern::Strided,
    }
}

/// Copies `words` words from global memory (starting at global word
/// `src`) into cluster `cluster`'s memory (starting at cluster word
/// `dst`), using `ces` cooperating processors with prefetch. Returns
/// the simulated cost.
///
/// # Panics
///
/// Panics if the ranges are out of bounds or `ces` is zero.
pub fn global_to_cluster(
    sys: &mut CedarSystem,
    cluster: usize,
    src: u64,
    dst: u64,
    words: u64,
    ces: usize,
) -> MoveReport {
    assert!(ces > 0, "need at least one CE for the move");
    let mut buf = vec![0u64; words as usize];
    sys.global_mut().copy_out(src, &mut buf);
    sys.cluster_mut(cluster).memory.copy_in(dst, &buf);
    let cpw = sys.cycles_per_word(AccessMode::GlobalPrefetch(block_move_traffic()), ces);
    MoveReport {
        words,
        cycles: words as f64 * cpw / ces as f64,
    }
}

/// Copies `words` words from cluster memory back to global memory.
/// Writes do not wait for replies, so the cost is the injection rate
/// (two words per write packet) shared by the cooperating CEs.
///
/// # Panics
///
/// Panics if the ranges are out of bounds or `ces` is zero.
pub fn cluster_to_global(
    sys: &mut CedarSystem,
    cluster: usize,
    src: u64,
    dst: u64,
    words: u64,
    ces: usize,
) -> MoveReport {
    assert!(ces > 0, "need at least one CE for the move");
    let mut buf = vec![0u64; words as usize];
    sys.cluster_mut(cluster).memory.copy_out(src, &mut buf);
    sys.global_mut().copy_in(dst, &buf);
    // Each word is a 2-word write packet injected at 1 word/cycle.
    MoveReport {
        words,
        cycles: words as f64 * 2.0 / ces as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_core::params::CedarParams;

    fn machine() -> CedarSystem {
        CedarSystem::new(CedarParams::paper())
    }

    #[test]
    fn round_trip_preserves_data() {
        let mut sys = machine();
        sys.global_mut().copy_in(100, &[1, 2, 3, 4, 5]);
        global_to_cluster(&mut sys, 0, 100, 10, 5, 8);
        let got = {
            let mut out = [0u64; 5];
            sys.cluster_mut(0).memory.copy_out(10, &mut out);
            out
        };
        assert_eq!(got, [1, 2, 3, 4, 5]);
        // Modify in cluster, push back.
        sys.cluster_mut(0).memory.write_word(10, 99);
        cluster_to_global(&mut sys, 0, 10, 200, 5, 8);
        assert_eq!(sys.global_mut().read_word(200), 99);
        assert_eq!(sys.global_mut().read_word(201), 2);
    }

    #[test]
    fn cost_scales_with_words_and_ces() {
        let mut sys = machine();
        sys.global_mut().copy_in(0, &vec![7u64; 4096]);
        let small = global_to_cluster(&mut sys, 0, 0, 0, 1024, 8);
        let large = global_to_cluster(&mut sys, 0, 0, 0, 4096, 8);
        assert!(large.cycles > 3.0 * small.cycles);
        let wide = global_to_cluster(&mut sys, 1, 0, 0, 4096, 32);
        assert!(wide.cycles < large.cycles);
    }

    #[test]
    fn writeback_is_cheap_per_word() {
        let mut sys = machine();
        sys.cluster_mut(0).memory.copy_in(0, &[1, 2, 3, 4]);
        let report = cluster_to_global(&mut sys, 0, 0, 0, 4, 1);
        assert_eq!(report.cycles, 8.0, "two cycles per written word");
    }

    #[test]
    fn clusters_have_private_memories() {
        let mut sys = machine();
        sys.global_mut().copy_in(0, &[42]);
        global_to_cluster(&mut sys, 0, 0, 0, 1, 8);
        assert_eq!(sys.cluster_mut(0).memory.read_word(0), 42);
        assert_eq!(
            sys.cluster_mut(1).memory.read_word(0),
            0,
            "cluster 1 untouched"
        );
    }
}
