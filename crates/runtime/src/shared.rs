//! Coherent shared arrays: globally shared data with software-managed
//! cluster copies.
//!
//! This is the runtime service the paper's coherence sentence implies:
//! CEDAR FORTRAN programs keep hot globally-shared blocks in cluster
//! memory between synchronization points, and the software (compiler +
//! runtime) keeps the copies coherent with explicit moves. A
//! [`SharedArray`] couples a [`CoherenceDirectory`] to real storage in
//! the machine's global and cluster memories, so reads always observe
//! the latest write no matter which cluster performed it, and every
//! protocol action is charged as movement cost.

use cedar_core::system::CedarSystem;
use cedar_mem::coherence::{CoherenceDirectory, ProtocolAction};

/// Movement cost in cycles per word for a directory-driven block copy
/// (a conservative flat rate; the cost model's prefetched block-move
/// rate at one cluster's width).
const COPY_CYCLES_PER_WORD: f64 = 1.5;

/// A globally shared array with coherent per-cluster copies.
///
/// The array occupies `len` words at `global_base` in global memory;
/// each cluster caches it at `cluster_base` in its own memory when it
/// acquires access.
///
/// # Examples
///
/// ```
/// use cedar_core::{CedarParams, CedarSystem};
/// use cedar_runtime::shared::SharedArray;
///
/// let mut sys = CedarSystem::new(CedarParams::paper());
/// let mut arr = SharedArray::new(&mut sys, 0, 0, 64);
/// arr.write(&mut sys, 1, 3, 42);       // cluster 1 writes
/// assert_eq!(arr.read(&mut sys, 2, 3), 42); // cluster 2 observes it
/// ```
#[derive(Debug)]
pub struct SharedArray {
    global_base: u64,
    cluster_base: u64,
    len: u64,
    directory: CoherenceDirectory,
    movement_cycles: f64,
}

impl SharedArray {
    /// Declares a shared array over `len` global words starting at
    /// `global_base`, mirrored at `cluster_base` in each cluster.
    ///
    /// # Panics
    ///
    /// Panics if the ranges exceed the memories.
    #[must_use]
    pub fn new(sys: &mut CedarSystem, global_base: u64, cluster_base: u64, len: u64) -> Self {
        assert!(
            (global_base + len) as usize <= sys.global().len(),
            "array exceeds global memory"
        );
        let clusters = sys.params().clusters;
        SharedArray {
            global_base,
            cluster_base,
            len,
            directory: CoherenceDirectory::new(clusters),
            movement_cycles: 0.0,
        }
    }

    /// Array length in words.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the array is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total movement cycles charged by the protocol so far.
    #[must_use]
    pub fn movement_cycles(&self) -> f64 {
        self.movement_cycles
    }

    /// The coherence directory (for counter inspection).
    #[must_use]
    pub fn directory(&self) -> &CoherenceDirectory {
        &self.directory
    }

    /// Applies a protocol action to the real storage.
    fn apply(&mut self, sys: &mut CedarSystem, action: &ProtocolAction) {
        match *action {
            ProtocolAction::FetchFromGlobal { cluster } => {
                let mut buf = vec![0u64; self.len as usize];
                sys.global_mut().copy_out(self.global_base, &mut buf);
                sys.cluster_mut(cluster)
                    .memory
                    .copy_in(self.cluster_base, &buf);
                self.movement_cycles += self.len as f64 * COPY_CYCLES_PER_WORD;
            }
            ProtocolAction::WriteBack { cluster } => {
                let mut buf = vec![0u64; self.len as usize];
                sys.cluster_mut(cluster)
                    .memory
                    .copy_out(self.cluster_base, &mut buf);
                sys.global_mut().copy_in(self.global_base, &buf);
                self.movement_cycles += self.len as f64 * COPY_CYCLES_PER_WORD;
            }
            ProtocolAction::Invalidate { .. } | ProtocolAction::Hit => {}
        }
    }

    /// Reads word `index` from `cluster`'s coherent copy.
    ///
    /// # Panics
    ///
    /// Panics if `index` or `cluster` is out of range.
    pub fn read(&mut self, sys: &mut CedarSystem, cluster: usize, index: u64) -> u64 {
        assert!(index < self.len, "index out of range");
        let actions = self.directory.acquire_read(cluster, self.global_base);
        for action in &actions {
            self.apply(sys, action);
        }
        sys.cluster_mut(cluster)
            .memory
            .read_word(self.cluster_base + index)
    }

    /// Writes word `index` through `cluster`'s coherent copy.
    ///
    /// # Panics
    ///
    /// Panics if `index` or `cluster` is out of range.
    pub fn write(&mut self, sys: &mut CedarSystem, cluster: usize, index: u64, value: u64) {
        assert!(index < self.len, "index out of range");
        let actions = self.directory.acquire_write(cluster, self.global_base);
        for action in &actions {
            self.apply(sys, action);
        }
        sys.cluster_mut(cluster)
            .memory
            .write_word(self.cluster_base + index, value);
    }

    /// Flushes every cluster copy back to global memory (end of the
    /// parallel region).
    pub fn flush(&mut self, sys: &mut CedarSystem) {
        let clusters = sys.params().clusters;
        for c in 0..clusters {
            let actions = self.directory.release(c, self.global_base);
            for action in &actions {
                self.apply(sys, action);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_core::params::CedarParams;

    fn machine() -> CedarSystem {
        CedarSystem::new(CedarParams::paper())
    }

    #[test]
    fn cross_cluster_reads_observe_the_latest_write() {
        let mut sys = machine();
        let mut arr = SharedArray::new(&mut sys, 0, 0, 32);
        arr.write(&mut sys, 0, 5, 111);
        assert_eq!(arr.read(&mut sys, 3, 5), 111);
        arr.write(&mut sys, 2, 5, 222);
        assert_eq!(arr.read(&mut sys, 1, 5), 222);
        assert!(arr.directory().invariant_holds());
    }

    #[test]
    fn local_rereads_are_free_of_movement() {
        let mut sys = machine();
        let mut arr = SharedArray::new(&mut sys, 0, 0, 32);
        arr.write(&mut sys, 0, 0, 1);
        let after_write = arr.movement_cycles();
        for i in 0..10 {
            arr.write(&mut sys, 0, i, i);
            assert_eq!(arr.read(&mut sys, 0, i), i);
        }
        assert_eq!(
            arr.movement_cycles(),
            after_write,
            "same-cluster traffic must not move data"
        );
    }

    #[test]
    fn flush_pushes_dirty_data_to_global() {
        let mut sys = machine();
        let mut arr = SharedArray::new(&mut sys, 100, 0, 8);
        arr.write(&mut sys, 1, 2, 77);
        arr.flush(&mut sys);
        assert_eq!(sys.global_mut().read_word(102), 77);
    }

    #[test]
    fn ping_pong_writes_cost_movement() {
        let mut sys = machine();
        let mut arr = SharedArray::new(&mut sys, 0, 0, 256);
        arr.write(&mut sys, 0, 0, 1);
        let single_owner = arr.movement_cycles();
        for round in 0..4 {
            arr.write(&mut sys, round % 4, 0, round as u64);
        }
        assert!(
            arr.movement_cycles() > 3.0 * single_owner,
            "ownership ping-pong must be visibly expensive"
        );
    }

    #[test]
    fn initial_global_contents_are_visible() {
        let mut sys = machine();
        sys.global_mut().copy_in(50, &[9, 8, 7]);
        let mut arr = SharedArray::new(&mut sys, 50, 0, 3);
        assert_eq!(arr.read(&mut sys, 0, 0), 9);
        assert_eq!(arr.read(&mut sys, 3, 2), 7);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn out_of_range_read_panics() {
        let mut sys = machine();
        let mut arr = SharedArray::new(&mut sys, 0, 0, 4);
        arr.read(&mut sys, 0, 4);
    }
}
