//! Randomized property tests for the runtime layer, driven by the
//! simulator's deterministic SplitMix64 generator.

use cedar_core::params::CedarParams;
use cedar_core::system::CedarSystem;
use cedar_runtime::loops::{xdoall, Schedule, Work};
use cedar_runtime::sync::GlobalBarrier;
use cedar_runtime::task::{TaskState, XylemScheduler};
use cedar_sim::rng::SplitMix64;

fn machine() -> CedarSystem {
    CedarSystem::new(CedarParams::paper())
}

const CASES: usize = 24;

/// Every iteration of a parallel loop runs exactly once, in order,
/// regardless of schedule, and the makespan respects both the critical
/// path and total-work bounds.
#[test]
fn loops_execute_each_iteration_once() {
    let mut rng = SplitMix64::new(0x2071);
    for _ in 0..CASES {
        let iterations = rng.next_below(500);
        let static_sched = rng.next_bool(0.5);
        let body = 1.0 + rng.next_f64() * 4999.0;

        let mut sys = machine();
        let sched = if static_sched {
            Schedule::Static
        } else {
            Schedule::SelfScheduled
        };
        let mut seen = Vec::new();
        let report = xdoall(&mut sys, iterations, sched, |i| {
            seen.push(i);
            Work::cycles(body)
        });
        assert_eq!(seen, (0..iterations).collect::<Vec<_>>());
        assert_eq!(report.iterations, iterations);
        let p = 32.0;
        let total_work = iterations as f64 * body;
        // Lower bound: work spread perfectly over P, plus nothing.
        assert!(report.makespan_cycles + 1e-6 >= total_work / p);
        // Upper bound: all work serialized plus all overhead.
        assert!(report.makespan_cycles <= total_work + report.overhead_cycles + 1.0);
        // Busy accounting conserves work (+ self-sched fetches).
        let busy: f64 = report.per_worker_busy.iter().sum();
        assert!(busy + 1e-6 >= total_work);
    }
}

/// A barrier completes exactly once per round of `p` arrivals, for any
/// number of rounds.
#[test]
fn barrier_completes_once_per_round() {
    let mut rng = SplitMix64::new(0x2072);
    for _ in 0..CASES {
        let p = 1 + rng.next_below(16) as usize;
        let rounds = 1 + rng.next_below(9) as usize;
        let mut sys = machine();
        let barrier = GlobalBarrier::new(0, p);
        for round in 0..rounds {
            let mut completions = 0;
            for _ in 0..p {
                if barrier.arrive(&mut sys) {
                    completions += 1;
                }
            }
            assert_eq!(completions, 1, "round {round}");
        }
    }
}

/// The Xylem scheduler completes every task, never double-books a
/// cluster, and its makespan is bounded by serialized execution.
#[test]
fn xylem_completes_all_tasks() {
    let mut rng = SplitMix64::new(0x2073);
    for _ in 0..CASES {
        let n = 1 + rng.next_below(19) as usize;
        let works: Vec<f64> = (0..n).map(|_| 100.0 + rng.next_f64() * 9900.0).collect();
        let clusters = 1 + rng.next_below(4) as usize;

        let mut x = XylemScheduler::new(clusters);
        for (i, &w) in works.iter().enumerate() {
            x.spawn(&format!("t{i}"), w);
        }
        // Invariant checked during execution: running tasks ≤ clusters.
        let mut elapsed = 0.0;
        loop {
            x.dispatch();
            let running = x
                .tasks()
                .iter()
                .filter(|t| matches!(t.state, TaskState::Running { .. }))
                .count();
            assert!(running <= clusters);
            if x.tasks().iter().all(|t| t.state == TaskState::Completed) {
                break;
            }
            x.advance(50.0);
            elapsed += 50.0;
            assert!(elapsed < 1e9, "scheduler livelock");
        }
        let serial: f64 = works.iter().sum();
        assert!(elapsed <= serial + 50.0 * works.len() as f64 + 1.0);
        assert_eq!(x.dispatch_count(), works.len() as u64);
    }
}
