//! Property-based tests for the runtime layer.

use proptest::prelude::*;

use cedar_core::params::CedarParams;
use cedar_core::system::CedarSystem;
use cedar_runtime::loops::{xdoall, Schedule, Work};
use cedar_runtime::sync::GlobalBarrier;
use cedar_runtime::task::{TaskState, XylemScheduler};

fn machine() -> CedarSystem {
    CedarSystem::new(CedarParams::paper())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every iteration of a parallel loop runs exactly once, in order,
    /// regardless of schedule, and the makespan respects both the
    /// critical path and total-work bounds.
    #[test]
    fn loops_execute_each_iteration_once(
        iterations in 0u64..500,
        static_sched in any::<bool>(),
        body in 1.0f64..5000.0,
    ) {
        let mut sys = machine();
        let sched = if static_sched { Schedule::Static } else { Schedule::SelfScheduled };
        let mut seen = Vec::new();
        let report = xdoall(&mut sys, iterations, sched, |i| {
            seen.push(i);
            Work::cycles(body)
        });
        prop_assert_eq!(seen, (0..iterations).collect::<Vec<_>>());
        prop_assert_eq!(report.iterations, iterations);
        let p = 32.0;
        let total_work = iterations as f64 * body;
        // Lower bound: work spread perfectly over P, plus nothing.
        prop_assert!(report.makespan_cycles + 1e-6 >= total_work / p);
        // Upper bound: all work serialized plus all overhead.
        prop_assert!(
            report.makespan_cycles <= total_work + report.overhead_cycles + 1.0
        );
        // Busy accounting conserves work (+ self-sched fetches).
        let busy: f64 = report.per_worker_busy.iter().sum();
        prop_assert!(busy + 1e-6 >= total_work);
    }

    /// A barrier completes exactly once per round of `p` arrivals, for
    /// any number of rounds.
    #[test]
    fn barrier_completes_once_per_round(p in 1usize..=16, rounds in 1usize..10) {
        let mut sys = machine();
        let barrier = GlobalBarrier::new(0, p);
        for round in 0..rounds {
            let mut completions = 0;
            for _ in 0..p {
                if barrier.arrive(&mut sys) {
                    completions += 1;
                }
            }
            prop_assert_eq!(completions, 1, "round {}", round);
        }
    }

    /// The Xylem scheduler completes every task, never double-books a
    /// cluster, and its makespan is bounded by serialized execution.
    #[test]
    fn xylem_completes_all_tasks(
        works in prop::collection::vec(100.0f64..10_000.0, 1..20),
        clusters in 1usize..=4,
    ) {
        let mut x = XylemScheduler::new(clusters);
        for (i, &w) in works.iter().enumerate() {
            x.spawn(&format!("t{i}"), w);
        }
        // Invariant checked during execution: running tasks ≤ clusters.
        let mut elapsed = 0.0;
        loop {
            x.dispatch();
            let running = x
                .tasks()
                .iter()
                .filter(|t| matches!(t.state, TaskState::Running { .. }))
                .count();
            prop_assert!(running <= clusters);
            if x.tasks().iter().all(|t| t.state == TaskState::Completed) {
                break;
            }
            x.advance(50.0);
            elapsed += 50.0;
            prop_assert!(elapsed < 1e9, "scheduler livelock");
        }
        let serial: f64 = works.iter().sum();
        prop_assert!(elapsed <= serial + 50.0 * works.len() as f64 + 1.0);
        prop_assert_eq!(x.dispatch_count(), works.len() as u64);
    }
}
