//! The automatable restructuring transformations (§3.3).
//!
//! "These transformations include array privatization, parallel
//! reductions, advanced induction variable substitution, runtime data
//! dependence tests, balanced stripmining, and parallelization in the
//! presence of SAVE and RETURN statements. Many of these
//! transformations require advanced symbolic and interprocedural
//! analysis methods." The paper reports them applied by hand pending
//! an actual parallelizer ([EHLP91, EHJL91, EHJP92]).
//!
//! This module is the catalogue: the transformation set, what each
//! does, what analysis it needs, and which machine feature it feeds —
//! the structured version of §3.3 that the `perfect_study` example and
//! documentation draw on.

use std::fmt;

/// One automatable transformation from the paper's list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transformation {
    /// Give each iteration a private copy of an array written then
    /// read within the iteration, removing a spurious dependence.
    ArrayPrivatization,
    /// Recognize reductions (sums, minima) and compute them with
    /// per-processor partials plus a combine.
    ParallelReductions,
    /// Replace induction variables with closed forms so iterations
    /// decouple (beyond simple `i*stride` patterns).
    InductionVariableSubstitution,
    /// Emit a runtime test choosing between parallel and serial loop
    /// versions when dependence cannot be settled statically.
    RuntimeDependenceTests,
    /// Strip-mine loops into balanced chunks matched to the register
    /// length and the cluster/machine hierarchy.
    BalancedStripmining,
    /// Parallelize despite Fortran `SAVE` and `RETURN` statements by
    /// proving or privatizing the carried state.
    SaveReturnParallelization,
}

impl Transformation {
    /// Every transformation, in the paper's order.
    pub const ALL: [Transformation; 6] = [
        Transformation::ArrayPrivatization,
        Transformation::ParallelReductions,
        Transformation::InductionVariableSubstitution,
        Transformation::RuntimeDependenceTests,
        Transformation::BalancedStripmining,
        Transformation::SaveReturnParallelization,
    ];

    /// Short name as the paper phrases it.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Transformation::ArrayPrivatization => "array privatization",
            Transformation::ParallelReductions => "parallel reductions",
            Transformation::InductionVariableSubstitution => {
                "advanced induction variable substitution"
            }
            Transformation::RuntimeDependenceTests => "runtime data dependence tests",
            Transformation::BalancedStripmining => "balanced stripmining",
            Transformation::SaveReturnParallelization => {
                "parallelization in the presence of SAVE and RETURN statements"
            }
        }
    }

    /// The analysis machinery the transformation needs.
    #[must_use]
    pub fn required_analysis(self) -> &'static str {
        match self {
            Transformation::ArrayPrivatization => {
                "array data-flow: last-write-before-read within an iteration"
            }
            Transformation::ParallelReductions => {
                "pattern recognition of associative updates plus a combine strategy"
            }
            Transformation::InductionVariableSubstitution => {
                "symbolic evaluation of recurrences to closed form"
            }
            Transformation::RuntimeDependenceTests => {
                "subscript analysis that can defer the decision to runtime"
            }
            Transformation::BalancedStripmining => {
                "iteration-count and cost estimates across the loop nest"
            }
            Transformation::SaveReturnParallelization => {
                "interprocedural analysis of carried state"
            }
        }
    }

    /// Which machine feature or runtime mechanism the transformed code
    /// leans on in this reproduction.
    #[must_use]
    pub fn machine_hook(self) -> &'static str {
        match self {
            Transformation::ArrayPrivatization => {
                "loop-local placement: a private per-CE copy in cluster memory"
            }
            Transformation::ParallelReductions => {
                "concurrency-bus combine within a cluster, Test-And-Operate cells across clusters"
            }
            Transformation::InductionVariableSubstitution => {
                "self-scheduled DOALLs: iterations become independent"
            }
            Transformation::RuntimeDependenceTests => {
                "both loop versions compiled; a scalar test picks at entry"
            }
            Transformation::BalancedStripmining => {
                "32-word vector registers and the SDOALL/CDOALL hierarchy"
            }
            Transformation::SaveReturnParallelization => {
                "cluster-task private state under the Xylem scheduler"
            }
        }
    }
}

impl fmt::Display for Transformation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_transformations_present() {
        assert_eq!(Transformation::ALL.len(), 6);
        let mut names: Vec<&str> = Transformation::ALL.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6, "names must be distinct");
    }

    #[test]
    fn descriptions_are_nonempty_and_distinct() {
        for t in Transformation::ALL {
            assert!(!t.required_analysis().is_empty());
            assert!(!t.machine_hook().is_empty());
        }
        let hooks: std::collections::HashSet<&str> = Transformation::ALL
            .iter()
            .map(|t| t.machine_hook())
            .collect();
        assert_eq!(hooks.len(), 6);
    }

    #[test]
    fn display_matches_paper_wording() {
        assert_eq!(
            Transformation::ArrayPrivatization.to_string(),
            "array privatization"
        );
        assert_eq!(
            Transformation::BalancedStripmining.to_string(),
            "balanced stripmining"
        );
    }
}
