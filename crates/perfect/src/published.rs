//! The paper's published measurements, transcribed.
//!
//! Table 3: "Cedar execution time, megaflops, and speed improvement
//! for Perfect Benchmarks". Times are seconds; improvements are over
//! the serial (uniprocessor scalar) versions; slowdowns are percent —
//! the no-Cedar-synchronization column relative to the automatable
//! results, the no-prefetch column relative to the
//! no-synchronization results. The MFLOPS ratio column is
//! YMP-8 : Cedar (entries like "1:1.8" become values below 1).

/// One row of Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedRow {
    /// Code name.
    pub name: &'static str,
    /// KAP/Cedar compiled time (s).
    pub kap_time: f64,
    /// KAP improvement over serial.
    pub kap_improvement: f64,
    /// Automatable-transformations time (s); `None` for SPICE (NA).
    pub auto_time: Option<f64>,
    /// Automatable improvement over serial.
    pub auto_improvement: Option<f64>,
    /// Time without Cedar synchronization (s).
    pub nosync_time: Option<f64>,
    /// Time without prefetch (s).
    pub nopref_time: Option<f64>,
    /// Cedar MFLOPS (automatable).
    pub mflops: f64,
    /// YMP-8 MFLOPS divided by Cedar MFLOPS.
    pub ymp_ratio: f64,
}

/// Table 3, all thirteen Perfect codes.
pub const TABLE3: [PublishedRow; 13] = [
    PublishedRow {
        name: "ADM",
        kap_time: 689.0,
        kap_improvement: 1.2,
        auto_time: Some(73.0),
        auto_improvement: Some(10.8),
        nosync_time: Some(81.0),
        nopref_time: Some(83.0),
        mflops: 6.9,
        ymp_ratio: 3.4,
    },
    PublishedRow {
        name: "ARC2D",
        kap_time: 218.0,
        kap_improvement: 13.5,
        auto_time: Some(141.0),
        auto_improvement: Some(20.8),
        nosync_time: Some(141.0),
        nopref_time: Some(157.0),
        mflops: 13.1,
        ymp_ratio: 34.2,
    },
    PublishedRow {
        name: "BDNA",
        kap_time: 502.0,
        kap_improvement: 1.9,
        auto_time: Some(111.0),
        auto_improvement: Some(8.7),
        nosync_time: Some(118.0),
        nopref_time: Some(122.0),
        mflops: 8.2,
        ymp_ratio: 18.4,
    },
    PublishedRow {
        name: "DYFESM",
        kap_time: 167.0,
        kap_improvement: 3.9,
        auto_time: Some(60.0),
        auto_improvement: Some(11.0),
        nosync_time: Some(67.0),
        nopref_time: Some(100.0),
        mflops: 9.2,
        ymp_ratio: 6.5,
    },
    PublishedRow {
        name: "FLO52",
        kap_time: 100.0,
        kap_improvement: 9.0,
        auto_time: Some(63.0),
        auto_improvement: Some(14.3),
        nosync_time: Some(64.0),
        nopref_time: Some(79.0),
        mflops: 8.7,
        ymp_ratio: 37.8,
    },
    PublishedRow {
        name: "MDG",
        kap_time: 3200.0,
        kap_improvement: 1.3,
        auto_time: Some(182.0),
        auto_improvement: Some(22.7),
        nosync_time: Some(202.0),
        nopref_time: Some(202.0),
        mflops: 18.9,
        ymp_ratio: 11.1,
    },
    PublishedRow {
        name: "MG3D",
        kap_time: 7929.0,
        kap_improvement: 1.5,
        auto_time: Some(348.0),
        auto_improvement: Some(35.2),
        nosync_time: Some(346.0),
        nopref_time: Some(350.0),
        mflops: 31.7,
        ymp_ratio: 3.6,
    },
    PublishedRow {
        name: "OCEAN",
        kap_time: 2158.0,
        kap_improvement: 1.4,
        auto_time: Some(148.0),
        auto_improvement: Some(19.8),
        nosync_time: Some(174.0),
        nopref_time: Some(187.0),
        mflops: 11.2,
        ymp_ratio: 7.4,
    },
    PublishedRow {
        name: "QCD",
        kap_time: 369.0,
        kap_improvement: 1.1,
        auto_time: Some(239.0),
        auto_improvement: Some(1.8),
        nosync_time: Some(239.0),
        nopref_time: Some(246.0),
        mflops: 1.1,
        ymp_ratio: 1.0 / 1.8,
    },
    PublishedRow {
        name: "SPEC77",
        kap_time: 973.0,
        kap_improvement: 2.4,
        auto_time: Some(156.0),
        auto_improvement: Some(15.2),
        nosync_time: Some(156.0),
        nopref_time: Some(165.0),
        mflops: 11.9,
        ymp_ratio: 4.8,
    },
    PublishedRow {
        name: "SPICE",
        kap_time: 95.1,
        kap_improvement: 1.02,
        auto_time: None,
        auto_improvement: None,
        nosync_time: None,
        nopref_time: None,
        mflops: 0.5,
        ymp_ratio: 1.0 / 1.4,
    },
    PublishedRow {
        name: "TRACK",
        kap_time: 126.0,
        kap_improvement: 1.1,
        auto_time: Some(26.0),
        auto_improvement: Some(5.3),
        nosync_time: Some(28.0),
        nopref_time: Some(28.0),
        mflops: 3.1,
        ymp_ratio: 2.7,
    },
    PublishedRow {
        name: "TRFD",
        kap_time: 273.0,
        kap_improvement: 3.2,
        auto_time: Some(21.0),
        auto_improvement: Some(41.1),
        nosync_time: Some(21.0),
        nopref_time: Some(21.0),
        mflops: 20.5,
        ymp_ratio: 2.8,
    },
];

/// One row of Table 4: "Execution times (secs.) for manually altered
/// Perfect Codes and improvement over automatable w/ prefetch and w/o
/// Cedar synchronization", plus the in-text hand-optimized times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManualRow {
    /// Code name.
    pub name: &'static str,
    /// Hand-optimized time (s).
    pub time: f64,
    /// Improvement printed in Table 4, where given.
    pub improvement: Option<f64>,
    /// Whether the row is in Table 4 proper (vs. in-text §4.2).
    pub in_table4: bool,
    /// The optimization mechanism the paper describes.
    pub mechanism: &'static str,
}

/// Table 4 plus the in-text §4.2 results.
pub const MANUAL: [ManualRow; 8] = [
    ManualRow { name: "ARC2D", time: 68.0, improvement: Some(2.1), in_table4: true, mechanism: "eliminate unnecessary computation; aggressive data distribution into cluster memory" },
    ManualRow { name: "BDNA", time: 70.0, improvement: Some(1.7), in_table4: true, mechanism: "replace formatted with unformatted I/O" },
    ManualRow { name: "TRFD", time: 7.5, improvement: Some(2.8), in_table4: true, mechanism: "high-performance cache/register kernels, then a distributed-memory version fixing TLB-fault storms" },
    ManualRow { name: "QCD", time: 21.0, improvement: Some(11.4), in_table4: true, mechanism: "hand-coded parallel random number generator" },
    ManualRow { name: "FLO52", time: 33.0, improvement: None, in_table4: false, mechanism: "transform barrier sequences: one multicluster barrier plus per-cluster barrier sequences on the concurrency bus; eliminate recurrences" },
    ManualRow { name: "DYFESM", time: 31.0, improvement: None, in_table4: false, mechanism: "reshape data structures; Xylem-assembler prefetch kernels; hierarchical SDOALL/CDOALL control" },
    ManualRow { name: "SPICE", time: 26.0, improvement: None, in_table4: false, mechanism: "new algorithmic approaches in all major phases" },
    ManualRow { name: "MG3D", time: 348.0, improvement: None, in_table4: false, mechanism: "file I/O elimination (already reflected in Table 3's version)" },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_codes() {
        assert_eq!(TABLE3.len(), 13);
        let names: Vec<&str> = TABLE3.iter().map(|r| r.name).collect();
        assert!(names.contains(&"SPICE"));
        assert!(names.contains(&"TRFD"));
    }

    #[test]
    fn only_spice_lacks_automatable_results() {
        for row in &TABLE3 {
            if row.name == "SPICE" {
                assert!(row.auto_time.is_none());
            } else {
                assert!(row.auto_time.is_some(), "{} should have data", row.name);
            }
        }
    }

    #[test]
    fn improvements_are_consistent_with_times() {
        // serial = auto_time * auto_improvement must also roughly equal
        // kap_time * kap_improvement (both measure the same serial
        // run); the paper's rounding keeps them within ~20%.
        for row in &TABLE3 {
            let (Some(at), Some(ai)) = (row.auto_time, row.auto_improvement) else {
                continue;
            };
            let serial_auto = at * ai;
            let serial_kap = row.kap_time * row.kap_improvement;
            let ratio = serial_auto / serial_kap;
            assert!(
                (0.7..1.4).contains(&ratio),
                "{}: serial estimates disagree ({serial_auto} vs {serial_kap})",
                row.name
            );
        }
    }

    #[test]
    fn slowdown_columns_match_percentages() {
        // Spot-check the transcription against the printed percentages.
        let adm = &TABLE3[0];
        let pct = (adm.nosync_time.unwrap() / adm.auto_time.unwrap() - 1.0) * 100.0;
        assert!(
            (pct - 11.0).abs() < 1.0,
            "ADM no-sync slowdown {pct}% vs 11%"
        );
        let dyfesm = &TABLE3[3];
        let pct = (dyfesm.nopref_time.unwrap() / dyfesm.nosync_time.unwrap() - 1.0) * 100.0;
        assert!(
            (pct - 49.0).abs() < 1.5,
            "DYFESM no-pref slowdown {pct}% vs 49%"
        );
    }

    #[test]
    fn table4_improvements_are_nosync_over_manual() {
        // ARC2D: 141 / 68 = 2.07 ~ 2.1 as printed.
        for m in MANUAL.iter().filter(|m| m.in_table4) {
            let row = TABLE3.iter().find(|r| r.name == m.name).unwrap();
            let expected = row.nosync_time.unwrap() / m.time;
            let printed = m.improvement.unwrap();
            assert!(
                (expected - printed).abs() / printed < 0.03,
                "{}: {expected:.2} vs printed {printed}",
                m.name
            );
        }
    }

    #[test]
    fn cedar_harmonic_mean_matches_paper() {
        // "The harmonic mean for the MFLOPS on the YMP/8 is 23.7, 7.4
        // times that of Cedar" — so Cedar's harmonic mean is 23.7/7.4
        // = 3.2, which the transcribed MFLOPS column reproduces. (The
        // YMP-side mean cannot be recovered from the printed ratio
        // column, whose sub-unity QCD/SPICE entries dominate a
        // harmonic mean; see EXPERIMENTS.md.)
        let inv_sum_cedar: f64 = TABLE3.iter().map(|r| 1.0 / r.mflops).sum();
        let hm_cedar = TABLE3.len() as f64 / inv_sum_cedar;
        assert!(
            (hm_cedar - 23.7 / 7.4).abs() < 0.1,
            "Cedar harmonic mean {hm_cedar} vs 3.2"
        );
    }
}
