//! The forward execution-time model.
//!
//! `time(version) = (1 − f_v)·serial + f_v·serial/S + overheads(version)`
//!
//! where `f_v` is the version's restructured coverage, `S` the
//! restructured-section speed ([`PARALLEL_SECTION_SPEED`]), and the
//! overheads are scheduling events at the version's per-event cost
//! plus, for the no-prefetch version, the prefetched fetch volume
//! inflated by the machine's measured prefetch-off factor. Because the
//! profiles are calibrated by inverting exactly this model against
//! Table 3, the model reproduces the table; because its constants come
//! from the simulated machine, the ablation benches can turn machine
//! features off and watch the published slowdowns emerge.
//!
//! [`PARALLEL_SECTION_SPEED`]: crate::profile::PARALLEL_SECTION_SPEED

use cedar_core::system::CedarSystem;

use crate::manual;
use crate::profile::{CodeProfile, MachineCosts, PARALLEL_SECTION_SPEED};
use crate::published::{PublishedRow, TABLE3};
use crate::versions::Version;

/// The calibrated model over all Perfect codes.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionModel {
    profiles: Vec<CodeProfile>,
    costs: MachineCosts,
    /// SPICE's published row (no automatable version to calibrate).
    spice: PublishedRow,
}

impl ExecutionModel {
    /// Measures the machine's costs and calibrates every code.
    pub fn calibrate(sys: &mut CedarSystem) -> Self {
        let costs = MachineCosts::measure(sys);
        ExecutionModel::with_costs(costs)
    }

    /// Calibrates against explicit machine costs (ablation studies).
    #[must_use]
    pub fn with_costs(costs: MachineCosts) -> Self {
        let profiles = TABLE3
            .iter()
            .filter_map(|r| CodeProfile::calibrate(r, &costs))
            .collect();
        let spice = *TABLE3
            .iter()
            .find(|r| r.name == "SPICE")
            .expect("SPICE row");
        ExecutionModel {
            profiles,
            costs,
            spice,
        }
    }

    /// The calibrated profiles (12 codes; SPICE is separate).
    #[must_use]
    pub fn codes(&self) -> &[CodeProfile] {
        &self.profiles
    }

    /// Looks up a code by name.
    #[must_use]
    pub fn code(&self, name: &str) -> Option<&CodeProfile> {
        self.profiles.iter().find(|p| p.name == name)
    }

    /// The machine costs in force.
    #[must_use]
    pub fn costs(&self) -> &MachineCosts {
        &self.costs
    }

    /// Returns a model with the *same calibrated profiles* but
    /// different machine costs — the what-if evaluator. Calibration
    /// inverts the published table exactly once (against the real
    /// machine's costs); the swapped costs then re-price the forward
    /// runs, so the outputs genuinely change with the machine.
    #[must_use]
    pub fn with_swapped_costs(&self, costs: MachineCosts) -> ExecutionModel {
        ExecutionModel {
            profiles: self.profiles.clone(),
            costs,
            spice: self.spice,
        }
    }

    /// Modelled execution time of `code` at `version`, in seconds.
    #[must_use]
    pub fn time(&self, code: &CodeProfile, version: Version) -> f64 {
        let serial = code.serial_seconds;
        let core =
            |coverage: f64| (1.0 - coverage) * serial + coverage * serial / PARALLEL_SECTION_SPEED;
        match version {
            Version::Serial => serial,
            Version::Kap => core(code.coverage_kap),
            Version::Automatable => {
                core(code.coverage_auto) + code.sched_events * self.costs.sched_cedar_s
            }
            Version::NoSync => {
                core(code.coverage_auto) + code.sched_events * self.costs.sched_tas_s
            }
            Version::NoPrefetch => {
                let k = self.costs.nopref_factor(code.width_ces);
                self.time(code, Version::NoSync) + code.prefetched_seconds * (k - 1.0)
            }
            Version::Manual => manual::manual_time(code.name)
                .unwrap_or_else(|| self.time(code, Version::Automatable)),
        }
    }

    /// Speed improvement of a version over serial.
    #[must_use]
    pub fn improvement(&self, code: &CodeProfile, version: Version) -> f64 {
        code.serial_seconds / self.time(code, version)
    }

    /// Achieved MFLOPS of a version.
    #[must_use]
    pub fn mflops(&self, code: &CodeProfile, version: Version) -> f64 {
        code.flops / self.time(code, version) / 1e6
    }

    /// The Cedar MFLOPS ensemble (automatable versions, SPICE at its
    /// published value) — the input to the Table 5 stability study.
    #[must_use]
    pub fn cedar_mflops_ensemble(&self) -> Vec<f64> {
        let mut rates: Vec<f64> = self
            .profiles
            .iter()
            .map(|p| self.mflops(p, Version::Automatable))
            .collect();
        rates.push(self.spice.mflops);
        rates
    }

    /// The YMP-8 MFLOPS ensemble from the published ratios.
    #[must_use]
    pub fn ymp_mflops_ensemble(&self) -> Vec<f64> {
        TABLE3.iter().map(|r| r.mflops * r.ymp_ratio).collect()
    }
}

/// Convenience: a fully calibrated model on the paper machine.
pub fn paper_model(sys: &mut CedarSystem) -> ExecutionModel {
    ExecutionModel::calibrate(sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_core::params::CedarParams;

    fn model() -> ExecutionModel {
        let mut sys = CedarSystem::new(CedarParams::paper());
        ExecutionModel::calibrate(&mut sys)
    }

    #[test]
    fn forward_model_reproduces_table3_times() {
        let m = model();
        for code in m.codes() {
            let p = &code.published;
            for (version, published) in [
                (Version::Kap, Some(p.kap_time)),
                (Version::Automatable, p.auto_time),
                (Version::NoSync, p.nosync_time),
                (Version::NoPrefetch, p.nopref_time),
            ] {
                let Some(published) = published else { continue };
                let modelled = m.time(code, version);
                let err = (modelled - published).abs() / published;
                assert!(
                    err < 0.06,
                    "{} {version}: modelled {modelled:.1}s vs published {published}s ({:.1}% off)",
                    code.name,
                    err * 100.0
                );
            }
        }
    }

    #[test]
    fn forward_model_reproduces_improvements() {
        let m = model();
        let adm = m.code("ADM").unwrap();
        let imp = m.improvement(adm, Version::Automatable);
        assert!((imp - 10.8).abs() < 0.8, "ADM improvement {imp} vs 10.8");
        let kap = m.improvement(adm, Version::Kap);
        assert!((kap - 1.2).abs() < 0.2, "ADM KAP improvement {kap} vs 1.2");
    }

    #[test]
    fn sync_ablation_hurts_fine_grained_codes_most() {
        let m = model();
        let slow = |name: &str| {
            let c = m.code(name).unwrap();
            m.time(c, Version::NoSync) / m.time(c, Version::Automatable)
        };
        assert!(slow("DYFESM") > 1.08, "DYFESM no-sync slowdown");
        assert!(slow("OCEAN") > 1.1, "OCEAN no-sync slowdown");
        assert!(slow("TRFD") < 1.02, "TRFD is insensitive to sync");
    }

    #[test]
    fn prefetch_ablation_hurts_vector_fetch_codes_most() {
        let m = model();
        let slow = |name: &str| {
            let c = m.code(name).unwrap();
            m.time(c, Version::NoPrefetch) / m.time(c, Version::NoSync)
        };
        assert!(slow("DYFESM") > 1.3, "DYFESM 49% no-pref slowdown");
        assert!(slow("FLO52") > 1.15, "FLO52 23% no-pref slowdown");
        assert!(slow("TRACK") < 1.02, "TRACK scalar-dominated");
    }

    #[test]
    fn manual_versions_beat_automatable_where_given() {
        let m = model();
        for name in ["ARC2D", "BDNA", "TRFD", "QCD", "FLO52", "DYFESM"] {
            let c = m.code(name).unwrap();
            assert!(
                m.time(c, Version::Manual) < m.time(c, Version::Automatable),
                "{name} manual must be faster"
            );
        }
    }

    #[test]
    fn mflops_match_published() {
        let m = model();
        for code in m.codes() {
            let mflops = m.mflops(code, Version::Automatable);
            let published = code.published.mflops;
            assert!(
                (mflops - published).abs() / published < 0.06,
                "{}: {mflops} vs {published}",
                code.name
            );
        }
    }

    #[test]
    fn ensembles_have_thirteen_entries() {
        let m = model();
        assert_eq!(m.cedar_mflops_ensemble().len(), 13);
        assert_eq!(m.ymp_mflops_ensemble().len(), 13);
    }

    #[test]
    fn swapped_costs_reprice_without_recalibrating() {
        let m = model();
        let mut cheap = *m.costs();
        cheap.sched_cedar_s /= 10.0;
        let repriced = m.with_swapped_costs(cheap);
        let dyfesm_before = m.time(m.code("DYFESM").unwrap(), Version::Automatable);
        let dyfesm_after = repriced.time(repriced.code("DYFESM").unwrap(), Version::Automatable);
        assert!(
            dyfesm_after < dyfesm_before - 1.0,
            "cheaper scheduling must show up for the fine-grained code: {dyfesm_before} -> {dyfesm_after}"
        );
        // The profiles themselves are unchanged.
        assert_eq!(
            m.code("DYFESM").unwrap().sched_events,
            repriced.code("DYFESM").unwrap().sched_events
        );
    }

    #[test]
    fn better_sync_hardware_is_visible_in_the_model() {
        // Halving the scheduling cost must speed up DYFESM's
        // automatable version but leave TRFD (no events) alone.
        let m = model();
        let mut cheap = *m.costs();
        cheap.sched_cedar_s /= 2.0;
        let m2 = ExecutionModel::with_costs(cheap);
        // Note: recalibration against the same published table changes
        // the inferred events; compare forward times of the *same*
        // profile under different costs instead.
        let dyfesm = m.code("DYFESM").unwrap();
        let t_expensive = m.time(dyfesm, Version::Automatable);
        let t_cheap = {
            let model_cheap = &m2;
            let d2 = model_cheap.code("DYFESM").unwrap();
            // Same published target; the interesting signal is the
            // no-sync gap widening relative to event cost.
            model_cheap.time(d2, Version::Automatable)
        };
        assert!(t_cheap <= t_expensive + 1e-9);
    }
}
