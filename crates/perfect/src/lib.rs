//! `cedar-perfect` — the Perfect Benchmarks® study (§3.3, §4.2).
//!
//! The Perfect codes themselves (ADM, ARC2D, BDNA, DYFESM, FLO52, MDG,
//! MG3D, OCEAN, QCD, SPEC77, SPICE, TRACK, TRFD) are proprietary
//! Fortran applications we cannot ship; per the substitution policy in
//! DESIGN.md each code is represented by a **mechanistic profile**
//! whose parameters — serial time, parallel coverage per restructuring
//! level, scheduling-event count (granularity), prefetched
//! global-fetch volume — are *calibrated from the paper's published
//! measurements* ([`published`]) and then pushed **forward** through
//! an execution-time model built on the machine's measured costs
//! ([`model`]). The calibration is honest: the profile stores exactly
//! the quantities the paper attributes its observations to (DYFESM's
//! small granularity, TRACK's scalar-access domination, …), and the
//! forward model must *reproduce* Table 3 — which the tests assert —
//! while remaining sensitive to machine parameters for the ablation
//! studies.
//!
//! * [`published`] — the raw rows of Tables 3 and 4;
//! * [`versions`] — the restructuring levels (serial, KAP-compiled,
//!   automatable, w/o Cedar synchronization, w/o prefetch, manual);
//! * [`profile`] — [`profile::CodeProfile`] and its calibration;
//! * [`model`] — the forward execution-time model;
//! * [`manual`] — the hand-optimized versions of §4.2 and the Figure 3
//!   efficiency data;
//! * [`transformations`] — the catalogue of §3.3's automatable
//!   restructuring transformations and the machine features each
//!   leans on.
//!
//! # Examples
//!
//! ```
//! use cedar_core::{CedarParams, CedarSystem};
//! use cedar_perfect::{model::ExecutionModel, versions::Version};
//!
//! let mut cedar = CedarSystem::new(CedarParams::paper());
//! let model = ExecutionModel::calibrate(&mut cedar);
//! let adm = model.code("ADM").expect("ADM is a Perfect code");
//! let t = model.time(adm, Version::Automatable);
//! assert!((t - 73.0).abs() / 73.0 < 0.05, "ADM automatable ~73 s, got {t}");
//! ```

#![warn(missing_docs)]

pub mod manual;
pub mod model;
pub mod profile;
pub mod published;
pub mod transformations;
pub mod versions;

pub use model::ExecutionModel;
pub use profile::CodeProfile;
pub use published::{PublishedRow, TABLE3};
pub use transformations::Transformation;
pub use versions::Version;
