//! Hand-optimized versions (§4.2, Table 4) and the Cedar side of the
//! Figure 3 / Table 6 efficiency analyses.
//!
//! Efficiency needs a uniprocessor *parallel-mode* baseline, which the
//! paper never publishes per code; DESIGN.md documents the
//! reconstruction: `E_P = improvement / (P × vector_gain)`, with the
//! per-code vectorization gains fixed in [`crate::profile`]. The tests
//! pin the resulting band censuses to the paper's published counts
//! (Table 6: 1 high / 9 intermediate / 3 unacceptable; Figure 3: no
//! unacceptable Cedar codes, roughly a quarter high).

use crate::model::ExecutionModel;
use crate::published::{ManualRow, MANUAL};
use crate::versions::Version;

/// The hand-optimized time of a code, if the paper gives one.
#[must_use]
pub fn manual_time(name: &str) -> Option<f64> {
    MANUAL
        .iter()
        .find(|m| m.name == name && m.name != "MG3D")
        .map(|m| m.time)
}

/// The manual-optimization rows (Table 4 plus in-text).
#[must_use]
pub fn manual_rows() -> &'static [ManualRow] {
    &MANUAL
}

/// A point of the Figure 3 scatter (the Cedar axis) or a Table 6 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyPoint {
    /// Code name.
    pub name: &'static str,
    /// Parallel efficiency in `[0, 1]`.
    pub efficiency: f64,
}

/// Machine width used in the efficiency normalizations.
pub const MACHINE_CES: usize = 32;

/// Cedar efficiencies of the *automatable* versions at P = 32 — the
/// Table 6 ensemble. SPICE (no automatable version) scores zero.
#[must_use]
pub fn table6_cedar_efficiencies(model: &ExecutionModel) -> Vec<EfficiencyPoint> {
    let mut points: Vec<EfficiencyPoint> = model
        .codes()
        .iter()
        .map(|code| {
            let imp = model.improvement(code, Version::Automatable);
            EfficiencyPoint {
                name: code.name,
                efficiency: imp / (MACHINE_CES as f64 * code.vector_gain),
            }
        })
        .collect();
    points.push(EfficiencyPoint {
        name: "SPICE",
        efficiency: 0.0,
    });
    points
}

/// Cedar efficiencies of the best (manually optimized where available)
/// versions — the Cedar axis of Figure 3. TRACK and SPICE are
/// evaluated at their single-cluster width, per the Perfect-rules
/// footnote about codes confined to one cluster; efficiencies are
/// clamped to 1 (TRFD's manual version also improves the serial
/// algorithm, pushing the raw ratio past unity).
#[must_use]
pub fn fig3_cedar_efficiencies(model: &ExecutionModel) -> Vec<EfficiencyPoint> {
    let mut points: Vec<EfficiencyPoint> = model
        .codes()
        .iter()
        .map(|code| {
            let time = model.time(code, Version::Manual);
            let imp = code.serial_seconds / time;
            let width = fig3_width(code.name);
            EfficiencyPoint {
                name: code.name,
                efficiency: (imp / (width as f64 * code.vector_gain)).min(1.0),
            }
        })
        .collect();
    // SPICE: published KAP-level serial ~97s, hand-optimized ~26s.
    let spice_serial = 95.1 * 1.02;
    points.push(EfficiencyPoint {
        name: "SPICE",
        efficiency: (spice_serial / 26.0) / (fig3_width("SPICE") as f64),
    });
    points
}

/// Processor count a code's best version exploits in the Figure 3
/// normalization.
#[must_use]
pub fn fig3_width(name: &str) -> usize {
    match name {
        // Confined to a single cluster.
        "TRACK" | "SPICE" => 8,
        _ => MACHINE_CES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_core::params::CedarParams;
    use cedar_core::system::CedarSystem;
    use cedar_metrics::bands::{classify_efficiency, PerfBand};

    fn model() -> ExecutionModel {
        let mut sys = CedarSystem::new(CedarParams::paper());
        ExecutionModel::calibrate(&mut sys)
    }

    #[test]
    fn manual_times_match_table4() {
        assert_eq!(manual_time("ARC2D"), Some(68.0));
        assert_eq!(manual_time("TRFD"), Some(7.5));
        assert_eq!(manual_time("QCD"), Some(21.0));
        assert_eq!(manual_time("ADM"), None, "no manual ADM");
        assert_eq!(
            manual_time("MG3D"),
            None,
            "MG3D's fix is already in Table 3"
        );
    }

    #[test]
    fn table6_band_census_matches_paper() {
        // Paper Table 6, Cedar column: 1 high, 9 intermediate, 3
        // unacceptable.
        let m = model();
        let points = table6_cedar_efficiencies(&m);
        assert_eq!(points.len(), 13);
        let mut high = 0;
        let mut inter = 0;
        let mut unacc = 0;
        for p in &points {
            match classify_efficiency(p.efficiency, MACHINE_CES) {
                PerfBand::High => high += 1,
                PerfBand::Intermediate => inter += 1,
                PerfBand::Unacceptable => unacc += 1,
            }
        }
        assert_eq!((high, inter, unacc), (1, 9, 3), "paper: 1/9/3");
    }

    #[test]
    fn table6_high_code_is_trfd() {
        let m = model();
        let points = table6_cedar_efficiencies(&m);
        let best = points
            .iter()
            .max_by(|a, b| a.efficiency.partial_cmp(&b.efficiency).unwrap())
            .unwrap();
        assert_eq!(best.name, "TRFD");
        assert!(best.efficiency >= 0.5);
    }

    #[test]
    fn fig3_census_matches_paper_shape() {
        // "the 32-processor Cedar has about one-quarter high and
        // three-quarters intermediate … Cedar has none [unacceptable]".
        let m = model();
        let points = fig3_cedar_efficiencies(&m);
        assert_eq!(points.len(), 13);
        let mut high = 0;
        let mut unacc = 0;
        for p in &points {
            match classify_efficiency(p.efficiency, fig3_width(p.name)) {
                PerfBand::High => high += 1,
                PerfBand::Unacceptable => unacc += 1,
                PerfBand::Intermediate => {}
            }
        }
        assert_eq!(unacc, 0, "Cedar has no unacceptable manual codes");
        assert!(
            (2..=5).contains(&high),
            "about a quarter of 13 codes high, got {high}"
        );
    }

    #[test]
    fn efficiencies_are_clamped_to_unit_interval() {
        let m = model();
        for p in fig3_cedar_efficiencies(&m) {
            assert!(
                (0.0..=1.0).contains(&p.efficiency),
                "{}: {}",
                p.name,
                p.efficiency
            );
        }
    }

    #[test]
    fn manual_rows_cover_the_section() {
        let rows = manual_rows();
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().any(|r| r.name == "FLO52" && r.time == 33.0));
        assert!(rows.iter().any(|r| r.name == "SPICE" && r.time == 26.0));
    }
}
