//! Restructuring levels of a Perfect code.

use std::fmt;

/// The program versions the paper measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Version {
    /// Uniprocessor scalar: the improvement baseline.
    Serial,
    /// Automatically restructured by the KAP/Cedar compiler.
    Kap,
    /// The "automatable" hand-applied transformations (array
    /// privatization, parallel reductions, induction-variable
    /// substitution, runtime dependence tests, balanced stripmining…).
    Automatable,
    /// Automatable but scheduling loops without the Cedar
    /// synchronization instructions.
    NoSync,
    /// NoSync and additionally without compiler-generated prefetch.
    NoPrefetch,
    /// Hand-optimized with algorithmic and architectural knowledge
    /// (§4.2 / Table 4).
    Manual,
}

impl Version {
    /// The versions of Table 3, in column order.
    pub const TABLE3: [Version; 4] = [
        Version::Kap,
        Version::Automatable,
        Version::NoSync,
        Version::NoPrefetch,
    ];
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Version::Serial => "serial",
            Version::Kap => "KAP/Cedar",
            Version::Automatable => "automatable",
            Version::NoSync => "w/o Cedar synchronization",
            Version::NoPrefetch => "w/o prefetch",
            Version::Manual => "manual",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_order() {
        assert_eq!(Version::TABLE3[0], Version::Kap);
        assert_eq!(Version::TABLE3[3], Version::NoPrefetch);
    }

    #[test]
    fn display_is_descriptive() {
        assert_eq!(Version::NoSync.to_string(), "w/o Cedar synchronization");
    }
}
