//! Mechanistic code profiles and their calibration.
//!
//! A [`CodeProfile`] holds the quantities the paper attributes its
//! per-code observations to:
//!
//! * `serial_seconds` — the uniprocessor scalar run;
//! * `coverage_kap`, `coverage_auto` — the fraction of serial work the
//!   KAP and automatable restructurings parallelize/vectorize;
//! * `sched_events` — loop scheduling events (the inverse of
//!   granularity): DYFESM and OCEAN have many, so removing the cheap
//!   Cedar-synchronization self-scheduling hurts them;
//! * `prefetched_seconds` — time spent in prefetched global vector
//!   fetches within the automatable version: large for DYFESM ("large
//!   number of vector fetches … on a small number of processors"),
//!   zero for TRACK ("domination of scalar accesses");
//! * `vector_gain` — the per-code uniprocessor vectorization gain,
//!   used to convert improvements (which are against *scalar* runs)
//!   into the parallel efficiencies of Table 6 and Figure 3;
//! * `width_ces` — how many CEs the code effectively uses ("in a few
//!   cases program execution was confined to a single cluster").
//!
//! Calibration inverts the forward model of [`crate::model`] against
//! the published Table 3 row, using the machine's own measured costs
//! (XDOALL fetch cost, prefetch vs no-prefetch cycles per word), so
//! the profiles stay consistent with the simulated machine.

use cedar_core::costmodel::AccessMode;
use cedar_core::system::CedarSystem;
use cedar_net::fabric::PrefetchTraffic;

use crate::published::PublishedRow;

/// Parallel-section speed ratio cap: 32 CEs times the typical ~2.5×
/// vectorization gain. The coverage inversion uses this as the speed
/// of a fully restructured section relative to scalar.
pub const PARALLEL_SECTION_SPEED: f64 = 80.0;

/// A calibrated mechanistic profile of one Perfect code.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeProfile {
    /// Code name.
    pub name: &'static str,
    /// Uniprocessor scalar time, seconds.
    pub serial_seconds: f64,
    /// Total floating-point work (from the published MFLOPS).
    pub flops: f64,
    /// Coverage of the KAP restructuring (fraction of serial work).
    pub coverage_kap: f64,
    /// Coverage of the automatable restructuring.
    pub coverage_auto: f64,
    /// Loop scheduling events in one run.
    pub sched_events: f64,
    /// Seconds of prefetched global vector fetching in the automatable
    /// version.
    pub prefetched_seconds: f64,
    /// Per-code uniprocessor vectorization gain (see Table 6 / Fig. 3
    /// discussion in DESIGN.md).
    pub vector_gain: f64,
    /// Effective processor count the code exploits.
    pub width_ces: usize,
    /// The published row this profile was calibrated against.
    pub published: PublishedRow,
}

/// Machine-derived constants the calibration and forward model share.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineCosts {
    /// Seconds per scheduling event with Cedar synchronization (the
    /// 30 µs XDOALL iteration fetch).
    pub sched_cedar_s: f64,
    /// Seconds per scheduling event without Cedar synchronization
    /// (Test-And-Set emulation: three global round trips).
    pub sched_tas_s: f64,
    /// Slowdown multiplier of global vector fetches when prefetch is
    /// disabled, at full machine width.
    pub nopref_factor_wide: f64,
    /// The same at single-cluster width (lower contention, larger
    /// prefetch advantage).
    pub nopref_factor_narrow: f64,
}

impl MachineCosts {
    /// Derives the constants from the simulated machine.
    pub fn measure(sys: &mut CedarSystem) -> Self {
        let fetch_s = sys.params().xdoall_fetch_us * 1e-6;
        let pref_wide = sys
            .cycles_per_word(
                AccessMode::GlobalPrefetch(PrefetchTraffic::compiler_default(4)),
                32,
            )
            .max(1.0);
        let nopref_wide = sys.cycles_per_word(AccessMode::GlobalNoPrefetch, 32);
        let pref_narrow = sys
            .cycles_per_word(
                AccessMode::GlobalPrefetch(PrefetchTraffic::compiler_default(4)),
                8,
            )
            .max(1.0);
        let nopref_narrow = sys.cycles_per_word(AccessMode::GlobalNoPrefetch, 8);
        MachineCosts {
            sched_cedar_s: fetch_s,
            sched_tas_s: 3.0 * fetch_s,
            nopref_factor_wide: nopref_wide / pref_wide,
            nopref_factor_narrow: nopref_narrow / pref_narrow,
        }
    }

    /// The no-prefetch slowdown factor at a given width.
    #[must_use]
    pub fn nopref_factor(&self, width_ces: usize) -> f64 {
        if width_ces <= 8 {
            self.nopref_factor_narrow
        } else {
            self.nopref_factor_wide
        }
    }
}

/// Per-code vectorization gains and effective widths. The gains are
/// the one free parameter family of the reproduction (the paper never
/// publishes per-code uniprocessor vector speedups); they are chosen
/// once, documented here, and produce Table 6's published band census
/// as the tests verify. Width 8 marks the codes the paper notes were
/// "confined to a single cluster" or parallelism-limited.
fn vector_gain_and_width(name: &str) -> (f64, usize) {
    match name {
        "ADM" => (2.0, 32),
        "ARC2D" => (2.5, 32),
        "BDNA" => (2.0, 32),
        "DYFESM" => (2.0, 8),
        "FLO52" => (2.5, 32),
        "MDG" => (2.0, 32),
        "MG3D" => (3.0, 32),
        "OCEAN" => (2.5, 32),
        "QCD" => (2.0, 32),
        "SPEC77" => (2.5, 32),
        "SPICE" => (1.0, 8),
        "TRACK" => (2.0, 8),
        "TRFD" => (2.5, 32),
        _ => (2.0, 32),
    }
}

impl CodeProfile {
    /// Calibrates a profile from a published row and the machine's
    /// measured costs. Returns `None` for rows without automatable
    /// data (SPICE), which the model carries at its KAP level only.
    #[must_use]
    pub fn calibrate(row: &PublishedRow, costs: &MachineCosts) -> Option<CodeProfile> {
        let auto_time = row.auto_time?;
        let auto_imp = row.auto_improvement?;
        let nosync_time = row.nosync_time?;
        let nopref_time = row.nopref_time?;
        let serial = auto_time * auto_imp;
        let (vector_gain, width) = vector_gain_and_width(row.name);

        // Scheduling events from the no-sync delta: each event costs
        // sched_tas - sched_cedar more without the sync instructions.
        let sched_events =
            ((nosync_time - auto_time) / (costs.sched_tas_s - costs.sched_cedar_s)).max(0.0);
        let sync_overhead = sched_events * costs.sched_cedar_s;

        // Coverage from the automatable time net of scheduling.
        let coverage_auto = coverage_from_time(serial, auto_time - sync_overhead);
        // KAP runs with (at least) the same scheduling style; its
        // events are unknown, so attribute its whole time to coverage.
        let coverage_kap = coverage_from_time(serial, row.kap_time);

        // Prefetched fetch volume from the no-prefetch delta, bounded
        // by the restructured section's execution time.
        let k = costs.nopref_factor(width);
        let parallel_section_time = coverage_auto * serial / PARALLEL_SECTION_SPEED;
        let prefetched_seconds =
            ((nopref_time - nosync_time) / (k - 1.0).max(0.1)).clamp(0.0, parallel_section_time);

        Some(CodeProfile {
            name: row.name,
            serial_seconds: serial,
            flops: row.mflops * auto_time * 1e6,
            coverage_kap,
            coverage_auto,
            sched_events,
            prefetched_seconds,
            vector_gain,
            width_ces: width,
            published: *row,
        })
    }
}

/// Inverts Amdahl's law: the coverage `f` such that
/// `(1-f)·serial + f·serial/s = time`, clamped to `[0, 1]`.
fn coverage_from_time(serial: f64, time: f64) -> f64 {
    let s = PARALLEL_SECTION_SPEED;
    let f = (serial - time) / (serial * (1.0 - 1.0 / s));
    f.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::published::TABLE3;
    use cedar_core::params::CedarParams;

    fn costs() -> MachineCosts {
        let mut sys = CedarSystem::new(CedarParams::paper());
        MachineCosts::measure(&mut sys)
    }

    #[test]
    fn machine_costs_sane() {
        let c = costs();
        assert!((c.sched_cedar_s - 30e-6).abs() < 1e-9);
        assert_eq!(c.sched_tas_s, 3.0 * c.sched_cedar_s);
        assert!(c.nopref_factor_narrow > c.nopref_factor_wide);
        assert!(c.nopref_factor_wide > 1.5);
    }

    #[test]
    fn every_code_but_spice_calibrates() {
        let c = costs();
        let calibrated: Vec<_> = TABLE3
            .iter()
            .filter_map(|r| CodeProfile::calibrate(r, &c))
            .collect();
        assert_eq!(calibrated.len(), 12);
    }

    #[test]
    fn coverages_are_probabilities_and_ordered() {
        let c = costs();
        for row in &TABLE3 {
            let Some(p) = CodeProfile::calibrate(row, &c) else {
                continue;
            };
            assert!((0.0..=1.0).contains(&p.coverage_auto), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.coverage_kap), "{}", p.name);
            assert!(
                p.coverage_auto >= p.coverage_kap - 1e-9,
                "{}: automatable must cover at least what KAP covers",
                p.name
            );
        }
    }

    #[test]
    fn dyfesm_has_fine_granularity() {
        // DYFESM's no-sync slowdown means many scheduling events.
        let c = costs();
        let dyfesm = CodeProfile::calibrate(&TABLE3[3], &c).unwrap();
        let trfd = CodeProfile::calibrate(&TABLE3[12], &c).unwrap();
        assert!(
            dyfesm.sched_events > 50.0 * (trfd.sched_events + 1.0),
            "DYFESM {} events vs TRFD {}",
            dyfesm.sched_events,
            trfd.sched_events
        );
    }

    #[test]
    fn track_is_scalar_dominated() {
        let c = costs();
        let track = CodeProfile::calibrate(&TABLE3[11], &c).unwrap();
        assert!(
            track.prefetched_seconds < 0.5,
            "TRACK should have ~no prefetched fetch time, got {}",
            track.prefetched_seconds
        );
    }

    #[test]
    fn dyfesm_prefetch_volume_is_large() {
        let c = costs();
        let dyfesm = CodeProfile::calibrate(&TABLE3[3], &c).unwrap();
        assert!(
            dyfesm.prefetched_seconds > 2.0,
            "DYFESM prefetched volume {}",
            dyfesm.prefetched_seconds
        );
    }

    #[test]
    fn flops_match_published_mflops() {
        let c = costs();
        let adm = CodeProfile::calibrate(&TABLE3[0], &c).unwrap();
        assert!((adm.flops - 6.9e6 * 73.0).abs() < 1.0);
    }
}
