//! `track` — the cedar-track command line.
//!
//! ```text
//! track append --history bench/history.jsonl --perf BENCH_perf.json \
//!              [--serve BENCH_serve.json] [--cluster BENCH_cluster.json] \
//!              [--compare BENCH_compare.json] [--notes TEXT]
//! track check  --history bench/history.jsonl [--threshold-pct 10] \
//!              [--window 5] [--any-host]
//! track render --history bench/history.jsonl --out bench/dashboard.html \
//!              [--threshold-pct 10] [--window 5] [--any-host]
//! ```
//!
//! `append` ingests one or more benchmark reports, stamps them with
//! the git commit / timestamp / host fingerprint (overridable via
//! `CEDAR_TRACK_COMMIT` and `CEDAR_TRACK_TIMESTAMP`), and appends one
//! history line. `check` gates the newest entry against the trailing
//! median of comparable history and exits 1 on any regression, naming
//! the metric. `render` writes the standalone HTML dashboard (with the
//! gate verdict embedded as a callout).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cedar_track::gate::{check, default_gates, GateOptions};
use cedar_track::history::{append, load, HistoryEntry};
use cedar_track::ingest::{
    build_entry, cluster_report, compare_report, perf_report, serve_report, Ingested,
};
use cedar_track::meta;
use cedar_track::render::render_dashboard;

const USAGE: &str = "usage:
  track append --history FILE (--perf FILE | --serve FILE | --cluster FILE | --compare FILE)... [--notes TEXT]
  track check  --history FILE [--threshold-pct N] [--window N] [--any-host]
  track render --history FILE --out FILE [--threshold-pct N] [--window N] [--any-host]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "append" => cmd_append(&args[1..]),
        "check" => cmd_check(&args[1..]),
        "render" => cmd_render(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("track: {e}");
            ExitCode::from(2)
        }
    }
}

/// Shared flag state for all subcommands.
struct Flags {
    history: Option<PathBuf>,
    out: Option<PathBuf>,
    perf: Vec<PathBuf>,
    serve: Vec<PathBuf>,
    cluster: Vec<PathBuf>,
    compare: Vec<PathBuf>,
    notes: Option<String>,
    threshold_pct: f64,
    window: usize,
    any_host: bool,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        history: None,
        out: None,
        perf: Vec::new(),
        serve: Vec::new(),
        cluster: Vec::new(),
        compare: Vec::new(),
        notes: None,
        threshold_pct: 10.0,
        window: 5,
        any_host: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--history" => f.history = Some(PathBuf::from(value("--history")?)),
            "--out" => f.out = Some(PathBuf::from(value("--out")?)),
            "--perf" => f.perf.push(PathBuf::from(value("--perf")?)),
            "--serve" => f.serve.push(PathBuf::from(value("--serve")?)),
            "--cluster" => f.cluster.push(PathBuf::from(value("--cluster")?)),
            "--compare" => f.compare.push(PathBuf::from(value("--compare")?)),
            "--notes" => f.notes = Some(value("--notes")?),
            "--threshold-pct" => {
                f.threshold_pct = value("--threshold-pct")?
                    .parse()
                    .map_err(|e| format!("bad --threshold-pct: {e}"))?;
            }
            "--window" => {
                f.window = value("--window")?
                    .parse()
                    .map_err(|e| format!("bad --window: {e}"))?;
            }
            "--any-host" => f.any_host = true,
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(f)
}

fn require_history(f: &Flags) -> Result<PathBuf, String> {
    f.history
        .clone()
        .ok_or_else(|| "--history is required".to_owned())
}

fn cmd_append(args: &[String]) -> Result<ExitCode, String> {
    let f = parse_flags(args)?;
    let history = require_history(&f)?;
    let mut reports: Vec<Ingested> = Vec::new();
    type IngestFn = fn(&str) -> Result<Ingested, String>;
    let groups: [(&[PathBuf], IngestFn); 4] = [
        (&f.perf, perf_report),
        (&f.serve, serve_report),
        (&f.cluster, cluster_report),
        (&f.compare, compare_report),
    ];
    for (paths, ingest) in groups {
        for path in paths {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            reports.push(ingest(&text).map_err(|e| format!("{}: {e}", path.display()))?);
        }
    }
    if reports.is_empty() {
        return Err(
            "append needs at least one report (--perf/--serve/--cluster/--compare)".to_owned(),
        );
    }
    let entry = build_entry(
        &reports,
        meta::commit_id(),
        meta::timestamp(),
        meta::host_fingerprint(),
        f.notes,
    )?;
    append(&history, &entry).map_err(|e| format!("append {}: {e}", history.display()))?;
    println!(
        "appended commit {} ({} metrics, mode {}, sources {:?}) to {}",
        entry.commit,
        entry.metrics.len(),
        entry.mode,
        entry.sources,
        history.display()
    );
    Ok(ExitCode::SUCCESS)
}

fn load_history(path: &Path) -> Result<Vec<HistoryEntry>, String> {
    let (entries, warnings) = load(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    for w in &warnings {
        eprintln!("track: warning: {w}");
    }
    Ok(entries)
}

fn run_gate(f: &Flags, entries: &[HistoryEntry]) -> Result<cedar_track::GateReport, String> {
    let opts = GateOptions {
        window: f.window,
        same_host_only: !f.any_host,
    };
    check(entries, &default_gates(f.threshold_pct), &opts)
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let f = parse_flags(args)?;
    let history = require_history(&f)?;
    let entries = load_history(&history)?;
    let report = run_gate(&f, &entries)?;
    println!(
        "gating commit {} (mode {}, {} gates ran, {} skipped)",
        report.commit,
        report.mode,
        report.outcomes.len(),
        report.skipped.len()
    );
    for o in report.worst_first() {
        println!("  {}", o.describe());
    }
    for s in &report.skipped {
        println!("  skip {s}");
    }
    let regressions = report.regressions();
    if regressions > 0 {
        eprintln!("track: {regressions} regression(s) beyond threshold — failing");
        return Ok(ExitCode::FAILURE);
    }
    println!("gate passed");
    Ok(ExitCode::SUCCESS)
}

fn cmd_render(args: &[String]) -> Result<ExitCode, String> {
    let f = parse_flags(args)?;
    let history = require_history(&f)?;
    let out = f
        .out
        .clone()
        .ok_or_else(|| "render needs --out".to_owned())?;
    let entries = load_history(&history)?;
    // The gate verdict is decorative here: render never fails the
    // build, it just shows the callout. An empty history renders an
    // empty dashboard.
    let gate = if entries.is_empty() {
        None
    } else {
        run_gate(&f, &entries).ok()
    };
    let html = render_dashboard(&entries, gate.as_ref())?;
    if let Some(parent) = out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(&out, &html).map_err(|e| format!("write {}: {e}", out.display()))?;
    println!(
        "rendered {} entries to {} ({} bytes)",
        entries.len(),
        out.display(),
        html.len()
    );
    Ok(ExitCode::SUCCESS)
}
