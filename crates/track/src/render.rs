//! The static perf dashboard: one self-contained HTML file.
//!
//! The renderer embeds the entire history as a `window.BENCHMARK_DATA`
//! JSON blob (the same pattern github-action-benchmark publishes to
//! `dev/bench/`) and a small inline script that draws per-metric trend
//! tables with SVG sparklines. No external fetches, no CDN scripts, no
//! stylesheets: the file opens from `file://` on an air-gapped box.
//!
//! The embedded blob is validated with the cedar-obs structural JSON
//! validator before it is interpolated, so a malformed entry can never
//! ship a dashboard with a syntax error in its data island.

use std::fmt::Write as _;

use cedar_obs::export::{escape_json, validate_json};

use crate::gate::GateReport;
use crate::history::HistoryEntry;

/// Renders the `window.BENCHMARK_DATA` JSON blob for `entries` and an
/// optional gate report.
///
/// # Errors
///
/// Returns a description when the assembled blob fails structural JSON
/// validation (which would indicate a renderer bug, not bad input).
pub fn render_data_blob(
    entries: &[HistoryEntry],
    gate: Option<&GateReport>,
) -> Result<String, String> {
    let mut out = String::with_capacity(1024 + entries.len() * 512);
    out.push_str("{\"schema\":\"cedar-track-dashboard/1\",\"entries\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&e.render_line());
    }
    out.push_str("],\"gate\":");
    match gate {
        None => out.push_str("null"),
        Some(g) => {
            let _ = write!(
                out,
                "{{\"commit\":\"{}\",\"mode\":\"{}\",\"regressions\":{},\"outcomes\":[",
                escape_json(&g.commit),
                escape_json(&g.mode),
                g.regressions()
            );
            for (i, o) in g.worst_first().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"metric\":\"{}\",\"newest\":{},\"baseline\":{},\"change_pct\":{},\"threshold_pct\":{},\"samples\":{},\"regressed\":{}}}",
                    escape_json(&o.metric),
                    finite(o.newest),
                    finite(o.baseline),
                    finite(o.change_pct),
                    finite(o.threshold_pct),
                    o.samples,
                    o.regressed
                );
            }
            out.push_str("],\"skipped\":[");
            for (i, s) in g.skipped.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", escape_json(s));
            }
            out.push_str("]}");
        }
    }
    out.push('}');
    validate_json(&out).map_err(|e| format!("dashboard data blob invalid: {e}"))?;
    Ok(out)
}

fn finite(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

/// Renders the full standalone dashboard HTML.
///
/// # Errors
///
/// Propagates [`render_data_blob`] errors.
pub fn render_dashboard(
    entries: &[HistoryEntry],
    gate: Option<&GateReport>,
) -> Result<String, String> {
    let blob = render_data_blob(entries, gate)?;
    // `</script` inside a string literal would terminate the data
    // island early; the validator-approved blob only ever contains it
    // via a metric name or note, but escape defensively anyway.
    let blob = blob.replace("</", "<\\/");
    let mut html = String::with_capacity(blob.len() + TEMPLATE_HEAD.len() + TEMPLATE_TAIL.len());
    html.push_str(TEMPLATE_HEAD);
    html.push_str(&blob);
    html.push_str(TEMPLATE_TAIL);
    Ok(html)
}

const TEMPLATE_HEAD: &str = r##"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>cedar perf history</title>
<style>
  body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; color: #1a1a1a; }
  h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: 0.3rem 0.6rem; border-bottom: 1px solid #e4e4e4; white-space: nowrap; }
  td.num { text-align: right; font-variant-numeric: tabular-nums; }
  .up { color: #0a7a2f; } .down { color: #b01515; } .flat { color: #777; }
  .callout { border: 1px solid #b01515; background: #fdf0f0; padding: 0.7rem 1rem; border-radius: 6px; margin: 1rem 0; }
  .callout.ok { border-color: #0a7a2f; background: #f0faf3; }
  svg.spark { vertical-align: middle; }
  .meta { color: #777; font-size: 0.85rem; }
  code { background: #f4f4f4; padding: 0 0.25rem; border-radius: 3px; }
</style>
</head>
<body>
<h1>cedar perf history</h1>
<div id="summary" class="meta"></div>
<div id="callouts"></div>
<div id="tables"></div>
<script>
window.BENCHMARK_DATA = "##;

const TEMPLATE_TAIL: &str = r##";
(function () {
  "use strict";
  var data = window.BENCHMARK_DATA;
  var entries = data.entries || [];
  function el(tag, attrs, text) {
    var e = document.createElement(tag);
    for (var k in attrs || {}) e.setAttribute(k, attrs[k]);
    if (text !== undefined) e.textContent = text;
    return e;
  }
  function fmt(v) {
    if (!isFinite(v)) return "-";
    if (Math.abs(v) >= 1000) return v.toLocaleString("en-US", { maximumFractionDigits: 0 });
    return v.toLocaleString("en-US", { maximumFractionDigits: 3 });
  }
  var summary = document.getElementById("summary");
  if (entries.length) {
    var last = entries[entries.length - 1];
    summary.textContent = entries.length + " entries; newest commit " +
      last.commit.slice(0, 12) + " (" + last.timestamp + ", mode " + last.mode +
      ", host " + last.host.hostname + ")";
  } else {
    summary.textContent = "history is empty";
  }
  var callouts = document.getElementById("callouts");
  if (data.gate) {
    var g = data.gate;
    var box = el("div", { "class": "callout" + (g.regressions ? "" : " ok") });
    box.appendChild(el("strong", {}, g.regressions
      ? g.regressions + " regression(s) at commit " + g.commit.slice(0, 12)
      : "gate passed at commit " + g.commit.slice(0, 12)));
    var list = el("ul", {});
    g.outcomes.slice(0, 8).forEach(function (o) {
      var sign = o.change_pct >= 0 ? "+" : "";
      list.appendChild(el("li", {},
        (o.regressed ? "REGRESSION " : "ok ") + o.metric + ": " + fmt(o.newest) +
        " vs median " + fmt(o.baseline) + " (" + sign + o.change_pct.toFixed(2) +
        "%, threshold " + o.threshold_pct + "%, " + o.samples + " samples)"));
    });
    box.appendChild(list);
    callouts.appendChild(box);
  }
  // Collect every metric name across the history, grouped by prefix.
  var names = {};
  entries.forEach(function (e) {
    Object.keys(e.metrics).forEach(function (k) { names[k] = true; });
  });
  var groups = {};
  Object.keys(names).sort().forEach(function (k) {
    var g = k.split(".")[0];
    (groups[g] = groups[g] || []).push(k);
  });
  function sparkline(values) {
    var w = 140, h = 24, pad = 2;
    var svg = document.createElementNS("http://www.w3.org/2000/svg", "svg");
    svg.setAttribute("class", "spark");
    svg.setAttribute("width", w); svg.setAttribute("height", h);
    var finite = values.filter(function (v) { return v !== null && isFinite(v); });
    if (finite.length < 2) return svg;
    var min = Math.min.apply(null, finite), max = Math.max.apply(null, finite);
    var span = (max - min) || 1;
    var pts = [];
    values.forEach(function (v, i) {
      if (v === null || !isFinite(v)) return;
      var x = pad + (w - 2 * pad) * (values.length === 1 ? 0 : i / (values.length - 1));
      var y = h - pad - (h - 2 * pad) * ((v - min) / span);
      pts.push(x.toFixed(1) + "," + y.toFixed(1));
    });
    var line = document.createElementNS("http://www.w3.org/2000/svg", "polyline");
    line.setAttribute("points", pts.join(" "));
    line.setAttribute("fill", "none");
    line.setAttribute("stroke", "#3467c4");
    line.setAttribute("stroke-width", "1.5");
    svg.appendChild(line);
    return svg;
  }
  var tables = document.getElementById("tables");
  Object.keys(groups).sort().forEach(function (group) {
    tables.appendChild(el("h2", {}, group));
    var table = el("table", {});
    var head = el("tr", {});
    ["metric", "trend", "latest", "first", "change"].forEach(function (t) {
      head.appendChild(el("th", {}, t));
    });
    table.appendChild(head);
    groups[group].forEach(function (metric) {
      var series = entries.map(function (e) {
        return metric in e.metrics ? e.metrics[metric] : null;
      });
      var present = series.filter(function (v) { return v !== null; });
      if (!present.length) return;
      var latest = present[present.length - 1], first = present[0];
      var row = el("tr", {});
      row.appendChild(el("td", {}, metric));
      var trend = el("td", {});
      trend.appendChild(sparkline(series));
      row.appendChild(trend);
      row.appendChild(el("td", { "class": "num" }, fmt(latest)));
      row.appendChild(el("td", { "class": "num" }, fmt(first)));
      var change = first ? ((latest - first) / Math.abs(first)) * 100 : 0;
      var cls = change > 0.5 ? "up" : change < -0.5 ? "down" : "flat";
      row.appendChild(el("td", { "class": "num " + cls },
        (change >= 0 ? "+" : "") + change.toFixed(2) + "%"));
      table.appendChild(row);
    });
    tables.appendChild(table);
  });
})();
</script>
</body>
</html>
"##;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{check, default_gates, GateOptions};
    use crate::history::{HostFingerprint, SCHEMA};
    use std::collections::BTreeMap;

    fn entry(commit: &str, value: f64) -> HistoryEntry {
        let mut metrics = BTreeMap::new();
        metrics.insert("perf.sweep.speedup".to_owned(), value);
        metrics.insert("serve.closed.max_throughput_rps".to_owned(), value * 100.0);
        HistoryEntry {
            schema: SCHEMA.to_owned(),
            commit: commit.to_owned(),
            timestamp: "2026-08-08T00:00:00Z".to_owned(),
            host: HostFingerprint {
                hostname: "h".to_owned(),
                cpus: 8,
                os: "linux/x86_64".to_owned(),
            },
            mode: "full".to_owned(),
            sources: vec!["perf".to_owned()],
            metrics,
            notes: None,
        }
    }

    #[test]
    fn data_blob_is_valid_json_and_embeds_every_entry() {
        let entries = vec![entry("aaa", 1.0), entry("bbb", 2.0), entry("ccc", 3.0)];
        let blob = render_data_blob(&entries, None).unwrap();
        validate_json(&blob).unwrap();
        for e in &entries {
            assert!(blob.contains(&e.commit), "missing {}", e.commit);
        }
        let parsed = cedar_obs::json::parse(&blob).unwrap();
        match parsed.get("entries") {
            Some(cedar_obs::json::Json::Arr(items)) => assert_eq!(items.len(), 3),
            other => panic!("entries not an array: {other:?}"),
        }
    }

    #[test]
    fn dashboard_is_standalone_html_with_data_island() {
        let entries = vec![entry("aaa", 1.0), entry("bbb", 2.0)];
        let report = check(&entries, &default_gates(10.0), &GateOptions::default()).unwrap();
        let html = render_dashboard(&entries, Some(&report)).unwrap();
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("window.BENCHMARK_DATA = {"));
        assert!(html.contains("perf.sweep.speedup"));
        // Standalone: no network fetches of any kind.
        for needle in [
            "http://", "https://", "src=", "fetch(", "@import", "link rel",
        ] {
            let hits = html.matches(needle).count();
            // The SVG namespace URI is the one permitted "http://" —
            // it is an identifier, not a fetch.
            let allowed = if needle == "http://" {
                html.matches("http://www.w3.org/2000/svg").count()
            } else {
                0
            };
            assert_eq!(hits, allowed, "dashboard must not reference {needle}");
        }
    }

    #[test]
    fn gate_report_lands_in_the_blob_worst_first() {
        let mut entries = vec![entry("aaa", 10.0), entry("bbb", 10.0)];
        entries.push(entry("ccc", 1.0)); // 90% drop on both gated metrics
        let report = check(&entries, &default_gates(10.0), &GateOptions::default()).unwrap();
        assert!(report.regressions() >= 1);
        let blob = render_data_blob(&entries, Some(&report)).unwrap();
        assert!(blob.contains("\"regressed\":true"));
        assert!(blob.contains("\"regressions\":2"));
    }

    #[test]
    fn script_terminator_in_notes_cannot_break_the_island() {
        let mut e = entry("aaa", 1.0);
        e.notes = Some("sneaky </script><script>alert(1)".to_owned());
        let html = render_dashboard(&[e], None).unwrap();
        // The raw terminator must not appear inside the data island.
        assert!(!html.contains("sneaky </script>"));
        assert!(html.contains("sneaky <\\/script>"));
    }

    #[test]
    fn empty_history_still_renders() {
        let html = render_dashboard(&[], None).unwrap();
        assert!(html.contains("window.BENCHMARK_DATA"));
    }
}
