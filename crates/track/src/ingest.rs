//! Report ingestion: turning the benchmark bins' JSON reports into
//! flat history metrics.
//!
//! Each ingester accepts the report text its producer writes —
//! `cedar-bench-perf/4` (`perf`), `cedar-bench-serve/4` (`loadgen`),
//! `cedar-bench-cluster/1` (`cluster_chaos`), `cedar-bench-zoo/1`
//! (`zoo`), `cedar-bench-compare/1` (`perf --compare --compare-out`)
//! — and returns an [`Ingested`] bundle: the run mode, a source tag,
//! and `metric → value` pairs under a stable dotted namespace
//! (`perf.*`, `serve.*`, `cluster.*`, `zoo.*`,
//! `cache.*`). The previous `/2` report schemas are still accepted;
//! they simply carry no commit stamp of their own.

use std::collections::BTreeMap;

use cedar_obs::json::{self, Json};

use crate::history::{HistoryEntry, HostFingerprint, SCHEMA};

/// One report's contribution to a history entry.
#[derive(Debug, Clone)]
pub struct Ingested {
    /// Source tag (`perf`, `serve`, `cluster`, `compare`).
    pub source: &'static str,
    /// Run mode the report declares (`full`, `smoke`, `chaos`).
    pub mode: String,
    /// Flat metrics extracted from the report.
    pub metrics: BTreeMap<String, f64>,
}

fn parse_report(text: &str, kinds: &[&str]) -> Result<(Json, String), String> {
    let v = json::parse(text)?;
    let schema = v
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("report has no schema field")?
        .to_owned();
    if !kinds.contains(&schema.as_str()) {
        return Err(format!(
            "unsupported report schema {schema:?} (want one of {kinds:?})"
        ));
    }
    Ok((v, schema))
}

fn num(v: &Json, key: &str) -> Option<f64> {
    v.get(key).and_then(Json::as_f64).filter(|n| n.is_finite())
}

fn put(metrics: &mut BTreeMap<String, f64>, key: &str, value: Option<f64>) {
    if let Some(v) = value {
        if v.is_finite() {
            metrics.insert(key.to_owned(), v);
        }
    }
}

/// Folds a report's `obs` object (flat `series → value`) into the
/// metric map under `prefix`.
fn put_obs(metrics: &mut BTreeMap<String, f64>, v: &Json, prefix: &str) {
    if let Some(Json::Obj(members)) = v.get("obs") {
        for (k, m) in members {
            if let Some(n) = m.as_f64().filter(|n| n.is_finite()) {
                metrics.insert(format!("{prefix}{k}"), n);
            }
        }
    }
}

/// Ingests a `BENCH_perf.json` report.
///
/// # Errors
///
/// Returns a description when the text is not a well-formed perf
/// report.
pub fn perf_report(text: &str) -> Result<Ingested, String> {
    let (v, _) = parse_report(
        text,
        &[
            "cedar-bench-perf/4",
            "cedar-bench-perf/3",
            "cedar-bench-perf/2",
        ],
    )?;
    let mut metrics = BTreeMap::new();
    let smoke = v.get("smoke").and_then(Json::as_bool).unwrap_or(false);
    // `/4` reports carry the specialized-vs-generic engine ratio on
    // the reference run.
    put(
        &mut metrics,
        "perf.engine_speedup",
        num(&v, "engine_speedup"),
    );
    if let Some(Json::Arr(runs)) = v.get("reference_runs") {
        for run in runs {
            let Some(name) = run.get("name").and_then(Json::as_str) else {
                continue;
            };
            put(
                &mut metrics,
                &format!("perf.{name}.wall_ms"),
                num(run, "wall_ms"),
            );
            put(
                &mut metrics,
                &format!("perf.{name}.sim_cycles_per_sec"),
                num(run, "sim_cycles_per_sec"),
            );
        }
    }
    if let Some(sweep) = v.get("sweep_suite") {
        put(
            &mut metrics,
            "perf.sweep.serial_ms",
            num(sweep, "serial_ms"),
        );
        put(
            &mut metrics,
            "perf.sweep.parallel_ms",
            num(sweep, "parallel_ms"),
        );
        put(&mut metrics, "perf.sweep.speedup", num(sweep, "speedup"));
        put(&mut metrics, "perf.sweep.cores", num(sweep, "cores"));
    }
    put(&mut metrics, "perf.peak_rss_kb", num(&v, "peak_rss_kb"));
    if metrics.is_empty() {
        return Err("perf report contains no ingestible metrics".to_owned());
    }
    Ok(Ingested {
        source: "perf",
        mode: if smoke { "smoke" } else { "full" }.to_owned(),
        metrics,
    })
}

/// Ingests a `BENCH_serve.json` report.
///
/// # Errors
///
/// Returns a description when the text is not a well-formed serve
/// report.
pub fn serve_report(text: &str) -> Result<Ingested, String> {
    let (v, _) = parse_report(
        text,
        &[
            "cedar-bench-serve/4",
            "cedar-bench-serve/3",
            "cedar-bench-serve/2",
        ],
    )?;
    let mut metrics = BTreeMap::new();
    let mode = v
        .get("mode")
        .and_then(Json::as_str)
        .unwrap_or("full")
        .to_owned();
    if let Some(dedup) = v.get("dedup") {
        put(&mut metrics, "serve.dedup.executed", num(dedup, "executed"));
        put(
            &mut metrics,
            "serve.dedup.coalesced",
            num(dedup, "coalesced"),
        );
    }
    if let Some(mix) = v.get("fault_mix") {
        put(
            &mut metrics,
            "serve.mix.healthy_dropped",
            num(mix, "healthy_dropped"),
        );
    }
    if let Some(Json::Arr(levels)) = v.get("closed_loop") {
        let mut max_rps = f64::NEG_INFINITY;
        let mut peak_p99 = None;
        let mut peak_clients = 0.0f64;
        for level in levels {
            let Some(clients) = num(level, "clients") else {
                continue;
            };
            let tag = format!("serve.closed.c{}", clients as u64);
            put(
                &mut metrics,
                &format!("{tag}.throughput_rps"),
                num(level, "throughput_rps"),
            );
            put(&mut metrics, &format!("{tag}.p50_us"), num(level, "p50_us"));
            put(&mut metrics, &format!("{tag}.p99_us"), num(level, "p99_us"));
            if let Some(rps) = num(level, "throughput_rps") {
                max_rps = max_rps.max(rps);
            }
            if clients >= peak_clients {
                peak_clients = clients;
                peak_p99 = num(level, "p99_us");
            }
        }
        if max_rps.is_finite() {
            metrics.insert("serve.closed.max_throughput_rps".to_owned(), max_rps);
        }
        put(&mut metrics, "serve.closed.peak_p99_us", peak_p99);
    }
    if let Some(open) = v.get("open_loop") {
        put(
            &mut metrics,
            "serve.open.achieved_rps",
            num(open, "achieved_rps"),
        );
        put(&mut metrics, "serve.open.p50_us", num(open, "p50_us"));
        put(&mut metrics, "serve.open.p99_us", num(open, "p99_us"));
    }
    // `/4` reports add the binary-protocol phase: a lockstep warm pass
    // followed by a connections-vs-latency sweep on the `b"CSRV"` wire
    // format. The curve flattens per level; the peak level (most
    // connections) feeds the `serve.conn.peak_p99_us` gate.
    if let Some(bin) = v.get("binary") {
        put(&mut metrics, "serve.binary.warm_rps", num(bin, "warm_rps"));
        put(&mut metrics, "serve.binary.peak_rps", num(bin, "peak_rps"));
        put(
            &mut metrics,
            "serve.binary.peak_p50_us",
            num(bin, "peak_p50_us"),
        );
        put(
            &mut metrics,
            "serve.binary.peak_p99_us",
            num(bin, "peak_p99_us"),
        );
        if let Some(Json::Arr(levels)) = bin.get("conn_curve") {
            let mut peak_conns = 0.0f64;
            let mut peak_p99 = None;
            for level in levels {
                let Some(conns) = num(level, "conns") else {
                    continue;
                };
                let tag = format!("serve.conn.c{}", conns as u64);
                put(
                    &mut metrics,
                    &format!("{tag}.throughput_rps"),
                    num(level, "throughput_rps"),
                );
                put(&mut metrics, &format!("{tag}.p50_us"), num(level, "p50_us"));
                put(&mut metrics, &format!("{tag}.p99_us"), num(level, "p99_us"));
                if conns >= peak_conns {
                    peak_conns = conns;
                    peak_p99 = num(level, "p99_us");
                }
            }
            put(&mut metrics, "serve.conn.peak_p99_us", peak_p99);
        }
    }
    put(&mut metrics, "serve.conns", num(&v, "conns"));
    put(&mut metrics, "serve.fd_limit", num(&v, "fd_limit"));
    if let Some(adv) = v.get("adversarial") {
        put(
            &mut metrics,
            "serve.adv.reaped_read",
            num(adv, "reaped_read"),
        );
        put(
            &mut metrics,
            "serve.adv.loris_conns",
            num(adv, "loris_conns"),
        );
    }
    put_obs(&mut metrics, &v, "serve.obs.");
    if metrics.is_empty() {
        return Err("serve report contains no ingestible metrics".to_owned());
    }
    Ok(Ingested {
        source: "serve",
        mode,
        metrics,
    })
}

/// Ingests a `BENCH_cluster.json` chaos-timing report.
///
/// # Errors
///
/// Returns a description when the text is not a well-formed cluster
/// report.
pub fn cluster_report(text: &str) -> Result<Ingested, String> {
    let (v, _) = parse_report(text, &["cedar-bench-cluster/1"])?;
    let mut metrics = BTreeMap::new();
    for key in [
        "workers",
        "points",
        "wall_ms",
        "points_per_sec",
        "worker_exits",
        "hangs_reaped",
        "garbage_frames",
        "restarts",
        "reissues",
        "stale_results",
        "cache_hits",
        "workers_lost",
    ] {
        put(&mut metrics, &format!("cluster.{key}"), num(&v, key));
    }
    put_obs(&mut metrics, &v, "cluster.obs.");
    if metrics.is_empty() {
        return Err("cluster report contains no ingestible metrics".to_owned());
    }
    Ok(Ingested {
        source: "cluster",
        mode: v
            .get("mode")
            .and_then(Json::as_str)
            .unwrap_or("chaos")
            .to_owned(),
        metrics,
    })
}

/// Ingests a `BENCH_zoo.json` machine-zoo report: sweep throughput,
/// the combining gain, and every machine's row flattened to
/// `zoo.<machine>.*` dotted metrics.
///
/// # Errors
///
/// Returns a description when the text is not a well-formed zoo
/// report.
pub fn zoo_report(text: &str) -> Result<Ingested, String> {
    let (v, _) = parse_report(text, &["cedar-bench-zoo/1"])?;
    let mut metrics = BTreeMap::new();
    let smoke = v.get("smoke").and_then(Json::as_bool).unwrap_or(false);
    put(&mut metrics, "zoo.cells", num(&v, "cells"));
    put(&mut metrics, "zoo.wall_ms", num(&v, "wall_ms"));
    put(
        &mut metrics,
        "zoo.points_per_sec",
        num(&v, "points_per_sec"),
    );
    put(
        &mut metrics,
        "zoo.combining_gain",
        num(&v, "combining_gain"),
    );
    if let Some(Json::Arr(machines)) = v.get("machines") {
        for m in machines {
            let Some(name) = m.get("name").and_then(Json::as_str) else {
                continue;
            };
            for key in [
                "passed",
                "efficiency_score",
                "instability",
                "ppt5_score",
                "hotspot_retention",
                "words_combined",
            ] {
                put(&mut metrics, &format!("zoo.{name}.{key}"), num(m, key));
            }
        }
    }
    if metrics.is_empty() {
        return Err("zoo report contains no ingestible metrics".to_owned());
    }
    Ok(Ingested {
        source: "zoo",
        mode: if smoke { "smoke" } else { "full" }.to_owned(),
        metrics,
    })
}

/// Ingests a `perf --compare --compare-out` cold/warm cache report.
///
/// # Errors
///
/// Returns a description when the text is not a well-formed compare
/// report.
pub fn compare_report(text: &str) -> Result<Ingested, String> {
    let (v, _) = parse_report(text, &["cedar-bench-compare/1"])?;
    let mut metrics = BTreeMap::new();
    put(&mut metrics, "cache.cold_ms", num(&v, "cold_ms"));
    put(&mut metrics, "cache.warm_ms", num(&v, "warm_ms"));
    put(&mut metrics, "cache.warm_speedup", num(&v, "warm_speedup"));
    if metrics.is_empty() {
        return Err("compare report contains no ingestible metrics".to_owned());
    }
    Ok(Ingested {
        source: "compare",
        mode: v
            .get("mode")
            .and_then(Json::as_str)
            .unwrap_or("full")
            .to_owned(),
        metrics,
    })
}

/// Combines one or more ingested reports into a single stamped history
/// entry. The entry's mode is the first report's; a mode clash among
/// the reports is an error (smoke and full numbers must never share a
/// gating scope).
///
/// # Errors
///
/// Returns a description when `reports` is empty or mixes modes.
pub fn build_entry(
    reports: &[Ingested],
    commit: String,
    timestamp: String,
    host: HostFingerprint,
    notes: Option<String>,
) -> Result<HistoryEntry, String> {
    let first = reports.first().ok_or("no reports to ingest")?;
    // `compare` reports inherit whatever mode the benchmark runs had;
    // only benchmark-bearing sources participate in the clash check.
    let bench: Vec<&Ingested> = reports.iter().filter(|r| r.source != "compare").collect();
    let mode = bench
        .first()
        .map_or_else(|| first.mode.clone(), |r| r.mode.clone());
    for r in &bench {
        if r.mode != mode {
            return Err(format!(
                "mode clash: {} report is {mode:?} but {} report is {:?}",
                bench[0].source, r.source, r.mode
            ));
        }
    }
    let mut metrics = BTreeMap::new();
    let mut sources = Vec::new();
    for r in reports {
        sources.push(r.source.to_owned());
        for (k, v) in &r.metrics {
            metrics.insert(k.clone(), *v);
        }
    }
    Ok(HistoryEntry {
        schema: SCHEMA.to_owned(),
        commit,
        timestamp,
        host,
        mode,
        sources,
        metrics,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const PERF: &str = r#"{
  "schema": "cedar-bench-perf/4",
  "commit": "abc",
  "timestamp": "2026-08-08T00:00:00Z",
  "smoke": false,
  "threads": 1,
  "peak_rss_kb": 9512,
  "reference_runs": [
    {"name": "table2_rk_prefetch", "engine": "specialized", "wall_ms": 45.875, "sim_cycles": 16949, "sim_cycles_per_sec": 369452},
    {"name": "table2_rk_prefetch_generic", "engine": "generic", "wall_ms": 210.1, "sim_cycles": 16949, "sim_cycles_per_sec": 80671},
    {"name": "hotspot_sweep", "engine": "n/a", "wall_ms": 138.794, "sim_cycles": null, "sim_cycles_per_sec": null}
  ],
  "engine_speedup": 4.580,
  "sweep_suite": {"name": "hotspot_sweep", "serial_ms": 133.5, "serial_threads": 1, "parallel_ms": 138.8, "threads": 4, "cores": 4, "speedup": 0.962}
}"#;

    #[test]
    fn perf_report_flattens_to_namespaced_metrics() {
        let ing = perf_report(PERF).unwrap();
        assert_eq!(ing.mode, "full");
        assert_eq!(
            ing.metrics["perf.table2_rk_prefetch.sim_cycles_per_sec"],
            369_452.0
        );
        assert_eq!(
            ing.metrics["perf.table2_rk_prefetch_generic.sim_cycles_per_sec"],
            80_671.0
        );
        assert_eq!(ing.metrics["perf.engine_speedup"], 4.58);
        assert_eq!(ing.metrics["perf.sweep.cores"], 4.0);
        assert_eq!(ing.metrics["perf.sweep.speedup"], 0.962);
        assert_eq!(ing.metrics["perf.peak_rss_kb"], 9512.0);
        // A null rate must simply be absent, not zero.
        assert!(!ing
            .metrics
            .contains_key("perf.hotspot_sweep.sim_cycles_per_sec"));
        assert!(ing.metrics.contains_key("perf.hotspot_sweep.wall_ms"));
    }

    #[test]
    fn serve_report_summarises_the_knee() {
        let text = r#"{
  "schema": "cedar-bench-serve/3",
  "mode": "smoke",
  "dedup": {"burst": 8, "executed": 1, "cache_hits": 0, "coalesced": 7},
  "fault_mix": {"requests": 24, "ok": 23, "degraded": 1, "errors": 0, "healthy_dropped": 0},
  "closed_loop": [
    {"clients": 1, "requests": 6, "throughput_rps": 1533.3, "p50_us": 626, "p95_us": 724, "p99_us": 724},
    {"clients": 4, "requests": 24, "throughput_rps": 1489.0, "p50_us": 2576, "p95_us": 2897, "p99_us": 4354}
  ],
  "open_loop": {"offered_rps": 40.0, "achieved_rps": 39.25, "p50_us": 744, "p99_us": 1012},
  "adversarial": {"loris_conns": 3, "reaped_read": 3, "partial_write_conns": 2, "idle_survived": true},
  "obs": {"serve.conn.reaped_read": 3, "serve.queue.depth": 0},
  "drained": true
}"#;
        let ing = serve_report(text).unwrap();
        assert_eq!(ing.mode, "smoke");
        assert_eq!(ing.metrics["serve.closed.max_throughput_rps"], 1533.3);
        assert_eq!(ing.metrics["serve.closed.peak_p99_us"], 4354.0);
        assert_eq!(ing.metrics["serve.closed.c4.p99_us"], 4354.0);
        assert_eq!(ing.metrics["serve.open.p99_us"], 1012.0);
        assert_eq!(ing.metrics["serve.obs.serve.conn.reaped_read"], 3.0);
    }

    #[test]
    fn serve_v4_report_flattens_the_binary_curve() {
        let text = r#"{
  "schema": "cedar-bench-serve/4",
  "mode": "full",
  "dedup": {"burst": 8, "executed": 1, "cache_hits": 0, "coalesced": 7},
  "closed_loop": [
    {"clients": 4, "requests": 24, "throughput_rps": 1489.0, "p50_us": 2576, "p95_us": 2897, "p99_us": 4354}
  ],
  "binary": {
    "warm_jobs": 32,
    "warm_rps": 950.5,
    "peak_rps": 21500.0,
    "peak_p50_us": 1800,
    "peak_p99_us": 9200,
    "conn_curve": [
      {"conns": 16, "requests": 4000, "throughput_rps": 18000.0, "p50_us": 300, "p99_us": 900},
      {"conns": 10000, "requests": 20000, "throughput_rps": 21500.0, "p50_us": 1800, "p99_us": 9200}
    ]
  },
  "conns": 10000,
  "fd_limit": 20000,
  "obs": {"serve.proto.corrupt": 0},
  "drained": true
}"#;
        let ing = serve_report(text).unwrap();
        assert_eq!(ing.mode, "full");
        assert_eq!(ing.metrics["serve.binary.peak_rps"], 21500.0);
        assert_eq!(ing.metrics["serve.binary.warm_rps"], 950.5);
        assert_eq!(ing.metrics["serve.conn.c16.throughput_rps"], 18000.0);
        assert_eq!(ing.metrics["serve.conn.c10000.p99_us"], 9200.0);
        // The gate metric is the p99 at the *widest* level, not the
        // best one.
        assert_eq!(ing.metrics["serve.conn.peak_p99_us"], 9200.0);
        assert_eq!(ing.metrics["serve.conns"], 10000.0);
        assert_eq!(ing.metrics["serve.fd_limit"], 20000.0);
        assert_eq!(ing.metrics["serve.obs.serve.proto.corrupt"], 0.0);
    }

    #[test]
    fn cluster_and_compare_reports_ingest() {
        let cluster = r#"{"schema":"cedar-bench-cluster/1","mode":"chaos","workers":4,"points":32,"wall_ms":900.5,"points_per_sec":35.5,"worker_exits":2,"hangs_reaped":1,"garbage_frames":1,"restarts":3,"reissues":5,"stale_results":0,"cache_hits":0,"obs":{"cluster.jobs.committed":32}}"#;
        let ing = cluster_report(cluster).unwrap();
        assert_eq!(ing.metrics["cluster.points_per_sec"], 35.5);
        assert_eq!(ing.metrics["cluster.obs.cluster.jobs.committed"], 32.0);

        let compare = r#"{"schema":"cedar-bench-compare/1","mode":"smoke","cold_ms":500.0,"warm_ms":1.2,"warm_speedup":416.6}"#;
        let ing = compare_report(compare).unwrap();
        assert_eq!(ing.metrics["cache.warm_speedup"], 416.6);
    }

    const ZOO: &str = r#"{
  "schema": "cedar-bench-zoo/1",
  "commit": "abc",
  "timestamp": "2026-08-08T00:00:00Z",
  "smoke": true,
  "threads": 4,
  "cells": 32,
  "wall_ms": 812.5,
  "points_per_sec": 39.4,
  "combining_gain": 2.31,
  "machines": [
    {"name": "cedar", "processors": 32, "ppt1": 1, "ppt2": 1, "ppt3": 1, "ppt4": 0, "ppt5": 0, "passed": 3, "efficiency_score": 0.7123, "instability": 4.1, "ppt5_score": 0.12, "hotspot_retention": 0.45, "words_combined": 0},
    {"name": "ultra", "processors": 32, "ppt1": 1, "ppt2": 1, "ppt3": 1, "ppt4": 1, "ppt5": 0, "passed": 4, "efficiency_score": 0.8001, "instability": 3.9, "ppt5_score": 0.10, "hotspot_retention": 0.91, "words_combined": 1534}
  ]
}"#;

    #[test]
    fn zoo_report_flattens_each_machine_row() {
        let ing = zoo_report(ZOO).unwrap();
        assert_eq!(ing.source, "zoo");
        assert_eq!(ing.mode, "smoke");
        assert_eq!(ing.metrics["zoo.cells"], 32.0);
        assert_eq!(ing.metrics["zoo.points_per_sec"], 39.4);
        assert_eq!(ing.metrics["zoo.combining_gain"], 2.31);
        assert_eq!(ing.metrics["zoo.cedar.efficiency_score"], 0.7123);
        assert_eq!(ing.metrics["zoo.cedar.passed"], 3.0);
        assert_eq!(ing.metrics["zoo.ultra.words_combined"], 1534.0);
        assert_eq!(ing.metrics["zoo.ultra.hotspot_retention"], 0.91);
    }

    #[test]
    fn zoo_gate_metrics_are_in_the_default_set() {
        let gates = crate::gate::default_gates(10.0);
        let ing = zoo_report(ZOO).unwrap();
        let gated: Vec<&str> = gates
            .iter()
            .filter(|g| ing.metrics.contains_key(&g.metric))
            .map(|g| g.metric.as_str())
            .collect();
        assert_eq!(
            gated,
            vec!["zoo.points_per_sec", "zoo.cedar.efficiency_score"]
        );
    }

    #[test]
    fn wrong_schema_is_rejected() {
        assert!(perf_report(r#"{"schema":"cedar-bench-serve/3"}"#).is_err());
        assert!(serve_report(r#"{"schema":"nope/1"}"#).is_err());
        assert!(cluster_report("{}").is_err());
        assert!(zoo_report(r#"{"schema":"cedar-bench-perf/4"}"#).is_err());
    }

    #[test]
    fn build_entry_merges_sources_and_rejects_mode_clash() {
        let perf = perf_report(PERF).unwrap();
        let host = HostFingerprint {
            hostname: "h".to_owned(),
            cpus: 4,
            os: "linux/x86_64".to_owned(),
        };
        let entry = build_entry(
            std::slice::from_ref(&perf),
            "sha".to_owned(),
            "2026-08-08T00:00:00Z".to_owned(),
            host.clone(),
            None,
        )
        .unwrap();
        assert_eq!(entry.mode, "full");
        assert_eq!(entry.sources, vec!["perf"]);
        assert!(entry.metrics.len() >= 5);

        let mut smoke = perf.clone();
        smoke.mode = "smoke".to_owned();
        smoke.source = "serve";
        assert!(build_entry(&[perf, smoke], "sha".to_owned(), "t".to_owned(), host, None).is_err());
    }
}
