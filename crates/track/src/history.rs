//! The versioned, append-only benchmark history format.
//!
//! A history file is JSON Lines: one [`HistoryEntry`] per line, each a
//! self-describing JSON object carrying its schema tag, the commit it
//! measured, an ISO-8601 timestamp, a host fingerprint, the run mode,
//! which report kinds fed it, and a flat `metric name → value` map.
//! Appending never rewrites earlier lines, so the file is merge- and
//! `git diff`-friendly: every perf-relevant PR adds exactly the lines
//! it measured.
//!
//! Robustness contract: a corrupt or truncated line (a killed process
//! mid-append, a botched merge) is *quarantined as a warning*, never a
//! crash — the surviving entries still parse, gate and render.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

use cedar_obs::export::escape_json;
use cedar_obs::json::{self, Json};

/// The history line schema this crate reads and writes.
pub const SCHEMA: &str = "cedar-track/1";

/// Where a measurement ran: enough to recognise that numbers from a
/// different machine are not comparable to ours.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostFingerprint {
    /// Kernel hostname (or `unknown`).
    pub hostname: String,
    /// Logical CPUs visible to the process.
    pub cpus: u64,
    /// `os/arch`, e.g. `linux/x86_64`.
    pub os: String,
}

impl HostFingerprint {
    /// True when two fingerprints plausibly describe the same class of
    /// machine — the scope regression gating trusts by default.
    #[must_use]
    pub fn comparable(&self, other: &HostFingerprint) -> bool {
        self.hostname == other.hostname && self.cpus == other.cpus && self.os == other.os
    }
}

/// One measured point in the history: a commit, a host, a moment, and
/// the flat metrics the benchmark reports produced there.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Git commit id the measurement describes (or `unknown`).
    pub commit: String,
    /// ISO-8601 UTC timestamp of the measurement.
    pub timestamp: String,
    /// Host fingerprint.
    pub host: HostFingerprint,
    /// Run mode (`full`, `smoke`, `chaos`, …); gating only compares
    /// entries of the same mode.
    pub mode: String,
    /// Which report kinds fed this entry (`perf`, `serve`, `cluster`,
    /// `compare`).
    pub sources: Vec<String>,
    /// Flat metric map. Only finite values are representable.
    pub metrics: BTreeMap<String, f64>,
    /// Free-form annotation, if any.
    pub notes: Option<String>,
}

impl HistoryEntry {
    /// Renders the entry as its single canonical JSON line (no
    /// trailing newline).
    #[must_use]
    pub fn render_line(&self) -> String {
        let mut out = String::with_capacity(256 + self.metrics.len() * 48);
        out.push_str(&format!(
            "{{\"schema\":\"{}\",\"commit\":\"{}\",\"timestamp\":\"{}\"",
            escape_json(&self.schema),
            escape_json(&self.commit),
            escape_json(&self.timestamp)
        ));
        out.push_str(&format!(
            ",\"host\":{{\"hostname\":\"{}\",\"cpus\":{},\"os\":\"{}\"}}",
            escape_json(&self.host.hostname),
            self.host.cpus,
            escape_json(&self.host.os)
        ));
        out.push_str(&format!(",\"mode\":\"{}\"", escape_json(&self.mode)));
        out.push_str(",\"sources\":[");
        for (i, s) in self.sources.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", escape_json(s)));
        }
        out.push_str("],\"metrics\":{");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape_json(k), render_f64(*v)));
        }
        out.push('}');
        match &self.notes {
            Some(n) => out.push_str(&format!(",\"notes\":\"{}\"", escape_json(n))),
            None => out.push_str(",\"notes\":null"),
        }
        out.push('}');
        debug_assert!(
            cedar_obs::export::validate_json(&out).is_ok(),
            "history line must be valid JSON"
        );
        out
    }

    /// Parses one history line.
    ///
    /// # Errors
    ///
    /// Returns a description when the line is not valid JSON, carries
    /// the wrong schema, or is missing a required field.
    pub fn parse_line(line: &str) -> Result<HistoryEntry, String> {
        let v = json::parse(line)?;
        let schema = str_field(&v, "schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported history schema {schema:?}"));
        }
        let host = v.get("host").ok_or("missing host")?;
        let mut metrics = BTreeMap::new();
        match v.get("metrics") {
            Some(Json::Obj(members)) => {
                for (k, m) in members {
                    let value = m
                        .as_f64()
                        .ok_or_else(|| format!("metric {k:?} is not a number"))?;
                    metrics.insert(k.clone(), value);
                }
            }
            _ => return Err("missing metrics object".to_owned()),
        }
        let mut sources = Vec::new();
        if let Some(Json::Arr(items)) = v.get("sources") {
            for s in items {
                sources.push(s.as_str().ok_or("sources must be strings")?.to_owned());
            }
        }
        Ok(HistoryEntry {
            schema,
            commit: str_field(&v, "commit")?,
            timestamp: str_field(&v, "timestamp")?,
            host: HostFingerprint {
                hostname: str_field(host, "hostname")?,
                cpus: host
                    .get("cpus")
                    .and_then(Json::as_u64)
                    .ok_or("missing host.cpus")?,
                os: str_field(host, "os")?,
            },
            mode: str_field(&v, "mode")?,
            sources,
            metrics,
            notes: v.get("notes").and_then(Json::as_str).map(str::to_owned),
        })
    }
}

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing field {key:?}"))
}

/// Renders a finite f64 as JSON; non-finite values (unrepresentable in
/// JSON) degrade to 0 rather than corrupting the line.
fn render_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

/// Parses a whole history document. Corrupt lines do not fail the
/// parse: each contributes a warning (with its 1-based line number)
/// and is skipped.
#[must_use]
pub fn parse_history(text: &str) -> (Vec<HistoryEntry>, Vec<String>) {
    let mut entries = Vec::new();
    let mut warnings = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match HistoryEntry::parse_line(line) {
            Ok(e) => entries.push(e),
            Err(e) => warnings.push(format!("history line {} quarantined: {e}", idx + 1)),
        }
    }
    (entries, warnings)
}

/// Loads a history file; a missing file is an empty history.
///
/// # Errors
///
/// Returns the I/O error when the file exists but cannot be read.
pub fn load(path: &Path) -> std::io::Result<(Vec<HistoryEntry>, Vec<String>)> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(parse_history(&text)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok((Vec::new(), Vec::new())),
        Err(e) => Err(e),
    }
}

/// Appends one entry to the history file, creating it (and its parent
/// directory) on first use. Strictly append-only: existing lines are
/// never rewritten.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn append(path: &Path, entry: &HistoryEntry) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut line = entry.render_line();
    line.push('\n');
    file.write_all(line.as_bytes())
}

/// Formats `secs` seconds since the Unix epoch as an ISO-8601 UTC
/// timestamp (`2026-08-08T12:34:56Z`). Purely arithmetic — no locale,
/// no syscalls — so identical inputs give identical strings anywhere.
#[must_use]
pub fn iso8601_utc(secs: u64) -> String {
    let days = secs / 86_400;
    let rem = secs % 86_400;
    let (h, m, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    // Howard Hinnant's civil-from-days, shifted to the 1970 epoch.
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { y + 1 } else { y };
    format!("{year:04}-{month:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HistoryEntry {
        HistoryEntry {
            schema: SCHEMA.to_owned(),
            commit: "abc123".to_owned(),
            timestamp: "2026-08-08T00:00:00Z".to_owned(),
            host: HostFingerprint {
                hostname: "ci-box".to_owned(),
                cpus: 8,
                os: "linux/x86_64".to_owned(),
            },
            mode: "smoke".to_owned(),
            sources: vec!["perf".to_owned()],
            metrics: [
                ("perf.sweep.speedup".to_owned(), 2.5),
                (
                    "perf.table2_rk_prefetch.sim_cycles_per_sec".to_owned(),
                    90_214.0,
                ),
            ]
            .into_iter()
            .collect(),
            notes: None,
        }
    }

    #[test]
    fn entry_round_trips_through_its_line() {
        let e = sample();
        let line = e.render_line();
        cedar_obs::export::validate_json(&line).unwrap();
        let back = HistoryEntry::parse_line(&line).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn notes_and_escapes_round_trip() {
        let mut e = sample();
        e.notes = Some("a \"quoted\"\nnote \\ with escapes".to_owned());
        e.commit = "deadbeef".to_owned();
        let back = HistoryEntry::parse_line(&e.render_line()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn corrupt_lines_are_quarantined_not_fatal() {
        let good = sample().render_line();
        let text = format!(
            "{good}\n{{\"schema\":\"cedar-track/1\",\"commit\":\n{}\nnot json at all\n{good}\n",
            // A truncated copy of a good line: the classic
            // killed-mid-append artifact.
            &good[..good.len() / 2]
        );
        let (entries, warnings) = parse_history(&text);
        assert_eq!(entries.len(), 2);
        assert_eq!(warnings.len(), 3, "{warnings:?}");
        assert!(warnings.iter().all(|w| w.contains("quarantined")));
    }

    #[test]
    fn wrong_schema_is_quarantined() {
        let text = "{\"schema\":\"cedar-track/99\",\"commit\":\"x\"}\n";
        let (entries, warnings) = parse_history(text);
        assert!(entries.is_empty());
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("cedar-track/99"));
    }

    #[test]
    fn append_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("cedar-track-test-{}", std::process::id()));
        let path = dir.join("nested").join("history.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        let e = sample();
        append(&path, &e).unwrap();
        append(&path, &e).unwrap();
        let (entries, warnings) = load(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(warnings.is_empty());
        let (none, no_warn) = load(&dir.join("absent.jsonl")).unwrap();
        assert!(none.is_empty() && no_warn.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn iso8601_matches_known_instants() {
        assert_eq!(iso8601_utc(0), "1970-01-01T00:00:00Z");
        assert_eq!(iso8601_utc(86_400), "1970-01-02T00:00:00Z");
        // 2000-02-29 existed; 2100 won't. 951_782_400 = 2000-02-29.
        assert_eq!(iso8601_utc(951_782_400), "2000-02-29T00:00:00Z");
        assert_eq!(iso8601_utc(1_754_611_200), "2025-08-08T00:00:00Z");
        assert_eq!(iso8601_utc(1_754_700_896), "2025-08-09T00:54:56Z");
    }

    #[test]
    fn non_finite_metrics_degrade_to_zero() {
        let mut e = sample();
        e.metrics.insert("bad".to_owned(), f64::INFINITY);
        let back = HistoryEntry::parse_line(&e.render_line()).unwrap();
        assert_eq!(back.metrics["bad"], 0.0);
    }
}
