//! Run metadata: git commit, wall-clock timestamp, host fingerprint.
//!
//! Everything here is best-effort and overridable: benchmarks must
//! still produce stampable reports in a container with no `git`, no
//! hostname and a frozen clock. The override environment variables
//! (`CEDAR_TRACK_COMMIT`, `CEDAR_TRACK_TIMESTAMP`) also make tests and
//! CI deterministic.

use std::process::Command;

use crate::history::{iso8601_utc, HostFingerprint};

/// Environment override for the commit id stamp.
pub const COMMIT_ENV: &str = "CEDAR_TRACK_COMMIT";

/// Environment override for the timestamp stamp (used verbatim).
pub const TIMESTAMP_ENV: &str = "CEDAR_TRACK_TIMESTAMP";

/// The commit id to stamp measurements with: the override variable if
/// set, else `git rev-parse HEAD` in the current directory, else
/// `"unknown"`.
#[must_use]
pub fn commit_id() -> String {
    if let Ok(v) = std::env::var(COMMIT_ENV) {
        if !v.trim().is_empty() {
            return v.trim().to_owned();
        }
    }
    let out = Command::new("git").args(["rev-parse", "HEAD"]).output();
    match out {
        Ok(out) if out.status.success() => {
            let sha = String::from_utf8_lossy(&out.stdout).trim().to_owned();
            if sha.is_empty() {
                "unknown".to_owned()
            } else {
                sha
            }
        }
        _ => "unknown".to_owned(),
    }
}

/// The current UTC instant as ISO-8601, honouring the override
/// variable.
#[must_use]
pub fn timestamp() -> String {
    if let Ok(v) = std::env::var(TIMESTAMP_ENV) {
        if !v.trim().is_empty() {
            return v.trim().to_owned();
        }
    }
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    iso8601_utc(secs)
}

/// This machine's fingerprint: hostname, logical CPUs, `os/arch`.
#[must_use]
pub fn host_fingerprint() -> HostFingerprint {
    let hostname = std::fs::read_to_string("/proc/sys/kernel/hostname")
        .ok()
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok().filter(|s| !s.is_empty()))
        .unwrap_or_else(|| "unknown".to_owned());
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) as u64;
    HostFingerprint {
        hostname,
        cpus,
        os: format!("{}/{}", std::env::consts::OS, std::env::consts::ARCH),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_well_formed() {
        let h = host_fingerprint();
        assert!(h.cpus >= 1);
        assert!(h.os.contains('/'));
        assert!(!h.hostname.is_empty());
    }

    #[test]
    fn commit_and_timestamp_never_panic() {
        // Whatever the environment, both must yield something usable.
        assert!(!commit_id().is_empty());
        let ts = timestamp();
        assert!(ts.contains('T'), "{ts}");
    }
}
