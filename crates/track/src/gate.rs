//! Regression gating: compare the newest history entry against a
//! trailing median of its predecessors.
//!
//! The gate is deliberately conservative about what it compares:
//! only earlier entries with the *same mode* (smoke numbers never
//! judge full runs) and — by default — the *same host fingerprint*
//! (a laptop never judges the CI runner) participate in a metric's
//! baseline. The baseline is the median of the last `window`
//! comparable values, so one noisy historical run cannot flip a
//! verdict. A metric with no comparable history passes vacuously and
//! is reported as skipped — gating grows teeth as history accretes.
//!
//! Threshold semantics: a change **exactly at** the threshold passes;
//! only strictly beyond it fails. "10% regression" on a
//! higher-is-better metric therefore means `newest < median * 0.9`.

use std::fmt::Write as _;

use crate::history::HistoryEntry;

/// Which way "better" points for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger numbers are better (throughput, speedup, cycles/sec).
    HigherIsBetter,
    /// Smaller numbers are better (latency percentiles, wall time).
    LowerIsBetter,
}

/// One gated metric: its name, direction, and allowed regression.
#[derive(Debug, Clone)]
pub struct GateSpec {
    /// The metric key in [`HistoryEntry::metrics`].
    pub metric: String,
    /// Which direction is an improvement.
    pub direction: Direction,
    /// Allowed adverse change, percent; beyond this strictly fails.
    pub threshold_pct: f64,
}

impl GateSpec {
    /// A higher-is-better gate at `threshold_pct`.
    #[must_use]
    pub fn higher(metric: &str, threshold_pct: f64) -> GateSpec {
        GateSpec {
            metric: metric.to_owned(),
            direction: Direction::HigherIsBetter,
            threshold_pct,
        }
    }

    /// A lower-is-better gate at `threshold_pct`.
    #[must_use]
    pub fn lower(metric: &str, threshold_pct: f64) -> GateSpec {
        GateSpec {
            metric: metric.to_owned(),
            direction: Direction::LowerIsBetter,
            threshold_pct,
        }
    }
}

/// The default gated metrics, all at `threshold_pct`: the numbers
/// ROADMAP items 1–3 are judged by. Simulation rate, sweep speedup,
/// serve throughput/p99, cache warm speedup and cluster sweep rate.
#[must_use]
pub fn default_gates(threshold_pct: f64) -> Vec<GateSpec> {
    vec![
        GateSpec::higher("perf.table2_rk_prefetch.sim_cycles_per_sec", threshold_pct),
        GateSpec::higher("perf.faulted_trace.sim_cycles_per_sec", threshold_pct),
        // The specialized-vs-generic ratio on the reference run: the
        // specialized engine's reason to exist, gated so it cannot
        // quietly erode while both absolute rates drift.
        GateSpec::higher("perf.engine_speedup", threshold_pct),
        GateSpec::higher("perf.sweep.speedup", threshold_pct),
        GateSpec::higher("serve.closed.max_throughput_rps", threshold_pct),
        GateSpec::lower("serve.closed.peak_p99_us", threshold_pct),
        GateSpec::lower("serve.open.p99_us", threshold_pct),
        // The binary-protocol reactor path: peak pipelined throughput
        // and tail latency at the widest connection sweep level.
        GateSpec::higher("serve.binary.peak_rps", threshold_pct),
        GateSpec::lower("serve.conn.peak_p99_us", threshold_pct),
        GateSpec::higher("cache.warm_speedup", threshold_pct),
        GateSpec::higher("cluster.points_per_sec", threshold_pct),
        // The machine zoo (ROADMAP item 4): sweep throughput, and the
        // Cedar row's composite PPT efficiency — the paper's own
        // machine may never quietly lose ground in its own zoo.
        GateSpec::higher("zoo.points_per_sec", threshold_pct),
        GateSpec::higher("zoo.cedar.efficiency_score", threshold_pct),
    ]
}

/// How the gate scopes its baseline.
#[derive(Debug, Clone)]
pub struct GateOptions {
    /// Trailing comparable entries to take the median over.
    pub window: usize,
    /// Compare only entries whose host fingerprint matches the newest
    /// entry's (default). Disable to gate across machines.
    pub same_host_only: bool,
}

impl Default for GateOptions {
    fn default() -> Self {
        GateOptions {
            window: 5,
            same_host_only: true,
        }
    }
}

/// One gate's verdict.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// The gated metric.
    pub metric: String,
    /// The newest entry's value.
    pub newest: f64,
    /// Trailing median it was compared against.
    pub baseline: f64,
    /// Signed change, percent, relative to the baseline.
    pub change_pct: f64,
    /// The gate's threshold.
    pub threshold_pct: f64,
    /// Direction of the gate.
    pub direction: Direction,
    /// Comparable historical samples behind the baseline.
    pub samples: usize,
    /// True when the change is strictly beyond the threshold in the
    /// adverse direction.
    pub regressed: bool,
}

impl GateOutcome {
    /// One human-readable verdict line naming the metric.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let verdict = if self.regressed { "REGRESSION" } else { "ok" };
        let _ = write!(
            out,
            "{verdict} {}: {:.4} vs trailing median {:.4} ({:+.2}%, threshold {}%, {} samples)",
            self.metric,
            self.newest,
            self.baseline,
            self.change_pct,
            self.threshold_pct,
            self.samples
        );
        out
    }
}

/// The whole gate run over one history.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Commit id of the entry under judgement.
    pub commit: String,
    /// Mode scope the comparison ran in.
    pub mode: String,
    /// Per-gate verdicts, in gate order.
    pub outcomes: Vec<GateOutcome>,
    /// Gates that could not run (metric absent from the newest entry,
    /// or no comparable history), with reasons.
    pub skipped: Vec<String>,
}

impl GateReport {
    /// Number of failed gates.
    #[must_use]
    pub fn regressions(&self) -> usize {
        self.outcomes.iter().filter(|o| o.regressed).count()
    }

    /// The worst outcome first: most adverse relative change at the
    /// top, regressions before passes.
    #[must_use]
    pub fn worst_first(&self) -> Vec<GateOutcome> {
        let mut sorted = self.outcomes.clone();
        sorted.sort_by(|a, b| {
            b.regressed
                .cmp(&a.regressed)
                .then_with(|| adverse(b).total_cmp(&adverse(a)))
        });
        sorted
    }
}

/// The adverse magnitude of an outcome: positive when the change hurts.
fn adverse(o: &GateOutcome) -> f64 {
    match o.direction {
        Direction::HigherIsBetter => -o.change_pct,
        Direction::LowerIsBetter => o.change_pct,
    }
}

fn median(sorted: &mut [f64]) -> f64 {
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        f64::midpoint(sorted[n / 2 - 1], sorted[n / 2])
    }
}

/// Gates the newest entry of `entries` against its comparable history.
///
/// # Errors
///
/// Returns a description when the history is empty.
pub fn check(
    entries: &[HistoryEntry],
    gates: &[GateSpec],
    opts: &GateOptions,
) -> Result<GateReport, String> {
    let newest = entries.last().ok_or("history is empty — nothing to gate")?;
    let prior = &entries[..entries.len() - 1];
    let mut report = GateReport {
        commit: newest.commit.clone(),
        mode: newest.mode.clone(),
        ..GateReport::default()
    };
    for gate in gates {
        let Some(&value) = newest.metrics.get(&gate.metric) else {
            report
                .skipped
                .push(format!("{}: not measured by the newest entry", gate.metric));
            continue;
        };
        let mut comparable: Vec<f64> = prior
            .iter()
            .filter(|e| e.mode == newest.mode)
            .filter(|e| !opts.same_host_only || e.host.comparable(&newest.host))
            .filter_map(|e| e.metrics.get(&gate.metric).copied())
            .collect();
        if comparable.is_empty() {
            report.skipped.push(format!(
                "{}: no comparable history (mode {:?}{})",
                gate.metric,
                newest.mode,
                if opts.same_host_only {
                    ", same host"
                } else {
                    ""
                }
            ));
            continue;
        }
        let start = comparable.len().saturating_sub(opts.window.max(1));
        let windowed = &mut comparable[start..];
        let samples = windowed.len();
        let baseline = median(windowed);
        let change_pct = if baseline == 0.0 {
            0.0
        } else {
            (value - baseline) / baseline.abs() * 100.0
        };
        let t = gate.threshold_pct / 100.0;
        let regressed = match gate.direction {
            // Exactly at the boundary passes; strictly beyond fails.
            Direction::HigherIsBetter => value < baseline * (1.0 - t),
            Direction::LowerIsBetter => value > baseline * (1.0 + t),
        };
        report.outcomes.push(GateOutcome {
            metric: gate.metric.clone(),
            newest: value,
            baseline,
            change_pct,
            threshold_pct: gate.threshold_pct,
            direction: gate.direction,
            samples,
            regressed,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{HostFingerprint, SCHEMA};
    use std::collections::BTreeMap;

    fn host(name: &str) -> HostFingerprint {
        HostFingerprint {
            hostname: name.to_owned(),
            cpus: 8,
            os: "linux/x86_64".to_owned(),
        }
    }

    fn entry(commit: &str, mode: &str, hostname: &str, value: f64) -> HistoryEntry {
        let mut metrics = BTreeMap::new();
        metrics.insert(
            "perf.table2_rk_prefetch.sim_cycles_per_sec".to_owned(),
            value,
        );
        HistoryEntry {
            schema: SCHEMA.to_owned(),
            commit: commit.to_owned(),
            timestamp: "2026-08-08T00:00:00Z".to_owned(),
            host: host(hostname),
            mode: mode.to_owned(),
            sources: vec!["perf".to_owned()],
            metrics,
            notes: None,
        }
    }

    fn gate() -> Vec<GateSpec> {
        vec![GateSpec::higher(
            "perf.table2_rk_prefetch.sim_cycles_per_sec",
            10.0,
        )]
    }

    #[test]
    fn exactly_at_threshold_passes_over_fails() {
        // Median of three identical runs is 100; 10% boundary is 90.
        let mut entries = vec![
            entry("a", "full", "h", 100.0),
            entry("b", "full", "h", 100.0),
            entry("c", "full", "h", 100.0),
        ];
        entries.push(entry("d", "full", "h", 90.0));
        let report = check(&entries, &gate(), &GateOptions::default()).unwrap();
        assert_eq!(report.regressions(), 0, "{:?}", report.outcomes);

        *entries.last_mut().unwrap() = entry("d", "full", "h", 89.999);
        let report = check(&entries, &gate(), &GateOptions::default()).unwrap();
        assert_eq!(report.regressions(), 1);
        assert!(report.outcomes[0].describe().contains("REGRESSION"));
        assert!(report.outcomes[0]
            .describe()
            .contains("perf.table2_rk_prefetch.sim_cycles_per_sec"));
    }

    #[test]
    fn lower_is_better_inverts_the_test() {
        let spec = vec![GateSpec::lower("p99", 10.0)];
        let mk = |v: f64| {
            let mut e = entry("x", "full", "h", 0.0);
            e.metrics.insert("p99".to_owned(), v);
            e
        };
        let entries = vec![mk(100.0), mk(100.0), mk(110.0)];
        let report = check(&entries, &spec, &GateOptions::default()).unwrap();
        assert_eq!(report.regressions(), 0);
        let entries = vec![mk(100.0), mk(100.0), mk(110.001)];
        let report = check(&entries, &spec, &GateOptions::default()).unwrap();
        assert_eq!(report.regressions(), 1);
    }

    #[test]
    fn different_mode_and_host_are_out_of_scope() {
        let entries = vec![
            entry("a", "smoke", "h", 1000.0),
            entry("b", "full", "other-box", 1000.0),
            entry("c", "full", "h", 10.0),
        ];
        // Neither the smoke entry nor the other host may judge the
        // newest full run on h: the gate skips, not fails.
        let report = check(&entries, &gate(), &GateOptions::default()).unwrap();
        assert_eq!(report.regressions(), 0);
        assert_eq!(report.outcomes.len(), 0);
        assert_eq!(report.skipped.len(), 1);

        // Cross-host comparison is opt-in.
        let opts = GateOptions {
            same_host_only: false,
            ..GateOptions::default()
        };
        let report = check(&entries, &gate(), &opts).unwrap();
        assert_eq!(report.regressions(), 1);
    }

    #[test]
    fn median_window_tolerates_one_noisy_run() {
        let mut entries: Vec<HistoryEntry> = [100.0, 100.0, 3.0, 100.0, 100.0]
            .iter()
            .map(|&v| entry("h", "full", "h", v))
            .collect();
        entries.push(entry("new", "full", "h", 96.0));
        let report = check(&entries, &gate(), &GateOptions::default()).unwrap();
        // Median of the window is 100 despite the 3.0 outlier; 96 is
        // within 10%.
        assert_eq!(report.regressions(), 0);
        assert_eq!(report.outcomes[0].baseline, 100.0);
        assert_eq!(report.outcomes[0].samples, 5);
    }

    #[test]
    fn improvements_and_missing_metrics_never_fail() {
        let mut entries = vec![entry("a", "full", "h", 100.0)];
        entries.push(entry("b", "full", "h", 250.0));
        let specs = vec![gate().remove(0), GateSpec::higher("not.measured", 10.0)];
        let report = check(&entries, &specs, &GateOptions::default()).unwrap();
        assert_eq!(report.regressions(), 0);
        assert_eq!(report.outcomes.len(), 1);
        assert!(report.outcomes[0].change_pct > 100.0);
        assert_eq!(report.skipped.len(), 1);
        assert!(report.skipped[0].contains("not.measured"));
    }

    #[test]
    fn empty_history_is_an_error_single_entry_is_vacuous() {
        assert!(check(&[], &gate(), &GateOptions::default()).is_err());
        let entries = vec![entry("a", "full", "h", 100.0)];
        let report = check(&entries, &gate(), &GateOptions::default()).unwrap();
        assert_eq!(report.regressions(), 0);
        assert_eq!(report.skipped.len(), 1);
    }

    #[test]
    fn worst_first_orders_by_adverse_change() {
        let mk = |a: f64, b: f64| {
            let mut e = entry("x", "full", "h", a);
            e.metrics.insert("p99".to_owned(), b);
            e
        };
        let entries = vec![mk(100.0, 100.0), mk(100.0, 100.0), mk(50.0, 500.0)];
        let specs = vec![gate().remove(0), GateSpec::lower("p99", 10.0)];
        let report = check(&entries, &specs, &GateOptions::default()).unwrap();
        let worst = report.worst_first();
        assert_eq!(report.regressions(), 2);
        // p99 got 400% worse, cycles/sec only 50%: p99 leads.
        assert_eq!(worst[0].metric, "p99");
    }
}
