//! cedar-track: per-commit benchmark history, regression gating and a
//! static perf dashboard.
//!
//! The Cedar paper's whole argument is a set of measured numbers —
//! Table 2 simulation rates, sweep speedups, serve latencies. This
//! crate makes those numbers *first-class, per-commit artifacts*:
//!
//! - [`history`] — the versioned, append-only `bench/history.jsonl`
//!   format: one JSON line per measured commit (schema, commit id,
//!   ISO-8601 timestamp, host fingerprint, run mode, flat metric map),
//!   with corrupt lines quarantined as warnings rather than crashes.
//! - [`ingest`] — turns the benchmark bins' reports
//!   (`cedar-bench-perf/3`, `cedar-bench-serve/4`,
//!   `cedar-bench-cluster/1`, `cedar-bench-compare/1`) into one
//!   stamped history entry.
//! - [`gate`] — compares the newest entry against a trailing median of
//!   same-mode, same-host predecessors with direction-aware
//!   thresholds; exactly-at-threshold passes, strictly-beyond fails.
//! - [`render`] — emits a dependency-free static HTML dashboard
//!   embedding the full history as a `window.BENCHMARK_DATA` blob,
//!   validated by the cedar-obs structural JSON validator.
//! - [`meta`] — best-effort git commit / timestamp / host stamping
//!   with `CEDAR_TRACK_COMMIT` / `CEDAR_TRACK_TIMESTAMP` overrides for
//!   hermetic tests and CI.
//!
//! The `track` binary wires these together as `append` / `check` /
//! `render` subcommands; see `track --help`.
//!
//! Everything is `std`-only, like the rest of the workspace.

pub mod gate;
pub mod history;
pub mod ingest;
pub mod meta;
pub mod render;

pub use gate::{check, default_gates, Direction, GateOptions, GateOutcome, GateReport, GateSpec};
pub use history::{append, load, parse_history, HistoryEntry, HostFingerprint, SCHEMA};
pub use ingest::{
    build_entry, cluster_report, compare_report, perf_report, serve_report, Ingested,
};
pub use render::{render_dashboard, render_data_blob};
