//! End-to-end tests for the `track` binary and the history pipeline:
//! report → append → gate → dashboard, exercised through the real CLI.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

use cedar_track::history::{parse_history, HistoryEntry, SCHEMA};

fn track_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_track"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cedar-track-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn entry(commit: &str, cycles_per_sec: f64) -> HistoryEntry {
    // The synthetic history claims to come from *this* machine so the
    // gate's same-host scope actually compares the entries.
    let host = cedar_track::meta::host_fingerprint();
    let mut metrics = BTreeMap::new();
    metrics.insert(
        "perf.table2_rk_prefetch.sim_cycles_per_sec".to_owned(),
        cycles_per_sec,
    );
    metrics.insert("perf.sweep.speedup".to_owned(), 2.5);
    HistoryEntry {
        schema: SCHEMA.to_owned(),
        commit: commit.to_owned(),
        timestamp: "2026-08-08T00:00:00Z".to_owned(),
        host,
        mode: "full".to_owned(),
        sources: vec!["perf".to_owned()],
        metrics,
        notes: None,
    }
}

fn write_history(path: &Path, entries: &[HistoryEntry]) {
    let mut text = String::new();
    for e in entries {
        text.push_str(&e.render_line());
        text.push('\n');
    }
    std::fs::write(path, text).unwrap();
}

/// The ISSUE acceptance test: a synthetic >10% sim-cycles/sec
/// regression in a temp history must fail `track check` with a nonzero
/// exit and a message naming the metric.
#[test]
fn synthetic_regression_fails_check_naming_the_metric() {
    let dir = temp_dir("regress");
    let history = dir.join("history.jsonl");
    write_history(
        &history,
        &[
            entry("base1", 90_000.0),
            entry("base2", 91_000.0),
            entry("base3", 90_500.0),
            // 20% below the 90_500 median: well past the 10% gate.
            entry("regressed", 72_400.0),
        ],
    );
    let out = track_bin()
        .args(["check", "--history"])
        .arg(&history)
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "check must fail on a 20% regression: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let all = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        all.contains("perf.table2_rk_prefetch.sim_cycles_per_sec"),
        "failure must name the regressed metric: {all}"
    );
    assert!(all.contains("REGRESSION"), "{all}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The flip side: the same history without the bad commit passes, and
/// a drop exactly at the threshold also passes.
#[test]
fn healthy_and_exactly_at_threshold_histories_pass() {
    let dir = temp_dir("healthy");
    let history = dir.join("history.jsonl");
    write_history(
        &history,
        &[
            entry("base1", 90_000.0),
            entry("base2", 90_000.0),
            entry("base3", 90_000.0),
            entry("steady", 89_000.0),
        ],
    );
    let out = track_bin()
        .args(["check", "--history"])
        .arg(&history)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "1.1% drop must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Exactly 10% below a median of 90_000 is the boundary: passes.
    write_history(
        &history,
        &[
            entry("base1", 90_000.0),
            entry("base2", 90_000.0),
            entry("base3", 90_000.0),
            entry("boundary", 81_000.0),
        ],
    );
    let out = track_bin()
        .args(["check", "--history"])
        .arg(&history)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "exactly-at-threshold must pass: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `track append` ingests a perf report, stamps it with the overridden
/// commit/timestamp, and the result parses back losslessly.
#[test]
fn append_stamps_and_round_trips() {
    let dir = temp_dir("append");
    let history = dir.join("bench").join("history.jsonl");
    let report = dir.join("BENCH_perf.json");
    std::fs::write(
        &report,
        r#"{
  "schema": "cedar-bench-perf/3",
  "smoke": true,
  "threads": 4,
  "peak_rss_kb": 9000,
  "reference_runs": [
    {"name": "table2_rk_prefetch", "wall_ms": 10.0, "sim_cycles": 1000, "sim_cycles_per_sec": 100000}
  ],
  "sweep_suite": {"serial_ms": 100.0, "parallel_ms": 40.0, "threads": 4, "speedup": 2.5}
}"#,
    )
    .unwrap();
    let out = track_bin()
        .args(["append", "--history"])
        .arg(&history)
        .args(["--perf"])
        .arg(&report)
        .args(["--notes", "e2e smoke"])
        .env("CEDAR_TRACK_COMMIT", "feedc0de")
        .env("CEDAR_TRACK_TIMESTAMP", "2026-08-08T12:00:00Z")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "append failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&history).unwrap();
    let (entries, warnings) = parse_history(&text);
    assert!(warnings.is_empty(), "{warnings:?}");
    assert_eq!(entries.len(), 1);
    let e = &entries[0];
    assert_eq!(e.commit, "feedc0de");
    assert_eq!(e.timestamp, "2026-08-08T12:00:00Z");
    assert_eq!(e.mode, "smoke");
    assert_eq!(e.sources, vec!["perf"]);
    assert_eq!(
        e.metrics["perf.table2_rk_prefetch.sim_cycles_per_sec"],
        100_000.0
    );
    assert_eq!(e.notes.as_deref(), Some("e2e smoke"));

    // A second append adds a line without touching the first.
    let out = track_bin()
        .args(["append", "--history"])
        .arg(&history)
        .args(["--perf"])
        .arg(&report)
        .env("CEDAR_TRACK_COMMIT", "feedc0df")
        .env("CEDAR_TRACK_TIMESTAMP", "2026-08-08T13:00:00Z")
        .output()
        .unwrap();
    assert!(out.status.success());
    let text2 = std::fs::read_to_string(&history).unwrap();
    assert!(text2.starts_with(&text), "append must be strictly additive");
    assert_eq!(parse_history(&text2).0.len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupt line in the history warns but neither `check` nor
/// `render` crashes over it.
#[test]
fn corrupt_history_line_warns_but_does_not_crash() {
    let dir = temp_dir("corrupt");
    let history = dir.join("history.jsonl");
    let good = entry("good", 90_000.0).render_line();
    std::fs::write(
        &history,
        format!("{good}\n{{\"schema\":\"cedar-track/1\",\"commit\n{good}\n"),
    )
    .unwrap();
    let out = track_bin()
        .args(["check", "--history"])
        .arg(&history)
        .output()
        .unwrap();
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("quarantined"), "{err}");

    let dash = dir.join("dash.html");
    let out = track_bin()
        .args(["render", "--history"])
        .arg(&history)
        .args(["--out"])
        .arg(&dash)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let html = std::fs::read_to_string(&dash).unwrap();
    assert!(html.contains("window.BENCHMARK_DATA"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The rendered dashboard embeds every history entry and references no
/// network resources.
#[test]
fn rendered_dashboard_is_standalone_and_complete() {
    let dir = temp_dir("render");
    let history = dir.join("history.jsonl");
    let commits = ["c0ffee01", "c0ffee02", "c0ffee03", "c0ffee04"];
    let entries: Vec<HistoryEntry> = commits
        .iter()
        .enumerate()
        .map(|(i, c)| entry(c, 90_000.0 + i as f64 * 100.0))
        .collect();
    write_history(&history, &entries);
    let dash = dir.join("dash.html");
    let out = track_bin()
        .args(["render", "--history"])
        .arg(&history)
        .args(["--out"])
        .arg(&dash)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let html = std::fs::read_to_string(&dash).unwrap();
    for c in commits {
        assert!(html.contains(c), "dashboard must embed entry {c}");
    }
    assert!(!html.contains("https://"), "no network fetches allowed");
    assert!(!html.contains("<link"), "no external stylesheets");
    assert!(!html.contains("<script src"), "no external scripts");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The repo's committed history must pass the default gate on any
/// machine: entries from other hosts are out of gating scope, and
/// entries from this host (if CI re-runs on an identical runner) must
/// genuinely be within threshold.
#[test]
fn committed_repo_history_passes_check() {
    let repo_history = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("bench")
        .join("history.jsonl");
    assert!(
        repo_history.exists(),
        "bench/history.jsonl must be committed"
    );
    let out = track_bin()
        .args(["check", "--history"])
        .arg(&repo_history)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "committed history must pass: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&repo_history).unwrap();
    let (entries, warnings) = parse_history(&text);
    assert!(!entries.is_empty(), "committed history must have entries");
    assert!(
        warnings.is_empty(),
        "committed history must be clean: {warnings:?}"
    );
}
