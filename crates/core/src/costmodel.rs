//! The access-mode cost model.
//!
//! Table 1's three rank-update versions differ *only* in where vector
//! operands come from: global memory without prefetch, global memory
//! with prefetch, or the cluster cache after an explicit block
//! transfer. This module turns an [`AccessMode`] plus the machine load
//! (how many CEs are active) into an effective cost per delivered
//! word, using latency/interarrival profiles measured on the
//! discrete-event network fabric — the same way the paper derives its
//! kernel numbers from monitored latencies.

use cedar_faults::{FaultPlan, RetryPolicy};
use cedar_net::fabric::{FabricConfig, PrefetchTraffic, RoundTripFabric};

/// CE-to-network-port path cost paid by a plain (non-prefetched)
/// global load on top of the fabric round trip: the paper's 13-cycle
/// total latency less the 8-cycle network+memory minimum.
pub const CE_SIDE_PATH_CYCLES: f64 = 5.0;

/// Where a vector operand stream lives, and therefore what it costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessMode {
    /// Global memory, plain lockup-free interface: two outstanding
    /// requests per CE mask at most two latencies.
    GlobalNoPrefetch,
    /// Global memory through the PFU with the given traffic shape.
    GlobalPrefetch(PrefetchTraffic),
    /// The cluster shared cache (after software moved the block in).
    ClusterCache,
    /// Cluster memory (cache misses; half the cache bandwidth).
    ClusterMemory,
}

/// A measured memory-system operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemProfile {
    /// Mean first-word latency, CE cycles.
    pub latency: f64,
    /// Mean interarrival between streamed words, CE cycles.
    pub interarrival: f64,
    /// Aggregate delivered bandwidth, words per CE cycle.
    pub words_per_cycle: f64,
}

/// The cost model: a fabric plus a cache of measured profiles.
///
/// # Examples
///
/// ```
/// use cedar_core::costmodel::{AccessMode, CostModel};
/// use cedar_net::fabric::{FabricConfig, PrefetchTraffic};
///
/// let mut model = CostModel::new(FabricConfig::cedar());
/// let cache = model.cycles_per_word(AccessMode::ClusterCache, 8);
/// let nopref = model.cycles_per_word(AccessMode::GlobalNoPrefetch, 8);
/// assert!(nopref > 5.0 * cache, "unmasked global latency dominates");
/// ```
#[derive(Debug)]
pub struct CostModel {
    fabric_cfg: FabricConfig,
    profiles: std::collections::HashMap<ProfileKey, MemProfile>,
    /// Blocks per CE in a measurement window; larger = tighter
    /// estimates, slower measurement.
    measure_blocks: u32,
    /// Fault plan applied to every measurement fabric (degraded-mode
    /// studies); `None` models the healthy machine.
    faults: Option<(FaultPlan, RetryPolicy)>,
}

/// Cache key for measured profiles: traffic shape (quantized) + CEs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ProfileKey {
    block_len: u32,
    window: u32,
    gap: u64,
    bif: u32,
    writes_milli: u32,
    streams: u32,
    ces: usize,
}

impl ProfileKey {
    fn of(traffic: &PrefetchTraffic, ces: usize) -> Self {
        ProfileKey {
            block_len: traffic.block_len,
            window: traffic.window,
            gap: traffic.gap_ce_cycles,
            bif: traffic.blocks_in_flight,
            writes_milli: (traffic.writes_per_read * 1000.0).round() as u32,
            streams: traffic.streams,
            ces,
        }
    }
}

impl CostModel {
    /// Creates a cost model over the given fabric configuration.
    #[must_use]
    pub fn new(fabric_cfg: FabricConfig) -> Self {
        CostModel {
            fabric_cfg,
            profiles: std::collections::HashMap::new(),
            measure_blocks: 8,
            faults: None,
        }
    }

    /// The fabric configuration being modelled.
    #[must_use]
    pub fn fabric_config(&self) -> &FabricConfig {
        &self.fabric_cfg
    }

    /// Applies a fault plan to every subsequently measured fabric and
    /// invalidates cached healthy profiles. A benign plan restores the
    /// healthy model exactly.
    pub fn attach_faults(&mut self, plan: FaultPlan, retry: RetryPolicy) {
        self.profiles.clear();
        self.faults = if plan.is_benign() {
            None
        } else {
            Some((plan, retry))
        };
    }

    /// Measures (or returns the cached) memory profile for `traffic`
    /// replicated on `ces` CEs.
    pub fn measure(&mut self, traffic: PrefetchTraffic, ces: usize) -> MemProfile {
        let key = ProfileKey::of(&traffic, ces);
        if let Some(&p) = self.profiles.get(&key) {
            return p;
        }
        let mut run = traffic;
        run.blocks = self.measure_blocks;
        let mut fabric = RoundTripFabric::new(self.fabric_cfg.clone());
        if let Some((plan, retry)) = &self.faults {
            fabric.attach_faults(plan.clone(), *retry);
        }
        let report = fabric.run_prefetch_experiment(ces, run, 64_000_000);
        let profile = MemProfile {
            latency: report.mean_first_word_latency_ce(),
            interarrival: report.mean_interarrival_ce(),
            words_per_cycle: report.words_per_ce_cycle(),
        };
        self.profiles.insert(key, profile);
        profile
    }

    /// Effective cycles per delivered 64-bit word for an access mode
    /// under `ces` active processors.
    ///
    /// * `ClusterCache`: one word per cycle per CE (the cache supplies
    ///   one stream per CE).
    /// * `ClusterMemory`: two cycles per word (half the cache rate).
    /// * `GlobalNoPrefetch`: each pair of outstanding requests pays a
    ///   full round-trip — the fabric latency plus the 5-cycle CE-side
    ///   path (13 cycles total unloaded, per the paper) over the
    ///   lockup-free depth of 2, giving the ~6.5 cycles/word behind
    ///   Table 1's 14.5 MFLOPS single-cluster figure.
    /// * `GlobalPrefetch`: the measured steady-state interarrival time
    ///   of the prefetch stream.
    pub fn cycles_per_word(&mut self, mode: AccessMode, ces: usize) -> f64 {
        match mode {
            AccessMode::ClusterCache => 1.0,
            AccessMode::ClusterMemory => 2.0,
            AccessMode::GlobalNoPrefetch => {
                // Two outstanding requests: a narrow window measured on
                // the fabric; latency dominates, interarrival ~ lat/2.
                let traffic = PrefetchTraffic {
                    block_len: 32,
                    blocks: 4,
                    window: 2,
                    gap_ce_cycles: 0,
                    blocks_in_flight: 1,
                    writes_per_read: 0.0,
                    streams: 1,
                    pattern: cedar_net::fabric::AddressPattern::Strided,
                };
                let p = self.measure(traffic, ces);
                (p.latency + CE_SIDE_PATH_CYCLES) / 2.0
            }
            AccessMode::GlobalPrefetch(traffic) => self.measure(traffic, ces).interarrival,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(FabricConfig::cedar())
    }

    #[test]
    fn cache_and_cluster_rates_fixed() {
        let mut m = model();
        assert_eq!(m.cycles_per_word(AccessMode::ClusterCache, 32), 1.0);
        assert_eq!(m.cycles_per_word(AccessMode::ClusterMemory, 32), 2.0);
    }

    #[test]
    fn no_prefetch_costs_about_half_the_latency() {
        let mut m = model();
        let cpw = m.cycles_per_word(AccessMode::GlobalNoPrefetch, 8);
        // ~13-cycle full round trip, two outstanding -> ~6.5.
        assert!(
            (5.5..8.0).contains(&cpw),
            "no-prefetch cycles/word {cpw} out of expected envelope"
        );
    }

    #[test]
    fn prefetch_beats_no_prefetch() {
        let mut m = model();
        let traffic = PrefetchTraffic::rk_aggressive(4);
        let pref = m.cycles_per_word(AccessMode::GlobalPrefetch(traffic), 8);
        let nopref = m.cycles_per_word(AccessMode::GlobalNoPrefetch, 8);
        assert!(
            pref * 2.0 < nopref,
            "prefetch ({pref}) should at least halve the no-prefetch cost ({nopref})"
        );
    }

    #[test]
    fn prefetch_cost_grows_with_load() {
        let mut m = model();
        let traffic = PrefetchTraffic::rk_aggressive(4);
        let at8 = m.cycles_per_word(AccessMode::GlobalPrefetch(traffic), 8);
        let at32 = m.cycles_per_word(AccessMode::GlobalPrefetch(traffic), 32);
        assert!(
            at32 > at8,
            "contention raises prefetch cost: {at8} -> {at32}"
        );
    }

    #[test]
    fn profiles_are_cached() {
        let mut m = model();
        let traffic = PrefetchTraffic::compiler_default(4);
        let a = m.measure(traffic, 8);
        let b = m.measure(traffic, 8);
        assert_eq!(a, b);
        assert_eq!(m.profiles.len(), 1);
    }

    #[test]
    fn distinct_loads_get_distinct_profiles() {
        let mut m = model();
        let traffic = PrefetchTraffic::compiler_default(4);
        m.measure(traffic, 8);
        m.measure(traffic, 32);
        assert_eq!(m.profiles.len(), 2);
    }
}
