//! Structural renderings of the paper's Figures 1 and 2.
//!
//! Figure 1 shows the machine: four clusters feeding two unidirectional
//! omega networks in front of the interleaved global memory. Figure 2
//! shows one cluster: eight CEs on a concurrency control bus, a 4-way
//! interleaved shared cache, the cluster switch and memory bus, cluster
//! memory, and the interactive processors. The renderings are derived
//! from the live parameter set, so a reconfigured machine draws itself
//! correctly, and the port-map accessors double as structural checks.

use crate::params::CedarParams;

/// Network port assignments implied by a parameter set: CEs on the
/// forward network's inputs (reverse outputs), memory modules on the
/// forward outputs (reverse inputs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortMap {
    /// Network input port of each CE, indexed by global CE id.
    pub ce_ports: Vec<usize>,
    /// Network output port of each global-memory module.
    pub module_ports: Vec<usize>,
}

impl PortMap {
    /// Derives the port map from machine parameters.
    #[must_use]
    pub fn of(params: &CedarParams) -> Self {
        PortMap {
            ce_ports: (0..params.total_ces()).collect(),
            module_ports: (0..params.fabric.mem_modules).collect(),
        }
    }

    /// The network port of cluster `cluster`'s CE `ce`.
    ///
    /// # Panics
    ///
    /// Panics if the pair is out of range for the map.
    #[must_use]
    pub fn port_of(&self, cluster: usize, ce: usize, ces_per_cluster: usize) -> usize {
        let id = cluster * ces_per_cluster + ce;
        self.ce_ports[id]
    }
}

/// Renders Figure 1 (machine organization) as ASCII.
#[must_use]
pub fn render_figure1(params: &CedarParams) -> String {
    let mut out = String::new();
    out.push_str("                 Cedar Architecture (Fig. 1)\n");
    out.push_str("  ");
    for c in 0..params.clusters {
        out.push_str("+----------------+  ");
        let _ = c;
    }
    out.push('\n');
    out.push_str("  ");
    for c in 0..params.clusters {
        out.push_str(&format!("| Cluster {c} (FX/8)|  "));
    }
    out.push('\n');
    out.push_str("  ");
    for _ in 0..params.clusters {
        out.push_str(&format!("|  {} CEs + cache |  ", params.ces_per_cluster));
    }
    out.push('\n');
    out.push_str("  ");
    for _ in 0..params.clusters {
        out.push_str("+---+--------+---+  ");
    }
    out.push('\n');
    out.push_str("      |        ^ \n");
    out.push_str(&format!(
        "      v        |      two unidirectional {}x{} omega networks\n",
        params.fabric.net.ports(),
        params.fabric.net.ports()
    ));
    out.push_str(&format!(
        "  [ FORWARD network ]   [ REVERSE network ]   ({} stages of {}x{} crossbars,\n",
        params.fabric.net.stages, params.fabric.net.radix, params.fabric.net.radix
    ));
    out.push_str(&format!(
        "      |        ^         {}-word queues per port)\n",
        params.fabric.net.queue_words
    ));
    out.push_str("      v        |\n");
    out.push_str(&format!(
        "  [ GLOBAL MEMORY: {} interleaved modules, sync processor each ]\n",
        params.fabric.mem_modules
    ));
    out
}

/// Renders Figure 2 (cluster organization) as ASCII.
#[must_use]
pub fn render_figure2(params: &CedarParams) -> String {
    let mut out = String::new();
    out.push_str("            Cluster Architecture (Fig. 2)\n");
    out.push_str("  ");
    for ce in 0..params.ces_per_cluster {
        out.push_str(&format!("[CE{ce}]"));
    }
    out.push('\n');
    out.push_str("    |   (concurrency control bus joins all CEs)\n");
    out.push_str(&format!(
        "  [ SHARED CACHE: {} KB, {}-way interleaved, {}-byte lines, write-back ]\n",
        params.cache.capacity_bytes / 1024,
        params.cache.banks,
        params.cache.line_bytes
    ));
    out.push_str("    |   MEMORY BUS\n");
    out.push_str("  [ CLUSTER SWITCH ]---[ IPs + IP caches ]\n");
    out.push_str("    |\n");
    out.push_str("  [ CLUSTER MEMORY: 32 MB interleaved ]\n");
    out.push_str("    |\n");
    out.push_str("  [ GLOBAL INTERFACE -> omega networks ]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_map_covers_all_ces_and_modules() {
        let p = CedarParams::paper();
        let map = PortMap::of(&p);
        assert_eq!(map.ce_ports.len(), 32);
        assert_eq!(map.module_ports.len(), p.fabric.mem_modules);
        // Ports are distinct.
        let mut seen = map.ce_ports.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 32);
    }

    #[test]
    fn port_of_indexes_by_cluster_then_ce() {
        let p = CedarParams::paper();
        let map = PortMap::of(&p);
        assert_eq!(map.port_of(0, 0, 8), 0);
        assert_eq!(map.port_of(1, 0, 8), 8);
        assert_eq!(map.port_of(3, 7, 8), 31);
    }

    #[test]
    fn ce_ports_fit_network() {
        let p = CedarParams::paper();
        let map = PortMap::of(&p);
        let ports = p.fabric.net.ports();
        assert!(map.ce_ports.iter().all(|&port| port < ports));
        assert!(map.module_ports.iter().all(|&port| port < ports));
    }

    #[test]
    fn figure1_mentions_every_cluster_and_the_networks() {
        let text = render_figure1(&CedarParams::paper());
        for c in 0..4 {
            assert!(text.contains(&format!("Cluster {c}")));
        }
        assert!(text.contains("FORWARD network"));
        assert!(text.contains("REVERSE network"));
        assert!(text.contains("GLOBAL MEMORY"));
        assert!(text.contains("8x8 crossbars"));
    }

    #[test]
    fn figure2_shows_cluster_internals() {
        let text = render_figure2(&CedarParams::paper());
        assert!(text.contains("[CE0]"));
        assert!(text.contains("[CE7]"));
        assert!(text.contains("SHARED CACHE: 512 KB"));
        assert!(text.contains("CLUSTER MEMORY"));
        assert!(text.contains("concurrency control bus"));
    }

    #[test]
    fn figures_track_parameters() {
        let p = CedarParams::paper().with_clusters(2).unwrap();
        let text = render_figure1(&p);
        assert!(text.contains("Cluster 1"));
        assert!(!text.contains("Cluster 2"));
    }
}
