//! Machine parameters: every constant the paper publishes, with
//! provenance notes, and a builder for what-if configurations.

use cedar_cpu::ce::CeConfig;
use cedar_faults::CedarError;
use cedar_mem::cache::CacheConfig;
use cedar_net::fabric::FabricConfig;
use cedar_sim::time::ClockPeriod;

/// Full parameterization of a Cedar-like machine.
///
/// [`CedarParams::paper`] returns the machine as published; the
/// builder methods derive variants (fewer clusters, deeper network
/// queues for the \[Turn93\] ablation, and so on).
///
/// # Examples
///
/// ```
/// use cedar_core::params::CedarParams;
///
/// let p = CedarParams::paper();
/// assert_eq!(p.clusters, 4);
/// assert_eq!(p.ces_per_cluster, 8);
/// let small = CedarParams::paper().with_clusters(2).unwrap();
/// assert_eq!(small.total_ces(), 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CedarParams {
    /// Number of Alliant FX/8 clusters. Paper: 4.
    pub clusters: usize,
    /// CEs per cluster. Paper: 8.
    pub ces_per_cluster: usize,
    /// Per-CE configuration (clock, vector timing).
    pub ce: CeConfig,
    /// Cluster shared-cache geometry.
    pub cache: CacheConfig,
    /// Global network + memory-module fabric configuration.
    pub fabric: FabricConfig,
    /// Cluster-memory size in words.
    pub cluster_memory_words: usize,
    /// Global-memory size in words used for functional state. The real
    /// machine has 64 MB; models default to a smaller arena so tests
    /// stay light, which affects nothing but capacity checks.
    pub global_memory_words: usize,
    /// XDOALL loop startup latency in microseconds. Paper: "a typical
    /// loop startup latency of 90 µs".
    pub xdoall_startup_us: f64,
    /// XDOALL per-iteration fetch cost in microseconds. Paper:
    /// "fetching the next iteration takes about 30 µs".
    pub xdoall_fetch_us: f64,
    /// TLB entries per cluster.
    pub tlb_entries: usize,
}

impl CedarParams {
    /// The machine exactly as the paper describes it.
    #[must_use]
    pub fn paper() -> Self {
        CedarParams {
            clusters: 4,
            ces_per_cluster: 8,
            ce: CeConfig::cedar(),
            cache: CacheConfig::cedar(),
            fabric: FabricConfig::cedar(),
            cluster_memory_words: 1 << 16,
            global_memory_words: 1 << 18,
            xdoall_startup_us: 90.0,
            xdoall_fetch_us: 30.0,
            tlb_entries: 256,
        }
    }

    /// Uses only the first `clusters` clusters.
    ///
    /// # Errors
    ///
    /// Rejects a zero cluster count and any count whose CEs would
    /// exceed the network's ports.
    pub fn with_clusters(mut self, clusters: usize) -> Result<Self, CedarError> {
        if clusters == 0 {
            return Err(CedarError::invalid(
                "params.clusters",
                "need at least one cluster",
            ));
        }
        let ports = self.fabric.net.ports();
        if clusters * self.ces_per_cluster > ports {
            return Err(CedarError::invalid(
                "params.clusters",
                format!(
                    "{} clusters of {} CEs exceed the network's {ports} ports",
                    clusters, self.ces_per_cluster
                ),
            ));
        }
        self.clusters = clusters;
        Ok(self)
    }

    /// Replaces the fabric configuration (network-ablation studies).
    #[must_use]
    pub fn with_fabric(mut self, fabric: FabricConfig) -> Self {
        self.fabric = fabric;
        self
    }

    /// Total CE count.
    #[must_use]
    pub fn total_ces(&self) -> usize {
        self.clusters * self.ces_per_cluster
    }

    /// The CE clock.
    #[must_use]
    pub fn clock(&self) -> ClockPeriod {
        self.ce.clock
    }

    /// Machine peak MFLOPS (2 flops/cycle/CE).
    #[must_use]
    pub fn peak_mflops(&self) -> f64 {
        self.ce.peak_mflops() * self.total_ces() as f64
    }

    /// Effective peak after unavoidable vector startup (the paper's
    /// 274 MFLOPS at 32 CEs).
    #[must_use]
    pub fn effective_peak_mflops(&self) -> f64 {
        let reg = 32.0;
        let startup = self.ce.vector.startup_cycles as f64;
        self.peak_mflops() * reg / (reg + startup)
    }

    /// XDOALL startup in CE cycles.
    #[must_use]
    pub fn xdoall_startup_cycles(&self) -> u64 {
        self.clock()
            .to_cycles(self.xdoall_startup_us * 1e-6)
            .as_u64()
    }

    /// XDOALL per-iteration fetch in CE cycles.
    #[must_use]
    pub fn xdoall_fetch_cycles(&self) -> u64 {
        self.clock().to_cycles(self.xdoall_fetch_us * 1e-6).as_u64()
    }

    /// Validates cross-parameter consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`CedarError::InvalidConfig`] naming the violated
    /// constraint, from this struct's own checks or from the nested
    /// network and cache validations.
    pub fn validate(&self) -> Result<(), CedarError> {
        if self.clusters == 0 || self.ces_per_cluster == 0 {
            return Err(CedarError::invalid(
                "params.clusters",
                "machine needs clusters and CEs",
            ));
        }
        self.fabric.net.validate()?;
        self.cache.validate()?;
        let ports = self.fabric.net.ports();
        if self.total_ces() > ports {
            return Err(CedarError::invalid(
                "params.ces_per_cluster",
                format!(
                    "{} CEs exceed the network's {} ports",
                    self.total_ces(),
                    ports
                ),
            ));
        }
        Ok(())
    }
}

impl Default for CedarParams {
    fn default() -> Self {
        CedarParams::paper()
    }
}

cedar_snap::snapshot_struct!(CedarParams {
    clusters,
    ces_per_cluster,
    ce,
    cache,
    fabric,
    cluster_memory_words,
    global_memory_words,
    xdoall_startup_us,
    xdoall_fetch_us,
    tlb_entries,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_shape() {
        let p = CedarParams::paper();
        assert_eq!(p.total_ces(), 32);
        assert!((p.peak_mflops() - 376.5).abs() < 1.0, "~376 MFLOPS peak");
        assert!(
            (p.effective_peak_mflops() - 274.0).abs() < 5.0,
            "~274 MFLOPS effective peak"
        );
        p.validate().unwrap();
    }

    #[test]
    fn loop_overheads_match_paper() {
        let p = CedarParams::paper();
        // 90us at 170ns = ~529 cycles; 30us = ~176 cycles.
        assert_eq!(p.xdoall_startup_cycles(), 530);
        assert_eq!(p.xdoall_fetch_cycles(), 177);
    }

    #[test]
    fn builder_variants() {
        let p = CedarParams::paper().with_clusters(1).unwrap();
        assert_eq!(p.total_ces(), 8);
        p.validate().unwrap();
    }

    #[test]
    fn validate_catches_too_many_ces() {
        let mut p = CedarParams::paper();
        p.ces_per_cluster = 64;
        assert!(p.validate().is_err());
    }

    #[test]
    fn zero_clusters_rejected() {
        let err = CedarParams::paper().with_clusters(0).unwrap_err();
        match err {
            CedarError::InvalidConfig { field, message } => {
                assert_eq!(field, "params.clusters");
                assert!(message.contains("at least one cluster"));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn oversized_cluster_count_rejected() {
        let err = CedarParams::paper().with_clusters(9).unwrap_err();
        match err {
            CedarError::InvalidConfig { field, .. } => {
                assert_eq!(field, "params.clusters")
            }
            other => panic!("unexpected error: {other}"),
        }
    }
}
