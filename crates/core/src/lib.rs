//! `cedar-core` — the assembled Cedar system.
//!
//! This crate couples the substrates into the machine of the paper's
//! Figure 1: four slightly-modified Alliant FX/8 clusters (eight
//! vector CEs sharing a 512 KB cache, a cluster memory, and a
//! concurrency control bus) attached through two unidirectional omega
//! networks to an interleaved global memory with per-module
//! synchronization processors, plus the Xylem virtual-memory system
//! and the external performance-monitoring hardware.
//!
//! * [`params::CedarParams`] — every published machine constant in one
//!   place, with a builder for what-if configurations;
//! * [`system::CedarSystem`] — the machine: functional state (memories,
//!   caches, sync cells, TLBs) plus the measurement engine that runs
//!   discrete-event windows on the network fabric and caches the
//!   resulting latency/interarrival/bandwidth profiles;
//! * [`costmodel`] — the access-mode cost model translating "where does
//!   the operand live" into effective cycles per word under a given
//!   machine load, the quantity behind Table 1 and the kernel studies;
//! * [`topology`] — structural renderings of the paper's Figures 1
//!   and 2.
//!
//! # Examples
//!
//! ```
//! use cedar_core::params::CedarParams;
//! use cedar_core::system::CedarSystem;
//!
//! let mut cedar = CedarSystem::new(CedarParams::paper());
//! assert_eq!(cedar.params().total_ces(), 32);
//! // Peak performance as published: 11.8 MFLOPS x 32 CEs ~ 376.
//! assert!((cedar.params().peak_mflops() - 376.0).abs() < 2.0);
//! ```

#![warn(missing_docs)]

pub mod costmodel;
pub mod params;
pub mod report;
pub mod system;
pub mod topology;

pub use costmodel::{AccessMode, CostModel, MemProfile};
pub use params::CedarParams;
pub use report::MachineReport;
pub use system::{CedarSystem, Cluster};
