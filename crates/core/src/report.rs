//! Machine-wide counter reports.
//!
//! Everything the subsystem models count — cache hits, sync
//! operations, VM faults, CE work — gathered into one structure, the
//! software analogue of dumping the performance-monitor hardware to a
//! workstation after an experiment.

use std::fmt;

use crate::system::CedarSystem;

/// Per-cluster counter snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterCounters {
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Dirty write-backs.
    pub cache_writebacks: u64,
    /// Cache hit rate in `[0, 1]`.
    pub cache_hit_rate: f64,
    /// Cluster-memory reads.
    pub memory_reads: u64,
    /// Cluster-memory writes.
    pub memory_writes: u64,
    /// Concurrency-bus `concurrent start`s.
    pub bus_starts: u64,
    /// Concurrency-bus iteration dispatches.
    pub bus_dispatches: u64,
    /// Sum of CE busy cycles.
    pub ce_busy_cycles: u64,
    /// Sum of CE flops.
    pub ce_flops: f64,
}

/// The machine-wide snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineReport {
    /// One entry per cluster.
    pub clusters: Vec<ClusterCounters>,
    /// Global-memory word reads.
    pub global_reads: u64,
    /// Global-memory word writes.
    pub global_writes: u64,
    /// Synchronization instructions executed at the modules.
    pub global_sync_ops: u64,
    /// The busiest synchronization module and its op count, if any
    /// sync traffic occurred.
    pub hottest_sync_module: Option<(usize, u64)>,
    /// TLB hits.
    pub tlb_hits: u64,
    /// TLB-miss (valid-PTE) faults.
    pub tlb_miss_faults: u64,
    /// Hard (first-touch) faults.
    pub hard_faults: u64,
    /// VM service cycles accumulated.
    pub vm_service_cycles: u64,
}

impl MachineReport {
    /// Snapshots every counter in the machine.
    #[must_use]
    pub fn capture(sys: &CedarSystem) -> Self {
        let clusters = sys
            .clusters()
            .iter()
            .map(|c| ClusterCounters {
                cache_hits: c.cache.hit_count(),
                cache_misses: c.cache.miss_count(),
                cache_writebacks: c.cache.writeback_count(),
                cache_hit_rate: c.cache.hit_rate(),
                memory_reads: c.memory.read_count(),
                memory_writes: c.memory.write_count(),
                bus_starts: c.bus.start_count(),
                bus_dispatches: c.bus.dispatch_count(),
                ce_busy_cycles: c.ces.iter().map(|ce| ce.busy_cycles().as_u64()).sum(),
                ce_flops: c.ces.iter().map(|ce| ce.flops()).sum(),
            })
            .collect();
        let hottest_sync_module = sys
            .global()
            .sync_ops_per_module()
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .max_by_key(|(_, &n)| n)
            .map(|(m, &n)| (m, n));
        MachineReport {
            clusters,
            global_reads: sys.global().read_count(),
            global_writes: sys.global().write_count(),
            global_sync_ops: sys.global().sync_op_count(),
            hottest_sync_module,
            tlb_hits: sys.vm().tlb_hits(),
            tlb_miss_faults: sys.vm().tlb_miss_faults(),
            hard_faults: sys.vm().hard_faults(),
            vm_service_cycles: sys.vm().service_cycles(),
        }
    }

    /// Total flops across the machine.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.clusters.iter().map(|c| c.ce_flops).sum()
    }

    /// Total page faults of both kinds.
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.tlb_miss_faults + self.hard_faults
    }
}

impl fmt::Display for MachineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "machine counters:")?;
        for (i, c) in self.clusters.iter().enumerate() {
            writeln!(
                f,
                "  cluster {i}: cache {:.0}% hit ({} wb), bus {} starts/{} dispatches, \
                 {} busy cycles, {:.0} flops",
                c.cache_hit_rate * 100.0,
                c.cache_writebacks,
                c.bus_starts,
                c.bus_dispatches,
                c.ce_busy_cycles,
                c.ce_flops
            )?;
        }
        writeln!(
            f,
            "  global: {} reads, {} writes, {} sync ops{}",
            self.global_reads,
            self.global_writes,
            self.global_sync_ops,
            self.hottest_sync_module
                .map(|(m, n)| format!(" (hottest module {m}: {n})"))
                .unwrap_or_default()
        )?;
        write!(
            f,
            "  vm: {} TLB hits, {} TLB-miss faults, {} hard faults, {} service cycles",
            self.tlb_hits, self.tlb_miss_faults, self.hard_faults, self.vm_service_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CedarParams;
    use cedar_mem::address::{PAddr, VAddr};
    use cedar_mem::sync::SyncInstruction;

    #[test]
    fn capture_reflects_activity() {
        let mut sys = CedarSystem::new(CedarParams::paper());
        sys.cluster_mut(0).cache.access(PAddr::in_cluster(0), false);
        sys.cluster_mut(0).cache.access(PAddr::in_cluster(0), false);
        sys.cluster_mut(1).memory.write_word(0, 9);
        sys.global_mut().sync_op(5, SyncInstruction::test_and_set());
        sys.vm_mut().translate(0, VAddr(0));
        sys.cluster_mut(2).ces[0].run_scalar(10, 4.0);

        let report = MachineReport::capture(&sys);
        assert_eq!(report.clusters[0].cache_hits, 1);
        assert_eq!(report.clusters[0].cache_misses, 1);
        assert_eq!(report.clusters[1].memory_writes, 1);
        assert_eq!(report.global_sync_ops, 1);
        assert_eq!(report.hottest_sync_module, Some((5, 1)));
        assert_eq!(report.hard_faults, 1);
        assert_eq!(report.total_faults(), 1);
        assert_eq!(report.total_flops(), 4.0);
    }

    #[test]
    fn idle_machine_reports_zeroes() {
        let sys = CedarSystem::new(CedarParams::paper());
        let report = MachineReport::capture(&sys);
        assert_eq!(report.global_sync_ops, 0);
        assert_eq!(report.hottest_sync_module, None);
        assert_eq!(report.total_flops(), 0.0);
        assert_eq!(report.total_faults(), 0);
    }

    #[test]
    fn display_is_nonempty_and_mentions_subsystems() {
        let sys = CedarSystem::new(CedarParams::paper());
        let text = MachineReport::capture(&sys).to_string();
        assert!(text.contains("cluster 0"));
        assert!(text.contains("global:"));
        assert!(text.contains("vm:"));
    }
}
