//! The assembled machine.
//!
//! [`CedarSystem`] owns the functional state of the whole machine —
//! global memory with its synchronization processors, the per-cluster
//! caches, memories and concurrency buses, the CEs, the virtual-memory
//! system — plus the cost model with its discrete-event measurement
//! engine and a performance monitor. The runtime (`cedar-runtime`)
//! executes CEDAR FORTRAN-style programs against it; kernels and
//! benchmarks query it for timing.

use cedar_cpu::ccbus::ConcurrencyBus;
use cedar_cpu::ce::ComputationalElement;
use cedar_faults::{CedarError, FaultPlan, RetryPolicy};
use cedar_mem::cache::SharedCache;
use cedar_mem::cluster::ClusterMemory;
use cedar_mem::global::GlobalMemory;
use cedar_mem::vm::VirtualMemory;
use cedar_obs::Obs;
use cedar_sim::monitor::PerformanceMonitor;
use cedar_sim::time::CycleDelta;

use crate::costmodel::{AccessMode, CostModel, MemProfile};
use crate::params::CedarParams;

/// One Alliant FX/8 cluster: eight CEs, a shared cache, cluster
/// memory, and the concurrency control bus.
#[derive(Debug)]
pub struct Cluster {
    /// The computational elements.
    pub ces: Vec<ComputationalElement>,
    /// The 512 KB shared cache.
    pub cache: SharedCache,
    /// The 32 MB cluster memory.
    pub memory: ClusterMemory,
    /// The concurrency control bus.
    pub bus: ConcurrencyBus,
}

impl Cluster {
    fn new(params: &CedarParams) -> Self {
        Cluster {
            ces: (0..params.ces_per_cluster)
                .map(|_| ComputationalElement::new(params.ce))
                .collect(),
            cache: SharedCache::new(params.cache),
            memory: ClusterMemory::with_words(params.cluster_memory_words),
            bus: ConcurrencyBus::new(params.ces_per_cluster),
        }
    }
}

/// The Cedar machine.
///
/// # Examples
///
/// ```
/// use cedar_core::{CedarParams, CedarSystem};
/// use cedar_mem::sync::SyncInstruction;
///
/// let mut cedar = CedarSystem::new(CedarParams::paper());
/// // A runtime self-scheduling counter lives in global memory and is
/// // bumped with the memory-module sync processor.
/// let first = cedar.global_mut().sync_op(0, SyncInstruction::fetch_and_add(1));
/// assert_eq!(first.old_value, 0);
/// ```
#[derive(Debug)]
pub struct CedarSystem {
    params: CedarParams,
    clusters: Vec<Cluster>,
    global: GlobalMemory,
    vm: VirtualMemory,
    monitor: PerformanceMonitor,
    cost_model: CostModel,
    obs: Obs,
}

impl CedarSystem {
    /// Builds the machine.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`CedarParams::validate`].
    #[must_use]
    pub fn new(params: CedarParams) -> Self {
        Self::try_new(params).expect("invalid machine parameters")
    }

    /// Builds the machine, reporting invalid parameters as an error.
    ///
    /// # Errors
    ///
    /// Returns whatever [`CedarParams::validate`] rejects.
    pub fn try_new(params: CedarParams) -> Result<Self, CedarError> {
        params.validate()?;
        let clusters = (0..params.clusters)
            .map(|_| Cluster::new(&params))
            .collect();
        let global = GlobalMemory::with_words_and_modules(
            params.global_memory_words,
            params.fabric.mem_modules,
        );
        let vm = VirtualMemory::new(params.clusters, params.tlb_entries);
        let cost_model = CostModel::new(params.fabric.clone());
        Ok(CedarSystem {
            clusters,
            global,
            vm,
            monitor: PerformanceMonitor::new(),
            cost_model,
            params,
            obs: Obs::disabled(),
        })
    }

    /// Attaches a telemetry handle to the whole machine: the global
    /// memory's counters and every CE's prefetch unit report into it,
    /// and the runtime layer reads it back via [`obs`]. A disabled
    /// handle (the default) keeps every component on its
    /// un-instrumented path.
    ///
    /// [`obs`]: Self::obs
    pub fn set_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
        self.global.set_obs(obs);
        for cluster in &mut self.clusters {
            for ce in &mut cluster.ces {
                ce.prefetch_unit_mut().set_obs(obs);
            }
        }
    }

    /// The attached telemetry handle (disabled unless [`set_obs`] was
    /// called with a live one).
    ///
    /// [`set_obs`]: Self::set_obs
    #[must_use]
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Degrades the machine with a deterministic fault plan: the cost
    /// model measures on faulted fabrics with `retry` governing request
    /// recovery, and the global memory's synchronization processors
    /// lose updates per the plan. A benign plan leaves the machine
    /// healthy.
    pub fn attach_faults(&mut self, plan: &FaultPlan, retry: RetryPolicy) {
        self.cost_model.attach_faults(plan.clone(), retry);
        self.global.attach_faults(plan.clone());
    }

    /// The machine parameters.
    #[must_use]
    pub fn params(&self) -> &CedarParams {
        &self.params
    }

    /// The clusters.
    #[must_use]
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Mutable access to one cluster.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn cluster_mut(&mut self, idx: usize) -> &mut Cluster {
        &mut self.clusters[idx]
    }

    /// The global shared memory.
    #[must_use]
    pub fn global(&self) -> &GlobalMemory {
        &self.global
    }

    /// Mutable access to global memory (reads, writes, sync ops).
    pub fn global_mut(&mut self) -> &mut GlobalMemory {
        &mut self.global
    }

    /// The virtual-memory system.
    #[must_use]
    pub fn vm(&self) -> &VirtualMemory {
        &self.vm
    }

    /// Mutable access to the virtual-memory system.
    pub fn vm_mut(&mut self) -> &mut VirtualMemory {
        &mut self.vm
    }

    /// The performance monitor.
    #[must_use]
    pub fn monitor(&self) -> &PerformanceMonitor {
        &self.monitor
    }

    /// Mutable access to the performance monitor.
    pub fn monitor_mut(&mut self) -> &mut PerformanceMonitor {
        &mut self.monitor
    }

    /// The cost model (measurement engine).
    pub fn cost_model_mut(&mut self) -> &mut CostModel {
        &mut self.cost_model
    }

    /// Effective cycles per delivered word for `mode` with `ces`
    /// active processors (delegates to the cost model).
    pub fn cycles_per_word(&mut self, mode: AccessMode, ces: usize) -> f64 {
        self.cost_model.cycles_per_word(mode, ces)
    }

    /// Measures a memory profile on the fabric.
    pub fn measure_memory(
        &mut self,
        traffic: cedar_net::fabric::PrefetchTraffic,
        ces: usize,
    ) -> MemProfile {
        self.cost_model.measure(traffic, ces)
    }

    /// Converts cycles to seconds at the machine clock.
    #[must_use]
    pub fn seconds(&self, cycles: CycleDelta) -> f64 {
        self.params.clock().to_seconds(cycles)
    }

    /// Converts floating-point work and elapsed cycles to MFLOPS.
    #[must_use]
    pub fn mflops(&self, flops: f64, cycles: f64) -> f64 {
        if cycles <= 0.0 {
            return 0.0;
        }
        flops / (cycles * self.params.clock().seconds()) / 1e6
    }

    /// Resets all CE counters across the machine (a fresh experiment).
    pub fn reset_ce_counters(&mut self) {
        for cluster in &mut self.clusters {
            for ce in &mut cluster.ces {
                ce.reset_counters();
            }
        }
    }

    /// Sum of busy cycles over all CEs.
    #[must_use]
    pub fn total_busy_cycles(&self) -> u64 {
        self.clusters
            .iter()
            .flat_map(|c| c.ces.iter())
            .map(|ce| ce.busy_cycles().as_u64())
            .sum()
    }

    /// Sum of flops over all CEs.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.clusters
            .iter()
            .flat_map(|c| c.ces.iter())
            .map(ComputationalElement::flops)
            .sum()
    }

    /// Serializes the machine's complete functional state — parameters,
    /// every cluster (CEs, cache, memory, bus), global memory with its
    /// sync processors and fault plan, the VM system, and the
    /// performance monitor — into one sealed snapshot.
    ///
    /// The cost model's measurement cache and the telemetry handle are
    /// deliberately excluded: both are pure overlays that a restored
    /// machine rebuilds lazily ([`restore_functional_state`] starts
    /// with a fresh cost model; call [`set_obs`] / [`attach_faults`]
    /// again to re-instrument).
    ///
    /// [`restore_functional_state`]: Self::restore_functional_state
    /// [`set_obs`]: Self::set_obs
    /// [`attach_faults`]: Self::attach_faults
    #[must_use]
    pub fn snapshot_functional_state(&self) -> Vec<u8> {
        use cedar_snap::Snapshot;
        let mut w = cedar_snap::SnapWriter::new();
        self.params.snap(&mut w);
        self.clusters.snap(&mut w);
        self.global.snap(&mut w);
        self.vm.snap(&mut w);
        self.monitor.snap(&mut w);
        cedar_snap::seal(&w.into_bytes())
    }

    /// Rebuilds a machine from [`snapshot_functional_state`] bytes.
    ///
    /// The restored machine is functionally identical to the one
    /// snapshotted — same memory words, sync-processor state, cache
    /// tags, CE counters, TLB contents — with a fresh (empty) cost
    /// model cache and telemetry detached.
    ///
    /// # Errors
    ///
    /// Returns a [`cedar_snap::SnapError`] if the bytes are truncated,
    /// corrupt, or from an incompatible snapshot version.
    ///
    /// [`snapshot_functional_state`]: Self::snapshot_functional_state
    pub fn restore_functional_state(bytes: &[u8]) -> Result<Self, cedar_snap::SnapError> {
        use cedar_snap::Snapshot;
        let payload = cedar_snap::unseal(bytes)?;
        let mut r = cedar_snap::SnapReader::new(payload);
        let params: CedarParams = Snapshot::restore(&mut r)?;
        let clusters = Snapshot::restore(&mut r)?;
        let global = Snapshot::restore(&mut r)?;
        let vm = Snapshot::restore(&mut r)?;
        let monitor = Snapshot::restore(&mut r)?;
        if r.remaining() != 0 {
            return Err(cedar_snap::SnapError::TrailingBytes);
        }
        let cost_model = CostModel::new(params.fabric.clone());
        Ok(CedarSystem {
            clusters,
            global,
            vm,
            monitor,
            cost_model,
            params,
            obs: Obs::disabled(),
        })
    }
}

cedar_snap::snapshot_struct!(Cluster {
    ces,
    cache,
    memory,
    bus,
});

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_mem::sync::SyncInstruction;

    #[test]
    fn machine_assembles_per_paper() {
        let cedar = CedarSystem::new(CedarParams::paper());
        assert_eq!(cedar.clusters().len(), 4);
        assert_eq!(cedar.clusters()[0].ces.len(), 8);
        assert_eq!(cedar.clusters()[0].bus.ces(), 8);
        assert_eq!(cedar.vm().clusters(), 4);
    }

    #[test]
    fn set_obs_reaches_memory_and_prefetch_units() {
        use cedar_obs::ObsConfig;
        let mut cedar = CedarSystem::new(CedarParams::paper());
        let obs = Obs::new(ObsConfig::enabled());
        cedar.set_obs(&obs);
        cedar.global_mut().read_word(0);
        let pfu = cedar.cluster_mut(0).ces[0].prefetch_unit_mut();
        pfu.arm(4, 1, u64::MAX);
        pfu.fire(0);
        while pfu.next_request().is_some() {}
        assert_eq!(obs.counter_value("mem.reads"), 1);
        assert_eq!(obs.counter_value("cpu.prefetch.fired"), 1);
        assert_eq!(obs.counter_value("cpu.prefetch.requests_issued"), 4);
        assert!(cedar.obs().is_enabled());
    }

    #[test]
    fn sync_counter_round_trip() {
        let mut cedar = CedarSystem::new(CedarParams::paper());
        for expected in 0..5 {
            let out = cedar
                .global_mut()
                .sync_op(7, SyncInstruction::fetch_and_add(1));
            assert_eq!(out.old_value, expected);
        }
    }

    #[test]
    fn unit_conversions() {
        let cedar = CedarSystem::new(CedarParams::paper());
        let secs = cedar.seconds(CycleDelta::new(1_000_000));
        assert!((secs - 0.17).abs() < 1e-9);
        // 2 flops/cycle = 11.76 MFLOPS.
        let mflops = cedar.mflops(2_000_000.0, 1_000_000.0);
        assert!((mflops - 11.76).abs() < 0.02);
        assert_eq!(cedar.mflops(1.0, 0.0), 0.0);
    }

    #[test]
    fn ce_accounting_aggregates() {
        let mut cedar = CedarSystem::new(CedarParams::paper());
        cedar.cluster_mut(0).ces[0].run_scalar(100, 50.0);
        cedar.cluster_mut(1).ces[3].run_scalar(200, 25.0);
        assert_eq!(cedar.total_busy_cycles(), 300);
        assert_eq!(cedar.total_flops(), 75.0);
        cedar.reset_ce_counters();
        assert_eq!(cedar.total_busy_cycles(), 0);
    }

    #[test]
    fn smaller_machine_variants() {
        let cedar = CedarSystem::new(CedarParams::paper().with_clusters(1).unwrap());
        assert_eq!(cedar.clusters().len(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid machine parameters")]
    fn invalid_params_rejected() {
        let mut p = CedarParams::paper();
        p.ces_per_cluster = 100;
        let _ = CedarSystem::new(p);
    }

    #[test]
    fn try_new_reports_invalid_params() {
        let mut p = CedarParams::paper();
        p.ces_per_cluster = 100;
        assert!(CedarSystem::try_new(p).is_err());
        assert!(CedarSystem::try_new(CedarParams::paper()).is_ok());
    }

    #[test]
    fn attached_faults_reach_the_sync_processors() {
        use cedar_faults::{FaultConfig, FaultPlan, MachineShape, RetryPolicy};

        let mut cedar = CedarSystem::new(CedarParams::paper());
        let plan = FaultPlan::generate(
            &FaultConfig::dead_sync_processor(7, 0),
            &MachineShape::cedar(),
        )
        .unwrap();
        cedar.attach_faults(&plan, RetryPolicy::fabric());
        // Word 0 lives on module 0, whose sync processor is dead: the
        // fetch-and-add reply arrives but the update never commits.
        for _ in 0..3 {
            let out = cedar
                .global_mut()
                .sync_op(0, SyncInstruction::fetch_and_add(1));
            assert_eq!(out.old_value, 0);
        }
        assert_eq!(cedar.global().sync_lost_count(), 3);
    }

    #[test]
    fn functional_state_round_trips_bit_identically() {
        let mut cedar = CedarSystem::new(CedarParams::paper());
        // Touch every functional subsystem so the snapshot carries
        // non-trivial state.
        cedar.global_mut().write_word(12, 0xFEED);
        cedar
            .global_mut()
            .sync_op(7, SyncInstruction::fetch_and_add(3));
        cedar.vm_mut().translate(0, cedar_mem::address::VAddr(0));
        cedar.vm_mut().translate(2, cedar_mem::address::VAddr(0));
        cedar.cluster_mut(1).ces[4].run_scalar(500, 20.0);
        cedar
            .cluster_mut(1)
            .cache
            .access(cedar_mem::address::PAddr::in_cluster(0x40), true);
        cedar.cluster_mut(1).bus.concurrent_start(16);
        cedar.cluster_mut(1).bus.self_schedule_next();

        let bytes = cedar.snapshot_functional_state();
        let restored = CedarSystem::restore_functional_state(&bytes).unwrap();

        assert_eq!(restored.params(), cedar.params());
        assert_eq!(restored.global().read_count(), cedar.global().read_count());
        assert_eq!(restored.total_busy_cycles(), cedar.total_busy_cycles());
        assert_eq!(restored.total_flops(), cedar.total_flops());
        assert_eq!(restored.vm().tlb_hits(), cedar.vm().tlb_hits());
        assert_eq!(
            restored.vm().tlb_miss_faults(),
            cedar.vm().tlb_miss_faults()
        );
        assert_eq!(
            restored.clusters()[1].cache.miss_count(),
            cedar.clusters()[1].cache.miss_count()
        );
        assert_eq!(
            restored.clusters()[1].bus.dispatch_count(),
            cedar.clusters()[1].bus.dispatch_count()
        );
        // Re-snapshotting the restored machine must give the same
        // bytes: the canonical encoding is a fixed point.
        assert_eq!(restored.snapshot_functional_state(), bytes);
    }

    #[test]
    fn restored_machine_continues_identically() {
        let run_tail = |sys: &mut CedarSystem| {
            let mut trace = Vec::new();
            for i in 0..10u64 {
                let out = sys
                    .global_mut()
                    .sync_op(7, SyncInstruction::fetch_and_add(i as i32 + 1));
                let (paddr, kind) = sys
                    .vm_mut()
                    .translate(1, cedar_mem::address::VAddr(i * 4096));
                trace.push((out.old_value, paddr.0, kind));
            }
            trace
        };
        let mut original = CedarSystem::new(CedarParams::paper());
        original
            .global_mut()
            .sync_op(7, SyncInstruction::fetch_and_add(100));
        original.vm_mut().translate(0, cedar_mem::address::VAddr(0));
        let bytes = original.snapshot_functional_state();
        let mut restored = CedarSystem::restore_functional_state(&bytes).unwrap();
        assert_eq!(run_tail(&mut original), run_tail(&mut restored));
    }

    #[test]
    fn corrupt_functional_snapshot_rejected() {
        let cedar = CedarSystem::new(CedarParams::paper());
        let mut bytes = cedar.snapshot_functional_state();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(CedarSystem::restore_functional_state(&bytes).is_err());
        assert!(CedarSystem::restore_functional_state(&bytes[..20]).is_err());
    }

    #[test]
    fn benign_faults_leave_the_machine_healthy() {
        use cedar_faults::{FaultConfig, FaultPlan, MachineShape, RetryPolicy};

        let mut cedar = CedarSystem::new(CedarParams::paper());
        let plan = FaultPlan::generate(&FaultConfig::none(7), &MachineShape::cedar()).unwrap();
        cedar.attach_faults(&plan, RetryPolicy::fabric());
        let out = cedar
            .global_mut()
            .sync_op(0, SyncInstruction::fetch_and_add(1));
        assert_eq!(out.old_value, 0);
        assert_eq!(cedar.global().sync_lost_count(), 0);
        assert!(cedar.global().faults().is_none());
    }
}
