//! `cedar-net` — the Cedar global interconnection network.
//!
//! The paper (§2, "Global Network") describes the network this crate
//! simulates:
//!
//! > "It is a multistage shuffle-exchange network … self-routing,
//! > buffered and packet-switched. Routing is based on the tag control
//! > scheme proposed in \[Lawr75\] and provides a unique path between
//! > any pair of input/output ports. Each network packet consists of
//! > one to four 64-bit words … The network is constructed with 8×8
//! > crossbar switches with 64-bit wide data paths. A two word queue
//! > is used on each crossbar input and output port and flow control
//! > between stages prevents queue overflow."
//!
//! Two unidirectional copies exist: a *forward* network carrying
//! requests from computational elements (CEs) to the global-memory
//! modules, and a *reverse* network carrying data back.
//!
//! The crate provides:
//!
//! * [`config::NetworkConfig`] — radix/stage/queue parameters with the
//!   Cedar defaults;
//! * [`packet`] — packets of one to four 64-bit words and word-level
//!   flits;
//! * [`topology`] — the radix-`r` perfect-shuffle wiring and
//!   destination-tag routing digits;
//! * [`switch::Crossbar`] — an 8×8 crossbar with two-word input and
//!   output queues, round-robin arbitration and wormhole packet
//!   integrity;
//! * [`network::OmegaNetwork`] — the assembled unidirectional network
//!   with cycle-by-cycle flow control;
//! * [`fabric::RoundTripFabric`] — forward network + per-port memory
//!   servers + reverse network, the measurement engine behind the
//!   paper's Table 2 (first-word latency and interarrival time under
//!   contention);
//! * [`combining::CombiningFabric`] — the same stages with NYU
//!   Ultracomputer fetch-and-add combining switched on, the zoo's
//!   Ultra machine and its plain-omega hotspot control;
//! * [`cedar32`] — the production 32×32 dual-link variant the real
//!   machine shipped with (path diversity the regular omega lacks),
//!   used by the fidelity study.
//!
//! # Clocking
//!
//! The network is simulated in *network cycles*. Cedar's switches were
//! clocked faster than the 170 ns CE instruction cycle; the default
//! configuration uses two network cycles per CE cycle, which together
//! with the memory-module service time reproduces the paper's minimum
//! round-trip of 8 CE cycles and minimum interarrival of ~1 CE cycle.
//!
//! # Examples
//!
//! ```
//! use cedar_net::config::NetworkConfig;
//! use cedar_net::network::OmegaNetwork;
//! use cedar_net::packet::Packet;
//!
//! let cfg = NetworkConfig::cedar();
//! let mut net = OmegaNetwork::new(cfg);
//! let pkt = Packet::request(0, 17, 1);
//! assert!(net.try_inject(pkt));
//! let mut delivered = Vec::new();
//! for _ in 0..20 {
//!     net.step();
//!     delivered.extend(net.drain_delivered());
//! }
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].packet.dest, 17);
//! ```

#![warn(missing_docs)]

pub mod cedar32;
pub mod combining;
pub mod config;
pub mod fabric;
pub mod network;
pub mod packet;
pub mod switch;
pub mod topology;

pub use combining::{
    run_hotspot, CombiningConfig, CombiningFabric, CombiningReport, HotspotTraffic,
};
pub use config::NetworkConfig;
pub use fabric::specialized::{EngineKind, ENGINE_ENV};
pub use fabric::{AddressPattern, FabricReport, PrefetchTraffic, RoundTripFabric};
pub use network::{Delivery, OmegaNetwork};
pub use packet::{Packet, PacketId, PacketKind};
