//! One unidirectional omega network assembled from crossbar stages.
//!
//! Words advance one switch per network cycle: each [`step`] performs
//! inter-stage link transfers (oldest stage first, so a word never
//! teleports through the whole network in one cycle), then internal
//! crossbar switching, then injection from the per-port source FIFOs.
//! Injection is gated to the CE clock (one word per CE cycle per
//! port), modelling the processor-side interface running at the
//! slower 170 ns instruction clock.
//!
//! [`step`]: OmegaNetwork::step

use std::collections::VecDeque;

use cedar_faults::{CedarError, FaultPlan, NetDirection};
use cedar_obs::{CounterId, HistogramId, Obs};

use crate::config::NetworkConfig;
use crate::packet::{Packet, PacketId, Word};
use crate::switch::Crossbar;
use crate::topology::{Hop, Topology};

/// Capacity of the per-port injection FIFO, in words. This models the
/// small buffer between a CE (or memory module) and its network port;
/// sources see backpressure through [`OmegaNetwork::try_inject`].
pub const INJECT_FIFO_WORDS: usize = 8;

/// Interned telemetry handles for one network, built once by
/// [`OmegaNetwork::set_obs`] so the per-cycle loops update counters by
/// index instead of by name.
#[derive(Debug)]
struct NetObs {
    obs: Obs,
    /// Per-stage count of transfers that had a word ready but could
    /// not move it (downstream queue full or fault-blocked output).
    blocked: Vec<CounterId>,
    /// Words refused at the exit because the consumer-side FIFO was
    /// full (consumer congestion backing into the net).
    exit_blocked: CounterId,
    /// Words lost to injected link faults.
    dropped: CounterId,
    /// Per-stage distribution of total buffered words, sampled once
    /// per network cycle.
    occupancy: Vec<HistogramId>,
}

/// A packet that has fully exited the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The delivered packet.
    pub packet: Packet,
    /// Network cycle at which the head word exited.
    pub head_exit: u64,
    /// Network cycle at which the tail word exited.
    pub tail_exit: u64,
}

/// Progress of a packet's words through the final output.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExitProgress {
    pub(crate) packet: Packet,
    pub(crate) head_exit: u64,
    pub(crate) words_seen: u8,
}

/// One unidirectional multistage shuffle-exchange network.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug)]
pub struct OmegaNetwork {
    pub(crate) cfg: NetworkConfig,
    pub(crate) topo: Topology,
    pub(crate) stages: Vec<Vec<Crossbar>>,
    pub(crate) inject_fifo: Vec<VecDeque<Word>>,
    /// Words that exited but have not been consumed yet, per output
    /// position. The consumer (memory module or CE interface) pops at
    /// its own rate; this queue is bounded by the switch output queue
    /// upstream, so it holds at most one word added per cycle and is
    /// drained by `pop_output`.
    pub(crate) exit_fifo: Vec<VecDeque<(Word, u64)>>,
    pub(crate) exit_progress: Vec<Option<ExitProgress>>,
    pub(crate) delivered: Vec<Delivery>,
    pub(crate) now: u64,
    pub(crate) words_injected: u64,
    pub(crate) words_exited: u64,
    pub(crate) words_dropped: u64,
    /// Which direction this network plays in a fault plan; only
    /// consulted when `faults` is attached.
    direction: NetDirection,
    /// Attached fault schedule. `None` (the default, and the result of
    /// attaching a benign plan) leaves every code path bit-identical
    /// to the healthy network.
    faults: Option<FaultPlan>,
    /// Attached telemetry. `None` (the default, and the result of
    /// attaching a handle without live metrics) keeps every per-cycle
    /// loop on its un-instrumented path.
    obs: Option<NetObs>,
}

impl OmegaNetwork {
    /// Builds an idle network.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NetworkConfig::validate`].
    /// Use [`try_new`](Self::try_new) to handle the rejection instead.
    #[must_use]
    pub fn new(cfg: NetworkConfig) -> Self {
        OmegaNetwork::try_new(cfg).expect("invalid network configuration")
    }

    /// Builds an idle network, validating the configuration.
    ///
    /// # Errors
    ///
    /// Propagates whatever [`NetworkConfig::validate`] rejects.
    pub fn try_new(cfg: NetworkConfig) -> Result<Self, CedarError> {
        cfg.validate()?;
        let topo = Topology::new(cfg.radix, cfg.stages)?;
        let stages = (0..cfg.stages)
            .map(|s| {
                (0..topo.switches_per_stage())
                    .map(|_| Crossbar::new(cfg.radix, cfg.queue_words, s))
                    .collect()
            })
            .collect();
        let ports = topo.ports();
        Ok(OmegaNetwork {
            cfg,
            topo,
            stages,
            inject_fifo: (0..ports).map(|_| VecDeque::new()).collect(),
            exit_fifo: (0..ports).map(|_| VecDeque::new()).collect(),
            exit_progress: vec![None; ports],
            delivered: Vec::new(),
            now: 0,
            words_injected: 0,
            words_exited: 0,
            words_dropped: 0,
            direction: NetDirection::Forward,
            faults: None,
            obs: None,
        })
    }

    /// Attaches a telemetry handle under `label` (e.g. `"fwd"` /
    /// `"rev"`), interning this network's counters and histograms up
    /// front: `net.<label>.stage<i>.blocked_transfers`,
    /// `net.<label>.stage<i>.occupancy_words`,
    /// `net.<label>.exit_blocked` and `net.<label>.words_dropped`.
    /// A handle without live metrics is discarded, leaving the
    /// per-cycle loops bit-identical to an un-instrumented network.
    pub fn set_obs(&mut self, obs: &Obs, label: &str) {
        if !obs.metrics_enabled() {
            self.obs = None;
            return;
        }
        let queue_words = self.cfg.queue_words;
        let radix = self.cfg.radix;
        let switches = self.topo.switches_per_stage();
        // Worst case per stage: every input and output queue full.
        let max_words = switches * radix * queue_words * 2;
        let bins = 32usize;
        let bin_width = ((max_words / bins) + 1) as u64;
        let blocked = (0..self.cfg.stages)
            .map(|s| {
                obs.counter(&format!("net.{label}.stage{s}.blocked_transfers"))
                    .expect("metrics enabled")
            })
            .collect();
        let occupancy = (0..self.cfg.stages)
            .map(|s| {
                obs.histogram(
                    &format!("net.{label}.stage{s}.occupancy_words"),
                    bins,
                    bin_width,
                )
                .expect("metrics enabled")
            })
            .collect();
        self.obs = Some(NetObs {
            blocked,
            exit_blocked: obs
                .counter(&format!("net.{label}.exit_blocked"))
                .expect("metrics enabled"),
            dropped: obs
                .counter(&format!("net.{label}.words_dropped"))
                .expect("metrics enabled"),
            occupancy,
            obs: obs.clone(),
        });
    }

    /// Attaches a fault schedule, declaring which direction this
    /// network plays in it. A benign plan is discarded: the network
    /// then behaves bit-identically to one with no plan attached.
    pub fn attach_faults(&mut self, direction: NetDirection, plan: FaultPlan) {
        self.direction = direction;
        self.faults = if plan.is_benign() { None } else { Some(plan) };
    }

    /// The attached fault schedule, if any.
    #[must_use]
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Whether a switch output may transmit this cycle under the
    /// attached fault schedule.
    fn output_open(&self, stage: usize, switch: usize, port: usize) -> bool {
        match &self.faults {
            None => true,
            Some(plan) => !plan.output_blocked(self.direction, stage, switch, port, self.now),
        }
    }

    /// Whether the link traversal out of `(stage, switch, port)` loses
    /// `word` this cycle. Only single-word packets are droppable: a
    /// dropped body word would corrupt wormhole reassembly downstream,
    /// and Cedar's multi-word packets (writes) are covered by the
    /// module-side fault classes instead.
    fn link_eats(&self, stage: usize, switch: usize, port: usize, word: Word) -> bool {
        match &self.faults {
            None => false,
            Some(plan) => {
                word.packet.words == 1
                    && plan.drops_word(
                        self.direction,
                        stage,
                        switch,
                        port,
                        word.packet.id.0,
                        self.now,
                    )
            }
        }
    }

    /// The network's topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The configuration this network was built with.
    #[must_use]
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Current simulation time in network cycles.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Queues a packet for injection at its source port. Returns
    /// `false` without queueing if the port's injection FIFO lacks
    /// room for the whole packet — the source must retry later.
    ///
    /// # Panics
    ///
    /// Panics if the packet's source or destination port is out of
    /// range.
    pub fn try_inject(&mut self, packet: Packet) -> bool {
        assert!(packet.src < self.topo.ports(), "src out of range");
        assert!(packet.dest < self.topo.ports(), "dest out of range");
        let fifo = &mut self.inject_fifo[packet.src];
        if fifo.len() + packet.words as usize > INJECT_FIFO_WORDS {
            return false;
        }
        fifo.extend(Word::of_packet(packet));
        true
    }

    /// Words waiting in the injection FIFO of `port`.
    #[must_use]
    pub fn inject_backlog(&self, port: usize) -> usize {
        self.inject_fifo[port].len()
    }

    /// Advances the network by one network cycle.
    ///
    /// The telemetry check happens once here, not inside the per-cycle
    /// loops: the un-instrumented instantiation compiles the obs
    /// branches away entirely.
    pub fn step(&mut self) {
        if self.obs.is_some() {
            self.step_impl::<true>();
        } else {
            self.step_impl::<false>();
        }
    }

    fn step_impl<const OBS: bool>(&mut self) {
        self.now += 1;
        self.collect_exits::<OBS>();
        self.link_transfers::<OBS>();
        for stage in &mut self.stages {
            for sw in stage {
                sw.transfer(&self.topo);
            }
        }
        self.injection();
        if OBS {
            self.sample_occupancy();
        }
    }

    /// Records each stage's total buffered words into its occupancy
    /// histogram. Only called when telemetry is attached.
    fn sample_occupancy(&mut self) {
        let Some(net_obs) = &self.obs else { return };
        for (stage, &hist) in self.stages.iter().zip(&net_obs.occupancy) {
            let words: usize = stage
                .iter()
                .map(|sw| sw.words_in_inputs() + sw.words_in_outputs())
                .sum();
            net_obs.obs.record(hist, words as u64);
        }
    }

    /// Moves words from final-stage switch outputs to the exit FIFOs
    /// (one word per output position per cycle). A full exit buffer
    /// refuses the word, backing the final stage up — the consumer's
    /// congestion thereby propagates into the network.
    fn collect_exits<const OBS: bool>(&mut self) {
        let last = self.cfg.stages - 1;
        let radix = self.cfg.radix;
        for sw_idx in 0..self.topo.switches_per_stage() {
            for out_port in 0..radix {
                let pos = match self.topo.next_hop(last, sw_idx, out_port) {
                    Hop::Output(p) => p,
                    Hop::Switch { .. } => unreachable!("last stage exits the network"),
                };
                if !self.output_open(last, sw_idx, out_port) {
                    if OBS {
                        if let Some(net_obs) = &self.obs {
                            if self.stages[last][sw_idx].peek_output(out_port).is_some() {
                                net_obs.obs.inc(net_obs.blocked[last]);
                            }
                        }
                    }
                    continue;
                }
                if self.exit_fifo[pos].len() >= self.cfg.exit_fifo_words {
                    if OBS {
                        if let Some(net_obs) = &self.obs {
                            if self.stages[last][sw_idx].peek_output(out_port).is_some() {
                                net_obs.obs.inc(net_obs.exit_blocked);
                            }
                        }
                    }
                    continue;
                }
                if let Some(&word) = self.stages[last][sw_idx].peek_output(out_port) {
                    if self.link_eats(last, sw_idx, out_port, word) {
                        let _ = self.stages[last][sw_idx].pop_output(out_port);
                        self.words_dropped += 1;
                        if OBS {
                            if let Some(net_obs) = &self.obs {
                                net_obs.obs.inc(net_obs.dropped);
                            }
                        }
                        continue;
                    }
                    let word = self.stages[last][sw_idx]
                        .pop_output(out_port)
                        .expect("peeked word");
                    self.exit_fifo[pos].push_back((word, self.now));
                    self.words_exited += 1;
                }
            }
        }
    }

    /// Inter-stage link transfers, earliest stage first so that a word
    /// moves at most one switch per cycle (its arrival at stage `s+1`
    /// happens before stage `s+1`'s internal transfer this cycle,
    /// giving one full switch traversal per cycle).
    fn link_transfers<const OBS: bool>(&mut self) {
        let radix = self.cfg.radix;
        for s in (0..self.cfg.stages - 1).rev() {
            for sw_idx in 0..self.topo.switches_per_stage() {
                for out_port in 0..radix {
                    let Hop::Switch {
                        switch: next_sw,
                        input: next_in,
                    } = self.topo.next_hop(s, sw_idx, out_port)
                    else {
                        unreachable!("non-final stage feeds a switch");
                    };
                    if !self.output_open(s, sw_idx, out_port) {
                        if OBS {
                            if let Some(net_obs) = &self.obs {
                                if self.stages[s][sw_idx].peek_output(out_port).is_some() {
                                    net_obs.obs.inc(net_obs.blocked[s]);
                                }
                            }
                        }
                        continue;
                    }
                    let Some(&word) = self.stages[s][sw_idx].peek_output(out_port) else {
                        continue;
                    };
                    if !self.stages[s + 1][next_sw].can_accept(next_in) {
                        if OBS {
                            if let Some(net_obs) = &self.obs {
                                net_obs.obs.inc(net_obs.blocked[s]);
                            }
                        }
                        continue;
                    }
                    let word_taken = self.stages[s][sw_idx]
                        .pop_output(out_port)
                        .expect("peeked word");
                    if self.link_eats(s, sw_idx, out_port, word) {
                        self.words_dropped += 1;
                        if OBS {
                            if let Some(net_obs) = &self.obs {
                                net_obs.obs.inc(net_obs.dropped);
                            }
                        }
                        continue;
                    }
                    let accepted = self.stages[s + 1][next_sw].try_accept(next_in, word_taken);
                    debug_assert!(accepted, "can_accept said there was space");
                }
            }
        }
    }

    /// Moves at most one word per port from the injection FIFOs into
    /// the stage-0 input queues, only on CE-cycle boundaries.
    fn injection(&mut self) {
        if !self.now.is_multiple_of(self.cfg.net_cycles_per_ce_cycle) {
            return;
        }
        for src in 0..self.topo.ports() {
            let Some(&word) = self.inject_fifo[src].front() else {
                continue;
            };
            let (sw_idx, input) = self.topo.injection_switch(src);
            if self.stages[0][sw_idx].try_accept(input, word) {
                self.inject_fifo[src].pop_front();
                self.words_injected += 1;
            }
        }
    }

    /// The oldest unconsumed word at network output `pos`, with its
    /// exit cycle, without removing it.
    #[must_use]
    pub fn peek_output(&self, pos: usize) -> Option<&(Word, u64)> {
        self.exit_fifo[pos].front()
    }

    /// Consumes the oldest word at network output `pos`. Packet
    /// completions are tracked and surface via [`drain_delivered`].
    ///
    /// [`drain_delivered`]: Self::drain_delivered
    pub fn pop_output(&mut self, pos: usize) -> Option<(Word, u64)> {
        let (word, at) = self.exit_fifo[pos].pop_front()?;
        let progress = &mut self.exit_progress[pos];
        let entry = progress.get_or_insert(ExitProgress {
            packet: word.packet,
            head_exit: at,
            words_seen: 0,
        });
        debug_assert_eq!(entry.packet.id, word.packet.id, "interleaved exit words");
        entry.words_seen += 1;
        if entry.words_seen == entry.packet.words {
            self.delivered.push(Delivery {
                packet: entry.packet,
                head_exit: entry.head_exit,
                tail_exit: at,
            });
            *progress = None;
        }
        Some((word, at))
    }

    /// Pops every available exit word at every port (an infinite-sink
    /// consumer) and returns packets completed so far.
    pub fn drain_delivered(&mut self) -> Vec<Delivery> {
        let mut out = Vec::new();
        self.drain_delivered_into(&mut out);
        out
    }

    /// Like [`drain_delivered`](Self::drain_delivered), but appends
    /// the completions to a caller-owned buffer — the per-cycle loops
    /// reuse one buffer instead of allocating a fresh `Vec` each cycle.
    pub fn drain_delivered_into(&mut self, out: &mut Vec<Delivery>) {
        for pos in 0..self.topo.ports() {
            while self.pop_output(pos).is_some() {}
        }
        out.append(&mut self.delivered);
    }

    /// Packets fully delivered and not yet taken by
    /// [`drain_delivered`](Self::drain_delivered).
    #[must_use]
    pub fn delivered_count(&self) -> usize {
        self.delivered.len()
    }

    /// Discards the completion log without reading it. Long-running
    /// consumers that pop exit words directly and never look at the
    /// log call this each cycle to keep its memory flat instead of
    /// accumulating one entry per packet for the whole run.
    pub fn clear_delivered(&mut self) {
        self.delivered.clear();
    }

    /// Advances the clock by `cycles` without simulating them.
    ///
    /// Sound only while the network [`is idle`](Self::is_idle): an
    /// idle cycle moves no word and leaves every arbitration pointer
    /// untouched, so it is a pure clock tick. The fabric's idle
    /// fast-forward uses this to keep the network clock (which stamps
    /// exit times) in lockstep with its own after a skip.
    pub fn skip_idle_cycles(&mut self, cycles: u64) {
        debug_assert!(self.is_idle(), "skipping cycles with words in flight");
        self.now += cycles;
    }

    /// Whether any word is buffered anywhere in the network, the
    /// injection FIFOs, or the exit FIFOs.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.inject_fifo.iter().all(VecDeque::is_empty)
            && self.exit_fifo.iter().all(VecDeque::is_empty)
            && self
                .stages
                .iter()
                .flatten()
                .all(|sw| sw.words_in_inputs() == 0 && sw.words_in_outputs() == 0)
    }

    /// Total words injected into stage 0 so far.
    #[must_use]
    pub fn words_injected(&self) -> u64 {
        self.words_injected
    }

    /// Total words that exited the final stage so far.
    #[must_use]
    pub fn words_exited(&self) -> u64 {
        self.words_exited
    }

    /// Total words lost to injected link faults so far. Always zero
    /// without an attached fault schedule.
    #[must_use]
    pub fn words_dropped(&self) -> u64 {
        self.words_dropped
    }

    /// Enables (nonzero `slots`) or disables (zero) Ultracomputer-style
    /// fetch-and-add combining at every switch, with `slots` wait-buffer
    /// entries per switch. See [`Crossbar::set_combining`].
    pub fn enable_combining(&mut self, slots: usize) {
        for stage in &mut self.stages {
            for sw in stage {
                sw.set_combining(slots);
            }
        }
    }

    /// Total sync requests absorbed by combining across all switches.
    #[must_use]
    pub fn words_combined(&self) -> u64 {
        self.stages
            .iter()
            .flatten()
            .map(Crossbar::words_combined)
            .sum()
    }

    /// Absorbed packets still parked in switch wait buffers.
    #[must_use]
    pub fn combined_waiting(&self) -> usize {
        self.stages
            .iter()
            .flatten()
            .map(Crossbar::waiting_combined)
            .sum()
    }

    /// Decombination: collects every packet absorbed under survivor
    /// `id`, transitively — an absorbed packet may itself have
    /// absorbed others at an earlier stage, and those riders follow
    /// it out. Called by the fabric when the survivor's reply is
    /// produced, so each collected packet gets its own reply.
    pub fn take_combined(&mut self, id: PacketId) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut ids = vec![id];
        let mut next = 0;
        while next < ids.len() {
            let id = ids[next];
            next += 1;
            for stage in &mut self.stages {
                for sw in stage {
                    let before = out.len();
                    sw.take_combined_into(id, &mut out);
                    for pkt in &out[before..] {
                        ids.push(pkt.id);
                    }
                }
            }
        }
        out
    }
}

cedar_snap::snapshot_struct!(Delivery {
    packet,
    head_exit,
    tail_exit,
});
cedar_snap::snapshot_struct!(ExitProgress {
    packet,
    head_exit,
    words_seen,
});

// The topology is a pure function of the config and is rebuilt on
// restore; telemetry handles are reattached by the caller (`set_obs`).
// Everything that carries words or arbitration state round-trips.
impl cedar_snap::Snapshot for OmegaNetwork {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        self.cfg.snap(w);
        self.stages.snap(w);
        self.inject_fifo.snap(w);
        self.exit_fifo.snap(w);
        self.exit_progress.snap(w);
        self.delivered.snap(w);
        self.now.snap(w);
        self.words_injected.snap(w);
        self.words_exited.snap(w);
        self.words_dropped.snap(w);
        self.direction.snap(w);
        self.faults.snap(w);
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        use cedar_snap::Snapshot;
        let cfg = NetworkConfig::restore(r)?;
        let topo = Topology::new(cfg.radix, cfg.stages)
            .map_err(|_| cedar_snap::SnapError::Invalid("network config rejected"))?;
        Ok(OmegaNetwork {
            cfg,
            topo,
            stages: Snapshot::restore(r)?,
            inject_fifo: Snapshot::restore(r)?,
            exit_fifo: Snapshot::restore(r)?,
            exit_progress: Snapshot::restore(r)?,
            delivered: Snapshot::restore(r)?,
            now: Snapshot::restore(r)?,
            words_injected: Snapshot::restore(r)?,
            words_exited: Snapshot::restore(r)?,
            words_dropped: Snapshot::restore(r)?,
            direction: Snapshot::restore(r)?,
            faults: Snapshot::restore(r)?,
            obs: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketId, PacketKind};

    fn run_until_delivered(net: &mut OmegaNetwork, max_cycles: u64) -> Vec<Delivery> {
        let mut out = Vec::new();
        for _ in 0..max_cycles {
            net.step();
            out.extend(net.drain_delivered());
        }
        out
    }

    #[test]
    fn single_packet_reaches_destination() {
        let mut net = OmegaNetwork::new(NetworkConfig::cedar());
        assert!(net.try_inject(Packet::request(5, 42, 1)));
        let deliveries = run_until_delivered(&mut net, 30);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].packet.dest, 42);
        assert!(net.is_idle());
    }

    #[test]
    fn every_src_dest_pair_is_routable() {
        // Smaller radix keeps this exhaustive test fast: 16-port net.
        let cfg = NetworkConfig {
            radix: 4,
            stages: 2,
            queue_words: 2,
            net_cycles_per_ce_cycle: 1,
            exit_fifo_words: 64,
        };
        for src in 0..16 {
            for dest in 0..16 {
                let mut net = OmegaNetwork::new(cfg);
                net.try_inject(Packet::request(src, dest, 1));
                let d = run_until_delivered(&mut net, 40);
                assert_eq!(d.len(), 1, "{src}->{dest} lost");
                assert_eq!(d[0].packet.dest, dest);
            }
        }
    }

    #[test]
    fn min_one_way_latency_is_two_net_cycles_per_stage() {
        // With net_cycles_per_ce_cycle = 1 a word injected at cycle 1
        // enters stage 0 at cycle 1, switches at cycle 2, links+switches
        // at cycle 3, and exits at cycle 4: ~2 cycles/stage + exit.
        let cfg = NetworkConfig {
            radix: 8,
            stages: 2,
            queue_words: 2,
            net_cycles_per_ce_cycle: 1,
            exit_fifo_words: 64,
        };
        let mut net = OmegaNetwork::new(cfg);
        net.try_inject(Packet::request(0, 63, 7));
        let d = run_until_delivered(&mut net, 20);
        assert_eq!(d.len(), 1);
        assert!(
            (3..=5).contains(&d[0].head_exit),
            "unloaded latency {} outside expected envelope",
            d[0].head_exit
        );
    }

    #[test]
    fn multiword_packet_exits_contiguously() {
        let mut net = OmegaNetwork::new(NetworkConfig::cedar());
        net.try_inject(Packet::write(3, 40, 1, 3));
        let d = run_until_delivered(&mut net, 40);
        assert_eq!(d.len(), 1);
        let delivery = d[0];
        assert_eq!(delivery.packet.words, 4);
        assert!(delivery.tail_exit > delivery.head_exit);
    }

    #[test]
    fn pipelined_stream_achieves_one_word_per_ce_cycle() {
        // One CE streaming single-word packets to one destination:
        // throughput is injection-limited to 1 packet per CE cycle.
        let mut net = OmegaNetwork::new(NetworkConfig::cedar());
        let total = 32u64;
        let mut injected = 0;
        let mut exits = Vec::new();
        let mut cycles = 0;
        while exits.len() < total as usize {
            if injected < total && net.try_inject(Packet::request(0, 32, injected)) {
                injected += 1;
            }
            net.step();
            for d in net.drain_delivered() {
                exits.push(d.head_exit);
            }
            cycles += 1;
            assert!(cycles < 10_000, "stream did not complete");
        }
        let gaps: Vec<u64> = exits.windows(2).map(|w| w[1] - w[0]).collect();
        let mean_gap = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        let per_ce = NetworkConfig::cedar().net_cycles_per_ce_cycle as f64;
        assert!(
            (mean_gap - per_ce).abs() < 0.3,
            "steady-state gap {mean_gap} net cycles; expected about {per_ce}"
        );
    }

    #[test]
    fn contention_to_one_port_serializes() {
        // All 8 sources of one first-stage switch target the same
        // destination: deliveries must be ~1 per CE cycle total.
        let mut net = OmegaNetwork::new(NetworkConfig::cedar());
        for src in 0..8 {
            net.try_inject(Packet::request(src, 9, src as u64));
        }
        let d = run_until_delivered(&mut net, 200);
        assert_eq!(d.len(), 8);
        let mut exits: Vec<u64> = d.iter().map(|x| x.head_exit).collect();
        exits.sort_unstable();
        let span = exits.last().unwrap() - exits.first().unwrap();
        assert!(
            span >= 7,
            "eight packets through one port need >= 7 gaps, span {span}"
        );
    }

    #[test]
    fn distinct_destinations_proceed_in_parallel() {
        // A permutation with no shared switches: src i -> dest i*8 for
        // i in 0..8 (each lands on a distinct final switch) should be
        // much faster than the serialized case.
        let mut net = OmegaNetwork::new(NetworkConfig::cedar());
        for i in 0..8usize {
            net.try_inject(Packet::request(i, i * 8, i as u64));
        }
        let d = run_until_delivered(&mut net, 60);
        assert_eq!(d.len(), 8);
        let mut exits: Vec<u64> = d.iter().map(|x| x.head_exit).collect();
        exits.sort_unstable();
        let span = exits.last().unwrap() - exits.first().unwrap();
        assert!(
            span <= 2,
            "conflict-free traffic should exit nearly together, span {span}"
        );
    }

    #[test]
    fn injection_backpressure_reported() {
        let mut net = OmegaNetwork::new(NetworkConfig::cedar());
        let mut accepted = 0;
        for id in 0..20 {
            if net.try_inject(Packet::request(0, 1, id)) {
                accepted += 1;
            }
        }
        assert_eq!(
            accepted, INJECT_FIFO_WORDS,
            "FIFO capacity bounds acceptance"
        );
        assert_eq!(net.inject_backlog(0), INJECT_FIFO_WORDS);
    }

    #[test]
    fn word_accounting_balances() {
        let mut net = OmegaNetwork::new(NetworkConfig::cedar());
        for id in 0..5 {
            net.try_inject(Packet::request(id as usize, 8 + id as usize, id));
        }
        let _ = run_until_delivered(&mut net, 60);
        assert_eq!(net.words_injected(), 5);
        assert_eq!(net.words_exited(), 5);
        assert!(net.is_idle());
    }

    #[test]
    fn sync_ops_flow_like_reads() {
        let mut net = OmegaNetwork::new(NetworkConfig::cedar());
        let pkt = Packet::new(PacketId(1), 2, 33, 2, PacketKind::SyncOp);
        net.try_inject(pkt);
        let d = run_until_delivered(&mut net, 40);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].packet.kind, PacketKind::SyncOp);
    }

    #[test]
    fn try_new_rejects_invalid_config() {
        let mut cfg = NetworkConfig::cedar();
        cfg.radix = 6;
        let err = OmegaNetwork::try_new(cfg).unwrap_err();
        assert!(err.to_string().contains("net.radix"), "{err}");
    }

    mod obs {
        use super::*;
        use cedar_obs::{Obs, ObsConfig};

        #[test]
        fn contention_shows_up_in_blocked_counters_and_occupancy() {
            let mut net = OmegaNetwork::new(NetworkConfig::cedar());
            let obs = Obs::new(ObsConfig::metrics_only());
            net.set_obs(&obs, "fwd");
            // All 8 sources of one switch to one destination: heavy
            // contention, so some stage must report blocked transfers.
            for round in 0..4u64 {
                for src in 0..8 {
                    net.try_inject(Packet::request(src, 9, round * 8 + src as u64));
                }
                for _ in 0..50 {
                    net.step();
                }
                let _ = net.drain_delivered();
            }
            let blocked = obs.with(|inner| inner.metrics.rollup("net.fwd.")).unwrap();
            assert!(blocked > 0, "contention must register somewhere");
            let occupancy = obs
                .with(|inner| {
                    inner
                        .metrics
                        .histogram_entry("net.fwd.stage0.occupancy_words")
                        .map(|e| e.bins.total())
                })
                .unwrap()
                .unwrap();
            assert!(occupancy > 0, "occupancy sampled every cycle");
        }

        #[test]
        fn disabled_handle_attaches_nothing() {
            let mut net = OmegaNetwork::new(NetworkConfig::cedar());
            let obs = Obs::disabled();
            net.set_obs(&obs, "fwd");
            assert!(net.obs.is_none());
            net.try_inject(Packet::request(0, 1, 1));
            for _ in 0..20 {
                net.step();
            }
            assert_eq!(obs.counter_value("net.fwd.exit_blocked"), 0);
        }
    }

    mod faults {
        use super::*;
        use cedar_faults::{FaultConfig, FaultPlan, MachineShape, NetDirection};

        fn cedar_plan(cfg: &FaultConfig) -> FaultPlan {
            FaultPlan::generate(cfg, &MachineShape::cedar()).unwrap()
        }

        fn run_traffic(net: &mut OmegaNetwork) -> Vec<Delivery> {
            for id in 0..32u64 {
                net.try_inject(Packet::request(
                    (id % 8) as usize,
                    8 + (id % 16) as usize,
                    id,
                ));
            }
            let mut out = Vec::new();
            for _ in 0..400 {
                net.step();
                out.extend(net.drain_delivered());
            }
            out
        }

        #[test]
        fn benign_plan_is_bit_identical_to_no_plan() {
            let mut healthy = OmegaNetwork::new(NetworkConfig::cedar());
            let mut benign = OmegaNetwork::new(NetworkConfig::cedar());
            benign.attach_faults(NetDirection::Forward, cedar_plan(&FaultConfig::none(1)));
            assert!(benign.faults().is_none(), "benign plan is discarded");
            let a = run_traffic(&mut healthy);
            let b = run_traffic(&mut benign);
            assert_eq!(a, b);
            assert_eq!(healthy.words_exited(), benign.words_exited());
            assert_eq!(benign.words_dropped(), 0);
        }

        #[test]
        fn degraded_run_is_deterministic() {
            let cfg = FaultConfig::degraded(0xD15EA5E, 0.05);
            let mut a = OmegaNetwork::new(NetworkConfig::cedar());
            let mut b = OmegaNetwork::new(NetworkConfig::cedar());
            a.attach_faults(NetDirection::Forward, cedar_plan(&cfg));
            b.attach_faults(NetDirection::Forward, cedar_plan(&cfg));
            assert_eq!(run_traffic(&mut a), run_traffic(&mut b));
            assert_eq!(a.words_dropped(), b.words_dropped());
        }

        #[test]
        fn word_accounting_includes_drops() {
            let mut net = OmegaNetwork::new(NetworkConfig::cedar());
            net.attach_faults(
                NetDirection::Forward,
                cedar_plan(&FaultConfig::link_noise(7, 0.3)),
            );
            let delivered = run_traffic(&mut net);
            assert!(net.words_dropped() > 0, "30% loss over 32 packets");
            assert!(delivered.len() < 32, "some packets were lost");
            assert_eq!(
                net.words_injected(),
                net.words_exited() + net.words_dropped(),
                "every injected word either exits or is dropped"
            );
            assert!(net.is_idle(), "lost packets leave no residue");
        }

        #[test]
        fn multiword_packets_are_never_dropped() {
            let mut net = OmegaNetwork::new(NetworkConfig::cedar());
            net.attach_faults(
                NetDirection::Forward,
                cedar_plan(&FaultConfig::link_noise(7, 1.0)),
            );
            net.try_inject(Packet::write(3, 40, 1, 3));
            let mut out = Vec::new();
            for _ in 0..100 {
                net.step();
                out.extend(net.drain_delivered());
            }
            assert_eq!(out.len(), 1, "writes survive even total link noise");
            assert_eq!(out[0].packet.words, 4);
            assert_eq!(net.words_dropped(), 0);
        }

        #[test]
        fn stuck_outputs_delay_but_do_not_lose_packets() {
            let cfg = FaultConfig {
                stuck_outputs: 4,
                stuck_window_cycles: 200,
                ..FaultConfig::none(21)
            };
            let mut net = OmegaNetwork::new(NetworkConfig::cedar());
            net.attach_faults(NetDirection::Forward, cedar_plan(&cfg));
            let mut delivered = Vec::new();
            for id in 0..16u64 {
                net.try_inject(Packet::request(id as usize, 32 + id as usize, id));
            }
            // Long enough for every stuck window to open again.
            for _ in 0..80_000 {
                net.step();
                delivered.extend(net.drain_delivered());
                if delivered.len() == 16 {
                    break;
                }
            }
            assert_eq!(delivered.len(), 16, "stuck windows heal; nothing is lost");
            assert_eq!(net.words_dropped(), 0);
        }
    }
}
