//! The production 32×32 network variant with dual links.
//!
//! The shipped Cedar network was not a regular 64-position omega: it
//! was a 32×32 two-stage network built from the same 8×8 crossbars,
//! four switches per stage, with **two parallel links** between every
//! first-stage/second-stage switch pair (8 outputs ÷ 4 destination
//! switches). A packet's first hop may take either link — chosen
//! adaptively by queue occupancy — which gives the path diversity the
//! regular omega lacks and softens head-of-line blocking.
//!
//! [`DualLinkNetwork`] models that variant;
//! [`run_dual_link_experiment`] drives it closed-loop, and the
//! `fidelity32` bench compares it against the regular omega to
//! quantify what the main model's simplification costs.

use std::collections::VecDeque;

use crate::packet::{Packet, Word};

/// Ports on each side (32 CEs in, 32 memory modules out).
pub const PORTS: usize = 32;
/// Switches per stage.
const SWITCHES: usize = 4;
/// Crossbar radix.
const RADIX: usize = 8;
/// Parallel links between each switch pair.
const LINKS: usize = 2;

/// One buffered port queue.
type PortQueue = VecDeque<Word>;

/// An 8×8 crossbar with adaptive output choice: a head word routed to
/// a destination switch may take either of its two links, preferring
/// the emptier queue.
#[derive(Debug)]
struct AdaptiveSwitch {
    inputs: Vec<PortQueue>,
    outputs: Vec<PortQueue>,
    queue_words: usize,
    /// Wormhole locks: input → output while mid-packet.
    input_lock: Vec<Option<usize>>,
    /// Output → (input, packet id) while mid-packet.
    output_lock: Vec<Option<(usize, crate::packet::PacketId)>>,
    rr_next: Vec<usize>,
    /// Whether this is the final stage (route by `dest % 8`) or the
    /// first (route adaptively to switch `dest / 8`).
    is_final: bool,
}

impl AdaptiveSwitch {
    fn new(queue_words: usize, is_final: bool) -> Self {
        AdaptiveSwitch {
            inputs: (0..RADIX).map(|_| VecDeque::new()).collect(),
            outputs: (0..RADIX).map(|_| VecDeque::new()).collect(),
            queue_words,
            input_lock: vec![None; RADIX],
            output_lock: vec![None; RADIX],
            rr_next: vec![0; RADIX],
            is_final,
        }
    }

    fn can_accept(&self, input: usize) -> bool {
        self.inputs[input].len() < self.queue_words
    }

    fn try_accept(&mut self, input: usize, word: Word) -> bool {
        if self.can_accept(input) {
            self.inputs[input].push_back(word);
            true
        } else {
            false
        }
    }

    /// The usable output for a head word: the final stage routes by
    /// `dest % RADIX`; the first stage picks the emptier of the two
    /// parallel links to switch `dest / RADIX` (lowest port on ties).
    /// `None` when every candidate is locked or full this cycle.
    fn best_output(&self, dest: usize) -> Option<usize> {
        let open =
            |o: usize| self.output_lock[o].is_none() && self.outputs[o].len() < self.queue_words;
        if self.is_final {
            let o = dest % RADIX;
            open(o).then_some(o)
        } else {
            let first = (dest / RADIX) * LINKS;
            (first..first + LINKS)
                .filter(|&o| open(o))
                .min_by_key(|&o| self.outputs[o].len())
        }
    }

    /// One cycle of internal transfer with adaptive link choice.
    fn transfer(&mut self) {
        // Continuations first: locked outputs pull from their inputs.
        for output in 0..RADIX {
            if self.outputs[output].len() >= self.queue_words {
                continue;
            }
            let Some((input, locked_id)) = self.output_lock[output] else {
                continue;
            };
            let Some(&word) = self.inputs[input].front() else {
                continue;
            };
            debug_assert_eq!(word.packet.id, locked_id, "wormhole violation");
            self.inputs[input].pop_front();
            if word.is_tail() {
                self.input_lock[input] = None;
                self.output_lock[output] = None;
            }
            self.outputs[output].push_back(word);
        }
        // New head words: round-robin over inputs, adaptive over links.
        let start = self.rr_next[0];
        for offset in 0..RADIX {
            let input = (start + offset) % RADIX;
            if self.input_lock[input].is_some() {
                continue;
            }
            let Some(&word) = self.inputs[input].front() else {
                continue;
            };
            if !word.is_head() {
                continue;
            }
            let Some(output) = self.best_output(word.packet.dest) else {
                continue;
            };
            self.inputs[input].pop_front();
            if !word.is_tail() {
                self.input_lock[input] = Some(output);
                self.output_lock[output] = Some((input, word.packet.id));
            }
            self.outputs[output].push_back(word);
        }
        self.rr_next[0] = (start + 1) % RADIX;
    }
}

/// The dual-link 32×32 network.
///
/// # Examples
///
/// ```
/// use cedar_net::cedar32::DualLinkNetwork;
/// use cedar_net::packet::Packet;
///
/// let mut net = DualLinkNetwork::new(2);
/// assert!(net.try_inject(Packet::request(3, 17, 1)));
/// for _ in 0..20 {
///     net.step();
/// }
/// let (word, _) = net.pop_output(17).expect("delivered");
/// assert_eq!(word.packet.dest, 17);
/// ```
#[derive(Debug)]
pub struct DualLinkNetwork {
    stage0: Vec<AdaptiveSwitch>,
    stage1: Vec<AdaptiveSwitch>,
    inject_fifo: Vec<VecDeque<Word>>,
    exit_fifo: Vec<VecDeque<(Word, u64)>>,
    exit_capacity: usize,
    now: u64,
}

impl DualLinkNetwork {
    /// Builds an idle network with the given per-port queue depth.
    ///
    /// # Panics
    ///
    /// Panics if `queue_words` is zero.
    #[must_use]
    pub fn new(queue_words: usize) -> Self {
        assert!(queue_words > 0, "queues must hold at least one word");
        DualLinkNetwork {
            stage0: (0..SWITCHES)
                .map(|_| AdaptiveSwitch::new(queue_words, false))
                .collect(),
            stage1: (0..SWITCHES)
                .map(|_| AdaptiveSwitch::new(queue_words, true))
                .collect(),
            inject_fifo: (0..PORTS).map(|_| VecDeque::new()).collect(),
            exit_fifo: (0..PORTS).map(|_| VecDeque::new()).collect(),
            exit_capacity: queue_words,
            now: 0,
        }
    }

    /// Current time in network cycles.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Queues a packet at its source port (8-word source FIFO).
    ///
    /// # Panics
    ///
    /// Panics if the ports are out of range.
    pub fn try_inject(&mut self, packet: Packet) -> bool {
        assert!(
            packet.src < PORTS && packet.dest < PORTS,
            "port out of range"
        );
        let fifo = &mut self.inject_fifo[packet.src];
        if fifo.len() + packet.words as usize > crate::network::INJECT_FIFO_WORDS {
            return false;
        }
        fifo.extend(Word::of_packet(packet));
        true
    }

    /// Advances one network cycle (two per CE cycle, as in the omega
    /// model).
    pub fn step(&mut self) {
        self.now += 1;
        // Exit: stage-1 outputs → exit FIFOs (bounded: backpressure).
        for sw in 0..SWITCHES {
            for port in 0..RADIX {
                let pos = sw * RADIX + port;
                if self.exit_fifo[pos].len() >= self.exit_capacity {
                    continue;
                }
                if let Some(word) = self.stage1[sw].outputs[port].pop_front() {
                    self.exit_fifo[pos].push_back((word, self.now));
                }
            }
        }
        // Links: stage-0 outputs → stage-1 inputs. Output `o` of
        // stage-0 switch `s` is link `o % LINKS` to stage-1 switch
        // `o / LINKS`; it lands on that switch's input `s*LINKS + o%LINKS`.
        for s in 0..SWITCHES {
            for o in 0..RADIX {
                let target = o / LINKS;
                let input = s * LINKS + o % LINKS;
                if self.stage0[s].outputs[o].front().is_some()
                    && self.stage1[target].can_accept(input)
                {
                    let word = self.stage0[s].outputs[o].pop_front().expect("peeked");
                    let ok = self.stage1[target].try_accept(input, word);
                    debug_assert!(ok);
                }
            }
        }
        // Internal transfers.
        for sw in &mut self.stage1 {
            sw.transfer();
        }
        for sw in &mut self.stage0 {
            sw.transfer();
        }
        // Injection, gated to CE-cycle boundaries (every 2 net cycles).
        if self.now.is_multiple_of(2) {
            for src in 0..PORTS {
                let Some(&word) = self.inject_fifo[src].front() else {
                    continue;
                };
                let (sw, input) = (src / RADIX, src % RADIX);
                if self.stage0[sw].try_accept(input, word) {
                    self.inject_fifo[src].pop_front();
                }
            }
        }
    }

    /// Consumes the oldest word at output `pos` with its exit time.
    pub fn pop_output(&mut self, pos: usize) -> Option<(Word, u64)> {
        self.exit_fifo[pos].pop_front()
    }

    /// Peeks the oldest word at output `pos`.
    #[must_use]
    pub fn peek_output(&self, pos: usize) -> Option<&(Word, u64)> {
        self.exit_fifo[pos].front()
    }
}

/// Outcome of the side-by-side fidelity experiment (one network).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityPoint {
    /// Active CEs.
    pub ces: usize,
    /// Mean first-word round-trip latency in CE cycles (with the same
    /// +2.5-cycle port offset the main fabric applies).
    pub latency: f64,
    /// Mean interarrival in CE cycles.
    pub interarrival: f64,
}

/// Runs a compact closed-loop read experiment on the dual-link
/// network: `ces` CEs each fetch `blocks` 32-word blocks (one block in
/// flight, random base module per block), with the 32 memory modules
/// on the output side at the Cedar service rate.
#[must_use]
pub fn run_dual_link_experiment(ces: usize, blocks: u32, queue_words: usize) -> FidelityPoint {
    assert!(ces <= PORTS, "at most 32 CEs");
    let mut forward = DualLinkNetwork::new(queue_words);
    let mut reverse = DualLinkNetwork::new(queue_words);
    let mut rng = cedar_sim::rng::SplitMix64::new(0xCEDA32);
    // Per-CE state.
    let block_len = 32u32;
    let mut next_index = vec![0u32; ces];
    let mut next_block = vec![0u32; ces];
    let mut returned_in_block = vec![0u32; ces];
    let mut base = vec![0usize; ces];
    let mut issue_time = vec![vec![0u64; (blocks * block_len) as usize]; ces];
    let mut latencies = Vec::new();
    let mut inter = Vec::new();
    let mut last_ret = vec![None::<u64>; ces];
    // Modules.
    let service = 4u64;
    let mut busy_until = vec![0u64; PORTS];
    let mut pending: Vec<VecDeque<Packet>> = (0..PORTS).map(|_| VecDeque::new()).collect();
    let mut outgoing: Vec<Option<Packet>> = vec![None; PORTS];
    let total = ces as u64 * u64::from(blocks) * u64::from(block_len);
    let mut done = 0u64;
    let mut now = 0u64;
    while done < total && now < 64_000_000 {
        now += 1;
        forward.step();
        reverse.step();
        // Modules consume requests and emit replies.
        for m in 0..PORTS {
            if pending[m].len() < 2 {
                if let Some(&(word, _)) = forward.peek_output(m) {
                    pending[m].push_back(word.packet);
                    forward.pop_output(m);
                }
            }
            if let Some(reply) = outgoing[m].take() {
                if !reverse.try_inject(reply) {
                    outgoing[m] = Some(reply);
                    continue;
                }
            }
            if now >= busy_until[m] {
                if let Some(req) = pending[m].pop_front() {
                    busy_until[m] = now + service;
                    outgoing[m] = req.reply();
                }
            }
        }
        // CE side on CE boundaries.
        if now.is_multiple_of(2) {
            for ce in 0..ces {
                // Absorb replies.
                while let Some((word, at)) = reverse.pop_output(ce) {
                    let local = (word.packet.id.0 & 0xFFFF_FFFF) as usize;
                    let lat = (at - issue_time[ce][local]) as f64 / 2.0 + 2.5;
                    let in_block = local as u32 % block_len;
                    if in_block == 0 {
                        latencies.push(lat);
                        last_ret[ce] = Some(at);
                    } else if let Some(prev) = last_ret[ce] {
                        inter.push((at.saturating_sub(prev)) as f64 / 2.0);
                        last_ret[ce] = Some(at);
                    }
                    returned_in_block[ce] += 1;
                    if returned_in_block[ce] == block_len {
                        returned_in_block[ce] = 0;
                        last_ret[ce] = None;
                    }
                    done += 1;
                }
                // Issue next request (one block in flight).
                if next_block[ce] >= blocks {
                    continue;
                }
                // Gate: start a block only when the previous drained.
                if next_index[ce] == 0 && returned_in_block[ce] != 0 {
                    continue;
                }
                if next_index[ce] == 0 {
                    base[ce] = rng.next_below(PORTS as u64) as usize;
                }
                let local = next_block[ce] * block_len + next_index[ce];
                let module = (base[ce] + next_index[ce] as usize) % PORTS;
                let packet = Packet::new(
                    crate::packet::PacketId(((ce as u64) << 40) | u64::from(local)),
                    ce,
                    module,
                    1,
                    crate::packet::PacketKind::ReadRequest,
                );
                if forward.try_inject(packet) {
                    issue_time[ce][local as usize] = now;
                    next_index[ce] += 1;
                    if next_index[ce] == block_len {
                        next_index[ce] = 0;
                        next_block[ce] += 1;
                    }
                }
            }
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    FidelityPoint {
        ces,
        latency: mean(&latencies),
        interarrival: mean(&inter),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pair_routes() {
        for src in 0..PORTS {
            for dest in (0..PORTS).step_by(5) {
                let mut net = DualLinkNetwork::new(2);
                net.try_inject(Packet::request(src, dest, 1));
                let mut delivered = false;
                for _ in 0..60 {
                    net.step();
                    if let Some((word, _)) = net.pop_output(dest) {
                        assert_eq!(word.packet.dest, dest);
                        delivered = true;
                        break;
                    }
                }
                assert!(delivered, "{src} -> {dest} lost");
            }
        }
    }

    #[test]
    fn dual_links_split_contention() {
        // Eight packets from one first-stage switch to one second-stage
        // switch: with two links they drain roughly twice as fast as a
        // single serialized link could.
        let mut net = DualLinkNetwork::new(4);
        for src in 0..8 {
            // All to switch 1 (outputs 8..16), distinct final ports.
            net.try_inject(Packet::request(src, 8 + src, src as u64));
        }
        let mut exits = Vec::new();
        for _ in 0..100 {
            net.step();
            for dest in 8..16 {
                if let Some((_, at)) = net.pop_output(dest) {
                    exits.push(at);
                }
            }
        }
        assert_eq!(exits.len(), 8);
        let span = exits.iter().max().unwrap() - exits.iter().min().unwrap();
        assert!(
            span <= 8,
            "two links should move 8 packets in ~4 pair-cycles, span {span}"
        );
    }

    #[test]
    fn closed_loop_experiment_runs_to_completion() {
        let p = run_dual_link_experiment(8, 4, 2);
        assert!(p.latency > 7.0, "latency {}", p.latency);
        assert!(p.interarrival >= 0.99, "interarrival {}", p.interarrival);
    }

    #[test]
    fn contention_grows_but_less_than_double_queueing() {
        let p8 = run_dual_link_experiment(8, 8, 2);
        let p32 = run_dual_link_experiment(32, 8, 2);
        assert!(
            p32.latency > p8.latency,
            "32 CEs must see more latency: {} vs {}",
            p32.latency,
            p8.latency
        );
        assert!(p32.interarrival > p8.interarrival);
    }
}
