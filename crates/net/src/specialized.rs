//! The specialized cycle engine: topology-monomorphized stepping for
//! the healthy, un-instrumented fabric.
//!
//! The generic engine in [`fabric`](super) and [`network`](crate::network)
//! is an interpreter: every cycle walks `Vec<VecDeque<Word>>` queues,
//! `Option` locks and fault/telemetry hooks scattered across hundreds
//! of small heap allocations. That flexibility is what the fault,
//! retry and observability studies need — but the Table 2 reference
//! runs spend their whole budget in it with all of those hooks
//! disabled. This module is the celox move (ROADMAP item 1): when the
//! configuration matches the supported family, the two omega networks
//! are compiled into flat structure-of-arrays state and stepped by a
//! const-generic, branch-lean loop with the hooks compiled out
//! entirely, replicating the generic engine *state for state* so
//! reports and checkpoints stay bit-identical.
//!
//! # Eligibility and fallback
//!
//! [`RoundTripFabric::drive_experiment`](super::RoundTripFabric::drive_experiment)
//! consults [`EngineKind`] (set from the [`ENGINE_ENV`] variable at
//! construction) and the private eligibility check. A run specializes
//! when:
//!
//! - no telemetry handle is attached (obs hooks are compiled out, so
//!   an attached `Obs` would silently go blind), and
//! - no fault schedule or recovery state is attached (fault hooks are
//!   compiled out too), and
//! - the network family fits the packed lanes: 1–4 stages, radix ≤ 64,
//!   ≤ 4096 ports, switch queues ≤ 64 words, exit FIFOs ≤ 65536 words,
//!   module buffers ≤ 64 requests,
//! - and the networks' delivery logs are drained (the specialized
//!   engine does not maintain them).
//!
//! Anything else falls back to the generic engine, bumps the
//! `engine.fallback` obs counter when metrics are live, and — under
//! `CEDAR_ENGINE=specialized`, where the user explicitly demanded the
//! fast path — logs the reason once per fabric.
//!
//! # SoA layout and event masks
//!
//! Each network becomes a [`SpecNet`]: per-port switch queues as
//! power-of-two ring buffers over flat `Vec<u64>` (packet id) and
//! `Vec<u32>` (packed dest/src/words/index/kind meta) lanes, wormhole
//! locks as `i8` lanes (−1 = unlocked), round-robin pointers as `u8`,
//! and the inject/exit FIFOs and exit-progress trackers as parallel
//! lanes. The memory modules likewise flatten into a [`SpecModules`].
//!
//! The throughput win over a straight SoA transcription comes from
//! replacing every per-cycle scan with an incrementally maintained
//! bitmask:
//!
//! - `cand[q_out]` — for each switch output, the set of unlocked
//!   inputs whose buffered *header* word routes to it. Updated when a
//!   word enters an empty unlocked input, when a grant consumes a
//!   header, and when a tail unlocks an input — never by scanning.
//!   Arbitration becomes two shifts and a `trailing_zeros`.
//! - `grantable[gsw]` — outputs that are locked mid-packet or have a
//!   candidate; `transfer` walks `grantable & !out_full` instead of
//!   all `radix` outputs.
//! - `out_nonempty[gsw]` / `out_full[gsw]` — drive the link and exit
//!   phases straight to occupied queues.
//! - `inj_mask` / `exit_mask` — ports with buffered inject/exit words,
//!   so injection, module service and reply ejection touch only live
//!   ports.
//!
//! `import` copies a generic network in (building the masks once),
//! `export` writes the exact generic representation back, so a
//! checkpoint taken after a specialized run is byte-identical to one
//! from a generic run.

use super::*;
use crate::network::INJECT_FIFO_WORDS;

/// Environment variable selecting the execution engine:
/// `generic`, `specialized`, or `auto` (the default).
pub const ENGINE_ENV: &str = "CEDAR_ENGINE";

/// Which execution engine a fabric uses for experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Always interpret with the generic engine.
    Generic,
    /// Demand the specialized engine; ineligible configurations still
    /// fall back to generic, but loudly (one log line per fabric).
    Specialized,
    /// Specialize when eligible, fall back silently otherwise.
    Auto,
}

impl EngineKind {
    /// Reads the engine selection from [`ENGINE_ENV`]. Unset or
    /// unrecognized values select [`EngineKind::Auto`].
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(ENGINE_ENV).as_deref() {
            Ok("generic") => EngineKind::Generic,
            Ok("specialized") => EngineKind::Specialized,
            _ => EngineKind::Auto,
        }
    }
}

// ---------------------------------------------------------------------------
// Packed word metadata: dest | src | words | index | kind in one u32.
// The eligibility bound of 4096 ports keeps dest and src in 12 bits;
// MAX_PACKET_WORDS = 4 keeps words and index in 3.
// ---------------------------------------------------------------------------

const META_PORT_MASK: u32 = 0xFFF;
const META_SRC_SHIFT: u32 = 12;
const META_WORDS_SHIFT: u32 = 24;
const META_INDEX_SHIFT: u32 = 27;
const META_KIND_SHIFT: u32 = 30;

#[inline]
fn kind_tag(kind: PacketKind) -> u32 {
    match kind {
        PacketKind::ReadRequest => 0,
        PacketKind::Write => 1,
        PacketKind::SyncOp => 2,
        PacketKind::Reply => 3,
    }
}

#[inline]
fn kind_from_tag(tag: u32) -> PacketKind {
    match tag & 3 {
        0 => PacketKind::ReadRequest,
        1 => PacketKind::Write,
        2 => PacketKind::SyncOp,
        _ => PacketKind::Reply,
    }
}

#[inline]
fn pack_packet_meta(p: &Packet) -> u32 {
    debug_assert!(p.dest as u32 <= META_PORT_MASK && p.src as u32 <= META_PORT_MASK);
    p.dest as u32
        | (p.src as u32) << META_SRC_SHIFT
        | u32::from(p.words) << META_WORDS_SHIFT
        | kind_tag(p.kind) << META_KIND_SHIFT
}

#[inline]
fn pack_word_meta(w: &Word) -> u32 {
    pack_packet_meta(&w.packet) | u32::from(w.index) << META_INDEX_SHIFT
}

#[inline]
fn unpack_packet(id: u64, meta: u32) -> Packet {
    // Constructed literally (the fields are pub) so the index bits of
    // word metas are ignored without a round-trip through `Packet::new`.
    Packet {
        id: PacketId(id),
        src: meta_src(meta) as usize,
        dest: (meta & META_PORT_MASK) as usize,
        words: meta_words(meta) as u8,
        kind: kind_from_tag(meta >> META_KIND_SHIFT),
    }
}

#[inline]
fn unpack_word(id: u64, meta: u32) -> Word {
    Word {
        packet: unpack_packet(id, meta),
        index: meta_index(meta) as u8,
    }
}

#[inline]
fn meta_dest(meta: u32) -> u32 {
    meta & META_PORT_MASK
}

#[inline]
fn meta_src(meta: u32) -> u32 {
    (meta >> META_SRC_SHIFT) & META_PORT_MASK
}

#[inline]
fn meta_words(meta: u32) -> u32 {
    (meta >> META_WORDS_SHIFT) & 7
}

#[inline]
fn meta_index(meta: u32) -> u32 {
    (meta >> META_INDEX_SHIFT) & 7
}

#[inline]
fn meta_kind(meta: u32) -> u32 {
    meta >> META_KIND_SHIFT
}

/// Whether a word meta is its packet's last word.
#[inline]
fn meta_is_tail(meta: u32) -> bool {
    meta_index(meta) + 1 == meta_words(meta)
}

/// The reply a served request produces, as a packed meta: src and dest
/// swapped, one word, `Reply` kind. Mirrors `Packet::reply`.
#[inline]
fn reply_meta(meta: u32) -> Option<u32> {
    match kind_from_tag(meta_kind(meta)) {
        PacketKind::ReadRequest | PacketKind::SyncOp => Some(
            meta_src(meta)
                | meta_dest(meta) << META_SRC_SHIFT
                | 1 << META_WORDS_SHIFT
                | kind_tag(PacketKind::Reply) << META_KIND_SHIFT,
        ),
        PacketKind::Write | PacketKind::Reply => None,
    }
}

// ---------------------------------------------------------------------------
// SpecNet: one omega network flattened into SoA lanes.
// ---------------------------------------------------------------------------

/// One buffered word: packet id plus packed meta, stored together so a
/// queue operation costs one indexed access instead of two.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    id: u64,
    meta: u32,
}

/// One exit-FIFO word: a [`Slot`] plus the cycle it left the network.
#[derive(Debug, Clone, Copy, Default)]
struct ExitSlot {
    id: u64,
    at: u64,
    meta: u32,
}

/// Ring-buffer state packed into one `u16`: head in the low byte, live
/// length in the high byte (capacities are bounded at 64 by
/// eligibility, so both fit with room to spare).
#[inline]
fn hl_pack(head: usize, len: usize) -> u16 {
    (head | len << 8) as u16
}

#[inline]
fn hl_head(hl: u16) -> usize {
    (hl & 0xFF) as usize
}

#[inline]
fn hl_len(hl: u16) -> usize {
    (hl >> 8) as usize
}

/// Lock byte meaning "no lock held" in a packed queue-state word.
const ST_NO_LOCK: u32 = 0xFF;

/// Switch-queue state packed into one `u32`: ring head in bits 0..8,
/// live length in bits 8..16, wormhole lock in bits 16..24
/// ([`ST_NO_LOCK`] when unlocked, else the peer port number; radix is
/// bounded at 64 by eligibility so a real port never collides with
/// the sentinel). One load yields everything the grant path needs to
/// know about a queue, and one store commits a pop/push plus a lock
/// transition.
#[inline]
fn st_pack(head: usize, len: usize, lock: u32) -> u32 {
    (head | len << 8) as u32 | lock << 16
}

#[inline]
fn st_head(st: u32) -> usize {
    (st & 0xFF) as usize
}

#[inline]
fn st_len(st: u32) -> usize {
    ((st >> 8) & 0xFF) as usize
}

#[inline]
fn st_lock(st: u32) -> u32 {
    st >> 16
}

/// Bounds-check-free lane read for the hot stepping paths. Every index
/// is derived from dimensions validated by `specialization_blocker`
/// (port/switch/queue arithmetic over fixed lane shapes), and debug
/// builds — including the whole test suite and the differential fuzz
/// run — verify each access. Release builds skip the redundant check:
/// the specialized engine's inner loops index a dozen lanes per word
/// moved, and the elided compare/branch pairs are a measurable share
/// of its per-event budget.
#[inline(always)]
fn ld<T: Copy>(lane: &[T], i: usize) -> T {
    debug_assert!(i < lane.len(), "lane index out of bounds");
    // SAFETY: `i` is in bounds — checked in debug builds above, and
    // derived from eligibility-validated dims at every call site.
    unsafe { *lane.get_unchecked(i) }
}

/// Bounds-check-free lane slot for writes; see [`ld`].
#[inline(always)]
fn at<T>(lane: &mut [T], i: usize) -> &mut T {
    debug_assert!(i < lane.len(), "lane index out of bounds");
    // SAFETY: `i` is in bounds — checked in debug builds above, and
    // derived from eligibility-validated dims at every call site.
    unsafe { lane.get_unchecked_mut(i) }
}

/// A generic [`OmegaNetwork`] compiled into flat lanes for the
/// duration of one specialized drive. Queue indices: switch-port queue
/// `q = (stage * switches + sw) * radix + port`, ring slot
/// `q * qcap + ((head + i) & qmask)`.
struct SpecNet {
    // Dimensions and derived masks.
    ports: usize,
    radix: usize,
    rbits: u32,
    rmask: usize,
    switches: usize,
    queue_words: usize,
    qcap: usize,
    qshift: u32,
    qmask: usize,
    exit_cap: usize,
    eshift: u32,
    emask: usize,
    ratio: u64,
    // Topology tables (`inv_shuffle` inverts `shuffle`, mapping a
    // stage input position back to the upstream output that feeds it).
    shuffle: Vec<u32>,
    inv_shuffle: Vec<u32>,
    dest_shift: [u32; 4],
    /// First global switch index of the last stage.
    last_base: usize,
    // Switch input/output queues: ring buffers over flat slot lanes,
    // with head, live length and wormhole lock packed per queue into
    // one `u32` state word (see `st_pack`) so the grant path reads and
    // writes each queue's full state in a single lane access.
    in_q: Vec<Slot>,
    in_st: Vec<u32>,
    out_q: Vec<Slot>,
    out_st: Vec<u32>,
    // Wormhole lock ids (valid while the output lock is held) and
    // round-robin pointers.
    output_lock_id: Vec<u64>,
    rr_next: Vec<u8>,
    // Event masks (see the module docs). `cand` is indexed by output
    // queue; the per-switch masks are indexed by global switch.
    cand: Vec<u64>,
    grantable: Vec<u64>,
    out_nonempty: Vec<u64>,
    out_full: Vec<u64>,
    // Backpressure masks: a bit is set when a word provably cannot
    // move (full exit FIFO behind a last-stage output, full downstream
    // input behind a link, full stage-0 input behind an injection
    // FIFO) and cleared event-driven by the pop that makes space — so
    // congested traffic is never rescanned cycle after cycle.
    exit_blocked: Vec<u64>,
    link_blocked: Vec<u64>,
    inj_blocked: Vec<u64>,
    // Per-switch switched-word counters (exported back verbatim).
    words_switched: Vec<u64>,
    // Injection FIFOs (cap INJECT_FIFO_WORDS per source port).
    inj_q: Vec<Slot>,
    inj_hl: Vec<u16>,
    inj_mask: Vec<u64>,
    inj_words: u64,
    // Exit FIFOs per output position (caps can exceed 255, so head and
    // len stay unpacked).
    exit_q: Vec<ExitSlot>,
    exit_head: Vec<u32>,
    exit_len: Vec<u32>,
    exit_mask: Vec<u64>,
    // Exit-progress trackers (ExitProgress, SoA form).
    prog_live: Vec<bool>,
    prog_id: Vec<u64>,
    prog_meta: Vec<u32>,
    prog_head_exit: Vec<u64>,
    prog_seen: Vec<u8>,
    // Clocks and counters.
    now: u64,
    words_injected: u64,
    words_exited: u64,
    /// Total words anywhere in the network (inject + switch + exit).
    /// `buffered == 0` is exactly the generic `is_idle()`.
    buffered: u64,
    /// Buffered words belonging to multi-word packets. While zero, no
    /// wormhole lock can exist anywhere in the network and the
    /// monomorphic single-word transfer variant is exact.
    multiword_words: u64,
}

impl SpecNet {
    /// Compiles a generic network into lanes. The caller (eligibility
    /// check) guarantees the dimension bounds; the network is copied,
    /// not drained.
    fn import(net: &OmegaNetwork) -> SpecNet {
        let cfg = net.cfg;
        let radix = cfg.radix;
        let stages_n = cfg.stages;
        let ports = cfg.ports();
        let switches = ports / radix;
        let queue_words = cfg.queue_words;
        let qcap = queue_words.next_power_of_two();
        let exit_cap = cfg.exit_fifo_words;
        let ecap = exit_cap.next_power_of_two();
        let nq = stages_n * switches * radix;
        let nsw = stages_n * switches;
        let pwords = ports.div_ceil(64);
        let mut spec = SpecNet {
            ports,
            radix,
            rbits: radix.trailing_zeros(),
            rmask: radix - 1,
            switches,
            queue_words,
            qcap,
            qshift: qcap.trailing_zeros(),
            qmask: qcap - 1,
            exit_cap,
            eshift: ecap.trailing_zeros(),
            emask: ecap - 1,
            ratio: cfg.net_cycles_per_ce_cycle,
            shuffle: vec![0; ports],
            inv_shuffle: vec![0; ports],
            dest_shift: [0; 4],
            last_base: (stages_n - 1) * switches,
            in_q: vec![Slot::default(); nq * qcap],
            in_st: vec![st_pack(0, 0, ST_NO_LOCK); nq],
            out_q: vec![Slot::default(); nq * qcap],
            out_st: vec![st_pack(0, 0, ST_NO_LOCK); nq],
            output_lock_id: vec![0; nq],
            rr_next: vec![0; nq],
            cand: vec![0; nq],
            grantable: vec![0; nsw],
            out_nonempty: vec![0; nsw],
            out_full: vec![0; nsw],
            exit_blocked: vec![0; nsw],
            link_blocked: vec![0; nsw],
            inj_blocked: vec![0; pwords],
            words_switched: vec![0; nsw],
            inj_q: vec![Slot::default(); ports * INJECT_FIFO_WORDS],
            inj_hl: vec![0; ports],
            inj_mask: vec![0; pwords],
            inj_words: 0,
            exit_q: vec![ExitSlot::default(); ports * ecap],
            exit_head: vec![0; ports],
            exit_len: vec![0; ports],
            exit_mask: vec![0; pwords],
            prog_live: vec![false; ports],
            prog_id: vec![0; ports],
            prog_meta: vec![0; ports],
            prog_head_exit: vec![0; ports],
            prog_seen: vec![0; ports],
            now: net.now,
            words_injected: net.words_injected,
            words_exited: net.words_exited,
            buffered: 0,
            multiword_words: 0,
        };
        for pos in 0..ports {
            let shuffled = net.topo.shuffle(pos);
            spec.shuffle[pos] = shuffled as u32;
            spec.inv_shuffle[shuffled] = pos as u32;
        }
        for s in 0..stages_n {
            spec.dest_shift[s] = spec.rbits * (stages_n - 1 - s) as u32;
        }
        for (s, stage) in net.stages.iter().enumerate() {
            for (sw, cb) in stage.iter().enumerate() {
                let gsw = s * switches + sw;
                spec.words_switched[gsw] = cb.words_switched;
                for port in 0..radix {
                    let q = gsw * radix + port;
                    for (i, w) in cb.inputs[port].iter().enumerate() {
                        spec.in_q[q * qcap + i] = Slot {
                            id: w.packet.id.0,
                            meta: pack_word_meta(w),
                        };
                    }
                    let in_lock = cb.input_lock[port].map_or(ST_NO_LOCK, |o| o as u32);
                    spec.in_st[q] = st_pack(0, cb.inputs[port].len(), in_lock);
                    for (i, w) in cb.outputs[port].iter().enumerate() {
                        spec.out_q[q * qcap + i] = Slot {
                            id: w.packet.id.0,
                            meta: pack_word_meta(w),
                        };
                    }
                    let out_lock = match cb.output_lock[port] {
                        Some((input, id)) => {
                            spec.output_lock_id[q] = id.0;
                            input as u32
                        }
                        None => ST_NO_LOCK,
                    };
                    spec.out_st[q] = st_pack(0, cb.outputs[port].len(), out_lock);
                    spec.buffered += (cb.inputs[port].len() + cb.outputs[port].len()) as u64;
                    spec.rr_next[q] = cb.rr_next[port] as u8;
                    // Seed the event masks from this port's settled state.
                    if !cb.outputs[port].is_empty() {
                        spec.out_nonempty[gsw] |= 1u64 << port;
                    }
                    if cb.outputs[port].len() == queue_words {
                        spec.out_full[gsw] |= 1u64 << port;
                    }
                    if out_lock != ST_NO_LOCK {
                        spec.grantable[gsw] |= 1u64 << port;
                    }
                    if !cb.inputs[port].is_empty() && in_lock == ST_NO_LOCK {
                        spec.add_candidate(s, gsw, port);
                    }
                }
            }
        }
        for (src, fifo) in net.inject_fifo.iter().enumerate() {
            for (i, w) in fifo.iter().enumerate() {
                spec.inj_q[src * INJECT_FIFO_WORDS + i] = Slot {
                    id: w.packet.id.0,
                    meta: pack_word_meta(w),
                };
            }
            spec.inj_hl[src] = hl_pack(0, fifo.len());
            if !fifo.is_empty() {
                spec.inj_mask[src >> 6] |= 1u64 << (src & 63);
            }
            spec.inj_words += fifo.len() as u64;
            spec.buffered += fifo.len() as u64;
        }
        for (pos, fifo) in net.exit_fifo.iter().enumerate() {
            for (i, &(w, at)) in fifo.iter().enumerate() {
                spec.exit_q[pos * ecap + i] = ExitSlot {
                    id: w.packet.id.0,
                    at,
                    meta: pack_word_meta(&w),
                };
            }
            spec.exit_len[pos] = fifo.len() as u32;
            if !fifo.is_empty() {
                spec.exit_mask[pos >> 6] |= 1u64 << (pos & 63);
            }
            spec.buffered += fifo.len() as u64;
        }
        for (pos, progress) in net.exit_progress.iter().enumerate() {
            if let Some(p) = progress {
                spec.prog_live[pos] = true;
                spec.prog_id[pos] = p.packet.id.0;
                spec.prog_meta[pos] = pack_packet_meta(&p.packet);
                spec.prog_head_exit[pos] = p.head_exit;
                spec.prog_seen[pos] = p.words_seen;
            }
        }
        debug_assert!(net.delivered.is_empty(), "undrained delivery log");
        // Seed the multi-word census from the buffered slots (every
        // ring head is zero at import, so live slots are contiguous).
        for q in 0..nq {
            for i in 0..st_len(spec.in_st[q]) {
                spec.multiword_words += u64::from(meta_words(spec.in_q[q * qcap + i].meta) > 1);
            }
            for i in 0..st_len(spec.out_st[q]) {
                spec.multiword_words += u64::from(meta_words(spec.out_q[q * qcap + i].meta) > 1);
            }
        }
        for src in 0..ports {
            for i in 0..hl_len(spec.inj_hl[src]) {
                spec.multiword_words +=
                    u64::from(meta_words(spec.inj_q[src * INJECT_FIFO_WORDS + i].meta) > 1);
            }
        }
        for pos in 0..ports {
            for i in 0..spec.exit_len[pos] as usize {
                spec.multiword_words += u64::from(meta_words(spec.exit_q[pos * ecap + i].meta) > 1);
            }
        }
        spec
    }

    /// Writes the lanes back into the generic representation. After
    /// this, `net` is byte-identical (under `Snapshot`) to the network
    /// a generic run would have produced.
    fn export(&self, net: &mut OmegaNetwork) {
        let radix = self.radix;
        let switches = self.switches;
        let qcap = self.qcap;
        let qmask = self.qmask;
        for (s, stage) in net.stages.iter_mut().enumerate() {
            for (sw, cb) in stage.iter_mut().enumerate() {
                let gsw = s * switches + sw;
                cb.words_switched = self.words_switched[gsw];
                for port in 0..radix {
                    let q = gsw * radix + port;
                    let ist = self.in_st[q];
                    cb.inputs[port].clear();
                    for i in 0..st_len(ist) {
                        let s = self.in_q[q * qcap + ((st_head(ist) + i) & qmask)];
                        cb.inputs[port].push_back(unpack_word(s.id, s.meta));
                    }
                    let ost = self.out_st[q];
                    cb.outputs[port].clear();
                    for i in 0..st_len(ost) {
                        let s = self.out_q[q * qcap + ((st_head(ost) + i) & qmask)];
                        cb.outputs[port].push_back(unpack_word(s.id, s.meta));
                    }
                    cb.input_lock[port] =
                        (st_lock(ist) != ST_NO_LOCK).then(|| st_lock(ist) as usize);
                    cb.output_lock[port] = (st_lock(ost) != ST_NO_LOCK)
                        .then(|| (st_lock(ost) as usize, PacketId(self.output_lock_id[q])));
                    cb.rr_next[port] = self.rr_next[q] as usize;
                }
            }
        }
        for (src, fifo) in net.inject_fifo.iter_mut().enumerate() {
            fifo.clear();
            for i in 0..hl_len(self.inj_hl[src]) {
                let slot =
                    src * INJECT_FIFO_WORDS + ((hl_head(self.inj_hl[src]) + i) % INJECT_FIFO_WORDS);
                fifo.push_back(unpack_word(self.inj_q[slot].id, self.inj_q[slot].meta));
            }
        }
        for (pos, fifo) in net.exit_fifo.iter_mut().enumerate() {
            fifo.clear();
            for i in 0..self.exit_len[pos] as usize {
                let s = self.exit_q
                    [(pos << self.eshift) + ((self.exit_head[pos] as usize + i) & self.emask)];
                fifo.push_back((unpack_word(s.id, s.meta), s.at));
            }
        }
        for (pos, progress) in net.exit_progress.iter_mut().enumerate() {
            *progress = self.prog_live[pos].then(|| crate::network::ExitProgress {
                packet: unpack_packet(self.prog_id[pos], self.prog_meta[pos]),
                head_exit: self.prog_head_exit[pos],
                words_seen: self.prog_seen[pos],
            });
        }
        net.now = self.now;
        net.words_injected = self.words_injected;
        net.words_exited = self.words_exited;
        // `delivered` was empty at import (eligibility) and the
        // specialized engine never appends to it; nothing to write.
    }

    /// Registers input `input` of switch `gsw` (stage `s`) as an
    /// arbitration candidate for the output its buffered header word
    /// routes to. The input must be unlocked and non-empty; by the
    /// wormhole invariant its head word is then a header.
    #[inline]
    fn add_candidate(&mut self, s: usize, gsw: usize, input: usize) {
        let q_in = (gsw << self.rbits) + input;
        let st = ld(&self.in_st, q_in);
        debug_assert!(st_len(st) > 0 && st_lock(st) == ST_NO_LOCK);
        let meta = ld(&self.in_q, (q_in << self.qshift) + st_head(st)).meta;
        debug_assert_eq!(meta_index(meta), 0, "continuation word on unlocked input");
        let out = (meta_dest(meta) >> self.dest_shift[s]) as usize & self.rmask;
        *at(&mut self.cand, (gsw << self.rbits) + out) |= 1u64 << input;
        *at(&mut self.grantable, gsw) |= 1u64 << out;
    }

    /// Appends a word to a switch input queue, maintaining the
    /// candidate mask. The caller has already checked capacity.
    #[inline]
    fn push_switch_input(&mut self, s: usize, gsw: usize, input: usize, id: u64, meta: u32) {
        let q = (gsw << self.rbits) + input;
        let st = ld(&self.in_st, q);
        debug_assert!(st_len(st) < self.queue_words);
        *at(
            &mut self.in_q,
            (q << self.qshift) + ((st_head(st) + st_len(st)) & self.qmask),
        ) = Slot { id, meta };
        *at(&mut self.in_st, q) = st + 0x100;
        // A word landing in an empty unlocked queue is a header (the
        // wormhole invariant) and becomes the queue's candidate.
        if st_len(st) == 0 && st_lock(st) == ST_NO_LOCK {
            self.add_candidate(s, gsw, input);
        }
    }

    /// Pops the head word of a switch output queue, maintaining the
    /// caller's register-resident occupancy masks. The caller has
    /// already checked non-emptiness.
    #[inline]
    fn pop_out_local(&mut self, gsw: usize, out: usize, ne: &mut u64, fl: &mut u64) -> (u64, u32) {
        let q = (gsw << self.rbits) + out;
        let st = ld(&self.out_st, q);
        debug_assert!(st_len(st) > 0);
        let s = ld(&self.out_q, (q << self.qshift) + st_head(st));
        *at(&mut self.out_st, q) =
            st_pack((st_head(st) + 1) & self.qmask, st_len(st) - 1, st_lock(st));
        *ne &= !(u64::from(st_len(st) == 1) << out);
        *fl &= !(1u64 << out);
        (s.id, s.meta)
    }

    /// One network cycle, the monomorphized counterpart of
    /// `OmegaNetwork::step` with obs/fault hooks compiled out. `S` is
    /// the stage count.
    ///
    /// The generic phase order is exits → links (per stage) →
    /// transfers (per stage) → injection. Exits and links drain
    /// disjoint queues, the link stages are mutually disjoint, and a
    /// stage's transfer touches only its own switch state (plus
    /// already-stored upstream blocked masks) — so the phases can be
    /// interleaved per switch, provided each switch drains before it
    /// transfers and every link into a stage-`s+1` input queue runs
    /// before that stage's pass. Fusing this way keeps each switch's
    /// occupancy masks in registers across both halves of its cycle
    /// and walks the switch state once per cycle instead of once per
    /// phase.
    fn step<const S: usize>(&mut self) {
        // One predictable branch per cycle: with no multi-word packet
        // buffered anywhere, wormhole locks cannot engage and the
        // lock-free monomorphic transfer is exact.
        if self.multiword_words == 0 {
            self.step_inner::<S, false>();
        } else {
            self.step_inner::<S, true>();
        }
    }

    fn step_inner<const S: usize, const MULTI: bool>(&mut self) {
        self.now += 1;
        for s in 0..S {
            let last = s + 1 == S;
            for sw in 0..self.switches {
                let gsw = s * self.switches + sw;
                let mut ne = ld(&self.out_nonempty, gsw);
                let mut fl = ld(&self.out_full, gsw);
                let g = ld(&self.grantable, gsw);
                if ne | g == 0 {
                    continue; // nothing buffered, nothing grantable
                }
                if last {
                    self.collect_exits_sw(gsw, sw, &mut ne, &mut fl);
                } else {
                    self.link_sw(s, gsw, sw, &mut ne, &mut fl);
                }
                if g & !fl != 0 {
                    self.transfer::<MULTI>(s, gsw, g, &mut ne, &mut fl);
                }
                *at(&mut self.out_nonempty, gsw) = ne;
                *at(&mut self.out_full, gsw) = fl;
            }
        }
        self.injection();
    }

    /// One last-stage switch → its exit FIFOs. Mirrors the generic
    /// order: the exit capacity check happens before the pop, and at
    /// most one word exits per position per cycle.
    fn collect_exits_sw(&mut self, gsw: usize, sw: usize, ne: &mut u64, fl: &mut u64) {
        let mut m = *ne & !ld(&self.exit_blocked, gsw);
        while m != 0 {
            let out = m.trailing_zeros() as usize;
            m &= m - 1;
            let pos = (sw << self.rbits) + out;
            let elen = ld(&self.exit_len, pos) as usize;
            if elen >= self.exit_cap {
                *at(&mut self.exit_blocked, gsw) |= 1u64 << out;
                continue;
            }
            let (id, meta) = self.pop_out_local(gsw, out, ne, fl);
            let eslot =
                (pos << self.eshift) + ((ld(&self.exit_head, pos) as usize + elen) & self.emask);
            *at(&mut self.exit_q, eslot) = ExitSlot {
                id,
                at: self.now,
                meta,
            };
            *at(&mut self.exit_len, pos) += 1;
            *at(&mut self.exit_mask, pos >> 6) |= 1u64 << (pos & 63);
            self.words_exited += 1;
        }
    }

    /// One switch's inter-stage shuffle links into stage `s + 1`. The
    /// link stages drain mutually disjoint queues, so the per-stage
    /// processing order is free.
    fn link_sw(&mut self, s: usize, gsw: usize, sw: usize, ne: &mut u64, fl: &mut u64) {
        let mut m = *ne & !ld(&self.link_blocked, gsw);
        while m != 0 {
            let out = m.trailing_zeros() as usize;
            m &= m - 1;
            let shuffled = ld(&self.shuffle, (sw << self.rbits) + out) as usize;
            let ngsw = (s + 1) * self.switches + (shuffled >> self.rbits);
            let nin = shuffled & self.rmask;
            if st_len(ld(&self.in_st, (ngsw << self.rbits) + nin)) >= self.queue_words {
                *at(&mut self.link_blocked, gsw) |= 1u64 << out;
                continue;
            }
            let (id, meta) = self.pop_out_local(gsw, out, ne, fl);
            self.push_switch_input(s + 1, ngsw, nin, id, meta);
        }
    }

    /// One switch's internal transfer cycle: the exact generic
    /// `Crossbar::transfer`, outputs processed in ascending order over
    /// live state (so one input can feed several outputs in a cycle,
    /// as the generic switch allows) — but walking only the grantable,
    /// non-full outputs. The per-switch event masks live in registers
    /// for the whole call, and the grant body is written with
    /// arithmetic selects instead of data-dependent branches: the
    /// moved-word path has exactly two unpredictable branches left
    /// (the empty-locked-input skip and the next-header re-expose).
    fn transfer<const MULTI: bool>(
        &mut self,
        s: usize,
        gsw: usize,
        mut g: u64,
        ne: &mut u64,
        fl: &mut u64,
    ) {
        let base = gsw << self.rbits;
        let mut switched = 0u64;
        let mut from = 0usize;
        while from < self.radix {
            let active = g & !*fl & (!0u64 << from);
            if active == 0 {
                break;
            }
            let out = active.trailing_zeros() as usize;
            from = out + 1;
            let q_out = base + out;
            let ost = ld(&self.out_st, q_out);
            debug_assert!(
                MULTI || st_lock(ost) == ST_NO_LOCK,
                "lock without multi-word packet"
            );
            let lock_in = if MULTI { st_lock(ost) } else { ST_NO_LOCK };
            let unlocked = lock_in == ST_NO_LOCK;
            // Round-robin: first candidate at or after rr_next,
            // wrapping. Under a held lock the selection is ignored and
            // the pointer written back unchanged — a select, not a
            // branch.
            let m = ld(&self.cand, q_out);
            debug_assert!(
                !unlocked || m != 0,
                "grantable output with no lock and no candidates"
            );
            let start = u32::from(ld(&self.rr_next, q_out));
            let hi = m >> start;
            let rr_pick = if hi != 0 {
                (start + hi.trailing_zeros()) as usize
            } else {
                m.trailing_zeros() as usize
            };
            let input = if unlocked { rr_pick } else { lock_in as usize };
            *at(&mut self.rr_next, q_out) = if unlocked {
                ((rr_pick + 1) & self.rmask) as u8
            } else {
                start as u8
            };
            let q_in = base + input;
            let ist = ld(&self.in_st, q_in);
            let ilen = st_len(ist);
            debug_assert!(MULTI || ilen > 0, "empty candidate input");
            if MULTI && ilen == 0 {
                continue; // locked input has no word buffered yet
            }
            let Slot { id, meta } = ld(&self.in_q, (q_in << self.qshift) + st_head(ist));
            debug_assert!(
                unlocked || self.output_lock_id[q_out] == id,
                "wormhole violation: interleaved packet on a locked output"
            );
            debug_assert!(
                MULTI || meta_words(meta) == 1,
                "multi-word word past the census"
            );
            let index = meta_index(meta);
            let tail = !MULTI || index + 1 == meta_words(meta);
            let first = !MULTI || index == 0;
            // Lock transitions: a tail releases both sides, a non-tail
            // header locks both, anything else leaves them unchanged.
            let new_ilock = if tail {
                ST_NO_LOCK
            } else if first {
                out as u32
            } else {
                st_lock(ist)
            };
            let new_olock = if tail {
                ST_NO_LOCK
            } else if first {
                input as u32
            } else {
                lock_in
            };
            *at(&mut self.in_st, q_in) =
                st_pack((st_head(ist) + 1) & self.qmask, ilen - 1, new_ilock);
            // Popping a full input queue makes space for whatever was
            // backpressured behind it: the upstream link (s > 0) or
            // the source injection FIFO (s == 0).
            if ilen == self.queue_words {
                let up = ld(
                    &self.inv_shuffle,
                    (gsw - s * self.switches) * self.radix + input,
                ) as usize;
                if s == 0 {
                    *at(&mut self.inj_blocked, up >> 6) &= !(1u64 << (up & 63));
                } else {
                    *at(
                        &mut self.link_blocked,
                        (s - 1) * self.switches + (up >> self.rbits),
                    ) &= !(1u64 << (up & self.rmask));
                }
            }
            // The lock id is only read while the lock is held, so the
            // store can be unconditional (a held lock's id already
            // equals `id` by the wormhole invariant).
            if MULTI {
                *at(&mut self.output_lock_id, q_out) = id;
            }
            *at(&mut self.cand, q_out) = m & !(u64::from(unlocked) << input);
            // An input left unlocked with words buffered exposes its
            // next header for arbitration.
            if new_ilock == ST_NO_LOCK && ilen > 1 {
                let meta2 = ld(
                    &self.in_q,
                    (q_in << self.qshift) + ((st_head(ist) + 1) & self.qmask),
                )
                .meta;
                debug_assert_eq!(meta_index(meta2), 0, "continuation word on unlocked input");
                let out2 = (meta_dest(meta2) >> self.dest_shift[s]) as usize & self.rmask;
                *at(&mut self.cand, base + out2) |= 1u64 << input;
                g |= 1u64 << out2;
            }
            let still = new_olock != ST_NO_LOCK || ld(&self.cand, q_out) != 0;
            g = (g & !(1u64 << out)) | u64::from(still) << out;
            let ohead = st_head(ost);
            let olen = st_len(ost);
            *at(
                &mut self.out_q,
                (q_out << self.qshift) + ((ohead + olen) & self.qmask),
            ) = Slot { id, meta };
            *at(&mut self.out_st, q_out) = st_pack(ohead, olen + 1, new_olock);
            *ne |= 1u64 << out;
            *fl |= u64::from(olen + 1 == self.queue_words) << out;
            switched += 1;
        }
        *at(&mut self.grantable, gsw) = g;
        *at(&mut self.words_switched, gsw) += switched;
    }

    /// Injection FIFOs → stage 0, on CE-cycle boundaries only.
    fn injection(&mut self) {
        if !self.now.is_multiple_of(self.ratio) || self.inj_words == 0 {
            return;
        }
        for w in 0..self.inj_mask.len() {
            let mut m = ld(&self.inj_mask, w) & !ld(&self.inj_blocked, w);
            while m != 0 {
                let src = (w << 6) + m.trailing_zeros() as usize;
                m &= m - 1;
                let pos = ld(&self.shuffle, src) as usize;
                let gsw = pos >> self.rbits;
                let input = pos & self.rmask;
                if st_len(ld(&self.in_st, (gsw << self.rbits) + input)) >= self.queue_words {
                    *at(&mut self.inj_blocked, w) |= 1u64 << (src & 63);
                    continue;
                }
                let hl = ld(&self.inj_hl, src);
                let Slot { id, meta } = ld(&self.inj_q, src * INJECT_FIFO_WORDS + hl_head(hl));
                *at(&mut self.inj_hl, src) =
                    hl_pack((hl_head(hl) + 1) % INJECT_FIFO_WORDS, hl_len(hl) - 1);
                self.inj_words -= 1;
                if hl_len(hl) == 1 {
                    *at(&mut self.inj_mask, w) &= !(1u64 << (src & 63));
                }
                self.push_switch_input(0, gsw, input, id, meta);
                self.words_injected += 1;
            }
        }
    }

    /// Offers a packet (as a packed meta) to the source-port injection
    /// FIFO; all-or-nothing, exactly like `OmegaNetwork::try_inject`.
    fn try_inject_meta(&mut self, src: usize, id: u64, meta: u32) -> bool {
        let words = meta_words(meta) as usize;
        let hl = ld(&self.inj_hl, src);
        if hl_len(hl) + words > INJECT_FIFO_WORDS {
            return false;
        }
        let base = meta & !(7 << META_INDEX_SHIFT);
        for index in 0..words {
            *at(
                &mut self.inj_q,
                src * INJECT_FIFO_WORDS + ((hl_head(hl) + hl_len(hl) + index) % INJECT_FIFO_WORDS),
            ) = Slot {
                id,
                meta: base | (index as u32) << META_INDEX_SHIFT,
            };
        }
        *at(&mut self.inj_hl, src) = hl + (words << 8) as u16;
        *at(&mut self.inj_mask, src >> 6) |= 1u64 << (src & 63);
        self.inj_words += words as u64;
        self.buffered += words as u64;
        if words > 1 {
            self.multiword_words += words as u64;
        }
        true
    }

    /// Offers a packet's words to the source-port injection FIFO.
    fn try_inject(&mut self, packet: Packet) -> bool {
        debug_assert!(packet.src < self.ports && packet.dest < self.ports);
        self.try_inject_meta(packet.src, packet.id.0, pack_packet_meta(&packet))
    }

    /// Pops an exit FIFO head, maintaining the exit-progress tracker
    /// exactly like `OmegaNetwork::pop_output` (minus the delivery
    /// log, which the fabric discards every cycle anyway).
    fn pop_output(&mut self, pos: usize) -> Option<(u64, u32, u64)> {
        let len = ld(&self.exit_len, pos);
        if len == 0 {
            return None;
        }
        let head = ld(&self.exit_head, pos) as usize;
        let ExitSlot {
            id,
            at: exit_at,
            meta,
        } = ld(&self.exit_q, (pos << self.eshift) + head);
        *at(&mut self.exit_head, pos) = ((head + 1) & self.emask) as u32;
        *at(&mut self.exit_len, pos) = len - 1;
        if len == 1 {
            *at(&mut self.exit_mask, pos >> 6) &= !(1u64 << (pos & 63));
        }
        // Popping an exit FIFO makes space for the last-stage output
        // word backpressured behind it.
        if len as usize == self.exit_cap {
            *at(&mut self.exit_blocked, self.last_base + (pos >> self.rbits)) &=
                !(1u64 << (pos & self.rmask));
        }
        self.buffered -= 1;
        // Progress tracking: a single-word packet at an idle exit
        // opens and closes its tracker in one pop, which is a no-op on
        // the lanes (the generic engine's set-then-clear leaves `None`
        // behind too), so the common case skips the tracker entirely.
        let words = meta_words(meta);
        self.multiword_words -= u64::from(words > 1);
        if ld(&self.prog_live, pos) {
            debug_assert_eq!(self.prog_id[pos], id, "interleaved packets at one exit");
            let seen = ld(&self.prog_seen, pos) + 1;
            *at(&mut self.prog_seen, pos) = seen;
            if u32::from(seen) == words {
                *at(&mut self.prog_live, pos) = false;
            }
        } else if words > 1 {
            *at(&mut self.prog_live, pos) = true;
            *at(&mut self.prog_id, pos) = id;
            *at(&mut self.prog_meta, pos) = meta & !(7 << META_INDEX_SHIFT);
            *at(&mut self.prog_head_exit, pos) = exit_at;
            *at(&mut self.prog_seen, pos) = 1;
        }
        Some((id, meta, exit_at))
    }
}

// ---------------------------------------------------------------------------
// SpecModules: the per-port memory servers flattened into SoA lanes.
// ---------------------------------------------------------------------------

/// The fabric's `MemModule` array and partial-packet reassembly slots
/// compiled into flat lanes for one specialized drive.
///
/// A module only does anything on a cycle where (a) a word is waiting
/// at its forward exit, (b) it holds a reply awaiting reverse-network
/// injection, or (c) its service timer expires with requests pending.
/// (a) is the network's `exit_mask`; (b) is the `out_mask` bitset; (c)
/// is a timing wheel of wake masks indexed by cycle modulo the service
/// time — so a module busy for its whole service window costs nothing
/// until the cycle it can actually serve, instead of a visit per
/// cycle.
struct SpecModules {
    n: usize,
    words: usize,
    buf_cap: usize,
    service: u64,
    pshift: u32,
    pmask: usize,
    // Pending-request ring buffers.
    pend_q: Vec<Slot>,
    pend_head: Vec<u8>,
    pend_len: Vec<u8>,
    busy_until: Vec<u64>,
    // Reply awaiting reverse-network injection.
    out_live: Vec<bool>,
    out_id: Vec<u64>,
    out_meta: Vec<u32>,
    served: Vec<u64>,
    // Partial multi-word request being reassembled.
    part_live: Vec<bool>,
    part_id: Vec<u64>,
    part_meta: Vec<u32>,
    part_seen: Vec<u8>,
    /// Bit `m`: module `m` holds a reply awaiting injection.
    out_mask: Vec<u64>,
    /// Wake masks, `wheel[(cycle % wheel_len) * words + w]`. A module
    /// with pending requests always has a wake scheduled at its next
    /// possible serve cycle; stale wakes are harmless no-op visits.
    wheel_len: usize,
    wheel: Vec<u64>,
    /// Modules with pending requests or a live reply (fast-forward
    /// eligibility in O(1)).
    busy: usize,
    /// Count of live partials (fast-forward eligibility in O(1)).
    partials: usize,
}

impl SpecModules {
    fn import(
        modules: &[MemModule],
        partial: &[Option<(Packet, u8)>],
        buf_cap: usize,
        service: u64,
        now: u64,
    ) -> SpecModules {
        let n = modules.len();
        let words = n.div_ceil(64).max(1);
        let pcap = buf_cap.next_power_of_two();
        let wheel_len = service.max(1) as usize + 1;
        let mut spec = SpecModules {
            n,
            words,
            buf_cap,
            service,
            pshift: pcap.trailing_zeros(),
            pmask: pcap - 1,
            pend_q: vec![Slot::default(); n * pcap],
            pend_head: vec![0; n],
            pend_len: vec![0; n],
            busy_until: vec![0; n],
            out_live: vec![false; n],
            out_id: vec![0; n],
            out_meta: vec![0; n],
            served: vec![0; n],
            part_live: vec![false; n],
            part_id: vec![0; n],
            part_meta: vec![0; n],
            part_seen: vec![0; n],
            out_mask: vec![0; words],
            wheel_len,
            wheel: vec![0; wheel_len * words],
            busy: 0,
            partials: 0,
        };
        for (i, m) in modules.iter().enumerate() {
            debug_assert!(m.pending.len() <= buf_cap);
            for (j, p) in m.pending.iter().enumerate() {
                spec.pend_q[i * pcap + j] = Slot {
                    id: p.id.0,
                    meta: pack_packet_meta(p),
                };
            }
            spec.pend_len[i] = m.pending.len() as u8;
            spec.busy_until[i] = m.busy_until;
            if let Some(p) = &m.outgoing {
                spec.out_live[i] = true;
                spec.out_id[i] = p.id.0;
                spec.out_meta[i] = pack_packet_meta(p);
                spec.out_mask[i >> 6] |= 1u64 << (i & 63);
            }
            spec.served[i] = m.served;
            if spec.pend_len[i] > 0 || spec.out_live[i] {
                spec.busy += 1;
            }
            if spec.pend_len[i] > 0 {
                spec.schedule_wake(i, now);
            }
        }
        for (i, slot) in partial.iter().enumerate() {
            if let Some((p, seen)) = slot {
                spec.part_live[i] = true;
                spec.part_id[i] = p.id.0;
                spec.part_meta[i] = pack_packet_meta(p);
                spec.part_seen[i] = *seen;
                spec.partials += 1;
            }
        }
        spec
    }

    /// Schedules a wake visit for module `i` at the earliest future
    /// cycle it could start a service (`busy_until`, but no sooner
    /// than the next cycle). The distance is at most `max(service, 1)`
    /// which the wheel length covers.
    #[inline]
    fn schedule_wake(&mut self, i: usize, now: u64) {
        let wake = ld(&self.busy_until, i).max(now + 1);
        debug_assert!(wake - now < self.wheel_len as u64);
        let slot = (wake % self.wheel_len as u64) as usize;
        *at(&mut self.wheel, slot * self.words + (i >> 6)) |= 1u64 << (i & 63);
    }

    /// Writes the lanes back into the fabric's canonical module and
    /// partial-slot representation.
    fn export(&self, modules: &mut [MemModule], partial: &mut [Option<(Packet, u8)>]) {
        for (i, m) in modules.iter_mut().enumerate() {
            m.pending.clear();
            for j in 0..self.pend_len[i] as usize {
                let s = self.pend_q
                    [(i << self.pshift) + ((self.pend_head[i] as usize + j) & self.pmask)];
                m.pending.push_back(unpack_packet(s.id, s.meta));
            }
            m.busy_until = self.busy_until[i];
            m.outgoing = self.out_live[i].then(|| unpack_packet(self.out_id[i], self.out_meta[i]));
            m.served = self.served[i];
        }
        for (i, slot) in partial.iter_mut().enumerate() {
            *slot = self.part_live[i].then(|| {
                (
                    unpack_packet(self.part_id[i], self.part_meta[i]),
                    self.part_seen[i],
                )
            });
        }
    }

    /// Whether any module holds pending, outgoing or partial work —
    /// the module-side half of the generic fast-forward precondition.
    #[inline]
    fn any_work(&self) -> bool {
        self.busy > 0 || self.partials > 0
    }

    #[inline]
    fn push_pending(&mut self, i: usize, id: u64, meta: u32) {
        debug_assert!((self.pend_len[i] as usize) < self.buf_cap);
        let slot = (i << self.pshift)
            + ((ld(&self.pend_head, i) as usize + ld(&self.pend_len, i) as usize) & self.pmask);
        *at(&mut self.pend_q, slot) = Slot {
            id,
            meta: meta & !(7 << META_INDEX_SHIFT),
        };
        *at(&mut self.pend_len, i) += 1;
    }

    /// One cycle of `service_modules` (healthy path): accept at most
    /// one forward word, retry a blocked reply, start one service.
    /// Only modules with an arriving word, a live reply, or an expiring
    /// service timer are visited; every skipped visit is provably a
    /// no-op in the generic engine.
    fn service(&mut self, fwd: &mut SpecNet, rev: &mut SpecNet, now: u64) {
        let slot = (now % self.wheel_len as u64) as usize * self.words;
        for w in 0..self.words {
            let wake = std::mem::take(at(&mut self.wheel, slot + w));
            let mut m = wake | ld(&self.out_mask, w) | fwd.exit_mask.get(w).copied().unwrap_or(0);
            while m != 0 {
                let i = (w << 6) + m.trailing_zeros() as usize;
                m &= m - 1;
                if i >= self.n {
                    break;
                }
                self.service_one(fwd, rev, now, i);
            }
        }
    }

    #[inline]
    fn service_one(&mut self, fwd: &mut SpecNet, rev: &mut SpecNet, now: u64, i: usize) {
        let was_busy = ld(&self.pend_len, i) > 0 || ld(&self.out_live, i);
        // Accept one word into the reassembly slot / pending queue
        // (pop directly — the generic peek-then-pop pair reads the
        // same head slot twice).
        if (ld(&self.pend_len, i) as usize) < self.buf_cap {
            if let Some((id, meta, _)) = fwd.pop_output(i) {
                let tail = meta_is_tail(meta);
                if ld(&self.part_live, i) {
                    debug_assert_eq!(self.part_id[i], id, "interleaved request words");
                    *at(&mut self.part_seen, i) += 1;
                    if tail {
                        *at(&mut self.part_live, i) = false;
                        self.partials -= 1;
                        let (pid, pmeta) = (ld(&self.part_id, i), ld(&self.part_meta, i));
                        self.push_pending(i, pid, pmeta);
                    }
                } else {
                    debug_assert_eq!(meta_index(meta), 0, "packet must start with its header");
                    if tail {
                        self.push_pending(i, id, meta);
                    } else {
                        *at(&mut self.part_live, i) = true;
                        *at(&mut self.part_id, i) = id;
                        *at(&mut self.part_meta, i) = meta;
                        *at(&mut self.part_seen, i) = 1;
                        self.partials += 1;
                    }
                }
            }
        }
        // Retry a blocked reply; while blocked, no new service starts.
        let mut blocked = false;
        if ld(&self.out_live, i) {
            let (oid, ometa) = (ld(&self.out_id, i), ld(&self.out_meta, i));
            if rev.try_inject_meta(meta_src(ometa) as usize, oid, ometa) {
                *at(&mut self.out_live, i) = false;
            } else {
                blocked = true;
            }
        }
        if !blocked && now >= ld(&self.busy_until, i) && ld(&self.pend_len, i) > 0 {
            let head = ld(&self.pend_head, i) as usize;
            let Slot { id, meta } = ld(&self.pend_q, (i << self.pshift) + head);
            *at(&mut self.pend_head, i) = ((head + 1) & self.pmask) as u8;
            *at(&mut self.pend_len, i) -= 1;
            *at(&mut self.busy_until, i) = now + self.service;
            *at(&mut self.served, i) += 1;
            if let Some(rmeta) = reply_meta(meta) {
                *at(&mut self.out_live, i) = true;
                *at(&mut self.out_id, i) = id;
                *at(&mut self.out_meta, i) = rmeta;
            }
        }
        let bit = 1u64 << (i & 63);
        if ld(&self.out_live, i) {
            *at(&mut self.out_mask, i >> 6) |= bit;
        } else {
            *at(&mut self.out_mask, i >> 6) &= !bit;
        }
        if ld(&self.pend_len, i) > 0 {
            self.schedule_wake(i, now);
        }
        let is_busy = ld(&self.pend_len, i) > 0 || ld(&self.out_live, i);
        if is_busy != was_busy {
            if is_busy {
                self.busy += 1;
            } else {
                self.busy -= 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fabric-side driver.
// ---------------------------------------------------------------------------

impl RoundTripFabric {
    /// Why this fabric/experiment pair cannot run on the specialized
    /// engine, or `None` when it can.
    pub(crate) fn specialization_blocker(&self, exp: &FabricExperiment) -> Option<&'static str> {
        if self.obs.is_some() {
            return Some("telemetry attached");
        }
        if self.faults.is_some() || exp.recovery.is_some() {
            return Some("fault schedule attached");
        }
        let net = &self.cfg.net;
        if !(1..=4).contains(&net.stages) {
            return Some("stage count outside 1..=4");
        }
        if net.radix > 64 {
            return Some("radix above 64");
        }
        if net.ports() > 4096 {
            return Some("port count above 4096");
        }
        if net.queue_words > 64 {
            return Some("switch queues deeper than 64 words");
        }
        if self.forward.cfg.exit_fifo_words > 65_536 || self.reverse.cfg.exit_fifo_words > 65_536 {
            return Some("exit FIFOs deeper than 65536 words");
        }
        if self.cfg.module_buffer_requests > 64 {
            return Some("module buffers deeper than 64 requests");
        }
        if !self.forward.delivered.is_empty() || !self.reverse.delivered.is_empty() {
            return Some("undrained delivery log");
        }
        None
    }

    /// Runs the experiment on the specialized engine until it stops
    /// running or `stop_at` net cycles is reached. The networks and
    /// modules are compiled in on entry and written back on every exit
    /// path, so the fabric is always in canonical generic form
    /// afterwards.
    pub(crate) fn drive_specialized(
        &mut self,
        exp: &mut FabricExperiment,
        watchdog: Option<&mut Watchdog>,
        stop_at: Option<u64>,
    ) -> Result<(), CedarError> {
        let mut fwd = SpecNet::import(&self.forward);
        let mut rev = SpecNet::import(&self.reverse);
        let mut mods = SpecModules::import(
            &self.modules,
            &self.partial,
            self.cfg.module_buffer_requests,
            self.cfg.mem_service_net_cycles,
            self.now,
        );
        // Pre-size the per-CE result vectors to their final lengths so
        // the hot loop never reallocates (capacity is not semantic).
        for src in exp.sources.iter_mut() {
            let total = src.traffic.blocks as usize * src.traffic.block_len as usize;
            src.records.reserve(total.saturating_sub(src.records.len()));
            src.issued_at
                .reserve(total.saturating_sub(src.issued_at.len()));
        }
        let result = match self.cfg.net.stages {
            1 => self.spec_loop::<1>(&mut fwd, &mut rev, &mut mods, exp, watchdog, stop_at),
            2 => self.spec_loop::<2>(&mut fwd, &mut rev, &mut mods, exp, watchdog, stop_at),
            3 => self.spec_loop::<3>(&mut fwd, &mut rev, &mut mods, exp, watchdog, stop_at),
            4 => self.spec_loop::<4>(&mut fwd, &mut rev, &mut mods, exp, watchdog, stop_at),
            _ => unreachable!("specialization_blocker admits only 1..=4 stages"),
        };
        fwd.export(&mut self.forward);
        rev.export(&mut self.reverse);
        mods.export(&mut self.modules, &mut self.partial);
        result
    }

    /// The monomorphized experiment loop: `step_experiment` with the
    /// obs/fault/recovery branches compiled out and the networks and
    /// modules in SoA form.
    fn spec_loop<const S: usize>(
        &mut self,
        fwd: &mut SpecNet,
        rev: &mut SpecNet,
        mods: &mut SpecModules,
        exp: &mut FabricExperiment,
        mut watchdog: Option<&mut Watchdog>,
        stop_at: Option<u64>,
    ) -> Result<(), CedarError> {
        // Sources that might issue this boundary: a bit is cleared when
        // only an ejected reply can unblock the source (window full,
        // block flow-window closed, stream finished) and re-armed by
        // the next reply that reaches it.
        let mut issuable = vec![!0u64; exp.sources.len().div_ceil(64).max(1)];
        while self.experiment_running(exp) && stop_at.is_none_or(|c| self.now < c) {
            if self.fast_forward {
                let horizon = watchdog
                    .as_deref()
                    .map(|dog| dog.progress_cycle() + dog.budget() + 1);
                self.spec_fast_forward(fwd, rev, mods, exp, horizon);
            }
            self.now += 1;
            let ce_boundary = self.now.is_multiple_of(exp.ratio);
            let ce_now = self.now / exp.ratio;
            fwd.step::<S>();
            rev.step::<S>();
            mods.service(fwd, rev, self.now);
            exp.completed_requests +=
                Self::spec_eject_replies(rev, &mut exp.sources, &mut issuable);
            if ce_boundary {
                self.spec_issue_requests(fwd, &mut exp.sources, ce_now, &mut issuable);
            }
            if let Some(dog) = watchdog.as_deref_mut() {
                if let Err(report) = dog.observe(self.now, exp.resolved_requests()) {
                    return Err(report.into());
                }
            }
        }
        Ok(())
    }

    /// `idle_fast_forward` for SoA networks: identical preconditions
    /// (`buffered == 0` is the generic `is_idle()`) and an identical
    /// jump target, so timestamps match the generic engine exactly.
    fn spec_fast_forward(
        &mut self,
        fwd: &mut SpecNet,
        rev: &mut SpecNet,
        mods: &SpecModules,
        exp: &FabricExperiment,
        horizon: Option<u64>,
    ) {
        if fwd.buffered != 0 || rev.buffered != 0 || mods.any_work() {
            return;
        }
        let ratio = exp.ratio;
        let next_boundary = (self.now / ratio + 1) * ratio;
        let target = exp
            .sources
            .iter()
            .filter(|s| !s.done_issuing)
            .map(|s| next_boundary.max(s.blocked_until_ce * ratio))
            .min()
            .unwrap_or(exp.max_net_cycles)
            .min(exp.max_net_cycles)
            .min(horizon.unwrap_or(u64::MAX));
        if target <= self.now + 1 {
            return;
        }
        let skipped = target - 1 - self.now;
        self.now += skipped;
        fwd.now += skipped;
        rev.now += skipped;
        self.ff_cycles += skipped;
    }

    /// `eject_replies` against an SoA reverse network (no recovery),
    /// visiting only the ports with buffered exit words.
    fn spec_eject_replies(
        rev: &mut SpecNet,
        sources: &mut [CeSource],
        issuable: &mut [u64],
    ) -> u64 {
        let mut completed = 0;
        for w in 0..rev.exit_mask.len() {
            let mut m = rev.exit_mask[w];
            while m != 0 {
                let pos = (w << 6) + m.trailing_zeros() as usize;
                m &= m - 1;
                if pos >= sources.len() {
                    break;
                }
                // A reply frees issue capacity; re-arm the source.
                issuable[pos >> 6] |= 1u64 << (pos & 63);
                let src = &mut sources[pos];
                let block_len = u64::from(src.traffic.block_len);
                // Request streams issue block-length-many requests per
                // block, so the hot path splits `local` with a shift
                // and mask whenever the block length is a power of two
                // instead of two 64-bit divisions per reply.
                let bl_shift = block_len
                    .is_power_of_two()
                    .then(|| block_len.trailing_zeros());
                while let Some((id, meta, arrived)) = rev.pop_output(pos) {
                    debug_assert_eq!(meta_kind(meta), kind_tag(PacketKind::Reply));
                    let local = Self::local_index(PacketId(id), src.port);
                    let (block, index_in_block) = match bl_shift {
                        Some(shift) => (local >> shift, local & (block_len - 1)),
                        None => (local / block_len, local % block_len),
                    };
                    let record = RequestRecord {
                        block: block as u32,
                        index_in_block: index_in_block as u32,
                        issue: src.issued_at[local as usize],
                        ret: arrived,
                    };
                    let block = record.block as usize;
                    src.returned_per_block[block] += 1;
                    if src.returned_per_block[block] == src.traffic.block_len {
                        src.completed_blocks += 1;
                    }
                    src.records.push(record);
                    src.outstanding -= 1;
                    completed += 1;
                }
            }
        }
        completed
    }

    /// `issue_requests` against an SoA forward network (no recovery,
    /// no obs). RNG draws happen in the same order as the generic
    /// path, so addresses — and therefore everything downstream — are
    /// identical.
    fn spec_issue_requests(
        &mut self,
        fwd: &mut SpecNet,
        sources: &mut [CeSource],
        ce_now: u64,
        issuable: &mut [u64],
    ) {
        let n_mod = self.cfg.mem_modules;
        for w in 0..issuable.len() {
            let mut m = issuable[w];
            while m != 0 {
                let idx = (w << 6) + m.trailing_zeros() as usize;
                m &= m - 1;
                if idx >= sources.len() {
                    break;
                }
                let src = &mut sources[idx];
                if src.done_issuing || src.outstanding >= src.traffic.window {
                    // Only an ejected reply can unblock this source;
                    // park it until one arrives.
                    issuable[w] &= !(1u64 << (idx & 63));
                    continue;
                }
                if ce_now < src.blocked_until_ce {
                    continue; // time-based gap: stays armed
                }
                self.spec_issue_one(fwd, src, ce_now, n_mod, issuable, w, idx);
            }
        }
    }

    /// One source's issue attempt at a CE boundary (the loop body of
    /// the generic `issue_requests`, minus recovery and obs).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn spec_issue_one(
        &mut self,
        fwd: &mut SpecNet,
        src: &mut CeSource,
        ce_now: u64,
        n_mod: usize,
        issuable: &mut [u64],
        w: usize,
        idx: usize,
    ) {
        {
            if src.next_index == 0 {
                if src.next_block >= src.completed_blocks + src.traffic.blocks_in_flight {
                    if src.write_debt >= 1.0 {
                        let module =
                            (src.stream_bases[0] + n_mod / 2 + src.writes_issued as usize) % n_mod;
                        let write = Packet::write(
                            src.port,
                            module,
                            ((src.port as u64) << 40) | (1 << 39) | src.writes_issued,
                            1,
                        );
                        if fwd.try_inject(write) {
                            src.write_debt -= 1.0;
                            src.writes_issued += 1;
                        }
                    } else {
                        // Block flow-window closed with no write owed:
                        // nothing can happen before the next reply.
                        issuable[w] &= !(1u64 << (idx & 63));
                    }
                    return;
                }
                for base in &mut src.stream_bases {
                    *base = src.rng.next_below(n_mod as u64) as usize;
                }
            }
            let local = u64::from(src.next_block) * u64::from(src.traffic.block_len)
                + u64::from(src.next_index);
            let n_streams = src.stream_bases.len();
            let stream = src.next_index as usize % n_streams;
            let module = match src.traffic.pattern {
                AddressPattern::HotSpot { module, fraction } if src.rng.next_bool(fraction) => {
                    module % n_mod
                }
                _ => (src.stream_bases[stream] + src.next_index as usize / n_streams) % n_mod,
            };
            let packet = Packet::new(
                Self::packet_id(src.port, local),
                src.port,
                module,
                1,
                PacketKind::ReadRequest,
            );
            if fwd.try_inject(packet) {
                debug_assert_eq!(src.issued_at.len() as u64, local);
                src.issued_at.push(self.now);
                src.outstanding += 1;
                src.write_debt += src.traffic.writes_per_read;
                src.next_index += 1;
                if src.next_index == src.traffic.block_len {
                    src.next_index = 0;
                    src.next_block += 1;
                    src.blocked_until_ce = ce_now + src.traffic.gap_ce_cycles;
                    if src.next_block == src.traffic.blocks {
                        src.done_issuing = true;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The meta packing must round-trip every reachable packet shape.
    #[test]
    fn meta_round_trips() {
        for kind in [
            PacketKind::ReadRequest,
            PacketKind::Write,
            PacketKind::SyncOp,
            PacketKind::Reply,
        ] {
            for words in 1..=4u8 {
                for index in 0..words {
                    let packet = Packet {
                        id: PacketId(0xABCD_EF01_2345),
                        src: 4095,
                        dest: 63,
                        words,
                        kind,
                    };
                    let word = Word { packet, index };
                    let meta = pack_word_meta(&word);
                    assert_eq!(unpack_word(packet.id.0, meta), word);
                    assert_eq!(
                        unpack_packet(packet.id.0, pack_packet_meta(&packet)),
                        packet
                    );
                }
            }
        }
    }

    /// The reply meta must match `Packet::reply` for every kind.
    #[test]
    fn reply_meta_matches_generic_reply() {
        for kind in [
            PacketKind::ReadRequest,
            PacketKind::Write,
            PacketKind::SyncOp,
            PacketKind::Reply,
        ] {
            let request = Packet::new(PacketId(42), 7, 0o31, 2, kind);
            let expected = request.reply();
            let got = reply_meta(pack_packet_meta(&request))
                .map(|meta| unpack_packet(request.id.0, meta));
            assert_eq!(got, expected);
        }
    }

    /// Import → export with no stepping is the identity on the
    /// generic network, including mid-flight wormhole state.
    #[test]
    fn import_export_round_trips_mid_run() {
        use cedar_snap::Snapshot;
        let mut net = OmegaNetwork::new(NetworkConfig::cedar());
        // Multi-word writes put partial packets everywhere: inject
        // FIFOs, switch queues, exit progress.
        for srcp in 0..8 {
            assert!(net.try_inject(Packet::write(srcp, 0o27, srcp as u64, 2)));
        }
        for _ in 0..5 {
            net.step();
        }
        // Leave a packet mid-consumption so exit progress is live.
        let _ = net.pop_output(0o27);
        net.clear_delivered();
        let spec = SpecNet::import(&net);
        let mut restored = OmegaNetwork::new(NetworkConfig::cedar());
        spec.export(&mut restored);
        let snap = |n: &OmegaNetwork| {
            let mut w = cedar_snap::SnapWriter::new();
            n.snap(&mut w);
            w.into_bytes()
        };
        assert_eq!(
            snap(&restored),
            snap(&net),
            "import/export must be the identity"
        );
    }

    /// A full-size specialized run produces the exact report of the
    /// generic engine.
    #[test]
    fn specialized_run_matches_generic_report() {
        let traffic = PrefetchTraffic::rk_aggressive(2);
        let mut generic = RoundTripFabric::new(FabricConfig::cedar());
        generic.set_engine(EngineKind::Generic);
        let expected = generic.run_prefetch_experiment(8, traffic, 64_000_000);

        let mut fast = RoundTripFabric::new(FabricConfig::cedar());
        fast.set_engine(EngineKind::Specialized);
        let got = fast.run_prefetch_experiment(8, traffic, 64_000_000);
        assert_eq!(fast.last_run_engine(), Some("specialized"));
        assert_eq!(got, expected);
    }
}
