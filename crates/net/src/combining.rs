//! The Ultracomputer-style combining fabric.
//!
//! A round-trip hotspot experiment built from two [`OmegaNetwork`]s —
//! a forward (request) net with fetch-and-add combining enabled at
//! every switch, and a reverse (reply) net — plus memory modules with
//! a finite service rate and CE-side hotspot traffic sources. This is
//! the machinery behind the zoo's *Ultra* machine: the same crossbar
//! stages Cedar uses, but with the NYU combining wait buffers switched
//! on, evaluated on the workload where combining is decisive — many
//! processors hammering one synchronization variable.
//!
//! With `combining_slots == 0` the identical machinery runs as a plain
//! omega network; that run is the zoo's Cedar-side hotspot control, so
//! the combining-vs-plain comparison differs in exactly one bit of
//! configuration.
//!
//! Determinism: traffic is drawn from per-CE [`SplitMix64`] streams
//! seeded by port, all stepping is sequential, and the report is a
//! pure function of the config — byte-identical across runs, thread
//! counts, and cache replays.

use std::collections::VecDeque;

use cedar_sim::rng::SplitMix64;

use crate::config::NetworkConfig;
use crate::network::OmegaNetwork;
use crate::packet::{Packet, PacketId, PacketKind};

/// Configuration of a combining hotspot experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CombiningConfig {
    /// Omega-network geometry shared by the forward and reverse nets.
    pub net: NetworkConfig,
    /// Per-switch combining wait-buffer slots; 0 runs the plain
    /// omega control.
    pub combining_slots: usize,
    /// Memory-module service time per request, in network cycles.
    pub mem_service_net_cycles: u64,
    /// Requests a module will buffer before refusing arrivals (the
    /// backpressure that produces tree saturation).
    pub module_buffer_requests: usize,
}

impl CombiningConfig {
    /// The plain-omega control: Cedar's network, no combining.
    #[must_use]
    pub fn plain() -> Self {
        CombiningConfig {
            net: NetworkConfig::cedar(),
            combining_slots: 0,
            mem_service_net_cycles: 4,
            module_buffer_requests: 2,
        }
    }

    /// The Ultra machine: the same network with `slots` wait-buffer
    /// entries per switch.
    #[must_use]
    pub fn ultra(slots: usize) -> Self {
        CombiningConfig {
            combining_slots: slots,
            ..CombiningConfig::plain()
        }
    }
}

/// Hotspot traffic shape: every CE issues `requests_per_ce` requests,
/// each aimed at the hot module (port 0) with probability
/// `hot_ppm / 1e6` as a single-word fetch-and-add, otherwise at a
/// uniformly drawn module as a plain read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotspotTraffic {
    /// Requests each CE issues in total.
    pub requests_per_ce: u64,
    /// Parts-per-million of requests aimed at the hot module.
    pub hot_ppm: u32,
    /// Maximum outstanding requests per CE (the CE's prefetch window).
    pub window: usize,
}

/// What one hotspot run measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CombiningReport {
    /// CEs that generated traffic.
    pub ces: usize,
    /// Requests issued into the forward network.
    pub issued: u64,
    /// Replies received back at the CEs.
    pub completed: u64,
    /// Network cycles the run took.
    pub net_cycles: u64,
    /// Sync requests absorbed by combining switches.
    pub words_combined: u64,
    /// Sum of request round-trip latencies, in network cycles.
    pub sum_latency: u64,
    /// Network cycles per CE cycle (for unit conversions).
    pub net_cycles_per_ce_cycle: u64,
}

impl CombiningReport {
    /// Whether every issued request completed within the cycle budget.
    #[must_use]
    pub fn all_completed(&self) -> bool {
        self.completed == self.issued
    }

    /// Mean round-trip latency in CE cycles.
    #[must_use]
    pub fn mean_latency_ce(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.sum_latency as f64 / self.completed as f64 / self.net_cycles_per_ce_cycle as f64
    }

    /// Delivered bandwidth: completed requests per CE cycle, summed
    /// over the whole machine.
    #[must_use]
    pub fn bandwidth(&self) -> f64 {
        if self.net_cycles == 0 {
            return 0.0;
        }
        self.completed as f64 * self.net_cycles_per_ce_cycle as f64 / self.net_cycles as f64
    }
}

/// Per-module state: a bounded request buffer, a service timer, and
/// an outgoing reply queue feeding the reverse network.
struct Module {
    pending: VecDeque<Packet>,
    busy_until: u64,
    outgoing: VecDeque<Packet>,
    served: u64,
}

/// Per-CE state: the traffic stream and completion bookkeeping.
struct Source {
    rng: SplitMix64,
    next_req: Option<Packet>,
    issued: u64,
    outstanding: usize,
    issue_cycle: Vec<u64>,
}

/// The assembled experiment.
pub struct CombiningFabric {
    cfg: CombiningConfig,
    forward: OmegaNetwork,
    reverse: OmegaNetwork,
    modules: Vec<Module>,
    sources: Vec<Source>,
    now: u64,
    completed: u64,
    sum_latency: u64,
}

/// Packet ids encode (CE port, sequence number) so a reply can be
/// matched to its issue cycle.
const SEQ_BITS: u32 = 32;

impl CombiningFabric {
    /// Builds the fabric with `ces` traffic sources on ports
    /// `0..ces`.
    ///
    /// # Panics
    ///
    /// Panics if `ces` is zero or exceeds the network's port count.
    #[must_use]
    pub fn new(cfg: CombiningConfig, ces: usize) -> Self {
        let ports = cfg.net.ports();
        assert!(ces > 0, "need at least one CE");
        assert!(ces <= ports, "more CEs than network ports");
        let mut forward = OmegaNetwork::new(cfg.net);
        forward.enable_combining(cfg.combining_slots);
        let reverse = OmegaNetwork::new(cfg.net);
        CombiningFabric {
            cfg,
            forward,
            reverse,
            modules: (0..ports)
                .map(|_| Module {
                    pending: VecDeque::new(),
                    busy_until: 0,
                    outgoing: VecDeque::new(),
                    served: 0,
                })
                .collect(),
            sources: (0..ces)
                .map(|port| Source {
                    rng: SplitMix64::new(0xCEDA_2010 ^ ((port as u64) << 8)),
                    next_req: None,
                    issued: 0,
                    outstanding: 0,
                    issue_cycle: Vec::new(),
                })
                .collect(),
            now: 0,
            completed: 0,
            sum_latency: 0,
        }
    }

    /// Runs the hotspot workload to completion (or the cycle budget)
    /// and reports what happened.
    pub fn run(&mut self, traffic: HotspotTraffic, max_net_cycles: u64) -> CombiningReport {
        let total = traffic.requests_per_ce * self.sources.len() as u64;
        while self.completed < total && self.now < max_net_cycles {
            self.step(traffic);
        }
        CombiningReport {
            ces: self.sources.len(),
            issued: self.sources.iter().map(|s| s.issued).sum(),
            completed: self.completed,
            net_cycles: self.now,
            words_combined: self.forward.words_combined(),
            sum_latency: self.sum_latency,
            net_cycles_per_ce_cycle: self.cfg.net.net_cycles_per_ce_cycle,
        }
    }

    /// One network cycle of the whole fabric.
    fn step(&mut self, traffic: HotspotTraffic) {
        self.now += 1;
        self.forward.step();
        self.reverse.step();
        self.service_modules();
        self.collect_replies();
        if self
            .now
            .is_multiple_of(self.cfg.net.net_cycles_per_ce_cycle)
        {
            self.issue_requests(traffic);
        }
    }

    /// Modules receive at most one request per cycle (bounded
    /// buffer), serve at their fixed rate, and push replies — plus
    /// the fanned-out replies of every request combined under the
    /// served one — toward the reverse network.
    fn service_modules(&mut self) {
        let service = self.cfg.mem_service_net_cycles;
        for (port, module) in self.modules.iter_mut().enumerate() {
            // Arrival: refusing to pop when the buffer is full backs
            // up the exit FIFO and, through it, the switch stages.
            if module.pending.len() < self.cfg.module_buffer_requests {
                if let Some((word, _)) = self.forward.pop_output(port) {
                    module.pending.push_back(word.packet);
                }
            }
            // Service completion -> reply generation.
            if self.now >= module.busy_until {
                if let Some(req) = module.pending.pop_front() {
                    module.busy_until = self.now + service;
                    module.served += 1;
                    if let Some(reply) = req.reply() {
                        module.outgoing.push_back(reply);
                    }
                    // Decombination: riders absorbed under this id
                    // get their own replies, without ever having
                    // traversed the congested stages.
                    for rider in self.forward.take_combined(req.id) {
                        if let Some(reply) = rider.reply() {
                            module.outgoing.push_back(reply);
                        }
                    }
                }
            }
            // One reply injection attempt per cycle.
            if let Some(&reply) = module.outgoing.front() {
                if self.reverse.try_inject(reply) {
                    module.outgoing.pop_front();
                }
            }
        }
        self.forward.clear_delivered();
    }

    /// CEs drain the reverse network and record round-trip latency.
    fn collect_replies(&mut self) {
        for (port, source) in self.sources.iter_mut().enumerate() {
            while let Some((word, _)) = self.reverse.pop_output(port) {
                let seq = (word.packet.id.0 & ((1 << SEQ_BITS) - 1)) as usize;
                let issued_at = source.issue_cycle[seq];
                self.sum_latency += self.now - issued_at;
                self.completed += 1;
                source.outstanding -= 1;
            }
        }
        self.reverse.clear_delivered();
    }

    /// Each CE issues at most one request per CE cycle, within its
    /// outstanding-request window. A request refused by the inject
    /// FIFO is retried verbatim next CE cycle, so the stream is
    /// independent of congestion.
    fn issue_requests(&mut self, traffic: HotspotTraffic) {
        let ports = self.cfg.net.ports() as u64;
        for (port, source) in self.sources.iter_mut().enumerate() {
            if source.issued >= traffic.requests_per_ce || source.outstanding >= traffic.window {
                continue;
            }
            let req = *source.next_req.get_or_insert_with(|| {
                let seq = source.issued;
                let id = PacketId(((port as u64) << SEQ_BITS) | seq);
                let hot = source.rng.next_bool(f64::from(traffic.hot_ppm) / 1e6);
                if hot {
                    Packet::new(id, port, 0, 1, PacketKind::SyncOp)
                } else {
                    let dest = source.rng.next_below(ports) as usize;
                    Packet::new(id, port, dest, 1, PacketKind::ReadRequest)
                }
            });
            if self.forward.try_inject(req) {
                source.next_req = None;
                source.issue_cycle.push(self.now);
                source.issued += 1;
                source.outstanding += 1;
            }
        }
    }
}

/// Runs one hotspot experiment from scratch: the zoo's cell kernel.
#[must_use]
pub fn run_hotspot(
    cfg: CombiningConfig,
    ces: usize,
    traffic: HotspotTraffic,
    max_net_cycles: u64,
) -> CombiningReport {
    CombiningFabric::new(cfg, ces).run(traffic, max_net_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traffic(requests: u64, hot_ppm: u32) -> HotspotTraffic {
        HotspotTraffic {
            requests_per_ce: requests,
            hot_ppm,
            window: 4,
        }
    }

    #[test]
    fn every_request_is_answered_exactly_once() {
        for slots in [0usize, 8] {
            let report = run_hotspot(
                CombiningConfig::ultra(slots),
                16,
                traffic(32, 500_000),
                2_000_000,
            );
            assert!(report.all_completed(), "slots={slots}: {report:?}");
            assert_eq!(report.issued, 16 * 32);
        }
    }

    #[test]
    fn combining_beats_plain_omega_on_the_hotspot() {
        let plain = run_hotspot(
            CombiningConfig::plain(),
            32,
            traffic(64, 500_000),
            4_000_000,
        );
        let ultra = run_hotspot(
            CombiningConfig::ultra(16),
            32,
            traffic(64, 500_000),
            4_000_000,
        );
        assert!(plain.all_completed() && ultra.all_completed());
        assert!(ultra.words_combined > 0, "combining never fired");
        assert!(
            ultra.net_cycles < plain.net_cycles,
            "combining must finish the hotspot sooner: ultra {} vs plain {}",
            ultra.net_cycles,
            plain.net_cycles
        );
        assert!(ultra.bandwidth() > plain.bandwidth());
    }

    #[test]
    fn plain_control_never_combines() {
        let report = run_hotspot(
            CombiningConfig::plain(),
            8,
            traffic(16, 1_000_000),
            1_000_000,
        );
        assert_eq!(report.words_combined, 0);
        assert!(report.all_completed());
    }

    #[test]
    fn uniform_traffic_is_barely_combinable() {
        // With no hot spot there are almost no same-destination sync
        // pairs to merge, so combining changes little.
        let plain = run_hotspot(CombiningConfig::plain(), 16, traffic(32, 0), 1_000_000);
        let ultra = run_hotspot(CombiningConfig::ultra(16), 16, traffic(32, 0), 1_000_000);
        assert_eq!(ultra.words_combined, 0, "reads never combine");
        assert_eq!(plain.net_cycles, ultra.net_cycles);
    }

    #[test]
    fn reports_are_deterministic() {
        let a = run_hotspot(
            CombiningConfig::ultra(8),
            16,
            traffic(32, 250_000),
            1_000_000,
        );
        let b = run_hotspot(
            CombiningConfig::ultra(8),
            16,
            traffic(32, 250_000),
            1_000_000,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn hotter_traffic_degrades_the_plain_network_more() {
        let mild = run_hotspot(CombiningConfig::plain(), 16, traffic(32, 50_000), 2_000_000);
        let hot = run_hotspot(
            CombiningConfig::plain(),
            16,
            traffic(32, 800_000),
            2_000_000,
        );
        assert!(mild.all_completed() && hot.all_completed());
        assert!(
            hot.net_cycles > mild.net_cycles,
            "tree saturation should bite"
        );
    }
}
