//! Omega-network wiring and destination-tag routing.
//!
//! An omega network on `N = r^k` positions consists of `k` stages of
//! `N/r` crossbar switches, with a radix-`r` perfect shuffle applied
//! to the position numbering before every stage. Writing a position as
//! a `k`-digit base-`r` string, the shuffle is a left rotation of the
//! digits; a switch at stage `s` can replace the least-significant
//! digit. After `k` shuffle-and-set steps the digit string equals the
//! destination, which is Lawrie's tag-control routing \[Lawr75\]: the
//! routing digit consumed at stage `s` is the `s`-th most significant
//! digit of the destination port number.

use cedar_faults::CedarError;

/// Wiring and routing arithmetic for one omega network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    radix: usize,
    stages: usize,
    ports: usize,
    /// log2(radix), for digit extraction.
    radix_bits: u32,
}

impl Topology {
    /// Creates a topology for a radix-`radix`, `stages`-stage network.
    ///
    /// # Errors
    ///
    /// Rejects a `radix` that is not a power of two ≥ 2 (the shuffle
    /// and digit arithmetic require base-`r` digit strings), a zero
    /// `stages`, and any geometry whose port count would overflow.
    pub fn new(radix: usize, stages: usize) -> Result<Self, CedarError> {
        if radix < 2 || !radix.is_power_of_two() {
            return Err(CedarError::invalid(
                "net.radix",
                format!("radix must be a power of two >= 2, got {radix}"),
            ));
        }
        if stages == 0 {
            return Err(CedarError::invalid(
                "net.stages",
                "network needs at least one stage",
            ));
        }
        let Ok(stage_count) = u32::try_from(stages) else {
            return Err(CedarError::invalid(
                "net.stages",
                format!("{stages} stages is not a representable network"),
            ));
        };
        let Some(ports) = radix.checked_pow(stage_count) else {
            return Err(CedarError::invalid(
                "net.stages",
                format!("radix {radix} with {stages} stages overflows the port count"),
            ));
        };
        Ok(Topology {
            radix,
            stages,
            ports,
            radix_bits: radix.trailing_zeros(),
        })
    }

    /// Number of network positions.
    #[must_use]
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Number of stages.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Crossbar radix.
    #[must_use]
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Switches per stage.
    #[must_use]
    pub fn switches_per_stage(&self) -> usize {
        self.ports / self.radix
    }

    /// The radix-`r` perfect shuffle: left-rotates the base-`r` digit
    /// string of `position`.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    #[must_use]
    pub fn shuffle(&self, position: usize) -> usize {
        assert!(position < self.ports, "position {position} out of range");
        (position * self.radix) % self.ports + (position * self.radix) / self.ports
    }

    /// Inverse of [`shuffle`](Self::shuffle): right-rotates the digits.
    #[must_use]
    pub fn unshuffle(&self, position: usize) -> usize {
        assert!(position < self.ports, "position {position} out of range");
        position / self.radix + (position % self.radix) * (self.ports / self.radix)
    }

    /// The routing digit a switch at `stage` uses for a packet headed
    /// to `dest`: the `stage`-th most significant base-`r` digit.
    ///
    /// # Panics
    ///
    /// Panics if `stage` or `dest` is out of range.
    #[must_use]
    pub fn routing_digit(&self, stage: usize, dest: usize) -> usize {
        assert!(stage < self.stages, "stage {stage} out of range");
        assert!(dest < self.ports, "dest {dest} out of range");
        let shift = self.radix_bits * (self.stages - 1 - stage) as u32;
        (dest >> shift) & (self.radix - 1)
    }

    /// Where a packet injected at `src` sits after the pre-stage-0
    /// shuffle: `(switch index, switch input port)`.
    #[must_use]
    pub fn injection_switch(&self, src: usize) -> (usize, usize) {
        let pos = self.shuffle(src);
        (pos / self.radix, pos % self.radix)
    }

    /// Given a packet leaving stage `stage` from `switch` via
    /// `out_port`, the `(switch, input port)` it enters at stage
    /// `stage + 1`, or the final network output position if `stage`
    /// was the last.
    #[must_use]
    pub fn next_hop(&self, stage: usize, switch: usize, out_port: usize) -> Hop {
        let pos = switch * self.radix + out_port;
        if stage + 1 == self.stages {
            Hop::Output(pos)
        } else {
            let next = self.shuffle(pos);
            Hop::Switch {
                switch: next / self.radix,
                input: next % self.radix,
            }
        }
    }

    /// Computes the full switch-level route of a packet from `src` to
    /// `dest`: for each stage, `(switch index, input port, output
    /// port)`. Useful for tests and for the unique-path property.
    #[must_use]
    pub fn route(&self, src: usize, dest: usize) -> Vec<(usize, usize, usize)> {
        let mut route = Vec::with_capacity(self.stages);
        let (mut switch, mut input) = self.injection_switch(src);
        for stage in 0..self.stages {
            let output = self.routing_digit(stage, dest);
            route.push((switch, input, output));
            if let Hop::Switch {
                switch: s,
                input: i,
            } = self.next_hop(stage, switch, output)
            {
                switch = s;
                input = i;
            }
        }
        route
    }
}

/// One directed edge of a route: `(stage, switch, output port)`.
pub type RouteEdge = (usize, usize, usize);

impl Topology {
    /// The switch-output edges a route from `src` to `dest` occupies,
    /// one per stage.
    #[must_use]
    pub fn route_edges(&self, src: usize, dest: usize) -> Vec<RouteEdge> {
        self.route(src, dest)
            .into_iter()
            .enumerate()
            .map(|(stage, (switch, _input, output))| (stage, switch, output))
            .collect()
    }

    /// Whether two routes conflict: Lawrie's unique-path property
    /// means two packets block each other iff their routes share a
    /// switch output at some stage. Routes from the same source or to
    /// the same destination always conflict (they share the injection
    /// or ejection link).
    #[must_use]
    pub fn routes_conflict(
        &self,
        src_a: usize,
        dest_a: usize,
        src_b: usize,
        dest_b: usize,
    ) -> bool {
        if src_a == src_b || dest_a == dest_b {
            return true;
        }
        let a = self.route_edges(src_a, dest_a);
        let b = self.route_edges(src_b, dest_b);
        a.iter().any(|e| b.contains(e))
    }

    /// Whether a permutation (dest of each source) is passable without
    /// any internal conflicts — the omega network's admissibility test.
    /// The identity and all uniform shifts pass (Lawrie's alignment
    /// results); bit-reversal famously does not.
    ///
    /// # Panics
    ///
    /// Panics if `permutation` is not over all ports.
    #[must_use]
    pub fn permutation_admissible(&self, permutation: &[usize]) -> bool {
        assert_eq!(permutation.len(), self.ports(), "need a full permutation");
        let mut used: std::collections::HashSet<RouteEdge> = std::collections::HashSet::new();
        for (src, &dest) in permutation.iter().enumerate() {
            for edge in self.route_edges(src, dest) {
                if !used.insert(edge) {
                    return false;
                }
            }
        }
        true
    }
}

/// Where a word goes after leaving a switch output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hop {
    /// Into the given input port of a next-stage switch.
    Switch {
        /// Next-stage switch index.
        switch: usize,
        /// Input port on that switch.
        input: usize,
    },
    /// Out of the network at the given final position.
    Output(usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_a_left_rotation() {
        let t = Topology::new(8, 2).unwrap(); // 64 ports, digits (d1, d0)
                                              // position 0o17 = (1, 7) -> rotate -> (7, 1) = 0o71
        assert_eq!(t.shuffle(0o17), 0o71);
        assert_eq!(t.unshuffle(0o71), 0o17);
    }

    #[test]
    fn shuffle_round_trips_everywhere() {
        for (radix, stages) in [(2, 3), (4, 2), (8, 2)] {
            let t = Topology::new(radix, stages).unwrap();
            for p in 0..t.ports() {
                assert_eq!(t.unshuffle(t.shuffle(p)), p);
                assert_eq!(t.shuffle(t.unshuffle(p)), p);
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let t = Topology::new(8, 2).unwrap();
        let mut seen = vec![false; t.ports()];
        for p in 0..t.ports() {
            let s = t.shuffle(p);
            assert!(!seen[s]);
            seen[s] = true;
        }
    }

    #[test]
    fn routing_digits_msb_first() {
        let t = Topology::new(8, 2).unwrap();
        let dest = 0o35;
        assert_eq!(t.routing_digit(0, dest), 3);
        assert_eq!(t.routing_digit(1, dest), 5);
    }

    /// The fundamental correctness property: following the shuffle
    /// wiring and the tag digits delivers every (src, dest) pair.
    #[test]
    fn tag_routing_reaches_every_destination() {
        for (radix, stages) in [(2, 2), (2, 4), (4, 2), (8, 2)] {
            let t = Topology::new(radix, stages).unwrap();
            for src in 0..t.ports() {
                for dest in 0..t.ports() {
                    let route = t.route(src, dest);
                    let (last_switch, _, last_out) = *route.last().unwrap();
                    match t.next_hop(t.stages() - 1, last_switch, last_out) {
                        Hop::Output(pos) => assert_eq!(
                            pos, dest,
                            "radix {radix} stages {stages}: {src} -> {dest} arrived at {pos}"
                        ),
                        Hop::Switch { .. } => panic!("route did not terminate"),
                    }
                }
            }
        }
    }

    /// Lawrie's property: the path between a (src, dest) pair is unique,
    /// i.e. the route function is deterministic and single-valued —
    /// and two sources to the same destination collide somewhere iff
    /// they share a switch with the same output. Here we verify the
    /// weaker but structural fact that a route's switch sequence is
    /// entirely determined by (src, dest).
    #[test]
    fn routes_are_deterministic() {
        let t = Topology::new(8, 2).unwrap();
        assert_eq!(t.route(5, 42), t.route(5, 42));
    }

    #[test]
    fn route_length_equals_stage_count() {
        let t = Topology::new(2, 4).unwrap();
        assert_eq!(t.route(0, 15).len(), 4);
    }

    #[test]
    fn conflicts_detected_between_shared_edges() {
        let t = Topology::new(8, 2).unwrap();
        // Same source or destination always conflicts.
        assert!(t.routes_conflict(0, 1, 0, 2));
        assert!(t.routes_conflict(1, 5, 2, 5));
        // Distinct final switches with distinct paths: no conflict.
        assert!(!t.routes_conflict(0, 0, 1, 9));
    }

    #[test]
    fn identity_permutation_is_admissible() {
        let t = Topology::new(8, 2).unwrap();
        let identity: Vec<usize> = (0..t.ports()).collect();
        assert!(t.permutation_admissible(&identity));
    }

    #[test]
    fn uniform_shifts_are_admissible() {
        // Omega networks pass every uniform shift p -> p + c (Lawrie):
        // the access pattern of shifted vector operands.
        let t = Topology::new(8, 2).unwrap();
        let n = t.ports();
        for c in [1usize, 5, 8, 17, 32] {
            let shift: Vec<usize> = (0..n).map(|p| (p + c) % n).collect();
            assert!(t.permutation_admissible(&shift), "shift by {c}");
        }
    }

    #[test]
    fn bit_reversal_is_not_admissible() {
        // The classic omega-network blocking permutation.
        let t = Topology::new(2, 4).unwrap(); // 16 ports, 4 bits
        let reverse: Vec<usize> = (0..16)
            .map(|p: usize| (0..4).fold(0, |acc, bit| acc | (((p >> bit) & 1) << (3 - bit))))
            .collect();
        assert!(!t.permutation_admissible(&reverse));
    }

    #[test]
    fn all_to_one_concentration_conflicts_pairwise() {
        let t = Topology::new(8, 2).unwrap();
        for a in 0..8 {
            for b in 0..8 {
                if a != b {
                    assert!(t.routes_conflict(a, 9, b, 9));
                }
            }
        }
    }

    #[test]
    fn route_edges_are_one_per_stage() {
        let t = Topology::new(8, 2).unwrap();
        let edges = t.route_edges(3, 42);
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].0, 0);
        assert_eq!(edges[1].0, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shuffle_rejects_out_of_range() {
        let _ = Topology::new(8, 2).unwrap().shuffle(64);
    }

    #[test]
    fn rejects_non_power_of_two_radix() {
        let err = Topology::new(6, 2).unwrap_err();
        assert!(matches!(err, CedarError::InvalidConfig { field, .. } if field == "net.radix"));
        assert!(err.to_string().contains("power of two"), "{err}");
    }

    #[test]
    fn rejects_trivial_radix() {
        assert!(Topology::new(0, 2).is_err());
        assert!(Topology::new(1, 2).is_err());
    }

    #[test]
    fn rejects_zero_stages() {
        let err = Topology::new(8, 0).unwrap_err();
        assert!(matches!(err, CedarError::InvalidConfig { field, .. } if field == "net.stages"));
    }

    #[test]
    fn rejects_port_count_overflow() {
        let err = Topology::new(8, 64).unwrap_err();
        assert!(err.to_string().contains("overflows"), "{err}");
    }
}
