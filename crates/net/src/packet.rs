//! Network packets and word-level flits.
//!
//! "Each network packet consists of one to four 64-bit words, the
//! first word containing routing and control information and the
//! memory address." Requests are one word (plus up to three data
//! words for writes); replies carry the returning data.

use std::fmt;

/// Unique identifier of a packet within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

/// What a packet is doing, which determines how the far-end port
/// responds to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Memory read request; the reply carries one data word.
    ReadRequest,
    /// Memory write; data travels with the request, no reply needed
    /// (the global memory system is weakly ordered and writes do not
    /// stall a CE).
    Write,
    /// Synchronization instruction (Test-And-Set / Test-And-Operate)
    /// executed by the memory module's synchronization processor; the
    /// reply carries the test outcome and old value.
    SyncOp,
    /// Data returning to a CE on the reverse network.
    Reply,
}

/// A packet: one to four 64-bit words moving through one network.
///
/// # Examples
///
/// ```
/// use cedar_net::packet::{Packet, PacketKind};
///
/// let p = Packet::request(3, 40, 1);
/// assert_eq!(p.kind, PacketKind::ReadRequest);
/// assert_eq!(p.words, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Identity, assigned by the traffic source.
    pub id: PacketId,
    /// Source network port.
    pub src: usize,
    /// Destination network port (the routing tag).
    pub dest: usize,
    /// Total length in 64-bit words, 1..=4.
    pub words: u8,
    /// Role of the packet.
    pub kind: PacketKind,
}

/// Maximum packet length in words, per the paper.
pub const MAX_PACKET_WORDS: u8 = 4;

impl Packet {
    /// Creates a packet, validating the length.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero or exceeds [`MAX_PACKET_WORDS`].
    #[must_use]
    pub fn new(id: PacketId, src: usize, dest: usize, words: u8, kind: PacketKind) -> Self {
        assert!(
            (1..=MAX_PACKET_WORDS).contains(&words),
            "packet length must be 1..=4 words, got {words}"
        );
        Packet {
            id,
            src,
            dest,
            words,
            kind,
        }
    }

    /// Convenience constructor for a single-word read request.
    /// `id` is the raw packet number.
    #[must_use]
    pub fn request(src: usize, dest: usize, id: u64) -> Self {
        Packet::new(PacketId(id), src, dest, 1, PacketKind::ReadRequest)
    }

    /// Convenience constructor for a write carrying `data_words` of
    /// payload (total length `1 + data_words`).
    ///
    /// # Panics
    ///
    /// Panics if the total length exceeds [`MAX_PACKET_WORDS`].
    #[must_use]
    pub fn write(src: usize, dest: usize, id: u64, data_words: u8) -> Self {
        Packet::new(PacketId(id), src, dest, 1 + data_words, PacketKind::Write)
    }

    /// The reply a memory port generates for this packet, if any:
    /// reads and sync ops answer with a packet headed back to `src`;
    /// writes are fire-and-forget.
    #[must_use]
    pub fn reply(&self) -> Option<Packet> {
        match self.kind {
            PacketKind::ReadRequest | PacketKind::SyncOp => Some(Packet {
                id: self.id,
                src: self.dest,
                dest: self.src,
                // One 64-bit word: the datum rides with its routing tag
                // on the 64-bit-plus-control-wide reverse data path.
                words: 1,
                kind: PacketKind::Reply,
            }),
            PacketKind::Write | PacketKind::Reply => None,
        }
    }
}

/// A single 64-bit word in flight: the flit unit of the word-level
/// simulation. Words of a packet travel contiguously (wormhole
/// integrity enforced by the switches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Word {
    /// The packet this word belongs to.
    pub packet: Packet,
    /// Position within the packet, 0 = header.
    pub index: u8,
}

impl Word {
    /// Whether this is the header (routing) word.
    #[must_use]
    pub fn is_head(&self) -> bool {
        self.index == 0
    }

    /// Whether this is the final word of its packet.
    #[must_use]
    pub fn is_tail(&self) -> bool {
        self.index + 1 == self.packet.words
    }

    /// Expands a packet into its constituent words, head first.
    pub fn of_packet(packet: Packet) -> impl Iterator<Item = Word> {
        (0..packet.words).map(move |index| Word { packet, index })
    }
}

impl cedar_snap::Snapshot for PacketId {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        w.put_u64(self.0);
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        Ok(PacketId(r.get_u64()?))
    }
}

impl cedar_snap::Snapshot for PacketKind {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        w.put_u8(match self {
            PacketKind::ReadRequest => 0,
            PacketKind::Write => 1,
            PacketKind::SyncOp => 2,
            PacketKind::Reply => 3,
        });
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        match r.get_u8()? {
            0 => Ok(PacketKind::ReadRequest),
            1 => Ok(PacketKind::Write),
            2 => Ok(PacketKind::SyncOp),
            3 => Ok(PacketKind::Reply),
            _ => Err(cedar_snap::SnapError::Invalid("packet kind tag")),
        }
    }
}

cedar_snap::snapshot_struct!(Packet {
    id,
    src,
    dest,
    words,
    kind,
});
cedar_snap::snapshot_struct!(Word { packet, index });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_is_single_word() {
        let p = Packet::request(0, 5, 9);
        assert_eq!(p.words, 1);
        assert_eq!(p.id, PacketId(9));
    }

    #[test]
    fn write_carries_data() {
        let p = Packet::write(1, 2, 0, 3);
        assert_eq!(p.words, 4);
        assert_eq!(p.kind, PacketKind::Write);
    }

    #[test]
    #[should_panic(expected = "1..=4 words")]
    fn oversized_packet_rejected() {
        let _ = Packet::write(0, 0, 0, 4);
    }

    #[test]
    #[should_panic(expected = "1..=4 words")]
    fn zero_length_packet_rejected() {
        let _ = Packet::new(PacketId(0), 0, 0, 0, PacketKind::ReadRequest);
    }

    #[test]
    fn read_reply_reverses_route() {
        let p = Packet::request(3, 40, 1);
        let r = p.reply().unwrap();
        assert_eq!(r.src, 40);
        assert_eq!(r.dest, 3);
        assert_eq!(r.words, 1, "one data word carrying its own tag");
        assert_eq!(r.kind, PacketKind::Reply);
        assert_eq!(r.id, p.id, "reply keeps the request id");
    }

    #[test]
    fn writes_and_replies_generate_no_reply() {
        assert!(Packet::write(0, 1, 0, 1).reply().is_none());
        let reply = Packet::request(0, 1, 0).reply().unwrap();
        assert!(reply.reply().is_none());
    }

    #[test]
    fn sync_op_replies() {
        let p = Packet::new(PacketId(7), 2, 9, 2, PacketKind::SyncOp);
        assert!(p.reply().is_some());
    }

    #[test]
    fn word_expansion_marks_head_and_tail() {
        let p = Packet::write(0, 1, 0, 2); // 3 words
        let words: Vec<Word> = Word::of_packet(p).collect();
        assert_eq!(words.len(), 3);
        assert!(words[0].is_head());
        assert!(!words[0].is_tail());
        assert!(!words[1].is_head());
        assert!(!words[1].is_tail());
        assert!(words[2].is_tail());
    }

    #[test]
    fn single_word_packet_is_head_and_tail() {
        let p = Packet::request(0, 1, 0);
        let w: Vec<Word> = Word::of_packet(p).collect();
        assert_eq!(w.len(), 1);
        assert!(w[0].is_head() && w[0].is_tail());
    }
}
