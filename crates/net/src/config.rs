//! Network configuration parameters.

use cedar_faults::CedarError;

/// Parameters of one unidirectional omega network.
///
/// The defaults in [`NetworkConfig::cedar`] are taken from the paper:
/// 8×8 crossbar switches, two-word queues on every input and output
/// port, and enough stages to span the machine's ports.
///
/// # Examples
///
/// ```
/// use cedar_net::config::NetworkConfig;
///
/// let cfg = NetworkConfig::cedar();
/// assert_eq!(cfg.radix, 8);
/// assert_eq!(cfg.stages, 2);
/// assert_eq!(cfg.ports(), 64);
/// assert_eq!(cfg.queue_words, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkConfig {
    /// Crossbar radix (ports per switch). Cedar: 8.
    pub radix: usize,
    /// Number of switch stages. Cedar: 2 (64 network positions for the
    /// 32 CEs and 32 memory-module ports).
    pub stages: usize,
    /// Capacity of each input and each output queue, in 64-bit words.
    /// Cedar: 2. The \[Turn93\] ablation deepens this.
    pub queue_words: usize,
    /// Network clock cycles per CE instruction cycle. Cedar's switch
    /// clock ran faster than the 170 ns CE cycle; 2 reproduces the
    /// paper's minimum latencies.
    pub net_cycles_per_ce_cycle: u64,
    /// Capacity in words of the buffer at each network *exit* port
    /// (the consumer-side input buffer). When it fills, the final
    /// switch stage backs up — this is how memory-module congestion
    /// propagates into the network and produces tree saturation.
    pub exit_fifo_words: usize,
}

impl NetworkConfig {
    /// The Cedar production configuration.
    #[must_use]
    pub fn cedar() -> Self {
        NetworkConfig {
            radix: 8,
            stages: 2,
            queue_words: 2,
            net_cycles_per_ce_cycle: 2,
            exit_fifo_words: 2,
        }
    }

    /// A Cedar-like network with deeper queues, for the \[Turn93\]
    /// ablation showing that the latency degradation of Table 2 is an
    /// implementation constraint, not inherent to omega networks.
    #[must_use]
    pub fn cedar_with_queue_words(queue_words: usize) -> Self {
        NetworkConfig {
            queue_words,
            ..NetworkConfig::cedar()
        }
    }

    /// Total network positions: `radix ^ stages`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cedar_net::config::NetworkConfig;
    /// assert_eq!(NetworkConfig::cedar().ports(), 64);
    /// ```
    #[must_use]
    pub fn ports(&self) -> usize {
        self.radix.pow(self.stages as u32)
    }

    /// Switches per stage: `ports / radix`.
    #[must_use]
    pub fn switches_per_stage(&self) -> usize {
        self.ports() / self.radix
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`CedarError::InvalidConfig`] naming the violated
    /// constraint if the radix is not a power of two ≥ 2, there are no
    /// stages, or a queue cannot hold at least one word.
    pub fn validate(&self) -> Result<(), CedarError> {
        if self.radix < 2 || !self.radix.is_power_of_two() {
            return Err(CedarError::invalid(
                "net.radix",
                format!("radix must be a power of two >= 2, got {}", self.radix),
            ));
        }
        if self.stages == 0 {
            return Err(CedarError::invalid(
                "net.stages",
                "network needs at least one stage",
            ));
        }
        if self.queue_words == 0 {
            return Err(CedarError::invalid(
                "net.queue_words",
                "queues must hold at least one word",
            ));
        }
        if self.net_cycles_per_ce_cycle == 0 {
            return Err(CedarError::invalid(
                "net.net_cycles_per_ce_cycle",
                "network clock ratio must be nonzero",
            ));
        }
        if self.exit_fifo_words == 0 {
            return Err(CedarError::invalid(
                "net.exit_fifo_words",
                "exit buffers must hold at least one word",
            ));
        }
        Ok(())
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::cedar()
    }
}

cedar_snap::snapshot_struct!(NetworkConfig {
    radix,
    stages,
    queue_words,
    net_cycles_per_ce_cycle,
    exit_fifo_words,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cedar_defaults_match_paper() {
        let cfg = NetworkConfig::cedar();
        assert_eq!(cfg.radix, 8, "8x8 crossbar switches");
        assert_eq!(cfg.queue_words, 2, "two word queue per port");
        assert_eq!(cfg.ports(), 64);
        assert_eq!(cfg.switches_per_stage(), 8);
        cfg.validate().unwrap();
    }

    #[test]
    fn ablation_config_only_changes_queues() {
        let deep = NetworkConfig::cedar_with_queue_words(16);
        assert_eq!(deep.queue_words, 16);
        assert_eq!(deep.radix, NetworkConfig::cedar().radix);
        deep.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut cfg = NetworkConfig::cedar();
        cfg.radix = 3;
        assert!(cfg.validate().is_err());

        let mut cfg = NetworkConfig::cedar();
        cfg.stages = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = NetworkConfig::cedar();
        cfg.queue_words = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = NetworkConfig::cedar();
        cfg.net_cycles_per_ce_cycle = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn default_is_cedar() {
        assert_eq!(NetworkConfig::default(), NetworkConfig::cedar());
    }
}
