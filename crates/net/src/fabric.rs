//! Round-trip fabric: forward network + memory-module servers +
//! reverse network.
//!
//! This is the measurement engine behind the paper's Table 2. Each
//! simulated CE runs a prefetch-unit traffic source that issues
//! single-word global-memory read requests in blocks (32-word
//! compiler-generated prefetches, or 256-word blocks for the RK
//! kernel), with a bounded number outstanding (512 for the PFU, 2 for
//! the plain lockup-free cache interface). The fabric records, for
//! every request, when its address entered the forward network and
//! when its datum returned on the reverse network — exactly the two
//! signals the hardware performance monitor tapped.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use cedar_faults::{CedarError, FaultPlan, NetDirection, RetryPolicy};
use cedar_obs::{CounterId, Obs};
use cedar_sim::rng::SplitMix64;
use cedar_sim::watchdog::Watchdog;

use crate::config::NetworkConfig;
use crate::network::OmegaNetwork;
use crate::packet::{Packet, PacketId, PacketKind, Word};

#[path = "specialized.rs"]
pub mod specialized;

use specialized::EngineKind;

/// Fabric-level configuration: the two networks plus the memory-module
/// service rate and the fixed processor-side path cost.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricConfig {
    /// Configuration shared by the forward and reverse networks.
    pub net: NetworkConfig,
    /// Network cycles a memory module is busy per request. The Cedar
    /// default of 2 (one CE cycle) yields the paper's ~1-cycle minimum
    /// interarrival time for pipelined prefetch streams.
    pub mem_service_net_cycles: u64,
    /// Number of interleaved memory modules, mapped onto network
    /// output positions `0..mem_modules`.
    pub mem_modules: usize,
    /// CE-cycle cost of the path between the prefetch unit and the
    /// network port, added once to every reported latency. With the
    /// default networks this calibrates the unloaded first-word
    /// latency to the paper's 8-cycle minimum.
    pub latency_offset_ce: f64,
    /// Capacity of each memory module's request input buffer. Small
    /// buffers (Cedar: 2) let module congestion back up into the
    /// forward network — the tree-saturation mechanism \[Turn93\]
    /// identifies as the implementation constraint behind Table 2.
    pub module_buffer_requests: usize,
}

impl FabricConfig {
    /// The Cedar production configuration.
    ///
    /// 32 double-word-interleaved modules each delivering one word per
    /// two CE cycles gives the machine's 768 MB/s aggregate global
    /// bandwidth (16 words per CE cycle, i.e. 24 MB/s per processor at
    /// 32 CEs) — the ratio that makes 32 active CEs oversubscribe the
    /// memory system by 2×, which is the mechanism behind Table 2's
    /// latency and interarrival growth.
    #[must_use]
    pub fn cedar() -> Self {
        FabricConfig {
            net: NetworkConfig::cedar(),
            mem_service_net_cycles: 4,
            mem_modules: 32,
            latency_offset_ce: 2.5,
            module_buffer_requests: 2,
        }
    }
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig::cedar()
    }
}

/// A prefetch-unit traffic pattern for one experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchTraffic {
    /// Words fetched per prefetch block (compiler default: 32; the RK
    /// kernel arms 256-word blocks).
    pub block_len: u32,
    /// Number of blocks each CE fetches.
    pub blocks: u32,
    /// Maximum requests outstanding per CE (PFU: up to 512; the plain
    /// cache interface allows only 2).
    pub window: u32,
    /// Idle CE cycles between blocks, modelling computation that is
    /// not overlapped with prefetching. Zero means back-to-back
    /// fetching.
    pub gap_ce_cycles: u64,
    /// How many blocks may be in flight at once. The prefetch buffer
    /// is invalidated when another prefetch starts, so at most one
    /// block is ever fetching on Cedar (1); the parameter exists for
    /// what-if studies of a double-buffered PFU.
    pub blocks_in_flight: u32,
    /// Global-memory *write* packets issued per read request, modelling
    /// store traffic that shares the forward network and the memory
    /// modules (writes are fire-and-forget: "Writes do not stall a
    /// CE"). A pure vector load writes nothing; the tridiagonal
    /// matvec writes its result vector back.
    pub writes_per_read: f64,
    /// Number of interleaved operand streams per block. A plain vector
    /// load reads one stream; the tridiagonal matvec interleaves its
    /// three diagonals and the input vector (4); conjugate gradient
    /// touches five. Requests round-robin across streams, each with
    /// its own random base address, which is what makes module
    /// collisions frequent even at low CE counts.
    pub streams: u32,
    /// How request addresses are generated.
    pub pattern: AddressPattern,
}

/// Address-generation pattern of a traffic source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AddressPattern {
    /// Module-interleaved strided streams (vector operands).
    Strided,
    /// A fraction of the requests target one module — a
    /// synchronization hot spot, the access pattern the per-module
    /// Test-And-Operate processors exist to keep cheap (one network
    /// transaction per sync instead of a read-modify-write storm).
    HotSpot {
        /// The hot module.
        module: usize,
        /// Fraction of requests aimed at it, in `[0, 1]`.
        fraction: f64,
    },
}

impl PrefetchTraffic {
    /// Compiler-generated 32-word prefetch stream: one block in
    /// flight, issued immediately before each vector instruction, no
    /// store traffic, `gap` idle cycles of non-overlapped computation
    /// between blocks.
    #[must_use]
    pub fn compiler_default(blocks: u32) -> Self {
        PrefetchTraffic {
            block_len: 32,
            blocks,
            window: 512,
            gap_ce_cycles: 6,
            blocks_in_flight: 1,
            writes_per_read: 0.0,
            streams: 1,
            pattern: AddressPattern::Strided,
        }
    }

    /// The RK kernel's hand-armed pattern: 256-word blocks fetched
    /// back-to-back (computation fully overlapped, so no idle gap).
    /// Reads are dominated by the rank-update's U operand; the store
    /// stream writing A back is roughly one write per 65 reads.
    #[must_use]
    pub fn rk_aggressive(blocks: u32) -> Self {
        PrefetchTraffic {
            block_len: 256,
            blocks,
            window: 512,
            gap_ce_cycles: 0,
            blocks_in_flight: 2,
            writes_per_read: 1.0 / 65.0,
            streams: 2,
            pattern: AddressPattern::Strided,
        }
    }

    /// The VF kernel (vector load): a single operand stream of
    /// compiler-generated 32-word prefetches with only the re-arm
    /// overhead between blocks — "dominated by memory accesses but
    /// degrades less quickly due to the smaller prefetch block".
    #[must_use]
    pub fn vector_load(blocks: u32) -> Self {
        PrefetchTraffic::compiler_default(blocks)
    }

    /// The TM kernel (tridiagonal matrix-vector multiply): four
    /// interleaved read streams (three diagonals plus the input
    /// vector), result writes between blocks, and register-register
    /// vector operations between loads that "reduce the demand on the
    /// memory system".
    #[must_use]
    pub fn tridiagonal_matvec(blocks: u32) -> Self {
        PrefetchTraffic {
            block_len: 32,
            blocks,
            window: 512,
            gap_ce_cycles: 24,
            blocks_in_flight: 1,
            writes_per_read: 0.25,
            streams: 4,
            pattern: AddressPattern::Strided,
        }
    }

    /// The CG kernel (conjugate gradient iteration): five interleaved
    /// streams (matrix diagonals and vectors) with register-register
    /// reduction work between loads.
    #[must_use]
    pub fn conjugate_gradient(blocks: u32) -> Self {
        PrefetchTraffic {
            block_len: 32,
            blocks,
            window: 512,
            gap_ce_cycles: 20,
            blocks_in_flight: 1,
            writes_per_read: 0.2,
            streams: 5,
            pattern: AddressPattern::Strided,
        }
    }

    /// A synchronization hot-spot pattern: `fraction` of the requests
    /// hammer module 0 (a shared counter or lock cell), the rest
    /// stream normally.
    #[must_use]
    pub fn sync_hotspot(blocks: u32, fraction: f64) -> Self {
        PrefetchTraffic {
            block_len: 32,
            blocks,
            window: 512,
            gap_ce_cycles: 6,
            blocks_in_flight: 1,
            writes_per_read: 0.0,
            streams: 1,
            pattern: AddressPattern::HotSpot {
                module: 0,
                fraction,
            },
        }
    }
}

/// Span names of a request's life through the fabric, in path order.
/// A traced request opens [`SPAN_REQUEST`] at issue and then walks
/// exactly one of these inner stages at a time, so its Perfetto track
/// reads issue → forward net → module queue → module service → return
/// net.
pub const SPAN_REQUEST: &str = "request";
/// Address packet traversing the forward omega network.
pub const SPAN_FORWARD_NET: &str = "forward_net";
/// Request queued in the memory module's input buffer (bank conflict:
/// time here is time lost to another request occupying the bank).
pub const SPAN_MEM_QUEUE: &str = "mem_queue";
/// Memory module busy serving the request.
pub const SPAN_MEM_SERVICE: &str = "mem_service";
/// Reply traversing the reverse omega network back to the CE.
pub const SPAN_RETURN_NET: &str = "return_net";

/// Interned metric handles for the fabric's own counters (the two
/// networks intern theirs in [`OmegaNetwork::set_obs`]).
#[derive(Debug)]
struct FabricMetricIds {
    /// Requests served, per module.
    served: Vec<CounterId>,
    /// Cycles a module was busy while requests waited in its buffer —
    /// the bank-conflict stall signal.
    conflict_stall_cycles: CounterId,
    /// Cycles a finished reply could not enter the reverse network.
    reply_inject_blocked: CounterId,
    reads_issued: CounterId,
    writes_issued: CounterId,
    retries: CounterId,
    abandoned: CounterId,
    /// Runs that wanted the specialized engine but fell back to
    /// generic, so silent de-specialization can't mask a regression.
    engine_fallback: CounterId,
}

/// Telemetry state attached to the fabric by [`RoundTripFabric::set_obs`].
#[derive(Debug)]
struct FabricObs {
    obs: Obs,
    /// Cached `obs.tracing_enabled()`, checked in hot paths.
    tracing: bool,
    metrics: Option<FabricMetricIds>,
    /// Currently open inner stage per in-flight traced request id.
    /// Transitions fire only when the open stage matches the expected
    /// predecessor, which keeps the span stream balanced even when
    /// faults duplicate or reorder a packet's milestones.
    open: BTreeMap<u64, &'static str>,
    /// Last span reported to the watchdog, to avoid re-formatting.
    last_noted: Option<(&'static str, u64)>,
}

/// One request's life cycle, in network cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// Which block the request belongs to.
    pub block: u32,
    /// Position within the block (0 = first word).
    pub index_in_block: u32,
    /// Network cycle the address entered the forward network.
    pub issue: u64,
    /// Network cycle the datum was consumed at the CE port.
    pub ret: u64,
}

/// Per-module receive/serve state.
#[derive(Debug, Default)]
struct MemModule {
    /// Requests whose final word has arrived, waiting for service.
    pending: VecDeque<Packet>,
    /// Cycle the module becomes free.
    busy_until: u64,
    /// Reply ready to inject into the reverse network (retried until
    /// the injection FIFO takes it).
    outgoing: Option<Packet>,
    served: u64,
}

/// Per-CE traffic-source state.
#[derive(Debug)]
struct CeSource {
    port: usize,
    traffic: PrefetchTraffic,
    next_block: u32,
    next_index: u32,
    outstanding: u32,
    /// CE cycle before which no new block may start (gap modelling).
    blocked_until_ce: u64,
    records: Vec<RequestRecord>,
    /// Issue cycle per in-flight request id (dense local index).
    issued_at: Vec<u64>,
    /// Words returned so far for each block.
    returned_per_block: Vec<u32>,
    /// Number of fully returned blocks.
    completed_blocks: u32,
    /// Starting module of each stream of the in-progress block,
    /// randomized like the base addresses of real vector operands.
    stream_bases: Vec<usize>,
    /// Accumulated store obligation; each whole unit issues one write
    /// packet before the next read.
    write_debt: f64,
    /// Writes issued so far (distinct id space and address offset).
    writes_issued: u64,
    rng: SplitMix64,
    done_issuing: bool,
}

impl CeSource {
    fn new(port: usize, traffic: PrefetchTraffic) -> Self {
        CeSource {
            port,
            traffic,
            next_block: 0,
            next_index: 0,
            outstanding: 0,
            blocked_until_ce: 0,
            records: Vec::new(),
            issued_at: Vec::new(),
            returned_per_block: vec![0; traffic.blocks as usize],
            completed_blocks: 0,
            stream_bases: vec![0; traffic.streams.max(1) as usize],
            write_debt: 0.0,
            writes_issued: 0,
            rng: SplitMix64::new(0xCEDA_0000 + port as u64),
            done_issuing: traffic.blocks == 0 || traffic.block_len == 0,
        }
    }

    fn local_request_count(&self) -> u64 {
        u64::from(self.traffic.blocks) * u64::from(self.traffic.block_len)
    }
}

/// The assembled round-trip fabric.
///
/// # Examples
///
/// ```
/// use cedar_net::fabric::{FabricConfig, PrefetchTraffic, RoundTripFabric};
///
/// let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
/// let report = fabric.run_prefetch_experiment(1, PrefetchTraffic::compiler_default(4), 100_000);
/// assert!(report.completed());
/// assert!(report.mean_first_word_latency_ce() >= 8.0 - 1e-9);
/// ```
#[derive(Debug)]
pub struct RoundTripFabric {
    cfg: FabricConfig,
    forward: OmegaNetwork,
    reverse: OmegaNetwork,
    modules: Vec<MemModule>,
    /// Partially received multi-word request packets per module port.
    partial: Vec<Option<(Packet, u8)>>,
    now: u64,
    /// Attached fault schedule; `None` (the default, or a benign plan)
    /// leaves every code path bit-identical to the healthy fabric.
    faults: Option<FaultPlan>,
    /// Timeout/backoff schedule for request recovery under faults.
    retry: RetryPolicy,
    /// Words and requests destroyed at fail-stopped modules.
    module_discards: u64,
    /// Whether the experiment loop may skip provably idle stretches
    /// (on by default; reports are bit-identical either way).
    fast_forward: bool,
    /// Net cycles elided by the idle fast-forward.
    ff_cycles: u64,
    /// Attached telemetry; `None` (the default, or a disabled handle)
    /// leaves every code path bit-identical to the un-instrumented
    /// fabric.
    obs: Option<FabricObs>,
    /// Execution-engine selection (from `CEDAR_ENGINE` at
    /// construction, or [`set_engine`](Self::set_engine)). Not part of
    /// the simulated state: engines are bit-identical, so none of the
    /// engine fields below are snapshotted.
    engine: EngineKind,
    /// Which engine the most recent experiment drive actually used.
    last_run_engine: Option<&'static str>,
    /// Why the most recent drive fell back to generic, if it did.
    last_fallback: Option<&'static str>,
    /// Whether the explicit-specialized fallback warning has fired.
    fallback_logged: bool,
}

/// A request awaiting its reply under fault injection, for the
/// timeout-and-retry machinery.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    packet: Packet,
    /// Times this request has entered the forward network.
    attempts: u32,
}

/// Book-keeping for request recovery, allocated only when a fault
/// schedule is attached so the healthy path stays untouched.
#[derive(Debug, Default)]
struct RecoveryState {
    /// Unresolved read requests by packet id. Presence here is the
    /// dedup authority: a reply whose id is absent (already completed,
    /// or abandoned) is discarded.
    pending: BTreeMap<u64, InFlight>,
    /// Min-heap of `(due cycle, packet id)` retry timers.
    timers: BinaryHeap<Reverse<(u64, u64)>>,
    /// Requests re-injected after a timeout.
    retries: u64,
    /// Requests abandoned after the retry budget ran out.
    failed_requests: u64,
}

/// An in-progress prefetch experiment: the per-CE traffic sources and
/// recovery book-keeping that used to live as loop locals inside
/// [`RoundTripFabric::run_prefetch_experiment`], extracted so a run
/// can be paused between cycles, serialized together with its fabric
/// by [`RoundTripFabric::checkpoint_experiment`], and resumed
/// bit-identically in another process.
#[derive(Debug)]
pub struct FabricExperiment {
    sources: Vec<CeSource>,
    /// `Some` iff a fault schedule was attached when the run began.
    recovery: Option<RecoveryState>,
    completed_requests: u64,
    total_expected: u64,
    /// Cached `cfg.net.net_cycles_per_ce_cycle`.
    ratio: u64,
    max_net_cycles: u64,
}

impl FabricExperiment {
    /// Requests resolved so far: completed plus abandoned.
    #[must_use]
    pub fn resolved_requests(&self) -> u64 {
        self.completed_requests + self.recovery.as_ref().map_or(0, |r| r.failed_requests)
    }

    /// Whether any request is currently awaiting its reply under the
    /// retry machinery — i.e. the experiment is mid-recovery.
    #[must_use]
    pub fn retry_in_flight(&self) -> bool {
        self.recovery
            .as_ref()
            .is_some_and(|r| !r.pending.is_empty())
    }
}

impl RoundTripFabric {
    /// Builds an idle fabric.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is rejected by
    /// [`try_new`](Self::try_new).
    #[must_use]
    pub fn new(cfg: FabricConfig) -> Self {
        RoundTripFabric::try_new(cfg).expect("invalid fabric configuration")
    }

    /// Builds an idle fabric, validating the configuration.
    ///
    /// # Errors
    ///
    /// Rejects an invalid network configuration and a `mem_modules`
    /// count of zero or beyond the network port count.
    pub fn try_new(cfg: FabricConfig) -> Result<Self, CedarError> {
        cfg.net.validate()?;
        let ports = cfg.net.ports();
        if cfg.mem_modules == 0 || cfg.mem_modules > ports {
            return Err(CedarError::invalid(
                "fabric.mem_modules",
                format!(
                    "mem_modules must be in 1..={ports}, got {}",
                    cfg.mem_modules
                ),
            ));
        }
        if cfg.module_buffer_requests == 0 {
            return Err(CedarError::invalid(
                "fabric.module_buffer_requests",
                "modules must buffer at least one request",
            ));
        }
        let mut reverse_net = cfg.net;
        // The reverse network delivers into 512-word prefetch buffers,
        // which never back it up.
        reverse_net.exit_fifo_words = 512;
        Ok(RoundTripFabric {
            forward: OmegaNetwork::try_new(cfg.net)?,
            reverse: OmegaNetwork::try_new(reverse_net)?,
            modules: (0..cfg.mem_modules).map(|_| MemModule::default()).collect(),
            partial: vec![None; cfg.mem_modules],
            now: 0,
            cfg,
            faults: None,
            retry: RetryPolicy::fabric(),
            module_discards: 0,
            fast_forward: true,
            ff_cycles: 0,
            obs: None,
            engine: EngineKind::from_env(),
            last_run_engine: None,
            last_fallback: None,
            fallback_logged: false,
        })
    }

    /// Overrides the execution-engine selection (the default comes
    /// from the `CEDAR_ENGINE` environment variable at construction).
    /// Engines are bit-identical; this only changes how fast the
    /// answer arrives.
    pub fn set_engine(&mut self, engine: EngineKind) {
        self.engine = engine;
    }

    /// The current execution-engine selection.
    #[must_use]
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Which engine the most recent experiment drive used
    /// (`"generic"` / `"specialized"`), or `None` before any drive.
    #[must_use]
    pub fn last_run_engine(&self) -> Option<&'static str> {
        self.last_run_engine
    }

    /// Why the most recent drive fell back to the generic engine, or
    /// `None` if it did not want or did not miss the specialized one.
    #[must_use]
    pub fn last_fallback(&self) -> Option<&'static str> {
        self.last_fallback
    }

    /// Attaches a telemetry handle to the fabric and both of its
    /// networks (labelled `fwd` / `rev`). With metrics live, the
    /// fabric interns per-module served counters
    /// (`fabric.module<m>.served`), the bank-conflict stall counter
    /// (`fabric.module_conflict_stall_cycles`) and issue/retry
    /// counters; with tracing live, every read request is followed
    /// through `request` / `forward_net` / `mem_queue` /
    /// `mem_service` / `return_net` spans with fault events
    /// interleaved on the same track. A disabled handle detaches.
    pub fn set_obs(&mut self, obs: &Obs) {
        self.forward.set_obs(obs, "fwd");
        self.reverse.set_obs(obs, "rev");
        if !obs.is_enabled() {
            self.obs = None;
            return;
        }
        let metrics = obs.metrics_enabled().then(|| FabricMetricIds {
            served: (0..self.cfg.mem_modules)
                .map(|m| {
                    obs.counter(&format!("fabric.module{m:02}.served"))
                        .expect("metrics enabled")
                })
                .collect(),
            conflict_stall_cycles: obs
                .counter("fabric.module_conflict_stall_cycles")
                .expect("metrics enabled"),
            reply_inject_blocked: obs
                .counter("fabric.reply_inject_blocked")
                .expect("metrics enabled"),
            reads_issued: obs.counter("fabric.reads_issued").expect("metrics enabled"),
            writes_issued: obs
                .counter("fabric.writes_issued")
                .expect("metrics enabled"),
            retries: obs.counter("fabric.retries").expect("metrics enabled"),
            abandoned: obs
                .counter("fabric.requests_abandoned")
                .expect("metrics enabled"),
            engine_fallback: obs.counter("engine.fallback").expect("metrics enabled"),
        });
        self.obs = Some(FabricObs {
            tracing: obs.tracing_enabled(),
            metrics,
            open: BTreeMap::new(),
            last_noted: None,
            obs: obs.clone(),
        });
    }

    /// Opens the `request` + `forward_net` spans for a newly issued
    /// read.
    fn trace_issue(&mut self, id: u64) {
        let now = self.now;
        let Some(fobs) = self.obs.as_mut() else {
            return;
        };
        if !fobs.tracing {
            return;
        }
        let pid = id >> 40;
        fobs.obs.span_begin(pid, id, SPAN_REQUEST, now);
        fobs.obs.span_begin(pid, id, SPAN_FORWARD_NET, now);
        fobs.open.insert(id, SPAN_FORWARD_NET);
    }

    /// Advances a traced request from stage `from` to stage `to`. A
    /// no-op unless `from` is the currently open stage — duplicate
    /// milestones from fault-path packet copies are thereby ignored
    /// and the stream stays balanced.
    fn trace_transition(&mut self, id: u64, from: &'static str, to: &'static str) {
        let now = self.now;
        let Some(fobs) = self.obs.as_mut() else {
            return;
        };
        if !fobs.tracing || fobs.open.get(&id) != Some(&from) {
            return;
        }
        let pid = id >> 40;
        fobs.obs.span_end(pid, id, from, now);
        fobs.obs.span_begin(pid, id, to, now);
        fobs.open.insert(id, to);
    }

    /// Closes a traced request's open stage and its outer span,
    /// optionally recording a final instant (`"abandoned"`).
    fn trace_close(&mut self, id: u64, marker: Option<(&'static str, u64)>) {
        let now = self.now;
        let Some(fobs) = self.obs.as_mut() else {
            return;
        };
        let Some(stage) = fobs.open.remove(&id) else {
            return;
        };
        let pid = id >> 40;
        if let Some((name, value)) = marker {
            fobs.obs
                .span_instant(pid, id, name, now, Some(("attempt", value)));
        }
        fobs.obs.span_end(pid, id, stage, now);
        fobs.obs.span_end(pid, id, SPAN_REQUEST, now);
    }

    /// Marks a retry on the request's track and re-enters the
    /// `forward_net` stage (whatever stage the lost copy last reached
    /// is closed first, so the track shows where the original died).
    fn trace_retry(&mut self, id: u64, attempt: u64) {
        let now = self.now;
        let Some(fobs) = self.obs.as_mut() else {
            return;
        };
        if !fobs.tracing {
            return;
        }
        let pid = id >> 40;
        fobs.obs
            .span_instant(pid, id, "retry", now, Some(("attempt", attempt)));
        if let Some(stage) = fobs.open.get(&id).copied() {
            fobs.obs.span_end(pid, id, stage, now);
        }
        fobs.obs.span_begin(pid, id, SPAN_FORWARD_NET, now);
        fobs.open.insert(id, SPAN_FORWARD_NET);
    }

    /// Closes every span still open (in-flight requests at the end of
    /// a run, or everything when a watchdog aborts mid-flight), so the
    /// exported stream is always balanced.
    fn trace_close_dangling(&mut self) {
        let now = self.now;
        let Some(fobs) = self.obs.as_mut() else {
            return;
        };
        for (id, stage) in std::mem::take(&mut fobs.open) {
            let pid = id >> 40;
            fobs.obs.span_end(pid, id, stage, now);
            fobs.obs.span_end(pid, id, SPAN_REQUEST, now);
        }
    }

    /// Feeds the most recently opened span to the watchdog so a
    /// `Stalled` diagnostic names the stage where progress died, not
    /// just the experiment label. Formats only when the span changed.
    fn note_span_to_watchdog(&mut self, dog: &mut Watchdog) {
        let Some(fobs) = self.obs.as_mut() else {
            return;
        };
        let current = fobs.obs.last_span();
        if let Some((name, tid)) = current {
            if current != fobs.last_noted {
                dog.note_span(format!("{name} (packet {tid})"));
                fobs.last_noted = current;
            }
        }
    }

    /// Adds `n` to a fabric metric counter, if metrics are live.
    fn metric_add(&mut self, pick: impl Fn(&FabricMetricIds) -> CounterId, n: u64) {
        if let Some(fobs) = &self.obs {
            if let Some(ids) = &fobs.metrics {
                fobs.obs.add(pick(ids), n);
            }
        }
    }

    /// Attaches a fault schedule to both networks and the memory
    /// modules, plus the retry policy that recovers lost requests.
    /// A benign plan is discarded: the fabric then behaves
    /// bit-identically to one with no plan attached.
    pub fn attach_faults(&mut self, plan: FaultPlan, retry: RetryPolicy) {
        self.forward
            .attach_faults(NetDirection::Forward, plan.clone());
        self.reverse
            .attach_faults(NetDirection::Reverse, plan.clone());
        self.faults = if plan.is_benign() { None } else { Some(plan) };
        self.retry = retry;
    }

    /// The attached fault schedule, if any.
    #[must_use]
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The fabric configuration.
    #[must_use]
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Like [`run_prefetch_experiment`], but posts every first-word
    /// latency and interarrival gap (in CE cycles) to the given
    /// performance monitor under the signals
    /// `"prefetch.first_word_latency"` and `"prefetch.interarrival"` —
    /// the software face of attaching the histogrammers to the PFU's
    /// network signals, as §2's monitoring hardware did.
    ///
    /// [`run_prefetch_experiment`]: Self::run_prefetch_experiment
    pub fn run_monitored_experiment(
        &mut self,
        n_ces: usize,
        traffic: PrefetchTraffic,
        max_net_cycles: u64,
        monitor: &mut cedar_sim::monitor::PerformanceMonitor,
    ) -> FabricReport {
        let latency_sig = monitor.signal("prefetch.first_word_latency");
        let inter_sig = monitor.signal("prefetch.interarrival");
        let report = self.run_prefetch_experiment(n_ces, traffic, max_net_cycles);
        let ratio = report.net_cycles_per_ce_cycle as f64;
        for records in &report.per_ce {
            let mut by_block: std::collections::BTreeMap<u32, Vec<&RequestRecord>> =
                std::collections::BTreeMap::new();
            for r in records {
                by_block.entry(r.block).or_default().push(r);
            }
            for rs in by_block.values() {
                for r in rs.iter().filter(|r| r.index_in_block == 0) {
                    let lat = (r.ret - r.issue) as f64 / ratio + report.latency_offset_ce;
                    monitor.post(
                        latency_sig,
                        cedar_sim::time::Cycle::new(r.ret),
                        lat.round() as u32,
                    );
                }
                let mut rets: Vec<u64> = rs.iter().map(|r| r.ret).collect();
                rets.sort_unstable();
                for w in rets.windows(2) {
                    let gap = (w[1] - w[0]) as f64 / ratio;
                    monitor.post(
                        inter_sig,
                        cedar_sim::time::Cycle::new(w[1]),
                        gap.round() as u32,
                    );
                }
            }
        }
        report
    }

    /// Runs `n_ces` identical prefetch sources to completion (or until
    /// `max_net_cycles`), returning the full request-level report.
    ///
    /// CEs occupy network ports `0..n_ces`; block `b` of CE `c` starts
    /// at module `(c * 17 + b * block_len) % mem_modules` and walks
    /// module-interleaved addresses word by word, the access pattern
    /// of a stride-1 vector fetch from double-word-interleaved global
    /// memory.
    ///
    /// # Panics
    ///
    /// Panics if `n_ces` exceeds the network port count.
    pub fn run_prefetch_experiment(
        &mut self,
        n_ces: usize,
        traffic: PrefetchTraffic,
        max_net_cycles: u64,
    ) -> FabricReport {
        self.run_experiment_inner(n_ces, traffic, max_net_cycles, None)
            .expect("only a watchdog can abort an experiment")
    }

    /// Like [`run_prefetch_experiment`], but guarded by a watchdog:
    /// if the count of resolved requests stops advancing for the
    /// watchdog's cycle budget — a deadlocked or livelocked degraded
    /// machine — the run aborts with a [`CedarError::Stalled`]
    /// diagnostic instead of burning the full cycle budget.
    ///
    /// # Errors
    ///
    /// Returns [`CedarError::Stalled`] when the watchdog trips.
    ///
    /// [`run_prefetch_experiment`]: Self::run_prefetch_experiment
    pub fn run_watched_experiment(
        &mut self,
        n_ces: usize,
        traffic: PrefetchTraffic,
        max_net_cycles: u64,
        watchdog: &mut Watchdog,
    ) -> Result<FabricReport, CedarError> {
        self.run_experiment_inner(n_ces, traffic, max_net_cycles, Some(watchdog))
    }

    /// Enables or disables the idle fast-forward (on by default).
    ///
    /// The skip is an optimization, not a model change: reports are
    /// bit-identical with it on or off. The switch exists so the
    /// equivalence can be *tested* rather than trusted
    /// (`fast_forward_is_invisible` below) and so a bisection of any
    /// future divergence can rule the skip in or out in one run.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Net cycles elided by the idle fast-forward since construction.
    #[must_use]
    pub fn fast_forwarded_cycles(&self) -> u64 {
        self.ff_cycles
    }

    /// Jumps the clocks over a provably dead stretch: when no word is
    /// buffered in either network, no module holds queued, in-service
    /// or blocked-outgoing work, no partially received packet exists
    /// and no request awaits recovery, the only possible next event is
    /// a source issuing on a CE boundary it is not gap-blocked for.
    /// Every cycle before the earliest such boundary is a pure clock
    /// tick (idle switches mutate nothing, not even arbitration
    /// pointers), so the simulation lands on the same state serial
    /// stepping would reach — just without burning a loop iteration
    /// per empty cycle. Gap-heavy traffic (`gap_ce_cycles` of
    /// non-overlapped computation between blocks) is where this pays.
    ///
    /// `horizon` caps the jump at the cycle a cycle-by-cycle run's
    /// watchdog would have tripped, so stall reports keep identical
    /// timestamps.
    fn idle_fast_forward(
        &mut self,
        sources: &[CeSource],
        recovery: Option<&RecoveryState>,
        ratio: u64,
        max_net_cycles: u64,
        horizon: Option<u64>,
    ) {
        if recovery.is_some_and(|rec| !rec.pending.is_empty()) {
            return;
        }
        if !self.forward.is_idle() || !self.reverse.is_idle() {
            return;
        }
        if self
            .modules
            .iter()
            .any(|m| !m.pending.is_empty() || m.outgoing.is_some())
        {
            return;
        }
        if self.partial.iter().any(Option::is_some) {
            return;
        }
        let next_boundary = (self.now / ratio + 1) * ratio;
        let target = sources
            .iter()
            .filter(|s| !s.done_issuing)
            .map(|s| next_boundary.max(s.blocked_until_ce * ratio))
            .min()
            .unwrap_or(max_net_cycles)
            .min(max_net_cycles)
            .min(horizon.unwrap_or(u64::MAX));
        // The loop is about to simulate cycle `now + 1`; stop one
        // short so the first cycle anything can happen in runs live.
        if target <= self.now + 1 {
            return;
        }
        let skipped = target - 1 - self.now;
        self.now += skipped;
        self.forward.skip_idle_cycles(skipped);
        self.reverse.skip_idle_cycles(skipped);
        self.ff_cycles += skipped;
    }

    /// Starts a prefetch experiment without running it. The returned
    /// [`FabricExperiment`] plus this fabric hold the complete run
    /// state: drive it with [`step_experiment`](Self::step_experiment)
    /// while [`experiment_running`](Self::experiment_running) and close
    /// with [`finish_experiment`](Self::finish_experiment) —
    /// [`run_prefetch_experiment`](Self::run_prefetch_experiment) is
    /// exactly that loop.
    ///
    /// # Panics
    ///
    /// Panics if `n_ces` exceeds the network port count.
    #[must_use]
    pub fn begin_experiment(
        &mut self,
        n_ces: usize,
        traffic: PrefetchTraffic,
        max_net_cycles: u64,
    ) -> FabricExperiment {
        let ports = self.cfg.net.ports();
        assert!(n_ces <= ports, "n_ces must be <= {ports}");
        let sources: Vec<CeSource> = (0..n_ces).map(|c| CeSource::new(c, traffic)).collect();
        FabricExperiment {
            recovery: self.faults.as_ref().map(|_| RecoveryState::default()),
            completed_requests: 0,
            total_expected: sources.iter().map(CeSource::local_request_count).sum(),
            ratio: self.cfg.net.net_cycles_per_ce_cycle,
            max_net_cycles,
            sources,
        }
    }

    /// Whether the experiment still has unresolved requests and cycle
    /// budget left to simulate.
    #[must_use]
    pub fn experiment_running(&self, exp: &FabricExperiment) -> bool {
        exp.resolved_requests() < exp.total_expected && self.now < exp.max_net_cycles
    }

    /// Advances the experiment by one network cycle (or, when the
    /// fabric is provably idle, fast-forwards to the next cycle where
    /// anything can happen) — one iteration of
    /// [`run_prefetch_experiment`](Self::run_prefetch_experiment)'s
    /// loop, verbatim, so stepping externally is bit-identical to the
    /// packaged entry points.
    ///
    /// # Errors
    ///
    /// Returns [`CedarError::Stalled`] when the watchdog trips.
    pub fn step_experiment(
        &mut self,
        exp: &mut FabricExperiment,
        watchdog: Option<&mut Watchdog>,
    ) -> Result<(), CedarError> {
        if self.fast_forward && self.obs.is_none() {
            let horizon = watchdog
                .as_deref()
                .map(|dog| dog.progress_cycle() + dog.budget() + 1);
            self.idle_fast_forward(
                &exp.sources,
                exp.recovery.as_ref(),
                exp.ratio,
                exp.max_net_cycles,
                horizon,
            );
        }
        self.now += 1;
        let ce_boundary = self.now.is_multiple_of(exp.ratio);
        let ce_now = self.now / exp.ratio;

        self.forward.step();
        self.reverse.step();
        self.service_modules();

        exp.completed_requests += self.eject_replies(&mut exp.sources, exp.recovery.as_mut());
        // The fabric consumes exit words itself and never reads
        // the networks' completion logs; clear them each cycle so
        // they stay a few entries long instead of growing by one
        // per packet for the whole run.
        self.forward.clear_delivered();
        self.reverse.clear_delivered();
        if let Some(rec) = exp.recovery.as_mut() {
            self.fire_retries(rec, &mut exp.sources);
        }
        if ce_boundary {
            self.issue_requests(&mut exp.sources, ce_now, exp.recovery.as_mut());
        }
        if let Some(dog) = watchdog {
            let resolved = exp.resolved_requests();
            if self.obs.is_some() {
                self.note_span_to_watchdog(dog);
            }
            if let Err(report) = dog.observe(self.now, resolved) {
                // Balance the trace before aborting so the export
                // of a stalled run still loads.
                self.trace_close_dangling();
                return Err(report.into());
            }
        }
        Ok(())
    }

    /// Closes an experiment and assembles its report.
    #[must_use]
    pub fn finish_experiment(&mut self, exp: FabricExperiment) -> FabricReport {
        self.trace_close_dangling();
        let rec = exp.recovery.unwrap_or_default();
        FabricReport {
            per_ce: exp.sources.into_iter().map(|s| s.records).collect(),
            total_net_cycles: self.now,
            net_cycles_per_ce_cycle: exp.ratio,
            latency_offset_ce: self.cfg.latency_offset_ce,
            expected_requests: exp.total_expected,
            completed_requests: exp.completed_requests,
            retries: rec.retries,
            failed_requests: rec.failed_requests,
            words_dropped: self.forward.words_dropped() + self.reverse.words_dropped(),
            module_discards: self.module_discards,
        }
    }

    /// Drives an experiment until it stops running (or `stop_at` net
    /// cycles is reached), on whichever engine the fabric's
    /// [`EngineKind`] selection and the eligibility rules pick. Both
    /// engines are bit-identical: the specialized path replicates the
    /// generic state machine state-for-state, so a checkpoint taken
    /// after this call does not reveal which engine ran.
    ///
    /// # Errors
    ///
    /// Returns [`CedarError::Stalled`] when the watchdog trips.
    pub fn drive_experiment(
        &mut self,
        exp: &mut FabricExperiment,
        mut watchdog: Option<&mut Watchdog>,
        stop_at: Option<u64>,
    ) -> Result<(), CedarError> {
        if self.engine != EngineKind::Generic {
            match self.specialization_blocker(exp) {
                None => {
                    self.last_run_engine = Some("specialized");
                    self.last_fallback = None;
                    return self.drive_specialized(exp, watchdog, stop_at);
                }
                Some(reason) => self.note_fallback(reason),
            }
        } else {
            self.last_run_engine = Some("generic");
            self.last_fallback = None;
        }
        while self.experiment_running(exp) && stop_at.is_none_or(|c| self.now < c) {
            self.step_experiment(exp, watchdog.as_deref_mut())?;
        }
        Ok(())
    }

    /// Records a fall-back to the generic engine: counter, diagnostic
    /// state, and — when the user explicitly demanded
    /// `CEDAR_ENGINE=specialized` — one log line naming the reason.
    fn note_fallback(&mut self, reason: &'static str) {
        self.last_run_engine = Some("generic");
        self.last_fallback = Some(reason);
        self.metric_add(|ids| ids.engine_fallback, 1);
        if self.engine == EngineKind::Specialized && !self.fallback_logged {
            self.fallback_logged = true;
            eprintln!(
                "cedar-net: CEDAR_ENGINE=specialized fell back to the generic engine: {reason}"
            );
        }
    }

    fn run_experiment_inner(
        &mut self,
        n_ces: usize,
        traffic: PrefetchTraffic,
        max_net_cycles: u64,
        watchdog: Option<&mut Watchdog>,
    ) -> Result<FabricReport, CedarError> {
        let mut exp = self.begin_experiment(n_ces, traffic, max_net_cycles);
        self.drive_experiment(&mut exp, watchdog, None)?;
        Ok(self.finish_experiment(exp))
    }

    /// Serializes this fabric together with a paused experiment into
    /// one checked envelope. Telemetry is deliberately not captured: a
    /// restored fabric comes back with no `Obs` attached — reattach
    /// with [`set_obs`](Self::set_obs); it is a pure overlay and does
    /// not affect simulated state.
    #[must_use]
    pub fn checkpoint_experiment(&self, exp: &FabricExperiment) -> Vec<u8> {
        use cedar_snap::Snapshot;
        let mut w = cedar_snap::SnapWriter::new();
        self.snap(&mut w);
        exp.snap(&mut w);
        cedar_snap::seal(&w.into_bytes())
    }

    /// Restores a fabric + experiment pair serialized by
    /// [`checkpoint_experiment`](Self::checkpoint_experiment). Driving
    /// the restored pair produces a bit-identical continuation of the
    /// interrupted run.
    ///
    /// # Errors
    ///
    /// Returns the [`cedar_snap::SnapError`] describing any envelope
    /// or decoding failure.
    pub fn restore_experiment(
        bytes: &[u8],
    ) -> Result<(Self, FabricExperiment), cedar_snap::SnapError> {
        use cedar_snap::Snapshot;
        let payload = cedar_snap::unseal(bytes)?;
        let mut r = cedar_snap::SnapReader::new(payload);
        let fabric = Self::restore(&mut r)?;
        let exp = FabricExperiment::restore(&mut r)?;
        if r.remaining() != 0 {
            return Err(cedar_snap::SnapError::TrailingBytes);
        }
        Ok((fabric, exp))
    }

    /// Whether a restored checkpoint belongs to *this* experiment:
    /// same fabric configuration, fault schedule, retry policy, CE
    /// count, traffic pattern and cycle budget. Anything else is a
    /// stale file from a different run and must not be resumed.
    fn checkpoint_matches(
        &self,
        fabric: &RoundTripFabric,
        exp: &FabricExperiment,
        n_ces: usize,
        traffic: PrefetchTraffic,
        max_net_cycles: u64,
    ) -> bool {
        use cedar_snap::Snapshot;
        let faults_match = {
            let mut ours = cedar_snap::SnapWriter::new();
            self.faults.snap(&mut ours);
            self.retry.snap(&mut ours);
            let mut theirs = cedar_snap::SnapWriter::new();
            fabric.faults.snap(&mut theirs);
            fabric.retry.snap(&mut theirs);
            ours.into_bytes() == theirs.into_bytes()
        };
        fabric.cfg == self.cfg
            && faults_match
            && exp.sources.len() == n_ces
            && exp.max_net_cycles == max_net_cycles
            && exp.sources.first().is_none_or(|s| s.traffic == traffic)
    }

    /// Like [`run_watched_experiment`](Self::run_watched_experiment),
    /// but writes an atomic checkpoint file every
    /// `checkpoint_every_net_cycles` simulated cycles and, when
    /// `checkpoint_path` already holds a matching checkpoint, resumes
    /// from it instead of starting over — a killed process loses at
    /// most one checkpoint interval of work. The file is removed once
    /// the run completes; a stale, corrupt or mismatched file is
    /// ignored and overwritten. Attached telemetry does not survive a
    /// resume (see
    /// [`checkpoint_experiment`](Self::checkpoint_experiment)).
    ///
    /// # Errors
    ///
    /// Returns [`CedarError::Stalled`] when the watchdog trips; the
    /// last checkpoint is left on disk in that case.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoint_every_net_cycles` is zero or `n_ces`
    /// exceeds the network port count.
    pub fn run_watched_checkpointed(
        &mut self,
        n_ces: usize,
        traffic: PrefetchTraffic,
        max_net_cycles: u64,
        watchdog: &mut Watchdog,
        checkpoint_every_net_cycles: u64,
        checkpoint_path: &std::path::Path,
    ) -> Result<FabricReport, CedarError> {
        assert!(
            checkpoint_every_net_cycles > 0,
            "checkpoint interval must be nonzero"
        );
        let mut exp = match std::fs::read(checkpoint_path)
            .ok()
            .and_then(|bytes| Self::restore_experiment(&bytes).ok())
        {
            Some((fabric, exp))
                if self.checkpoint_matches(&fabric, &exp, n_ces, traffic, max_net_cycles) =>
            {
                *self = fabric;
                exp
            }
            _ => self.begin_experiment(n_ces, traffic, max_net_cycles),
        };
        let mut next_checkpoint = self.now + checkpoint_every_net_cycles;
        while self.experiment_running(&exp) {
            // Drive in checkpoint-interval chunks: both engines exit
            // at the first step that reaches `stop_at`, which is the
            // same cycle the per-step check used to fire on.
            self.drive_experiment(&mut exp, Some(&mut *watchdog), Some(next_checkpoint))?;
            if self.now >= next_checkpoint {
                // Best-effort: a failed write only costs resumability.
                let _ =
                    cedar_snap::write_atomic(checkpoint_path, &self.checkpoint_experiment(&exp));
                next_checkpoint = self.now + checkpoint_every_net_cycles;
            }
        }
        let report = self.finish_experiment(exp);
        let _ = std::fs::remove_file(checkpoint_path);
        Ok(report)
    }

    /// Fires due retry timers: a request still unresolved when its
    /// timer expires is re-injected (re-aimed at the fallback module
    /// if its target fail-stopped) with exponential backoff until the
    /// policy's attempt budget runs out, after which it is abandoned
    /// and counted in `failed_requests`.
    fn fire_retries(&mut self, rec: &mut RecoveryState, sources: &mut [CeSource]) {
        while let Some(&Reverse((due, id))) = rec.timers.peek() {
            if due > self.now {
                break;
            }
            rec.timers.pop();
            let Some(entry) = rec.pending.get_mut(&id) else {
                continue; // resolved while the timer was pending
            };
            if entry.attempts > self.retry.max_retries {
                let packet = entry.packet;
                let attempts = entry.attempts;
                rec.pending.remove(&id);
                rec.failed_requests += 1;
                Self::abandon_request(&mut sources[packet.src], id);
                self.trace_close(id, Some(("abandoned", u64::from(attempts))));
                self.metric_add(|ids| ids.abandoned, 1);
                continue;
            }
            let mut packet = entry.packet;
            if let Some(plan) = &self.faults {
                if plan.module_failed(packet.dest, self.now) {
                    packet.dest = plan.fallback_module(packet.dest);
                    entry.packet = packet;
                }
            }
            if self.forward.try_inject(packet) {
                rec.retries += 1;
                entry.attempts += 1;
                let attempts = entry.attempts;
                rec.timers
                    .push(Reverse((self.now + self.retry.delay(attempts), id)));
                self.trace_retry(id, u64::from(attempts));
                self.metric_add(|ids| ids.retries, 1);
            } else {
                // Injection FIFO full: retry next cycle without
                // spending an attempt.
                rec.timers.push(Reverse((self.now + 1, id)));
            }
        }
    }

    /// Releases an abandoned request's window slot and block
    /// accounting so the source's pipeline keeps moving; no record is
    /// made (statistics cover completed requests only).
    fn abandon_request(src: &mut CeSource, id: u64) {
        let local = Self::local_index(PacketId(id), src.port);
        let block = (local / u64::from(src.traffic.block_len)) as usize;
        src.returned_per_block[block] += 1;
        if src.returned_per_block[block] == src.traffic.block_len {
            src.completed_blocks += 1;
        }
        src.outstanding -= 1;
    }

    /// Module side: receive request words from the forward network,
    /// serve one request per `mem_service_net_cycles`, and inject
    /// replies into the reverse network.
    fn service_modules(&mut self) {
        for m in 0..self.modules.len() {
            if let Some(plan) = &self.faults {
                if plan.module_failed(m, self.now) {
                    // Fail-stop: arriving words and any queued work
                    // vanish; retries re-aim at the fallback module.
                    while self.forward.pop_output(m).is_some() {
                        self.module_discards += 1;
                    }
                    let dead = &mut self.modules[m];
                    self.module_discards += dead.pending.len() as u64;
                    dead.pending.clear();
                    if dead.outgoing.take().is_some() {
                        self.module_discards += 1;
                    }
                    self.partial[m] = None;
                    continue;
                }
                if plan.module_stalled(m, self.now) {
                    // Transient stall: the module neither receives nor
                    // serves; its backlog tree-saturates upstream.
                    continue;
                }
            }
            // Receive at most one word per cycle from the forward net,
            // but only while the module's own request buffer has room.
            if self.modules[m].pending.len() < self.cfg.module_buffer_requests {
                if let Some(&(word, _)) = self.forward.peek_output(m) {
                    self.accept_word(m, word);
                    self.forward.pop_output(m);
                }
            }
            // Retry a blocked reply injection.
            if let Some(reply) = self.modules[m].outgoing.take() {
                if !self.reverse.try_inject(reply) {
                    self.modules[m].outgoing = Some(reply);
                    if self.obs.is_some() {
                        self.metric_add(|ids| ids.reply_inject_blocked, 1);
                    }
                    continue; // cannot start new service while blocked
                }
                if self.obs.is_some() {
                    self.trace_transition(reply.id.0, SPAN_MEM_SERVICE, SPAN_RETURN_NET);
                }
            }
            // Start serving the next request when free.
            if self.now >= self.modules[m].busy_until {
                if let Some(request) = self.modules[m].pending.pop_front() {
                    let module = &mut self.modules[m];
                    module.busy_until = self.now + self.cfg.mem_service_net_cycles;
                    module.served += 1;
                    if let Some(reply) = request.reply() {
                        // The reply is ready when service completes; we
                        // inject it then by holding it in `outgoing`
                        // until `busy_until` (handled next iteration
                        // since injection requires the module free).
                        module.outgoing = Some(reply);
                    }
                    if self.obs.is_some() {
                        self.metric_add(|ids| ids.served[m], 1);
                        self.trace_transition(request.id.0, SPAN_MEM_QUEUE, SPAN_MEM_SERVICE);
                    }
                }
            } else if self.obs.is_some() && !self.modules[m].pending.is_empty() {
                // Bank conflict: a request is waiting while the module
                // serves another.
                self.metric_add(|ids| ids.conflict_stall_cycles, 1);
            }
        }
    }

    /// Accumulates words of (possibly multi-word) request packets.
    fn accept_word(&mut self, m: usize, word: Word) {
        let slot = &mut self.partial[m];
        let mut arrived = None;
        match slot {
            None => {
                debug_assert!(word.is_head(), "packet must start with its header");
                if word.is_tail() {
                    self.modules[m].pending.push_back(word.packet);
                    arrived = Some(word.packet.id);
                } else {
                    *slot = Some((word.packet, 1));
                }
            }
            Some((packet, seen)) => {
                debug_assert_eq!(packet.id, word.packet.id, "interleaved request words");
                *seen += 1;
                if word.is_tail() {
                    let packet = *packet;
                    *slot = None;
                    self.modules[m].pending.push_back(packet);
                    arrived = Some(packet.id);
                }
            }
        }
        if self.obs.is_some() {
            if let Some(id) = arrived {
                self.trace_transition(id.0, SPAN_FORWARD_NET, SPAN_MEM_QUEUE);
            }
        }
    }

    /// CE side: absorb every reply word available this cycle into the
    /// prefetch buffer. The buffer accepts words at network rate; the
    /// recorded return time is the *arrival* at the buffer, which is
    /// the signal the hardware monitor tapped ("when each datum
    /// returns to the prefetch buffer via the reverse networks").
    /// Returns the number of requests completed.
    fn eject_replies(
        &mut self,
        sources: &mut [CeSource],
        mut rec: Option<&mut RecoveryState>,
    ) -> u64 {
        let mut completed = 0;
        for src in sources.iter_mut() {
            while let Some((word, arrived)) = self.reverse.pop_output(src.port) {
                debug_assert_eq!(word.packet.kind, PacketKind::Reply);
                if let Some(rec) = rec.as_deref_mut() {
                    // Under faults a reply may duplicate (original and
                    // retry both survive) or arrive after abandonment;
                    // the pending map is the dedup authority.
                    if rec.pending.remove(&word.packet.id.0).is_none() {
                        continue;
                    }
                }
                let local = Self::local_index(word.packet.id, src.port);
                let block_len = u64::from(src.traffic.block_len);
                let record = RequestRecord {
                    block: (local / block_len) as u32,
                    index_in_block: (local % block_len) as u32,
                    issue: src.issued_at[local as usize],
                    ret: arrived,
                };
                let block = record.block as usize;
                src.returned_per_block[block] += 1;
                if src.returned_per_block[block] == src.traffic.block_len {
                    src.completed_blocks += 1;
                }
                src.records.push(record);
                src.outstanding -= 1;
                completed += 1;
                if self.obs.is_some() {
                    self.trace_close(word.packet.id.0, None);
                }
            }
        }
        completed
    }

    /// CE side: issue at most one new request per CE per CE cycle,
    /// respecting the outstanding window and inter-block gaps.
    fn issue_requests(
        &mut self,
        sources: &mut [CeSource],
        ce_now: u64,
        mut rec: Option<&mut RecoveryState>,
    ) {
        let n_mod = self.cfg.mem_modules;
        for src in sources.iter_mut() {
            if src.done_issuing
                || src.outstanding >= src.traffic.window
                || ce_now < src.blocked_until_ce
            {
                continue;
            }
            // Starting a new block requires an in-flight slot: the
            // prefetch buffer is invalidated by a new prefetch, so the
            // previous block must drain before the next is armed.
            // While the source waits at a block boundary it pays down
            // its store debt — vector-store instructions execute
            // between the load blocks, overlapped with the drain wait.
            if src.next_index == 0 {
                if src.next_block >= src.completed_blocks + src.traffic.blocks_in_flight {
                    if src.write_debt >= 1.0 {
                        let module =
                            (src.stream_bases[0] + n_mod / 2 + src.writes_issued as usize) % n_mod;
                        let write = Packet::write(
                            src.port,
                            module,
                            ((src.port as u64) << 40) | (1 << 39) | src.writes_issued,
                            1,
                        );
                        if self.forward.try_inject(write) {
                            src.write_debt -= 1.0;
                            src.writes_issued += 1;
                            if self.obs.is_some() {
                                self.metric_add(|ids| ids.writes_issued, 1);
                            }
                        }
                    }
                    continue;
                }
                // Fire: each operand stream's base address lands on a
                // random module, like real operand bases.
                for base in &mut src.stream_bases {
                    *base = src.rng.next_below(n_mod as u64) as usize;
                }
            }
            let local = u64::from(src.next_block) * u64::from(src.traffic.block_len)
                + u64::from(src.next_index);
            let n_streams = src.stream_bases.len();
            let stream = src.next_index as usize % n_streams;
            let module = match src.traffic.pattern {
                AddressPattern::HotSpot { module, fraction } if src.rng.next_bool(fraction) => {
                    module % n_mod
                }
                _ => (src.stream_bases[stream] + src.next_index as usize / n_streams) % n_mod,
            };
            let packet = Packet::new(
                Self::packet_id(src.port, local),
                src.port,
                module,
                1,
                PacketKind::ReadRequest,
            );
            if self.forward.try_inject(packet) {
                debug_assert_eq!(src.issued_at.len() as u64, local);
                src.issued_at.push(self.now);
                if self.obs.is_some() {
                    self.metric_add(|ids| ids.reads_issued, 1);
                    self.trace_issue(packet.id.0);
                }
                if let Some(rec) = rec.as_deref_mut() {
                    rec.pending.insert(
                        packet.id.0,
                        InFlight {
                            packet,
                            attempts: 1,
                        },
                    );
                    rec.timers.push(Reverse((
                        self.now + self.retry.base_delay_cycles,
                        packet.id.0,
                    )));
                }
                src.outstanding += 1;
                src.write_debt += src.traffic.writes_per_read;
                src.next_index += 1;
                if src.next_index == src.traffic.block_len {
                    src.next_index = 0;
                    src.next_block += 1;
                    src.blocked_until_ce = ce_now + src.traffic.gap_ce_cycles;
                    if src.next_block == src.traffic.blocks {
                        src.done_issuing = true;
                    }
                }
            }
        }
    }

    /// Encodes (port, local request index) into a packet id.
    fn packet_id(port: usize, local: u64) -> PacketId {
        PacketId((port as u64) << 40 | local)
    }

    /// Decodes the local request index from a packet id.
    fn local_index(id: PacketId, port: usize) -> u64 {
        debug_assert_eq!(id.0 >> 40, port as u64, "reply delivered to wrong CE");
        id.0 & ((1 << 40) - 1)
    }
}

/// The outcome of one prefetch experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricReport {
    /// Request records per CE, in completion order.
    pub per_ce: Vec<Vec<RequestRecord>>,
    /// Total simulated network cycles.
    pub total_net_cycles: u64,
    /// Clock ratio used, for unit conversion.
    pub net_cycles_per_ce_cycle: u64,
    /// Fixed CE-side path cost added to latencies.
    pub latency_offset_ce: f64,
    expected_requests: u64,
    completed_requests: u64,
    retries: u64,
    failed_requests: u64,
    words_dropped: u64,
    module_discards: u64,
}

impl FabricReport {
    /// Whether every issued request completed within the cycle budget.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.completed_requests == self.expected_requests
    }

    /// Whether every request was resolved — completed, or abandoned
    /// after exhausting its retries. A degraded run that resolves
    /// everything terminated cleanly even if some requests failed.
    #[must_use]
    pub fn resolved(&self) -> bool {
        self.completed_requests + self.failed_requests == self.expected_requests
    }

    /// Requests re-injected after a timeout. Always zero without an
    /// attached fault schedule.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Requests abandoned after the retry budget ran out.
    #[must_use]
    pub fn failed_requests(&self) -> u64 {
        self.failed_requests
    }

    /// Words lost to injected link faults across both networks.
    #[must_use]
    pub fn words_dropped(&self) -> u64 {
        self.words_dropped
    }

    /// Words and requests destroyed at fail-stopped memory modules.
    #[must_use]
    pub fn module_discards(&self) -> u64 {
        self.module_discards
    }

    /// Mean first-word latency in CE cycles: for the first word of
    /// each block, return time minus issue time, plus the fixed
    /// CE-side offset. This is the paper's "Latency" column.
    #[must_use]
    pub fn mean_first_word_latency_ce(&self) -> f64 {
        let ratio = self.net_cycles_per_ce_cycle as f64;
        let mut n = 0u64;
        let mut sum = 0.0;
        for records in &self.per_ce {
            for r in records {
                if r.index_in_block == 0 {
                    sum += (r.ret - r.issue) as f64 / ratio;
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64 + self.latency_offset_ce
        }
    }

    /// Mean interarrival time in CE cycles between consecutive words
    /// of the same block — the paper's "Interarrival" column.
    #[must_use]
    pub fn mean_interarrival_ce(&self) -> f64 {
        let ratio = self.net_cycles_per_ce_cycle as f64;
        let mut n = 0u64;
        let mut sum = 0.0;
        for records in &self.per_ce {
            // Completion order within one CE is return order; group by
            // block and difference consecutive returns.
            let mut by_block: std::collections::BTreeMap<u32, Vec<u64>> =
                std::collections::BTreeMap::new();
            for r in records {
                by_block.entry(r.block).or_default().push(r.ret);
            }
            for rets in by_block.values() {
                for w in rets.windows(2) {
                    sum += (w[1] - w[0]) as f64 / ratio;
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// The `q`-quantile of first-word latency in CE cycles (q clamped
    /// to `[0, 1]`), or `None` with no block-first records. Tail
    /// latency is what the paper's histogram hardware exposed beyond
    /// the means Table 2 prints.
    #[must_use]
    pub fn latency_quantile_ce(&self, q: f64) -> Option<f64> {
        let ratio = self.net_cycles_per_ce_cycle as f64;
        let mut lats: Vec<f64> = self
            .per_ce
            .iter()
            .flatten()
            .filter(|r| r.index_in_block == 0)
            .map(|r| (r.ret - r.issue) as f64 / ratio + self.latency_offset_ce)
            .collect();
        if lats.is_empty() {
            return None;
        }
        lats.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let idx = ((q.clamp(0.0, 1.0) * (lats.len() - 1) as f64).round()) as usize;
        Some(lats[idx])
    }

    /// Aggregate delivered-data bandwidth in words per CE cycle.
    #[must_use]
    pub fn words_per_ce_cycle(&self) -> f64 {
        if self.total_net_cycles == 0 {
            return 0.0;
        }
        let words: usize = self.per_ce.iter().map(Vec::len).sum();
        words as f64 / (self.total_net_cycles as f64 / self.net_cycles_per_ce_cycle as f64)
    }

    /// Total requests completed across all CEs.
    #[must_use]
    pub fn request_count(&self) -> u64 {
        self.completed_requests
    }

    /// Mean first-word latency of one CE, in CE cycles — the paper
    /// monitored "all requests of a single processor and compared
    /// repeated experiments for consistency".
    #[must_use]
    pub fn ce_mean_latency_ce(&self, ce: usize) -> Option<f64> {
        let records = self.per_ce.get(ce)?;
        let ratio = self.net_cycles_per_ce_cycle as f64;
        let firsts: Vec<f64> = records
            .iter()
            .filter(|r| r.index_in_block == 0)
            .map(|r| (r.ret - r.issue) as f64 / ratio + self.latency_offset_ce)
            .collect();
        if firsts.is_empty() {
            None
        } else {
            Some(firsts.iter().sum::<f64>() / firsts.len() as f64)
        }
    }
}

cedar_snap::snapshot_struct!(FabricConfig {
    net,
    mem_service_net_cycles,
    mem_modules,
    latency_offset_ce,
    module_buffer_requests,
});
cedar_snap::snapshot_struct!(PrefetchTraffic {
    block_len,
    blocks,
    window,
    gap_ce_cycles,
    blocks_in_flight,
    writes_per_read,
    streams,
    pattern,
});
cedar_snap::snapshot_struct!(RequestRecord {
    block,
    index_in_block,
    issue,
    ret,
});
cedar_snap::snapshot_struct!(MemModule {
    pending,
    busy_until,
    outgoing,
    served,
});
cedar_snap::snapshot_struct!(CeSource {
    port,
    traffic,
    next_block,
    next_index,
    outstanding,
    blocked_until_ce,
    records,
    issued_at,
    returned_per_block,
    completed_blocks,
    stream_bases,
    write_debt,
    writes_issued,
    rng,
    done_issuing,
});
cedar_snap::snapshot_struct!(InFlight { packet, attempts });
cedar_snap::snapshot_struct!(FabricExperiment {
    sources,
    recovery,
    completed_requests,
    total_expected,
    ratio,
    max_net_cycles,
});
cedar_snap::snapshot_struct!(FabricReport {
    per_ce,
    total_net_cycles,
    net_cycles_per_ce_cycle,
    latency_offset_ce,
    expected_requests,
    completed_requests,
    retries,
    failed_requests,
    words_dropped,
    module_discards,
});

impl cedar_snap::Snapshot for AddressPattern {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        match self {
            AddressPattern::Strided => w.put_u8(0),
            AddressPattern::HotSpot { module, fraction } => {
                w.put_u8(1);
                w.put_usize(*module);
                w.put_f64(*fraction);
            }
        }
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        match r.get_u8()? {
            0 => Ok(AddressPattern::Strided),
            1 => Ok(AddressPattern::HotSpot {
                module: r.get_usize()?,
                fraction: r.get_f64()?,
            }),
            _ => Err(cedar_snap::SnapError::Invalid("address pattern tag")),
        }
    }
}

// Retry timers live in a BinaryHeap whose internal layout is
// unspecified; they serialize as a sorted list and re-push on restore.
// `(due, id)` is a total order, so pop order — and therefore every
// retry decision — is preserved exactly.
impl cedar_snap::Snapshot for RecoveryState {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        self.pending.snap(w);
        let mut timers: Vec<(u64, u64)> = self.timers.iter().map(|Reverse(t)| *t).collect();
        timers.sort_unstable();
        timers.snap(w);
        self.retries.snap(w);
        self.failed_requests.snap(w);
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        use cedar_snap::Snapshot;
        let pending = Snapshot::restore(r)?;
        let timer_list: Vec<(u64, u64)> = Snapshot::restore(r)?;
        let mut timers = BinaryHeap::with_capacity(timer_list.len());
        for t in timer_list {
            timers.push(Reverse(t));
        }
        Ok(RecoveryState {
            pending,
            timers,
            retries: Snapshot::restore(r)?,
            failed_requests: Snapshot::restore(r)?,
        })
    }
}

// Telemetry is a pure overlay and deliberately not captured: a
// restored fabric has no `Obs` attached (see `set_obs`). Everything
// that feeds the simulation — including the fault and retry schedules
// — round-trips.
impl cedar_snap::Snapshot for RoundTripFabric {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        self.cfg.snap(w);
        self.forward.snap(w);
        self.reverse.snap(w);
        self.modules.snap(w);
        self.partial.snap(w);
        self.now.snap(w);
        self.faults.snap(w);
        self.retry.snap(w);
        self.module_discards.snap(w);
        self.fast_forward.snap(w);
        self.ff_cycles.snap(w);
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        use cedar_snap::Snapshot;
        Ok(RoundTripFabric {
            cfg: Snapshot::restore(r)?,
            forward: Snapshot::restore(r)?,
            reverse: Snapshot::restore(r)?,
            modules: Snapshot::restore(r)?,
            partial: Snapshot::restore(r)?,
            now: Snapshot::restore(r)?,
            faults: Snapshot::restore(r)?,
            retry: Snapshot::restore(r)?,
            module_discards: Snapshot::restore(r)?,
            fast_forward: Snapshot::restore(r)?,
            ff_cycles: Snapshot::restore(r)?,
            obs: None,
            // Engine selection is not simulated state (engines are
            // bit-identical); a restored fabric re-reads the
            // environment, like a fresh one.
            engine: EngineKind::from_env(),
            last_run_engine: None,
            last_fallback: None,
            fallback_logged: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_traffic() -> PrefetchTraffic {
        PrefetchTraffic::compiler_default(4)
    }

    /// The load-bearing property of the idle fast-forward: skipping
    /// provably dead cycles never changes a delivered packet's issue
    /// or return timestamp, nor any other report field. Gap-heavy
    /// traffic idles the whole fabric between blocks, which is
    /// exactly when the skip engages.
    #[test]
    fn fast_forward_is_invisible() {
        let gapped = PrefetchTraffic {
            gap_ce_cycles: 64,
            ..small_traffic()
        };
        let mut on = RoundTripFabric::new(FabricConfig::cedar());
        let fast = on.run_prefetch_experiment(4, gapped, 1_000_000);
        assert!(
            on.fast_forwarded_cycles() > 0,
            "the skip never engaged; the test is vacuous"
        );
        let mut off = RoundTripFabric::new(FabricConfig::cedar());
        off.set_fast_forward(false);
        let slow = off.run_prefetch_experiment(4, gapped, 1_000_000);
        assert_eq!(off.fast_forwarded_cycles(), 0);
        assert_eq!(fast, slow, "fast-forward changed an observable");
    }

    /// Same invariant on a degraded machine: recovery bookkeeping
    /// (in-flight requests, retry timers) must veto or survive the
    /// skip without shifting a single retry or abandonment.
    #[test]
    fn fast_forward_is_invisible_under_faults() {
        use cedar_faults::{FaultConfig, MachineShape};

        let gapped = PrefetchTraffic {
            gap_ce_cycles: 64,
            ..small_traffic()
        };
        let run = |fast_forward: bool| {
            let plan =
                FaultPlan::generate(&FaultConfig::degraded(0xCEDA, 0.02), &MachineShape::cedar())
                    .expect("valid preset");
            let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
            fabric.attach_faults(plan, RetryPolicy::fabric());
            fabric.set_fast_forward(fast_forward);
            let mut dog = Watchdog::new(4_000_000, "fast-forward equivalence");
            let report = fabric
                .run_watched_experiment(4, gapped, 64_000_000, &mut dog)
                .expect("run completes");
            (report, fabric.fast_forwarded_cycles())
        };
        let (fast, skipped) = run(true);
        let (slow, none_skipped) = run(false);
        assert!(skipped > 0, "the skip never engaged under faults");
        assert_eq!(none_skipped, 0);
        assert_eq!(fast, slow, "fast-forward changed a degraded observable");
    }

    /// Stepping an experiment manually is the same loop the packaged
    /// entry point runs; the reports must be identical.
    #[test]
    fn stepwise_run_matches_packaged_entry_point() {
        let mut packaged = RoundTripFabric::new(FabricConfig::cedar());
        let expected = packaged.run_prefetch_experiment(4, small_traffic(), 1_000_000);

        let mut stepped = RoundTripFabric::new(FabricConfig::cedar());
        let mut exp = stepped.begin_experiment(4, small_traffic(), 1_000_000);
        while stepped.experiment_running(&exp) {
            stepped.step_experiment(&mut exp, None).unwrap();
        }
        assert_eq!(stepped.finish_experiment(exp), expected);
    }

    /// The tentpole guarantee on a healthy machine: serialize
    /// mid-flight, restore in a "fresh process" (a new fabric value),
    /// continue — and land on the exact report an uninterrupted run
    /// produces.
    #[test]
    fn checkpoint_mid_run_resumes_bit_identically() {
        let mut straight = RoundTripFabric::new(FabricConfig::cedar());
        let expected = straight.run_prefetch_experiment(4, small_traffic(), 1_000_000);

        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        let mut exp = fabric.begin_experiment(4, small_traffic(), 1_000_000);
        for _ in 0..137 {
            assert!(fabric.experiment_running(&exp), "stopped before checkpoint");
            fabric.step_experiment(&mut exp, None).unwrap();
        }
        let bytes = fabric.checkpoint_experiment(&exp);
        drop((fabric, exp));

        let (mut resumed, mut exp) = RoundTripFabric::restore_experiment(&bytes).unwrap();
        while resumed.experiment_running(&exp) {
            resumed.step_experiment(&mut exp, None).unwrap();
        }
        assert_eq!(resumed.finish_experiment(exp), expected);
    }

    /// The same guarantee mid-recovery on a degraded machine: the
    /// checkpoint is taken while timed-out requests await retries, so
    /// the pending map, the timer heap and the fault-plan decisions
    /// all have to survive the round trip for the reports to agree.
    #[test]
    fn checkpoint_mid_retry_under_faults_resumes_identically() {
        use cedar_faults::{FaultConfig, MachineShape};

        let make = || {
            let plan =
                FaultPlan::generate(&FaultConfig::degraded(0xCEDA, 0.05), &MachineShape::cedar())
                    .expect("valid preset");
            let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
            fabric.attach_faults(plan, RetryPolicy::fabric());
            fabric
        };
        let mut straight = make();
        let mut dog = Watchdog::new(4_000_000, "straight degraded run");
        let expected = straight
            .run_watched_experiment(8, small_traffic(), 64_000_000, &mut dog)
            .expect("run completes");
        assert!(expected.retries() > 0, "no retries; the test is vacuous");

        let mut fabric = make();
        let mut exp = fabric.begin_experiment(8, small_traffic(), 64_000_000);
        // Step until the recovery machinery is mid-flight, then a bit
        // further so retry timers are armed at assorted depths.
        while !exp.retry_in_flight() {
            fabric.step_experiment(&mut exp, None).unwrap();
        }
        for _ in 0..50 {
            fabric.step_experiment(&mut exp, None).unwrap();
        }
        assert!(exp.retry_in_flight(), "checkpoint must land mid-recovery");
        let bytes = fabric.checkpoint_experiment(&exp);
        drop((fabric, exp));

        let (mut resumed, mut exp) = RoundTripFabric::restore_experiment(&bytes).unwrap();
        let mut dog = Watchdog::new(4_000_000, "resumed degraded run");
        while resumed.experiment_running(&exp) {
            resumed.step_experiment(&mut exp, Some(&mut dog)).unwrap();
        }
        assert_eq!(resumed.finish_experiment(exp), expected);
    }

    /// `run_watched_checkpointed` picks an interrupted run back up
    /// from its checkpoint file, finishes with the uninterrupted
    /// run's exact report, and cleans the file up.
    #[test]
    fn run_watched_checkpointed_resumes_from_kill_point() {
        let path =
            std::env::temp_dir().join(format!("cedar-fabric-ckpt-{}.snap", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut straight = RoundTripFabric::new(FabricConfig::cedar());
        let expected = straight.run_prefetch_experiment(4, small_traffic(), 1_000_000);

        // Simulate a killed run: step partway, write the checkpoint,
        // drop everything.
        let mut killed = RoundTripFabric::new(FabricConfig::cedar());
        let mut exp = killed.begin_experiment(4, small_traffic(), 1_000_000);
        for _ in 0..200 {
            killed.step_experiment(&mut exp, None).unwrap();
        }
        cedar_snap::write_atomic(&path, &killed.checkpoint_experiment(&exp)).unwrap();
        drop((killed, exp));

        let mut resumed = RoundTripFabric::new(FabricConfig::cedar());
        let mut dog = Watchdog::new(4_000_000, "checkpointed run");
        let report = resumed
            .run_watched_checkpointed(4, small_traffic(), 1_000_000, &mut dog, 500, &path)
            .expect("run completes");
        assert!(
            resumed.now > 200,
            "resume must continue, not restart, the clock"
        );
        assert_eq!(report, expected);
        assert!(
            !path.exists(),
            "checkpoint file must be removed on completion"
        );
    }

    /// A checkpoint from a *different* experiment (other traffic
    /// pattern) must be ignored, not resumed into wrong results.
    #[test]
    fn mismatched_checkpoint_is_ignored() {
        let path =
            std::env::temp_dir().join(format!("cedar-fabric-stale-{}.snap", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut other = RoundTripFabric::new(FabricConfig::cedar());
        let mut exp = other.begin_experiment(2, PrefetchTraffic::rk_aggressive(2), 1_000_000);
        for _ in 0..100 {
            other.step_experiment(&mut exp, None).unwrap();
        }
        cedar_snap::write_atomic(&path, &other.checkpoint_experiment(&exp)).unwrap();

        let mut straight = RoundTripFabric::new(FabricConfig::cedar());
        let expected = straight.run_prefetch_experiment(4, small_traffic(), 1_000_000);

        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        let mut dog = Watchdog::new(4_000_000, "stale checkpoint run");
        let report = fabric
            .run_watched_checkpointed(4, small_traffic(), 1_000_000, &mut dog, 500, &path)
            .expect("run completes");
        assert_eq!(report, expected, "stale checkpoint leaked into the run");
        assert!(!path.exists());
    }

    /// Prints the contention profile used to calibrate against the
    /// paper's Table 2. Run with
    /// `cargo test -p cedar-net -- --ignored --nocapture profile`.
    #[test]
    #[ignore = "diagnostic printout, not an assertion"]
    fn print_contention_profile() {
        for (name, make) in [
            (
                "TM",
                PrefetchTraffic::tridiagonal_matvec as fn(u32) -> PrefetchTraffic,
            ),
            ("CG", PrefetchTraffic::conjugate_gradient),
            ("VF", PrefetchTraffic::vector_load),
            ("RK", PrefetchTraffic::rk_aggressive),
        ] {
            print!("  {name}:");
            for n in [8usize, 16, 32] {
                let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
                let report = fabric.run_prefetch_experiment(n, make(8), 16_000_000);
                print!(
                    "  n={n:2} lat={:5.1} int={:4.2}",
                    report.mean_first_word_latency_ce(),
                    report.mean_interarrival_ce()
                );
            }
            println!();
        }
    }

    #[test]
    fn single_ce_unloaded_latency_near_minimum() {
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        let report = fabric.run_prefetch_experiment(1, small_traffic(), 100_000);
        assert!(report.completed());
        let lat = report.mean_first_word_latency_ce();
        // Paper: minimal latency 8 cycles; an unloaded machine should
        // sit within a couple of cycles of it.
        assert!(
            (8.0..11.0).contains(&lat),
            "unloaded latency {lat} outside [8, 11)"
        );
    }

    #[test]
    fn single_ce_interarrival_near_one_cycle() {
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        let report = fabric.run_prefetch_experiment(1, small_traffic(), 100_000);
        let inter = report.mean_interarrival_ce();
        // Paper: minimal interarrival 1 cycle; observed 1.1–1.2 at 8 CEs.
        assert!(
            (0.9..1.5).contains(&inter),
            "unloaded interarrival {inter} outside [0.9, 1.5)"
        );
    }

    #[test]
    fn latency_grows_with_ce_count() {
        let cfg = FabricConfig::cedar();
        let lat_at = |n: usize| {
            let mut fabric = RoundTripFabric::new(cfg.clone());
            let report = fabric.run_prefetch_experiment(n, small_traffic(), 2_000_000);
            assert!(report.completed(), "experiment with {n} CEs did not finish");
            report.mean_first_word_latency_ce()
        };
        let l8 = lat_at(8);
        let l32 = lat_at(32);
        assert!(
            l32 > l8 + 1.0,
            "contention should raise latency: 8 CEs {l8}, 32 CEs {l32}"
        );
    }

    #[test]
    fn interarrival_grows_with_ce_count() {
        let cfg = FabricConfig::cedar();
        let inter_at = |n: usize| {
            let mut fabric = RoundTripFabric::new(cfg.clone());
            let report = fabric.run_prefetch_experiment(n, small_traffic(), 2_000_000);
            report.mean_interarrival_ce()
        };
        let i8 = inter_at(8);
        let i32v = inter_at(32);
        assert!(
            i32v > i8,
            "contention should raise interarrival: 8 CEs {i8}, 32 CEs {i32v}"
        );
    }

    #[test]
    fn window_of_two_limits_pipelining() {
        // The no-prefetch case: only two outstanding requests per CE.
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        let narrow = PrefetchTraffic {
            window: 2,
            ..small_traffic()
        };
        let r_narrow = fabric.run_prefetch_experiment(1, narrow, 1_000_000);
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        let r_wide = fabric.run_prefetch_experiment(1, small_traffic(), 1_000_000);
        assert!(
            r_narrow.words_per_ce_cycle() < r_wide.words_per_ce_cycle() / 1.5,
            "window 2 ({} w/c) should be much slower than window 512 ({} w/c)",
            r_narrow.words_per_ce_cycle(),
            r_wide.words_per_ce_cycle()
        );
    }

    #[test]
    fn all_requests_complete_and_are_distinct() {
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        let report = fabric.run_prefetch_experiment(4, small_traffic(), 1_000_000);
        assert!(report.completed());
        for (ce, records) in report.per_ce.iter().enumerate() {
            assert_eq!(records.len(), 32 * 4, "CE {ce} record count");
            let mut keys: Vec<(u32, u32)> = records
                .iter()
                .map(|r| (r.block, r.index_in_block))
                .collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), 32 * 4, "CE {ce} has duplicate records");
        }
    }

    #[test]
    fn returns_never_precede_issues() {
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        let report = fabric.run_prefetch_experiment(8, small_traffic(), 2_000_000);
        for records in &report.per_ce {
            for r in records {
                assert!(r.ret > r.issue, "request returned before issue: {r:?}");
            }
        }
    }

    #[test]
    fn gap_cycles_slow_the_stream_down() {
        let gapped = PrefetchTraffic {
            gap_ce_cycles: 64,
            ..small_traffic()
        };
        let mut f1 = RoundTripFabric::new(FabricConfig::cedar());
        let r1 = f1.run_prefetch_experiment(1, gapped, 1_000_000);
        let mut f2 = RoundTripFabric::new(FabricConfig::cedar());
        let r2 = f2.run_prefetch_experiment(1, small_traffic(), 1_000_000);
        assert!(r1.total_net_cycles > r2.total_net_cycles + 3 * 64);
    }

    #[test]
    fn deeper_queues_reduce_contention_latency() {
        // The [Turn93] ablation: with 32 CEs active, deeper crossbar
        // queues should not make latency worse, and typically help.
        let shallow = FabricConfig::cedar();
        let mut deep = FabricConfig::cedar();
        deep.net = NetworkConfig::cedar_with_queue_words(8);
        let lat = |cfg: FabricConfig| {
            let mut fabric = RoundTripFabric::new(cfg);
            fabric
                .run_prefetch_experiment(32, small_traffic(), 4_000_000)
                .mean_first_word_latency_ce()
        };
        let l_shallow = lat(shallow);
        let l_deep = lat(deep);
        assert!(
            l_deep <= l_shallow + 0.5,
            "deep queues {l_deep} should not exceed shallow {l_shallow}"
        );
    }

    /// The paper: "we monitored all requests of a single processor and
    /// compared repeated experiments for consistency. The results of
    /// all experiments were within 10% of each other." Our analogue:
    /// each CE is an independent experiment (distinct seed, same
    /// machine); the per-CE mean latencies at full load must agree to
    /// ~10%.
    #[test]
    fn per_ce_measurements_agree_within_ten_percent() {
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        let report =
            fabric.run_prefetch_experiment(32, PrefetchTraffic::tridiagonal_matvec(96), 64_000_000);
        let means: Vec<f64> = (0..32)
            .filter_map(|ce| report.ce_mean_latency_ce(ce))
            .collect();
        assert_eq!(means.len(), 32);
        let mean: f64 = means.iter().sum::<f64>() / means.len() as f64;
        let var: f64 =
            means.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / means.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(
            cv < 0.10,
            "per-CE latency spread should be ~10% (paper's repeatability): CV = {cv:.3}"
        );
    }

    #[test]
    fn latency_quantiles_are_ordered() {
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        let report = fabric.run_prefetch_experiment(32, small_traffic(), 2_000_000);
        let p10 = report.latency_quantile_ce(0.1).unwrap();
        let p50 = report.latency_quantile_ce(0.5).unwrap();
        let p99 = report.latency_quantile_ce(0.99).unwrap();
        assert!(p10 <= p50 && p50 <= p99, "{p10} <= {p50} <= {p99}");
        assert!(
            p99 > report.mean_first_word_latency_ce(),
            "the tail exceeds the mean under contention"
        );
    }

    #[test]
    fn monitored_run_fills_the_histogrammers() {
        use cedar_sim::monitor::PerformanceMonitor;
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        let mut monitor = PerformanceMonitor::new();
        monitor.start();
        let report = fabric.run_monitored_experiment(
            8,
            PrefetchTraffic::compiler_default(8),
            4_000_000,
            &mut monitor,
        );
        monitor.stop();
        let lat_sig = monitor.lookup("prefetch.first_word_latency").unwrap();
        let stats = monitor.stats(lat_sig).unwrap();
        assert_eq!(stats.count(), 8 * 8, "one latency sample per block");
        assert!(
            (stats.mean() - report.mean_first_word_latency_ce()).abs() < 1.0,
            "monitor mean {} tracks the report {}",
            stats.mean(),
            report.mean_first_word_latency_ce()
        );
        let hist = monitor.histogrammer(lat_sig).unwrap();
        assert!(hist.mean() > 7.0);
        let inter_sig = monitor.lookup("prefetch.interarrival").unwrap();
        assert!(monitor.stats(inter_sig).unwrap().count() > 0);
    }

    #[test]
    fn report_bandwidth_sane() {
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        let report = fabric.run_prefetch_experiment(1, small_traffic(), 1_000_000);
        let bw = report.words_per_ce_cycle();
        assert!(
            bw > 0.0 && bw <= 1.0,
            "one CE cannot exceed 1 word/cycle, got {bw}"
        );
    }

    #[test]
    fn try_new_rejects_zero_modules() {
        let mut cfg = FabricConfig::cedar();
        cfg.mem_modules = 0;
        let err = RoundTripFabric::try_new(cfg).unwrap_err();
        assert!(err.to_string().contains("fabric.mem_modules"), "{err}");
    }

    mod obs {
        use super::*;
        use cedar_faults::{FaultConfig, FaultPlan, MachineShape, RetryPolicy};
        use cedar_obs::trace::SpanPhase;
        use cedar_obs::{Obs, ObsConfig};

        #[test]
        fn a_request_traces_through_the_full_path() {
            let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
            let obs = Obs::new(ObsConfig::enabled());
            fabric.set_obs(&obs);
            let report = fabric.run_prefetch_experiment(2, small_traffic(), 1_000_000);
            assert!(report.completed());
            obs.validate_trace().unwrap();
            // Pick the first traced request and collect its stage names.
            let events = obs.with(|inner| inner.trace.events().to_vec()).unwrap();
            let tid = events[0].tid;
            let begins: Vec<&str> = events
                .iter()
                .filter(|e| e.tid == tid && e.phase == SpanPhase::Begin)
                .map(|e| e.name)
                .collect();
            assert_eq!(
                begins,
                [
                    SPAN_REQUEST,
                    SPAN_FORWARD_NET,
                    SPAN_MEM_QUEUE,
                    SPAN_MEM_SERVICE,
                    SPAN_RETURN_NET
                ],
                "one request walks every stage in path order"
            );
            // Every request's track is individually balanced.
            let ends = events
                .iter()
                .filter(|e| e.tid == tid && e.phase == SpanPhase::End)
                .count();
            assert_eq!(ends, begins.len());
        }

        #[test]
        fn metrics_capture_issue_and_service_counts() {
            let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
            let obs = Obs::new(ObsConfig::metrics_only());
            fabric.set_obs(&obs);
            let report = fabric.run_prefetch_experiment(2, small_traffic(), 1_000_000);
            let expected = 2 * 4 * 32;
            assert_eq!(report.request_count(), expected);
            assert_eq!(obs.counter_value("fabric.reads_issued"), expected);
            let served = obs.with(|i| i.metrics.rollup("fabric.module")).unwrap();
            assert!(
                served >= expected,
                "every read is served at least once: {served}"
            );
            assert!(
                obs.counter_value("fabric.module_conflict_stall_cycles") > 0,
                "two CEs over shared modules must collide sometimes"
            );
        }

        #[test]
        fn faulted_run_shows_retries_on_the_request_track() {
            let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
            let plan = FaultPlan::generate(
                &FaultConfig::link_noise(0xBAD, 0.02),
                &MachineShape::cedar(),
            )
            .unwrap();
            fabric.attach_faults(plan, RetryPolicy::fabric());
            let obs = Obs::new(ObsConfig::enabled());
            fabric.set_obs(&obs);
            let report = fabric.run_prefetch_experiment(4, small_traffic(), 8_000_000);
            assert!(report.retries() > 0, "the fault must actually fire");
            obs.validate_trace().unwrap();
            let events = obs.with(|inner| inner.trace.events().to_vec()).unwrap();
            let retry = events
                .iter()
                .find(|e| e.name == "retry" && e.phase == SpanPhase::Instant)
                .expect("retry instants recorded");
            // The same track also carries the request's spans: the
            // retry marker sits on the request's own row.
            assert!(
                events
                    .iter()
                    .any(|e| e.tid == retry.tid && e.name == SPAN_REQUEST),
                "retry marker shares its track with the request spans"
            );
            assert_eq!(retry.arg, Some(("attempt", 2)), "first retry is attempt 2");
        }

        #[test]
        fn instrumentation_is_a_pure_overlay_on_the_simulation() {
            let mut plain = RoundTripFabric::new(FabricConfig::cedar());
            let baseline = plain.run_prefetch_experiment(4, small_traffic(), 1_000_000);

            let mut disabled = RoundTripFabric::new(FabricConfig::cedar());
            disabled.set_obs(&Obs::new(ObsConfig::disabled()));
            assert_eq!(
                disabled.run_prefetch_experiment(4, small_traffic(), 1_000_000),
                baseline,
                "disabled handle is bit-identical"
            );

            let mut traced = RoundTripFabric::new(FabricConfig::cedar());
            traced.set_obs(&Obs::new(ObsConfig::enabled()));
            assert_eq!(
                traced.run_prefetch_experiment(4, small_traffic(), 1_000_000),
                baseline,
                "full telemetry observes without perturbing"
            );
        }

        #[test]
        fn stalled_watchdog_report_names_the_last_span() {
            let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
            let plan =
                FaultPlan::generate(&FaultConfig::link_noise(3, 1.0), &MachineShape::cedar())
                    .unwrap();
            fabric.attach_faults(
                plan,
                RetryPolicy {
                    base_delay_cycles: 1 << 30,
                    max_retries: 1,
                    max_delay_cycles: 1 << 30,
                },
            );
            let obs = Obs::new(ObsConfig::enabled());
            fabric.set_obs(&obs);
            let mut dog = Watchdog::new(20_000, "traced degraded experiment");
            let err = fabric
                .run_watched_experiment(2, small_traffic(), 8_000_000, &mut dog)
                .unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("last span seen:") && msg.contains("packet"),
                "stall diagnostic should point at a span: {msg}"
            );
            obs.validate_trace()
                .expect("aborted run still exports a balanced trace");
        }
    }

    mod degraded {
        use super::*;
        use cedar_faults::{FaultConfig, FaultPlan, MachineShape, RetryPolicy};

        fn cedar_plan(cfg: &FaultConfig) -> FaultPlan {
            FaultPlan::generate(cfg, &MachineShape::cedar()).unwrap()
        }

        fn assert_exactly_once(report: &FabricReport) {
            for (ce, records) in report.per_ce.iter().enumerate() {
                let mut keys: Vec<(u32, u32)> = records
                    .iter()
                    .map(|r| (r.block, r.index_in_block))
                    .collect();
                let n = keys.len();
                keys.sort_unstable();
                keys.dedup();
                assert_eq!(keys.len(), n, "CE {ce} recorded a request twice");
            }
        }

        #[test]
        fn benign_plan_report_is_bit_identical_to_no_plan() {
            let mut healthy = RoundTripFabric::new(FabricConfig::cedar());
            let a = healthy.run_prefetch_experiment(4, small_traffic(), 1_000_000);
            let mut benign = RoundTripFabric::new(FabricConfig::cedar());
            benign.attach_faults(cedar_plan(&FaultConfig::none(1)), RetryPolicy::fabric());
            assert!(benign.faults().is_none());
            let b = benign.run_prefetch_experiment(4, small_traffic(), 1_000_000);
            assert_eq!(a, b);
        }

        #[test]
        fn dropped_requests_recovered_by_retries_exactly_once() {
            let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
            fabric.attach_faults(
                cedar_plan(&FaultConfig::link_noise(0xBAD, 0.02)),
                RetryPolicy::fabric(),
            );
            let report = fabric.run_prefetch_experiment(4, small_traffic(), 8_000_000);
            assert!(report.resolved(), "every request resolves");
            assert!(report.completed(), "2% loss with 8 retries loses nothing");
            assert!(report.words_dropped() > 0, "the fault actually fired");
            assert!(report.retries() > 0, "drops were recovered by retries");
            assert_exactly_once(&report);
        }

        #[test]
        fn degraded_fabric_run_is_deterministic() {
            let run = || {
                let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
                fabric.attach_faults(
                    cedar_plan(&FaultConfig::degraded(0x5EED, 0.01)),
                    RetryPolicy::fabric(),
                );
                fabric.run_prefetch_experiment(8, small_traffic(), 8_000_000)
            };
            assert_eq!(run(), run(), "same seed, same degraded report");
        }

        #[test]
        fn failed_module_traffic_rerouted_to_fallback() {
            let cfg = FaultConfig {
                failed_modules: 2,
                // Fail during the experiment, not after it finishes.
                fail_by_cycle: 200,
                ..FaultConfig::none(0xDEAD)
            };
            let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
            fabric.attach_faults(cedar_plan(&cfg), RetryPolicy::fabric());
            let report = fabric.run_prefetch_experiment(4, small_traffic(), 16_000_000);
            assert!(report.resolved());
            assert!(
                report.completed(),
                "fail-stop is recoverable via the fallback module, {} failed",
                report.failed_requests()
            );
            assert!(
                report.retries() > 0,
                "rerouting goes through the retry path"
            );
            assert_exactly_once(&report);
        }

        #[test]
        fn hopeless_run_abandons_requests_but_terminates() {
            // Total link loss: no single-word request ever survives, so
            // every read exhausts its retries and is abandoned — but the
            // run still terminates with every request resolved.
            let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
            fabric.attach_faults(
                cedar_plan(&FaultConfig::link_noise(3, 1.0)),
                RetryPolicy {
                    base_delay_cycles: 64,
                    max_retries: 2,
                    max_delay_cycles: 256,
                },
            );
            let report = fabric.run_prefetch_experiment(2, small_traffic(), 8_000_000);
            assert!(report.resolved());
            assert_eq!(report.request_count(), 0, "nothing survives total loss");
            assert_eq!(report.failed_requests(), 2 * 4 * 32);
        }

        #[test]
        fn watchdog_aborts_stalled_degraded_run() {
            // Total loss plus a retry policy whose first timeout is far
            // beyond the watchdog budget: resolved-count cannot advance,
            // and the watchdog must abort with a diagnostic rather than
            // burn the full 8M-cycle budget.
            let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
            fabric.attach_faults(
                cedar_plan(&FaultConfig::link_noise(3, 1.0)),
                RetryPolicy {
                    base_delay_cycles: 1 << 30,
                    max_retries: 1,
                    max_delay_cycles: 1 << 30,
                },
            );
            let mut dog = Watchdog::new(20_000, "degraded prefetch experiment");
            let err = fabric
                .run_watched_experiment(2, small_traffic(), 8_000_000, &mut dog)
                .unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("degraded prefetch experiment"), "{msg}");
            assert!(dog.is_tripped());
        }

        #[test]
        fn watchdog_leaves_healthy_run_untouched() {
            let mut watched = RoundTripFabric::new(FabricConfig::cedar());
            let mut dog = Watchdog::new(100_000, "healthy run");
            let a = watched
                .run_watched_experiment(2, small_traffic(), 1_000_000, &mut dog)
                .unwrap();
            let mut plain = RoundTripFabric::new(FabricConfig::cedar());
            let b = plain.run_prefetch_experiment(2, small_traffic(), 1_000_000);
            assert_eq!(a, b);
            assert!(!dog.is_tripped());
        }
    }
}
