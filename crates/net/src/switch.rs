//! The 8×8 crossbar switch.
//!
//! Each switch has `radix` input ports and `radix` output ports, a
//! two-word queue on every port (configurable for the \[Turn93\]
//! ablation), round-robin arbitration among inputs contending for the
//! same output, and wormhole packet integrity: once a packet's header
//! word is granted an output, that output carries the packet's words
//! contiguously until the tail passes. Flow control between stages
//! prevents queue overflow — a word moves only if the downstream
//! queue has space.
//!
//! # Combining (Ultracomputer mode)
//!
//! With [`Crossbar::set_combining`] enabled, the switch additionally
//! implements NYU Ultracomputer-style pairwise fetch-and-add
//! combining: when a single-word [`SyncOp`](crate::packet::PacketKind)
//! request is granted an output whose queue already holds a sync
//! request to the same destination, the arriving packet is *absorbed*
//! — parked in a bounded wait buffer keyed by the survivor's id
//! instead of travelling further. When the survivor's reply is
//! produced at the memory module, the fabric asks the switches for
//! every packet absorbed under that id ([decombination]) and fans the
//! reply back out. Combining is strictly opt-in: with zero slots the
//! transfer path is word-for-word the plain crossbar.
//!
//! [decombination]: crate::network::OmegaNetwork::take_combined

use std::collections::VecDeque;

use crate::packet::{Packet, PacketId, PacketKind, Word};
use crate::topology::Topology;

/// An `r × r` crossbar switch with buffered, flow-controlled ports.
///
/// # Examples
///
/// ```
/// use cedar_net::switch::Crossbar;
/// use cedar_net::topology::Topology;
/// use cedar_net::packet::{Packet, Word};
///
/// let topo = Topology::new(8, 2).unwrap();
/// let mut sw = Crossbar::new(8, 2, 0);
/// let pkt = Packet::request(0, 0o35, 1);
/// let word = Word::of_packet(pkt).next().unwrap();
/// assert!(sw.try_accept(0, word));
/// sw.transfer(&topo);
/// // Routing digit for stage 0 of dest 0o35 is 3.
/// assert!(sw.peek_output(3).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    pub(crate) radix: usize,
    pub(crate) queue_words: usize,
    pub(crate) stage: usize,
    pub(crate) inputs: Vec<VecDeque<Word>>,
    pub(crate) outputs: Vec<VecDeque<Word>>,
    /// While an input is mid-packet, the output it is locked to.
    pub(crate) input_lock: Vec<Option<usize>>,
    /// While an output is mid-packet, the input and packet it is
    /// locked to.
    pub(crate) output_lock: Vec<Option<(usize, crate::packet::PacketId)>>,
    /// Per-output round-robin pointer: the input examined first.
    pub(crate) rr_next: Vec<usize>,
    pub(crate) words_switched: u64,
    /// Wait-buffer capacity for combined packets; 0 disables
    /// combining and leaves the transfer path bit-identical to the
    /// plain crossbar.
    pub(crate) combining_slots: usize,
    /// Absorbed packets, keyed by the id of the surviving packet
    /// that carries their request forward.
    pub(crate) wait: Vec<(PacketId, Packet)>,
    /// Sync requests absorbed by combining at this switch.
    pub(crate) words_combined: u64,
}

impl Crossbar {
    /// Creates a switch for `stage` with the given port count and
    /// per-port queue capacity in words.
    ///
    /// # Panics
    ///
    /// Panics if `radix` or `queue_words` is zero.
    #[must_use]
    pub fn new(radix: usize, queue_words: usize, stage: usize) -> Self {
        assert!(radix > 0, "radix must be nonzero");
        assert!(queue_words > 0, "queue capacity must be nonzero");
        Crossbar {
            radix,
            queue_words,
            stage,
            inputs: (0..radix).map(|_| VecDeque::new()).collect(),
            outputs: (0..radix).map(|_| VecDeque::new()).collect(),
            input_lock: vec![None; radix],
            output_lock: vec![None; radix],
            rr_next: vec![0; radix],
            words_switched: 0,
            combining_slots: 0,
            wait: Vec::new(),
            words_combined: 0,
        }
    }

    /// Enables (nonzero) or disables (zero) fetch-and-add combining
    /// with the given wait-buffer capacity.
    pub fn set_combining(&mut self, slots: usize) {
        self.combining_slots = slots;
    }

    /// Sync requests absorbed by combining at this switch.
    #[must_use]
    pub fn words_combined(&self) -> u64 {
        self.words_combined
    }

    /// Absorbed packets currently parked in the wait buffer.
    #[must_use]
    pub fn waiting_combined(&self) -> usize {
        self.wait.len()
    }

    /// Drains every packet absorbed under survivor `id` into `out`
    /// (decombination). Entries keyed by other survivors stay parked.
    pub fn take_combined_into(&mut self, id: PacketId, out: &mut Vec<Packet>) {
        let mut i = 0;
        while i < self.wait.len() {
            if self.wait[i].0 == id {
                out.push(self.wait.remove(i).1);
            } else {
                i += 1;
            }
        }
    }

    /// Offers a word to input port `input`. Returns `false` (word not
    /// consumed) if the input queue is full — this is the inter-stage
    /// flow control.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    #[inline]
    pub fn try_accept(&mut self, input: usize, word: Word) -> bool {
        let q = &mut self.inputs[input];
        if q.len() >= self.queue_words {
            return false;
        }
        q.push_back(word);
        true
    }

    /// Whether input port `input` can accept a word this cycle.
    #[inline]
    #[must_use]
    pub fn can_accept(&self, input: usize) -> bool {
        self.inputs[input].len() < self.queue_words
    }

    /// The word at the head of output queue `output`, if any.
    #[inline]
    #[must_use]
    pub fn peek_output(&self, output: usize) -> Option<&Word> {
        self.outputs[output].front()
    }

    /// Removes and returns the head word of output queue `output`.
    #[inline]
    pub fn pop_output(&mut self, output: usize) -> Option<Word> {
        self.outputs[output].pop_front()
    }

    /// Performs one cycle of internal switching: every output with
    /// queue space accepts at most one word, every input sends at most
    /// one word, contention is resolved round-robin, and wormhole
    /// locks keep packets contiguous.
    pub fn transfer(&mut self, topo: &Topology) {
        for output in 0..self.radix {
            let full = self.outputs[output].len() >= self.queue_words;
            if full && self.combining_slots == 0 {
                continue; // output queue full: downstream backpressure
            }
            let source = match self.output_lock[output] {
                Some((input, _)) => Some(input),
                None => self.arbitrate(output, topo),
            };
            let Some(input) = source else { continue };
            let Some(word) = self.inputs[input].front().copied() else {
                continue; // locked input has no word buffered yet
            };
            if self.combining_slots > 0 && self.try_combine(output, input, &word) {
                continue; // absorbed: the survivor carries it forward
            }
            if full {
                continue; // no combining partner: backpressure stands
            }
            if let Some((_, locked_id)) = self.output_lock[output] {
                debug_assert_eq!(
                    word.packet.id, locked_id,
                    "wormhole violation: interleaved packet on a locked output"
                );
            }
            self.inputs[input].pop_front();
            if word.is_head() && !word.is_tail() {
                self.input_lock[input] = Some(output);
                self.output_lock[output] = Some((input, word.packet.id));
            }
            if word.is_tail() {
                self.input_lock[input] = None;
                self.output_lock[output] = None;
            }
            debug_assert!(
                self.outputs[output].len() < self.queue_words,
                "output queue overflow despite the space check"
            );
            self.outputs[output].push_back(word);
            self.words_switched += 1;
        }
    }

    /// Attempts to combine `word` (about to enter `output`) with a
    /// sync request already queued there. On success the arriving
    /// packet is absorbed: removed from its input and parked in the
    /// wait buffer under the survivor's id. Pairwise in the
    /// Ultracomputer sense — a queued packet that already absorbed
    /// someone cannot absorb again this hop, and only single-word
    /// [`PacketKind::SyncOp`] requests to the same destination
    /// combine (the model carries no addresses; the zoo's hotspot
    /// workload aims every hot sync op at one module, so destination
    /// equality is the combining criterion).
    fn try_combine(&mut self, output: usize, input: usize, word: &Word) -> bool {
        let pkt = word.packet;
        if pkt.words != 1 || pkt.kind != PacketKind::SyncOp {
            return false;
        }
        if self.wait.len() >= self.combining_slots {
            return false;
        }
        let survivor = self.outputs[output].iter().find(|w| {
            w.packet.words == 1
                && w.packet.kind == PacketKind::SyncOp
                && w.packet.dest == pkt.dest
                && w.packet.id != pkt.id
                && !self.wait.iter().any(|(sid, _)| *sid == w.packet.id)
        });
        let Some(survivor) = survivor else {
            return false;
        };
        let sid = survivor.packet.id;
        self.inputs[input].pop_front();
        self.wait.push((sid, pkt));
        self.words_combined += 1;
        true
    }

    /// Round-robin selection of an input whose queued head word is a
    /// packet header routed to `output`.
    fn arbitrate(&mut self, output: usize, topo: &Topology) -> Option<usize> {
        let start = self.rr_next[output];
        for offset in 0..self.radix {
            let input = (start + offset) % self.radix;
            if self.input_lock[input].is_some() {
                continue; // input is mid-packet toward another output
            }
            let Some(word) = self.inputs[input].front() else {
                continue;
            };
            if !word.is_head() {
                // A continuation word must follow its own lock; if the
                // input is unlocked the tail already passed, so this
                // cannot happen with contiguous arrivals.
                debug_assert!(false, "continuation word on unlocked input");
                continue;
            }
            if topo.routing_digit(self.stage, word.packet.dest) == output {
                self.rr_next[output] = (input + 1) % self.radix;
                return Some(input);
            }
        }
        None
    }

    /// Words buffered across all input queues.
    #[inline]
    #[must_use]
    pub fn words_in_inputs(&self) -> usize {
        self.inputs.iter().map(VecDeque::len).sum()
    }

    /// Words buffered across all output queues.
    #[inline]
    #[must_use]
    pub fn words_in_outputs(&self) -> usize {
        self.outputs.iter().map(VecDeque::len).sum()
    }

    /// Total words this switch has moved input→output.
    #[must_use]
    pub fn words_switched(&self) -> u64 {
        self.words_switched
    }

    /// The switch's port count.
    #[must_use]
    pub fn radix(&self) -> usize {
        self.radix
    }
}

// Wormhole locks and round-robin pointers are part of the arbitration
// state machine; dropping any of them would change which input wins
// the next contended output, so all of them round-trip.
cedar_snap::snapshot_struct!(Crossbar {
    radix,
    queue_words,
    stage,
    inputs,
    outputs,
    input_lock,
    output_lock,
    rr_next,
    words_switched,
    combining_slots,
    wait,
    words_combined,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketId, PacketKind};

    fn topo() -> Topology {
        Topology::new(8, 2).unwrap()
    }

    fn head(src: usize, dest: usize, id: u64) -> Word {
        Word::of_packet(Packet::request(src, dest, id))
            .next()
            .unwrap()
    }

    #[test]
    fn routes_to_digit_output() {
        let t = topo();
        let mut sw = Crossbar::new(8, 2, 1);
        // Stage 1 uses the least-significant digit: dest 0o26 -> port 6.
        sw.try_accept(2, head(0, 0o26, 1));
        sw.transfer(&t);
        assert!(sw.peek_output(6).is_some());
        assert_eq!(sw.words_switched(), 1);
    }

    #[test]
    fn respects_input_queue_capacity() {
        let mut sw = Crossbar::new(8, 2, 0);
        assert!(sw.try_accept(0, head(0, 0, 1)));
        assert!(sw.try_accept(0, head(0, 0, 2)));
        assert!(
            !sw.try_accept(0, head(0, 0, 3)),
            "third word must be refused"
        );
        assert!(!sw.can_accept(0));
    }

    #[test]
    fn output_backpressure_stalls_transfer() {
        let t = topo();
        let mut sw = Crossbar::new(8, 2, 0);
        // Fill output 0 by routing two words (two cycles), then offer more.
        for id in 0..4 {
            sw.try_accept(id as usize, head(0, 0, id));
        }
        sw.transfer(&t); // one word to output 0
        sw.transfer(&t); // second word: queue now full
        assert_eq!(sw.words_in_outputs(), 2);
        sw.transfer(&t); // no space: nothing moves
        assert_eq!(sw.words_in_outputs(), 2);
        assert_eq!(sw.words_switched(), 2);
        // Draining the output resumes flow.
        sw.pop_output(0);
        sw.transfer(&t);
        assert_eq!(sw.words_switched(), 3);
    }

    #[test]
    fn round_robin_alternates_between_contenders() {
        let t = topo();
        let mut sw = Crossbar::new(8, 4, 0);
        // Inputs 1 and 2 both route to output 0 (dest digit 0).
        sw.try_accept(1, head(1, 0o01, 10));
        sw.try_accept(1, head(1, 0o02, 11));
        sw.try_accept(2, head(2, 0o03, 20));
        sw.try_accept(2, head(2, 0o04, 21));
        let mut order = Vec::new();
        for _ in 0..4 {
            sw.transfer(&t);
            if let Some(w) = sw.pop_output(0) {
                order.push(w.packet.id);
            }
        }
        // RR pointer starts at input 0, so input 1 wins first, then 2, ...
        assert_eq!(
            order,
            vec![PacketId(10), PacketId(20), PacketId(11), PacketId(21)]
        );
    }

    #[test]
    fn wormhole_keeps_multiword_packets_contiguous() {
        let t = topo();
        let mut sw = Crossbar::new(8, 4, 0);
        // A three-word write from input 0 and a competing one-word read
        // from input 1, both to output 0.
        let write = Packet::write(0, 0o00, 1, 2);
        let mut write_words = Word::of_packet(write);
        sw.try_accept(0, write_words.next().unwrap());
        sw.try_accept(0, write_words.next().unwrap());
        sw.try_accept(0, write_words.next().unwrap());
        sw.try_accept(1, head(1, 0o00, 2));
        let mut out = Vec::new();
        for _ in 0..6 {
            sw.transfer(&t);
            while let Some(w) = sw.pop_output(0) {
                out.push((w.packet.id, w.index));
            }
        }
        assert_eq!(
            out,
            vec![
                (PacketId(1), 0),
                (PacketId(1), 1),
                (PacketId(1), 2),
                (PacketId(2), 0)
            ],
            "write words must not be interleaved with the read"
        );
    }

    #[test]
    fn distinct_outputs_switch_in_parallel() {
        let t = topo();
        let mut sw = Crossbar::new(8, 2, 1);
        for digit in 0..8usize {
            sw.try_accept(digit, head(digit, digit, digit as u64));
        }
        sw.transfer(&t);
        assert_eq!(sw.words_switched(), 8, "all eight ports move in one cycle");
        for digit in 0..8 {
            assert!(sw.peek_output(digit).is_some());
        }
    }

    #[test]
    fn sync_packets_route_like_any_other() {
        let t = topo();
        let mut sw = Crossbar::new(8, 2, 1);
        let pkt = Packet::new(PacketId(5), 0, 0o07, 2, PacketKind::SyncOp);
        let mut words = Word::of_packet(pkt);
        sw.try_accept(3, words.next().unwrap());
        sw.try_accept(3, words.next().unwrap());
        sw.transfer(&t);
        sw.transfer(&t);
        assert_eq!(sw.words_in_outputs(), 2);
        assert!(sw.peek_output(7).is_some());
    }

    #[test]
    #[should_panic(expected = "queue capacity must be nonzero")]
    fn rejects_zero_capacity() {
        let _ = Crossbar::new(8, 0, 0);
    }

    fn sync(src: usize, dest: usize, id: u64) -> Word {
        Word::of_packet(Packet::new(PacketId(id), src, dest, 1, PacketKind::SyncOp))
            .next()
            .unwrap()
    }

    #[test]
    fn combining_absorbs_same_dest_sync_ops() {
        let t = topo();
        let mut sw = Crossbar::new(8, 2, 0);
        sw.set_combining(4);
        sw.try_accept(0, sync(0, 0o00, 1));
        sw.try_accept(1, sync(1, 0o00, 2));
        sw.transfer(&t); // id 1 switches to output 0
        sw.transfer(&t); // id 2 meets it there and is absorbed
        assert_eq!(sw.words_combined(), 1);
        assert_eq!(sw.waiting_combined(), 1);
        assert_eq!(sw.words_in_outputs(), 1, "only the survivor travels");
        let mut out = Vec::new();
        sw.take_combined_into(PacketId(1), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, PacketId(2));
        assert_eq!(sw.waiting_combined(), 0);
    }

    #[test]
    fn combining_is_pairwise_not_n_way() {
        let t = topo();
        let mut sw = Crossbar::new(8, 2, 0);
        sw.set_combining(8);
        sw.try_accept(0, sync(0, 0o00, 1));
        sw.try_accept(1, sync(1, 0o00, 2));
        sw.try_accept(2, sync(2, 0o00, 3));
        sw.transfer(&t); // 1 switches
        sw.transfer(&t); // 2 absorbed by 1
        sw.transfer(&t); // 1 already absorbed once: 3 switches instead
        assert_eq!(sw.words_combined(), 1);
        assert_eq!(
            sw.words_in_outputs(),
            2,
            "third sync op becomes a second survivor"
        );
    }

    #[test]
    fn combining_ignores_reads_and_mismatched_dests() {
        let t = topo();
        let mut sw = Crossbar::new(8, 2, 0);
        sw.set_combining(4);
        // Two plain reads to the same dest: no combining.
        sw.try_accept(0, head(0, 0o00, 1));
        sw.try_accept(1, head(1, 0o00, 2));
        sw.transfer(&t);
        sw.transfer(&t);
        assert_eq!(sw.words_combined(), 0);
        assert_eq!(sw.words_in_outputs(), 2);
    }

    #[test]
    fn combining_respects_wait_capacity() {
        let t = topo();
        let mut sw = Crossbar::new(8, 4, 0);
        sw.set_combining(1);
        for id in 1..=4 {
            sw.try_accept(id as usize - 1, sync(id as usize - 1, 0o00, id));
        }
        for _ in 0..8 {
            sw.transfer(&t);
        }
        assert_eq!(sw.words_combined(), 1, "one slot: one absorption");
    }

    #[test]
    fn zero_slots_is_bit_identical_to_plain_transfer() {
        let t = topo();
        let mut plain = Crossbar::new(8, 2, 0);
        let mut off = Crossbar::new(8, 2, 0);
        off.set_combining(0);
        for id in 0..6u64 {
            let w = sync(id as usize, 0o00, id);
            plain.try_accept(id as usize % 8, w);
            off.try_accept(id as usize % 8, w);
        }
        for _ in 0..4 {
            plain.transfer(&t);
            off.transfer(&t);
            assert_eq!(plain.words_switched(), off.words_switched());
            assert_eq!(plain.words_in_outputs(), off.words_in_outputs());
        }
    }
}
