//! Quick engine comparison: table2 rk_prefetch reference shape.
use cedar_net::fabric::{FabricConfig, RoundTripFabric};
use cedar_net::{EngineKind, PrefetchTraffic};
use std::time::Instant;

fn main() {
    let traffic = PrefetchTraffic::rk_aggressive(16);
    for (name, kind) in [
        ("generic", EngineKind::Generic),
        ("specialized", EngineKind::Specialized),
    ] {
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        fabric.set_engine(kind);
        let start = Instant::now();
        let report = fabric.run_prefetch_experiment(32, traffic, 64_000_000);
        let elapsed = start.elapsed();
        let cycles = report.total_net_cycles;
        let requests: usize = report.per_ce.iter().map(Vec::len).sum();
        println!(
            "{name:12} {:>8.1} ms  {cycles} cycles  {:.0} cycles/sec  {requests} reqs  engine={:?}",
            elapsed.as_secs_f64() * 1e3,
            cycles as f64 / elapsed.as_secs_f64(),
            fabric.last_run_engine()
        );
    }
}
