//! Randomized property tests for the omega network: delivery,
//! conservation, and wormhole integrity under randomized traffic,
//! driven by the simulator's deterministic SplitMix64 generator.

use cedar_faults::{FaultConfig, FaultPlan, MachineShape, RetryPolicy};
use cedar_net::config::NetworkConfig;
use cedar_net::fabric::{FabricConfig, PrefetchTraffic, RoundTripFabric};
use cedar_net::network::OmegaNetwork;
use cedar_net::packet::{Packet, PacketId, PacketKind};
use cedar_net::topology::Topology;
use cedar_sim::rng::SplitMix64;

fn cfg() -> NetworkConfig {
    NetworkConfig::cedar()
}

const CASES: usize = 64;

/// Every injected packet is delivered exactly once, at its
/// destination, with all its words, no matter the traffic mix.
#[test]
fn all_packets_delivered_to_their_destinations() {
    let mut rng = SplitMix64::new(0x0e71);
    for _ in 0..CASES {
        let n = 1 + rng.next_below(79) as usize;
        let specs: Vec<(usize, usize, u8)> = (0..n)
            .map(|_| {
                (
                    rng.next_below(64) as usize,
                    rng.next_below(64) as usize,
                    1 + rng.next_below(4) as u8,
                )
            })
            .collect();
        let mut net = OmegaNetwork::new(cfg());
        let mut pending: Vec<Packet> = specs
            .iter()
            .enumerate()
            .map(|(i, &(src, dest, words))| {
                Packet::new(PacketId(i as u64), src, dest, words, PacketKind::Write)
            })
            .collect();
        let total = pending.len();
        let mut delivered = Vec::new();
        let mut cycles = 0u64;
        while delivered.len() < total {
            pending.retain(|&p| !net.try_inject(p));
            net.step();
            delivered.extend(net.drain_delivered());
            cycles += 1;
            assert!(cycles < 200_000, "network livelocked");
        }
        assert_eq!(delivered.len(), total);
        let mut seen = vec![false; total];
        for d in &delivered {
            let idx = d.packet.id.0 as usize;
            assert!(!seen[idx], "duplicate delivery");
            seen[idx] = true;
            let (_, dest, words) = specs[idx];
            assert_eq!(d.packet.dest, dest);
            assert_eq!(d.packet.words, words);
            assert!(d.tail_exit >= d.head_exit);
        }
        assert!(net.is_idle(), "no residue after all deliveries");
        assert_eq!(net.words_injected(), net.words_exited());
    }
}

/// Tag routing agrees with the analytic route for every pair on every
/// supported geometry.
#[test]
fn analytic_route_terminates_at_destination() {
    let mut rng = SplitMix64::new(0x0e72);
    for _ in 0..CASES {
        let radix = 2usize.pow(1 + rng.next_below(3) as u32);
        let stages = match radix {
            2 => 6,
            4 => 3,
            _ => 2,
        };
        let t = Topology::new(radix, stages).unwrap();
        let src = rng.next_below(64) as usize % t.ports();
        let dest = rng.next_below(64) as usize % t.ports();
        let route = t.route(src, dest);
        assert_eq!(route.len(), stages);
        let (last_switch, _, last_out) = *route.last().unwrap();
        match t.next_hop(stages - 1, last_switch, last_out) {
            cedar_net::topology::Hop::Output(pos) => assert_eq!(pos, dest),
            cedar_net::topology::Hop::Switch { .. } => panic!("did not exit"),
        }
    }
}

/// The shuffle is always a permutation whose k-fold composition is the
/// identity (rotating k digits k times).
#[test]
fn shuffle_order_divides_stage_count() {
    for radix_pow in 1u32..=3 {
        let radix = 2usize.pow(radix_pow);
        let stages = match radix {
            2 => 6,
            4 => 3,
            _ => 2,
        };
        let t = Topology::new(radix, stages).unwrap();
        for p in 0..t.ports() {
            let mut q = p;
            for _ in 0..stages {
                q = t.shuffle(q);
            }
            assert_eq!(q, p, "k-fold shuffle must be identity");
        }
    }
}

/// Theory meets simulation: a pair of routes the topology calls
/// conflict-free travels with zero mutual interference — each packet's
/// exit time equals its solo exit time.
#[test]
fn conflict_free_pairs_do_not_interfere() {
    let topo = Topology::new(8, 2).unwrap();
    let mut rng = SplitMix64::new(0x0e73);
    let mut checked = 0;
    while checked < CASES {
        let (src_a, dest_a, src_b, dest_b) = (
            rng.next_below(64) as usize,
            rng.next_below(64) as usize,
            rng.next_below(64) as usize,
            rng.next_below(64) as usize,
        );
        if topo.routes_conflict(src_a, dest_a, src_b, dest_b) {
            continue;
        }
        checked += 1;
        let solo = |src: usize, dest: usize| {
            let mut net = OmegaNetwork::new(cfg());
            net.try_inject(Packet::request(src, dest, 0));
            for _ in 0..50 {
                net.step();
                if let Some(d) = net.drain_delivered().pop() {
                    return d.head_exit;
                }
            }
            panic!("packet lost");
        };
        let t_a = solo(src_a, dest_a);
        let t_b = solo(src_b, dest_b);
        let mut net = OmegaNetwork::new(cfg());
        net.try_inject(Packet::request(src_a, dest_a, 0));
        net.try_inject(Packet::request(src_b, dest_b, 1));
        let mut exits = std::collections::HashMap::new();
        for _ in 0..100 {
            net.step();
            for d in net.drain_delivered() {
                exits.insert(d.packet.id.0, d.head_exit);
            }
        }
        assert_eq!(exits.get(&0).copied(), Some(t_a), "packet A delayed");
        assert_eq!(exits.get(&1).copied(), Some(t_b), "packet B delayed");
    }
}

/// Determinism: the same injection schedule produces the identical
/// delivery schedule.
#[test]
fn network_is_deterministic() {
    let mut rng = SplitMix64::new(0x0e74);
    for _ in 0..CASES {
        let n = 1 + rng.next_below(39) as usize;
        let specs: Vec<(usize, usize)> = (0..n)
            .map(|_| (rng.next_below(64) as usize, rng.next_below(64) as usize))
            .collect();
        let run = || {
            let mut net = OmegaNetwork::new(cfg());
            let mut out = Vec::new();
            for (i, &(src, dest)) in specs.iter().enumerate() {
                let _ = net.try_inject(Packet::request(src, dest, i as u64));
            }
            for _ in 0..5_000 {
                net.step();
                out.extend(net.drain_delivered());
            }
            out
        };
        assert_eq!(run(), run());
    }
}

/// Packet conservation on the round-trip fabric, fault-free: every
/// request a source injects comes back as a reply exactly once — the
/// report resolves with zero retries, drops, or abandonments.
#[test]
fn fabric_returns_every_packet_exactly_once() {
    let mut rng = SplitMix64::new(0x0e75);
    for _ in 0..8 {
        let ces = [4usize, 8, 16][rng.next_below(3) as usize];
        let blocks = 2 + rng.next_below(3) as u32;
        let mut traffic = PrefetchTraffic::compiler_default(blocks);
        traffic.gap_ce_cycles = rng.next_below(3);
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        let report = fabric.run_prefetch_experiment(ces, traffic, 16_000_000);
        assert!(report.completed(), "run must drain");
        assert!(report.resolved());
        let expected = u64::from(blocks) * u64::from(traffic.block_len) * ces as u64;
        assert_eq!(report.request_count(), expected, "one reply per request");
        assert_eq!(report.retries(), 0);
        assert_eq!(report.words_dropped(), 0);
        assert_eq!(report.failed_requests(), 0);
    }
}

/// Packet conservation under injected link drops: with a lossy plan
/// attached, every request still resolves exactly once — recovered by
/// the timeout-and-retry machinery, never duplicated by late replies.
#[test]
fn fabric_recovers_every_dropped_packet_exactly_once() {
    let mut rng = SplitMix64::new(0x0e76);
    let mut saw_drops = false;
    for _ in 0..6 {
        let seed = rng.next_u64();
        let drop_prob = 0.01 + rng.next_f64() * 0.03;
        let plan = FaultPlan::generate(
            &FaultConfig::link_noise(seed, drop_prob),
            &MachineShape::cedar(),
        )
        .unwrap();
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        fabric.attach_faults(plan, RetryPolicy::fabric());
        let traffic = PrefetchTraffic::compiler_default(3);
        let report = fabric.run_prefetch_experiment(8, traffic, 64_000_000);
        assert!(report.resolved(), "every request resolves");
        let expected = 3 * u64::from(traffic.block_len) * 8;
        assert_eq!(
            report.request_count(),
            expected,
            "exactly one reply per request, retries notwithstanding"
        );
        assert_eq!(report.failed_requests(), 0, "these rates are recoverable");
        assert!(
            report.retries() >= report.words_dropped() / 2,
            "dropped requests come back only via reissue"
        );
        saw_drops |= report.words_dropped() > 0;
    }
    assert!(saw_drops, "the sweep should exercise at least one drop");
}
