//! Property-based tests for the omega network: delivery, conservation,
//! and wormhole integrity under randomized traffic.

use proptest::prelude::*;

use cedar_net::config::NetworkConfig;
use cedar_net::network::OmegaNetwork;
use cedar_net::packet::{Packet, PacketId, PacketKind};
use cedar_net::topology::Topology;

fn cfg() -> NetworkConfig {
    NetworkConfig::cedar()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every injected packet is delivered exactly once, at its
    /// destination, with all its words, no matter the traffic mix.
    #[test]
    fn all_packets_delivered_to_their_destinations(
        specs in prop::collection::vec((0usize..64, 0usize..64, 1u8..=4), 1..80)
    ) {
        let mut net = OmegaNetwork::new(cfg());
        let mut pending: Vec<Packet> = specs
            .iter()
            .enumerate()
            .map(|(i, &(src, dest, words))| {
                Packet::new(PacketId(i as u64), src, dest, words, PacketKind::Write)
            })
            .collect();
        let total = pending.len();
        let mut delivered = Vec::new();
        let mut cycles = 0u64;
        while delivered.len() < total {
            pending.retain(|&p| !net.try_inject(p));
            net.step();
            delivered.extend(net.drain_delivered());
            cycles += 1;
            prop_assert!(cycles < 200_000, "network livelocked");
        }
        prop_assert_eq!(delivered.len(), total);
        let mut seen = vec![false; total];
        for d in &delivered {
            let idx = d.packet.id.0 as usize;
            prop_assert!(!seen[idx], "duplicate delivery");
            seen[idx] = true;
            let (_, dest, words) = specs[idx];
            prop_assert_eq!(d.packet.dest, dest);
            prop_assert_eq!(d.packet.words, words);
            prop_assert!(d.tail_exit >= d.head_exit);
        }
        prop_assert!(net.is_idle(), "no residue after all deliveries");
        prop_assert_eq!(net.words_injected(), net.words_exited());
    }

    /// Tag routing agrees with the analytic route for every pair on
    /// every supported geometry.
    #[test]
    fn analytic_route_terminates_at_destination(
        src in 0usize..64,
        dest in 0usize..64,
        radix_pow in 1u32..=3,
    ) {
        let radix = 2usize.pow(radix_pow);
        let stages = match radix {
            2 => 6, 4 => 3, _ => 2,
        };
        let t = Topology::new(radix, stages);
        let src = src % t.ports();
        let dest = dest % t.ports();
        let route = t.route(src, dest);
        prop_assert_eq!(route.len(), stages);
        let (last_switch, _, last_out) = *route.last().unwrap();
        match t.next_hop(stages - 1, last_switch, last_out) {
            cedar_net::topology::Hop::Output(pos) => prop_assert_eq!(pos, dest),
            cedar_net::topology::Hop::Switch { .. } => prop_assert!(false, "did not exit"),
        }
    }

    /// The shuffle is always a permutation whose k-fold composition is
    /// the identity (rotating k digits k times).
    #[test]
    fn shuffle_order_divides_stage_count(radix_pow in 1u32..=3) {
        let radix = 2usize.pow(radix_pow);
        let stages = match radix { 2 => 6, 4 => 3, _ => 2 };
        let t = Topology::new(radix, stages);
        for p in 0..t.ports() {
            let mut q = p;
            for _ in 0..stages {
                q = t.shuffle(q);
            }
            prop_assert_eq!(q, p, "k-fold shuffle must be identity");
        }
    }

    /// Theory meets simulation: a pair of routes the topology calls
    /// conflict-free travels with zero mutual interference — each
    /// packet's exit time equals its solo exit time.
    #[test]
    fn conflict_free_pairs_do_not_interfere(
        src_a in 0usize..64,
        dest_a in 0usize..64,
        src_b in 0usize..64,
        dest_b in 0usize..64,
    ) {
        let topo = cedar_net::topology::Topology::new(8, 2);
        prop_assume!(!topo.routes_conflict(src_a, dest_a, src_b, dest_b));
        let solo = |src: usize, dest: usize| {
            let mut net = OmegaNetwork::new(cfg());
            net.try_inject(Packet::request(src, dest, 0));
            for _ in 0..50 {
                net.step();
                if let Some(d) = net.drain_delivered().pop() {
                    return d.head_exit;
                }
            }
            panic!("packet lost");
        };
        let t_a = solo(src_a, dest_a);
        let t_b = solo(src_b, dest_b);
        let mut net = OmegaNetwork::new(cfg());
        net.try_inject(Packet::request(src_a, dest_a, 0));
        net.try_inject(Packet::request(src_b, dest_b, 1));
        let mut exits = std::collections::HashMap::new();
        for _ in 0..100 {
            net.step();
            for d in net.drain_delivered() {
                exits.insert(d.packet.id.0, d.head_exit);
            }
        }
        prop_assert_eq!(exits.get(&0).copied(), Some(t_a), "packet A delayed");
        prop_assert_eq!(exits.get(&1).copied(), Some(t_b), "packet B delayed");
    }

    /// Determinism: the same injection schedule produces the identical
    /// delivery schedule.
    #[test]
    fn network_is_deterministic(
        specs in prop::collection::vec((0usize..64, 0usize..64), 1..40)
    ) {
        let run = || {
            let mut net = OmegaNetwork::new(cfg());
            let mut out = Vec::new();
            for (i, &(src, dest)) in specs.iter().enumerate() {
                let _ = net.try_inject(Packet::request(src, dest, i as u64));
            }
            for _ in 0..5_000 {
                net.step();
                out.extend(net.drain_delivered());
            }
            out
        };
        prop_assert_eq!(run(), run());
    }
}
