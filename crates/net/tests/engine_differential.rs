//! Differential tests between the generic and specialized execution
//! engines: across fixed reference shapes and randomized
//! topology/traffic/fault cases, both engines must produce bit-identical
//! reports, bit-identical mid-run checkpoints, and (for ineligible
//! configurations) an explicit, obs-visible fallback. Randomness comes
//! from the simulator's deterministic SplitMix64, so every failure
//! reproduces from the seed.

use cedar_faults::{FaultConfig, FaultPlan, MachineShape, RetryPolicy};
use cedar_net::fabric::{FabricConfig, FabricReport, PrefetchTraffic, RoundTripFabric};
use cedar_net::{AddressPattern, EngineKind};
use cedar_obs::{Obs, ObsConfig};
use cedar_sim::rng::SplitMix64;
use cedar_sim::watchdog::Watchdog;

const MAX_NET_CYCLES: u64 = 4_000_000;

/// A random specialization-eligible fabric: power-of-two omega
/// topologies with randomized queue depths and module timing (all
/// within the specialized engine's dimension bounds).
fn random_config(rng: &mut SplitMix64) -> FabricConfig {
    let mut cfg = FabricConfig::cedar();
    let topologies = [(8, 2), (4, 2), (4, 3), (2, 4)];
    let (radix, stages) = topologies[rng.next_below(topologies.len() as u64) as usize];
    cfg.net.radix = radix;
    cfg.net.stages = stages;
    cfg.net.queue_words = 2 + rng.next_below(3) as usize;
    cfg.net.exit_fifo_words = 2 + rng.next_below(3) as usize;
    cfg.mem_modules = cfg.net.ports() / 2;
    cfg.mem_service_net_cycles = 1 + rng.next_below(3);
    cfg.module_buffer_requests = 1 + rng.next_below(3) as usize;
    cfg
}

/// A random prefetch traffic shape, including hot-spot patterns (which
/// exercise the per-issue RNG draw both engines must replay in the
/// same order).
fn random_traffic(rng: &mut SplitMix64) -> PrefetchTraffic {
    let mut t = PrefetchTraffic::rk_aggressive(1 + rng.next_below(3) as u32);
    t.block_len = 8 << rng.next_below(3);
    t.window = 2 + rng.next_below(31) as u32;
    t.gap_ce_cycles = rng.next_below(5);
    t.streams = 1 + rng.next_below(4) as u32;
    t.writes_per_read = [0.0, 0.5, 1.0][rng.next_below(3) as usize];
    if rng.next_below(3) == 0 {
        t.pattern = AddressPattern::HotSpot {
            module: rng.next_below(4) as usize,
            fraction: 0.25,
        };
    }
    t
}

/// Runs the full experiment on the requested engine, checkpointing at
/// `cut` driven net cycles. Returns the mid-run checkpoint bytes, the
/// final report, and which engine actually drove the run.
fn run_with_engine(
    cfg: FabricConfig,
    engine: EngineKind,
    n_ces: usize,
    traffic: PrefetchTraffic,
    cut: u64,
) -> (Vec<u8>, FabricReport, Option<&'static str>) {
    let mut fabric = RoundTripFabric::new(cfg);
    fabric.set_engine(engine);
    let mut exp = fabric.begin_experiment(n_ces, traffic, MAX_NET_CYCLES);
    fabric
        .drive_experiment(&mut exp, None, Some(cut))
        .expect("no watchdog attached");
    let bytes = fabric.checkpoint_experiment(&exp);
    fabric
        .drive_experiment(&mut exp, None, None)
        .expect("no watchdog attached");
    let engine_ran = fabric.last_run_engine();
    (bytes, fabric.finish_experiment(exp), engine_ran)
}

#[test]
fn reference_shapes_match_across_engines() {
    // The paper's reference shape plus traffic variants: the configs
    // the perf suite actually measures must agree engine-to-engine,
    // including the checkpoint taken mid-flight.
    let mut aggressive = PrefetchTraffic::rk_aggressive(2);
    aggressive.block_len = 64;
    let mut hot = PrefetchTraffic::rk_aggressive(1);
    hot.block_len = 32;
    hot.pattern = AddressPattern::HotSpot {
        module: 3,
        fraction: 0.3,
    };
    let mut gappy = PrefetchTraffic::rk_aggressive(2);
    gappy.block_len = 16;
    gappy.gap_ce_cycles = 40;
    for (case, traffic) in [aggressive, hot, gappy].into_iter().enumerate() {
        let cfg = FabricConfig::cedar();
        let (gen_bytes, gen_report, gen_engine) =
            run_with_engine(cfg.clone(), EngineKind::Generic, 32, traffic, 5_000);
        let (spec_bytes, spec_report, spec_engine) =
            run_with_engine(cfg, EngineKind::Specialized, 32, traffic, 5_000);
        assert_eq!(gen_engine, Some("generic"), "case {case}");
        assert_eq!(spec_engine, Some("specialized"), "case {case}");
        assert!(gen_report.completed(), "case {case} must drain");
        assert_eq!(
            gen_bytes, spec_bytes,
            "case {case}: mid-run checkpoints diverged"
        );
        assert_eq!(gen_report, spec_report, "case {case}: reports diverged");
    }
}

#[test]
fn random_machines_match_across_engines() {
    let mut rng = SplitMix64::new(0xD1FF_CEDA);
    for case in 0..24 {
        let cfg = random_config(&mut rng);
        let traffic = random_traffic(&mut rng);
        let n_ces = 1 + rng.next_below((cfg.net.ports() / 2) as u64) as usize;
        let cut = rng.next_below(50_000);
        let (gen_bytes, gen_report, _) =
            run_with_engine(cfg.clone(), EngineKind::Generic, n_ces, traffic, cut);
        let (spec_bytes, spec_report, spec_engine) =
            run_with_engine(cfg, EngineKind::Specialized, n_ces, traffic, cut);
        assert_eq!(
            spec_engine,
            Some("specialized"),
            "case {case}: eligible config must not fall back"
        );
        assert!(gen_report.completed(), "case {case} must drain");
        assert_eq!(
            gen_bytes, spec_bytes,
            "case {case}: mid-run checkpoints diverged (cut {cut}, {n_ces} CEs)"
        );
        assert_eq!(
            gen_report, spec_report,
            "case {case}: reports diverged ({n_ces} CEs)"
        );
    }
}

#[test]
fn faulted_runs_fall_back_and_still_match() {
    // Fault schedules are outside the specialized family: requesting
    // the specialized engine must fall back to generic — loudly via
    // `last_fallback` — and produce the exact generic result.
    let mut rng = SplitMix64::new(0xFA11_CEDA);
    for case in 0..6 {
        let traffic = random_traffic(&mut rng);
        let n_ces = 1 + rng.next_below(32) as usize;
        let rate = [0.01, 0.02, 0.05][rng.next_below(3) as usize];
        let seed = rng.next_below(u64::MAX);
        let build = |engine: EngineKind| {
            let plan =
                FaultPlan::generate(&FaultConfig::degraded(seed, rate), &MachineShape::cedar())
                    .expect("degraded config is valid");
            let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
            fabric.attach_faults(plan, RetryPolicy::fabric());
            fabric.set_engine(engine);
            fabric
        };
        let mut generic = build(EngineKind::Generic);
        let expected = generic.run_prefetch_experiment(n_ces, traffic, MAX_NET_CYCLES);
        let mut wanted_spec = build(EngineKind::Specialized);
        let actual = wanted_spec.run_prefetch_experiment(n_ces, traffic, MAX_NET_CYCLES);
        assert_eq!(
            wanted_spec.last_run_engine(),
            Some("generic"),
            "case {case}: faulted run must fall back"
        );
        assert_eq!(
            wanted_spec.last_fallback(),
            Some("fault schedule attached"),
            "case {case}"
        );
        assert_eq!(
            expected, actual,
            "case {case}: fallback diverged from generic (seed {seed:#x}, rate {rate})"
        );
    }
}

#[test]
fn fallback_is_obs_visible() {
    // Telemetry itself blocks specialization (the hooks are compiled
    // out of the fast path), so an obs-attached fabric asked for the
    // specialized engine falls back — and says so on the
    // `engine.fallback` counter.
    let obs = Obs::new(ObsConfig::metrics_only());
    let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
    fabric.set_obs(&obs);
    fabric.set_engine(EngineKind::Specialized);
    let mut traffic = PrefetchTraffic::rk_aggressive(1);
    traffic.block_len = 16;
    let with_obs = fabric.run_prefetch_experiment(8, traffic, MAX_NET_CYCLES);
    assert_eq!(fabric.last_run_engine(), Some("generic"));
    assert_eq!(fabric.last_fallback(), Some("telemetry attached"));
    assert_eq!(
        obs.counter_value("engine.fallback"),
        1,
        "one drive, one fallback tick"
    );
    // Attaching telemetry must not change the simulation itself, and
    // the bare fabric runs specialized.
    let mut bare = RoundTripFabric::new(FabricConfig::cedar());
    bare.set_engine(EngineKind::Specialized);
    let without_obs = bare.run_prefetch_experiment(8, traffic, MAX_NET_CYCLES);
    assert_eq!(bare.last_run_engine(), Some("specialized"));
    assert_eq!(with_obs, without_obs, "telemetry perturbed the simulation");
}

#[test]
fn structural_fallback_names_the_blocker() {
    let mut cfg = FabricConfig::cedar();
    cfg.module_buffer_requests = 65; // past the specialized bound
    let mut fabric = RoundTripFabric::new(cfg);
    fabric.set_engine(EngineKind::Specialized);
    let mut traffic = PrefetchTraffic::rk_aggressive(1);
    traffic.block_len = 16;
    fabric.run_prefetch_experiment(8, traffic, MAX_NET_CYCLES);
    assert_eq!(fabric.last_run_engine(), Some("generic"));
    assert_eq!(
        fabric.last_fallback(),
        Some("module buffers deeper than 64 requests")
    );
}

#[test]
fn watchdog_stalls_identically_across_engines() {
    // A gap so long the watchdog's budget expires between blocks: both
    // engines must trip at the same simulated cycle with the same
    // diagnostic (the specialized fast-forward honors the same
    // watchdog horizon as the generic one).
    let mut traffic = PrefetchTraffic::rk_aggressive(2);
    traffic.block_len = 16;
    traffic.gap_ce_cycles = 50_000;
    let stall = |engine: EngineKind| {
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        fabric.set_engine(engine);
        let mut dog = Watchdog::new(2_000, "engine differential");
        let err = fabric
            .run_watched_experiment(8, traffic, MAX_NET_CYCLES, &mut dog)
            .expect_err("the gap must out-wait the watchdog");
        format!("{err:?}")
    };
    assert_eq!(stall(EngineKind::Generic), stall(EngineKind::Specialized));
}

#[test]
fn checkpoints_resume_across_engines() {
    // A checkpoint written by one engine must be resumable by the
    // other with a bit-identical final report — in both directions.
    let mut rng = SplitMix64::new(0xC055_CEDA);
    for case in 0..6 {
        let cfg = random_config(&mut rng);
        let traffic = random_traffic(&mut rng);
        let n_ces = 1 + rng.next_below((cfg.net.ports() / 2) as u64) as usize;
        let cut = rng.next_below(30_000);
        let mut reference = RoundTripFabric::new(cfg.clone());
        reference.set_engine(EngineKind::Generic);
        let expected = reference.run_prefetch_experiment(n_ces, traffic, MAX_NET_CYCLES);
        for (first, second) in [
            (EngineKind::Generic, EngineKind::Specialized),
            (EngineKind::Specialized, EngineKind::Generic),
        ] {
            let mut fabric = RoundTripFabric::new(cfg.clone());
            fabric.set_engine(first);
            let mut exp = fabric.begin_experiment(n_ces, traffic, MAX_NET_CYCLES);
            fabric
                .drive_experiment(&mut exp, None, Some(cut))
                .expect("no watchdog attached");
            let bytes = fabric.checkpoint_experiment(&exp);
            let (mut resumed, mut exp2) =
                RoundTripFabric::restore_experiment(&bytes).expect("checkpoint decodes");
            resumed.set_engine(second);
            resumed
                .drive_experiment(&mut exp2, None, None)
                .expect("no watchdog attached");
            let report = resumed.finish_experiment(exp2);
            assert_eq!(
                expected, report,
                "case {case}: {first:?}→{second:?} resume diverged (cut {cut}, {n_ces} CEs)"
            );
        }
    }
}
