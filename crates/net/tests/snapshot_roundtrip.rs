//! Randomized checkpoint/restore property tests: across random
//! topologies, traffic shapes, cut points and fault schedules, a run
//! that is checkpointed mid-flight, serialized, restored and driven to
//! completion must produce the byte-identical report of a run that was
//! never interrupted. Driven by the simulator's deterministic
//! SplitMix64 generator, so every failure reproduces from the seed.

use cedar_faults::{FaultConfig, FaultPlan, MachineShape, RetryPolicy};
use cedar_net::fabric::{FabricConfig, FabricReport, PrefetchTraffic, RoundTripFabric};
use cedar_sim::rng::SplitMix64;

const MAX_NET_CYCLES: u64 = 4_000_000;

/// A random fabric configuration: one of several omega topologies with
/// randomized queue depths and module timing.
fn random_config(rng: &mut SplitMix64) -> FabricConfig {
    let mut cfg = FabricConfig::cedar();
    // (radix, stages) pairs with 16 or 64 network positions.
    let topologies = [(8, 2), (4, 2), (4, 3), (2, 4)];
    let (radix, stages) = topologies[rng.next_below(topologies.len() as u64) as usize];
    cfg.net.radix = radix;
    cfg.net.stages = stages;
    cfg.net.queue_words = 2 + rng.next_below(3) as usize;
    cfg.net.exit_fifo_words = 2 + rng.next_below(3) as usize;
    cfg.mem_modules = cfg.net.ports() / 2;
    cfg.mem_service_net_cycles = 1 + rng.next_below(3);
    cfg.module_buffer_requests = 1 + rng.next_below(3) as usize;
    cfg
}

/// A random prefetch traffic shape, kept small enough that every case
/// finishes in well under the cycle budget.
fn random_traffic(rng: &mut SplitMix64) -> PrefetchTraffic {
    let mut t = PrefetchTraffic::rk_aggressive(1 + rng.next_below(3) as u32);
    t.block_len = 8 << rng.next_below(3); // 8, 16 or 32 words
    t.window = 2 + rng.next_below(31) as u32;
    t.gap_ce_cycles = rng.next_below(5);
    t.streams = 1 + rng.next_below(4) as u32;
    t.writes_per_read = [0.0, 0.5, 1.0][rng.next_below(3) as usize];
    t
}

/// Runs the experiment straight through on `fabric`.
fn straight(mut fabric: RoundTripFabric, n_ces: usize, traffic: PrefetchTraffic) -> FabricReport {
    fabric.run_prefetch_experiment(n_ces, traffic, MAX_NET_CYCLES)
}

/// Runs the experiment on `fabric` but checkpoints after `cut` steps,
/// serializes, restores into fresh objects, and finishes the run on
/// the restored pair.
fn interrupted(
    mut fabric: RoundTripFabric,
    n_ces: usize,
    traffic: PrefetchTraffic,
    cut: u64,
) -> FabricReport {
    let mut exp = fabric.begin_experiment(n_ces, traffic, MAX_NET_CYCLES);
    let mut steps = 0;
    while fabric.experiment_running(&exp) && steps < cut {
        fabric.step_experiment(&mut exp, None).expect("no watchdog");
        steps += 1;
    }
    let bytes = fabric.checkpoint_experiment(&exp);
    drop((fabric, exp)); // everything must come back from the bytes
    let (mut fabric, mut exp) =
        RoundTripFabric::restore_experiment(&bytes).expect("checkpoint decodes");
    while fabric.experiment_running(&exp) {
        fabric.step_experiment(&mut exp, None).expect("no watchdog");
    }
    fabric.finish_experiment(exp)
}

#[test]
fn restored_runs_match_straight_runs_across_random_machines() {
    let mut rng = SplitMix64::new(0x5EED_CEDA);
    for case in 0..24 {
        let cfg = random_config(&mut rng);
        let traffic = random_traffic(&mut rng);
        let n_ces = 1 + rng.next_below((cfg.net.ports() / 2) as u64) as usize;
        let cut = rng.next_below(50_000);
        let expected = straight(RoundTripFabric::new(cfg.clone()), n_ces, traffic);
        assert!(expected.completed(), "case {case} must drain");
        let resumed = interrupted(RoundTripFabric::new(cfg), n_ces, traffic, cut);
        assert_eq!(
            expected, resumed,
            "case {case}: restored run diverged (cut at {cut} steps, {n_ces} CEs)"
        );
    }
}

#[test]
fn restored_runs_match_straight_runs_under_random_faults() {
    let mut rng = SplitMix64::new(0xFA07_CEDA);
    for case in 0..12 {
        // Fault plans target the production machine shape, so faulted
        // cases keep the Cedar topology and randomize everything else.
        let cfg = FabricConfig::cedar();
        let traffic = random_traffic(&mut rng);
        let n_ces = 1 + rng.next_below(32) as usize;
        let rate = [0.01, 0.02, 0.05][rng.next_below(3) as usize];
        let seed = rng.next_below(u64::MAX);
        let cut = rng.next_below(100_000);
        let build = || {
            let plan =
                FaultPlan::generate(&FaultConfig::degraded(seed, rate), &MachineShape::cedar())
                    .expect("degraded config is valid");
            let mut fabric = RoundTripFabric::new(cfg.clone());
            fabric.attach_faults(plan, RetryPolicy::fabric());
            fabric
        };
        let expected = straight(build(), n_ces, traffic);
        let resumed = interrupted(build(), n_ces, traffic, cut);
        assert_eq!(
            expected, resumed,
            "case {case}: faulted restored run diverged \
             (seed {seed:#x}, rate {rate}, cut {cut}, {n_ces} CEs)"
        );
    }
}

#[test]
fn double_checkpoint_is_a_fixed_point() {
    // Checkpointing, restoring, and checkpointing again without
    // stepping must produce identical bytes — the encoding has no
    // hidden nondeterminism (map ordering, uninitialized scratch).
    let mut rng = SplitMix64::new(0xF1_0D);
    for _ in 0..8 {
        let cfg = random_config(&mut rng);
        let traffic = random_traffic(&mut rng);
        let n_ces = 1 + rng.next_below((cfg.net.ports() / 2) as u64) as usize;
        let mut fabric = RoundTripFabric::new(cfg);
        let mut exp = fabric.begin_experiment(n_ces, traffic, MAX_NET_CYCLES);
        for _ in 0..rng.next_below(5_000) {
            if !fabric.experiment_running(&exp) {
                break;
            }
            fabric.step_experiment(&mut exp, None).expect("no watchdog");
        }
        let first = fabric.checkpoint_experiment(&exp);
        let (fabric2, exp2) =
            RoundTripFabric::restore_experiment(&first).expect("checkpoint decodes");
        let second = fabric2.checkpoint_experiment(&exp2);
        assert_eq!(first, second, "re-snapshot of a restored fabric drifted");
    }
}
