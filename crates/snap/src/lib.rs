//! `cedar-snap` — deterministic checkpoint/restore for the simulator.
//!
//! The paper's measurement study re-runs the same Cedar configuration
//! dozens of times per table with one knob varied, so most simulated
//! cycles are identical warm-up prefixes. This crate supplies the two
//! mechanisms that let the rest of the workspace stop re-simulating
//! them:
//!
//! * [`Snapshot`] — a serde-style trait with a hand-rolled, versioned
//!   binary codec ([`SnapWriter`]/[`SnapReader`]). Every state-holding
//!   type in the simulator (event queues including their FIFO
//!   tie-break counters, crossbar queues, memory modules, PFU state,
//!   scheduler state, fault-plan cursors, monitor windows) implements
//!   it *beside its private fields*, so a restored system replays
//!   bit-identically to an uninterrupted run.
//! * [`CacheDir`] — a content-addressed on-disk store keyed by the
//!   FNV-1a hash of a value's canonical encoding. Sweep harnesses use
//!   it to skip already-simulated points across process invocations;
//!   entries are written atomically (temp file + rename) so a crashed
//!   or panicking producer never persists a poisoned entry.
//!
//! # Envelope format
//!
//! Serialized values travel inside a self-checking envelope:
//!
//! ```text
//! magic  b"CSNP"           4 bytes
//! version                  1 byte   (SNAP_VERSION)
//! payload length           8 bytes  little-endian u64
//! payload                  N bytes  (the Snapshot encoding)
//! checksum                 8 bytes  FNV-1a of the payload
//! ```
//!
//! Any mismatch — wrong magic, unknown version, truncation, checksum
//! failure, trailing bytes — is an explicit [`SnapError`], and
//! [`CacheDir::load`] treats every such error as a cache miss: stale
//! or corrupt entries invalidate themselves instead of poisoning a
//! run (a corrupt entry is additionally quarantined to a `*.corrupt`
//! sibling so operators can inspect what went bad).
//!
//! The same envelope doubles as the workspace's wire format: the
//! [`frame`] module streams sealed envelopes over pipes and sockets
//! with typed corruption detection, which is what the cluster's
//! coordinator↔worker protocol rides on.
//!
//! The codec is std-only and fully deterministic: no host pointers,
//! no hash-map iteration order, no timestamps ever reach the wire.

#![warn(missing_docs)]

pub mod cache;
pub mod codec;
pub mod frame;

pub use cache::{write_atomic, CacheDir};
pub use codec::{
    fnv1a, seal, seal_as, unseal, unseal_as, SnapError, SnapReader, SnapWriter, Snapshot,
    ENVELOPE_CHECKSUM_LEN, ENVELOPE_HEADER_LEN, ENVELOPE_OVERHEAD, SNAP_MAGIC, SNAP_VERSION,
};
pub use frame::{read_frame, read_frame_limit, write_frame, FrameError, MAX_FRAME_PAYLOAD};
