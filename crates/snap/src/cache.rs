//! Content-addressed on-disk store for snapshot envelopes.
//!
//! Keys are the 16-hex-digit strings produced by
//! [`Snapshot::snapshot_key`]; values are full snapshot envelopes.
//! Writes go through a temp file followed by an atomic rename, so a
//! crashed or panicking producer never leaves a partial entry behind,
//! and any entry that fails to decode (version skew, corruption) reads
//! as a miss rather than an error.

use std::fs;
use std::path::{Path, PathBuf};

use crate::codec::Snapshot;

/// A directory of content-addressed snapshot entries.
#[derive(Debug, Clone)]
pub struct CacheDir {
    root: PathBuf,
}

impl CacheDir {
    /// Opens (creating if necessary) a cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be
    /// created.
    pub fn new(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(CacheDir { root })
    }

    /// The directory this cache lives in.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the entry for `key`.
    #[must_use]
    pub fn entry_path(&self, key: &str) -> PathBuf {
        self.root.join(format!("{key}.snap"))
    }

    /// Whether an entry exists for `key` (it may still fail to decode).
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.entry_path(key).is_file()
    }

    /// Loads and decodes the entry for `key`.
    ///
    /// Every failure mode — missing file, I/O error, bad magic,
    /// version skew, checksum mismatch, truncation — is reported as
    /// `None`: a stale or corrupt entry is simply a cache miss and
    /// will be overwritten by the next [`store`](CacheDir::store).
    ///
    /// An entry that *exists but fails to decode* is additionally
    /// quarantined: renamed to `<key>.snap.corrupt` so the bad bytes
    /// stay inspectable, the key reads as a clean miss, and the next
    /// store repopulates it. Renaming (not deleting) keeps the move
    /// atomic and the evidence intact.
    #[must_use]
    pub fn load<T: Snapshot>(&self, key: &str) -> Option<T> {
        let path = self.entry_path(key);
        let bytes = fs::read(&path).ok()?;
        match T::from_snapshot_bytes(&bytes) {
            Ok(value) => Some(value),
            Err(_) => {
                // Best-effort: losing the race with a concurrent
                // re-store must not turn a miss into an error.
                let mut quarantined = path.clone().into_os_string();
                quarantined.push(".corrupt");
                let _ = fs::rename(&path, PathBuf::from(quarantined));
                None
            }
        }
    }

    /// Loads the raw sealed envelope for `key`, validated but not
    /// decoded.
    ///
    /// This is the zero-copy read path: the returned bytes are exactly
    /// what [`store`](CacheDir::store) wrote — a complete checked
    /// envelope — so a server can forward a memoized entry to the wire
    /// without re-encoding it. The envelope checksum is verified here;
    /// undecodable bytes quarantine and read as a miss exactly like
    /// [`load`](CacheDir::load).
    #[must_use]
    pub fn load_bytes(&self, key: &str) -> Option<Vec<u8>> {
        let path = self.entry_path(key);
        let bytes = fs::read(&path).ok()?;
        match crate::codec::unseal(&bytes) {
            Ok(_) => Some(bytes),
            Err(_) => {
                let mut quarantined = path.clone().into_os_string();
                quarantined.push(".corrupt");
                let _ = fs::rename(&path, PathBuf::from(quarantined));
                None
            }
        }
    }

    /// Lists quarantined entries (`*.corrupt` siblings left behind by
    /// [`load`](CacheDir::load) rejecting undecodable bytes). A healthy
    /// cache — and a healthy cluster run — leaves this empty.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be
    /// read.
    pub fn corrupt_entries(&self) -> std::io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let path = entry?.path();
            if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".corrupt"))
            {
                out.push(path);
            }
        }
        out.sort();
        Ok(out)
    }

    /// Atomically stores `value` under `key`.
    ///
    /// The envelope is written to a sibling temp file and renamed into
    /// place, so concurrent readers never observe a partial entry.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the write or rename fails.
    pub fn store<T: Snapshot>(&self, key: &str, value: &T) -> std::io::Result<()> {
        let bytes = value.to_snapshot_bytes();
        self.store_bytes(key, &bytes)
    }

    /// Atomically stores pre-enveloped `bytes` under `key`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the write or rename fails.
    pub fn store_bytes(&self, key: &str, bytes: &[u8]) -> std::io::Result<()> {
        write_atomic(&self.entry_path(key), bytes)
    }

    /// Removes the entry for `key`, if present.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on anything other than the
    /// entry already being absent.
    pub fn remove(&self, key: &str) -> std::io::Result<()> {
        match fs::remove_file(self.entry_path(key)) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }
}

/// Atomically writes `bytes` to `path` via a sibling temp file and
/// rename, so readers (and a crash mid-write) never observe a partial
/// file. This is the primitive behind [`CacheDir::store_bytes`]; it is
/// public so checkpoint files outside a cache directory get the same
/// guarantee.
///
/// # Errors
///
/// Returns the underlying I/O error if the write or rename fails.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    // The PID suffix keeps concurrent processes (two CI harness
    // invocations racing on a shared dir) from clobbering each other's
    // temp file mid-write; the process-wide sequence number does the
    // same for concurrent threads of one process (the serving tier's
    // dedup path can race two stores of the same key), so every writer
    // owns a private temp file and the rename is the only shared step.
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}.{}", std::process::id(), seq));
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cedar-snap-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_round_trips() {
        let cache = CacheDir::new(scratch("roundtrip")).unwrap();
        let value: Vec<u64> = vec![1, 2, 3];
        let key = value.snapshot_key("test");
        assert!(!cache.contains(&key));
        assert_eq!(cache.load::<Vec<u64>>(&key), None);
        cache.store(&key, &value).unwrap();
        assert!(cache.contains(&key));
        assert_eq!(cache.load::<Vec<u64>>(&key), Some(value));
        fs::remove_dir_all(cache.root()).unwrap();
    }

    #[test]
    fn corrupt_entry_reads_as_miss_and_is_quarantined() {
        let cache = CacheDir::new(scratch("corrupt")).unwrap();
        let value = 7u64;
        let key = value.snapshot_key("test");
        cache.store(&key, &value).unwrap();
        // Flip a payload byte on disk; the checksum must reject it.
        let path = cache.entry_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        bytes[14] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(cache.contains(&key));
        assert_eq!(cache.load::<u64>(&key), None);
        // The bad bytes moved aside: the key is a clean miss, the
        // evidence is preserved under *.corrupt.
        assert!(!cache.contains(&key), "quarantine must clear the entry");
        let quarantined = cache.corrupt_entries().unwrap();
        assert_eq!(
            quarantined.len(),
            1,
            "one quarantined file: {quarantined:?}"
        );
        assert_eq!(fs::read(&quarantined[0]).unwrap(), bytes);
        fs::remove_dir_all(cache.root()).unwrap();
    }

    #[test]
    fn store_after_quarantine_recovers_the_key() {
        let cache = CacheDir::new(scratch("requarantine")).unwrap();
        let value: Vec<u64> = (0..32).collect();
        let key = value.snapshot_key("test");
        cache.store(&key, &value).unwrap();
        // Truncate the entry — simulating a torn disk, not a torn
        // write — and confirm the full miss→store→hit recovery cycle.
        let path = cache.entry_path(&key);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(cache.load::<Vec<u64>>(&key), None);
        assert_eq!(cache.corrupt_entries().unwrap().len(), 1);
        cache.store(&key, &value).unwrap();
        assert_eq!(cache.load::<Vec<u64>>(&key), Some(value));
        // Quarantine files never shadow or break later loads.
        assert_eq!(cache.corrupt_entries().unwrap().len(), 1);
        fs::remove_dir_all(cache.root()).unwrap();
    }

    #[test]
    fn concurrent_writers_to_one_key_never_expose_a_torn_entry() {
        // Serve's dedup path can race two stores of the same key (two
        // servers sharing a cache dir, or two threads of one). Every
        // concurrent load must see either nothing or one writer's
        // complete value — never a torn mix — and the final entry must
        // decode as one of the written values.
        let cache = CacheDir::new(scratch("race")).unwrap();
        let key = "00deadbeef00cafe".to_owned();
        const WRITERS: u64 = 4;
        const ROUNDS: u64 = 40;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let cache = cache.clone();
                let key = key.clone();
                scope.spawn(move || {
                    // Each writer's value is self-consistent: every
                    // element equals the writer id, so any mix of two
                    // writers is detectable.
                    let value: Vec<u64> = vec![w; 64];
                    for _ in 0..ROUNDS {
                        cache.store(&key, &value).unwrap();
                        if let Some(seen) = cache.load::<Vec<u64>>(&key) {
                            assert_eq!(seen.len(), 64, "torn entry observed");
                            assert!(
                                seen.iter().all(|&x| x == seen[0]) && seen[0] < WRITERS,
                                "entry mixes writers: {seen:?}"
                            );
                        }
                    }
                });
            }
        });
        let last = cache
            .load::<Vec<u64>>(&key)
            .expect("final entry must decode");
        assert!(last.iter().all(|&x| x == last[0]) && last[0] < WRITERS);
        // Every temp file was renamed away; only the entry remains.
        let leftovers: Vec<_> = fs::read_dir(cache.root())
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p != &cache.entry_path(&key))
            .collect();
        assert!(
            leftovers.is_empty(),
            "stray files left behind: {leftovers:?}"
        );
        fs::remove_dir_all(cache.root()).unwrap();
    }

    #[test]
    fn load_bytes_returns_the_exact_stored_envelope() {
        let cache = CacheDir::new(scratch("loadbytes")).unwrap();
        let value: Vec<u64> = vec![9, 8, 7];
        let key = value.snapshot_key("test");
        assert_eq!(cache.load_bytes(&key), None);
        cache.store(&key, &value).unwrap();
        let bytes = cache.load_bytes(&key).expect("stored entry");
        assert_eq!(bytes, fs::read(cache.entry_path(&key)).unwrap());
        // The raw bytes decode to the stored value: the zero-copy path
        // and the decoding path agree.
        assert_eq!(Vec::<u64>::from_snapshot_bytes(&bytes).unwrap(), value);
        // Corruption quarantines exactly like load().
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        fs::write(cache.entry_path(&key), &bad).unwrap();
        assert_eq!(cache.load_bytes(&key), None);
        assert_eq!(cache.corrupt_entries().unwrap().len(), 1);
        fs::remove_dir_all(cache.root()).unwrap();
    }

    #[test]
    fn remove_is_idempotent() {
        let cache = CacheDir::new(scratch("remove")).unwrap();
        let key = 1u64.snapshot_key("test");
        cache.remove(&key).unwrap();
        cache.store(&key, &1u64).unwrap();
        cache.remove(&key).unwrap();
        assert!(!cache.contains(&key));
        cache.remove(&key).unwrap();
        fs::remove_dir_all(cache.root()).unwrap();
    }
}
