//! The versioned binary codec behind [`Snapshot`].
//!
//! Primitives are fixed-width little-endian; aggregates are
//! length-prefixed. Floating-point values round-trip through their IEEE
//! bit patterns, so NaN payloads, infinities and signed zeros restore
//! exactly. The encoding carries no type tags — reader and writer must
//! agree on the schema, which is what [`SNAP_VERSION`] and the
//! envelope checksum police.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Current snapshot schema version. Bump on any layout change; the
/// envelope rejects mismatched versions, which is how on-disk caches
/// from older builds invalidate themselves.
pub const SNAP_VERSION: u8 = 1;

/// Envelope magic bytes for snapshots and the cluster wire format.
pub const SNAP_MAGIC: [u8; 4] = *b"CSNP";

/// Sealed-envelope header size: magic (4) + version (1) + length (8).
pub const ENVELOPE_HEADER_LEN: usize = 13;

/// Trailing envelope checksum size (FNV-1a of the payload).
pub const ENVELOPE_CHECKSUM_LEN: usize = 8;

/// Envelope overhead in bytes: header plus checksum.
pub const ENVELOPE_OVERHEAD: usize = ENVELOPE_HEADER_LEN + ENVELOPE_CHECKSUM_LEN;

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The envelope did not start with `b"CSNP"`.
    BadMagic,
    /// The envelope carried an unsupported schema version.
    BadVersion {
        /// Version byte found in the envelope.
        found: u8,
        /// Version this build understands.
        expected: u8,
    },
    /// The payload checksum did not match its contents.
    BadChecksum,
    /// The input ended before the value was fully decoded.
    Truncated,
    /// Bytes remained after the value was fully decoded.
    TrailingBytes,
    /// The bytes decoded but described an impossible value.
    Invalid(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::BadMagic => write!(f, "snapshot envelope magic mismatch"),
            SnapError::BadVersion { found, expected } => {
                write!(
                    f,
                    "snapshot version {found} unsupported (expected {expected})"
                )
            }
            SnapError::BadChecksum => write!(f, "snapshot payload checksum mismatch"),
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::TrailingBytes => write!(f, "snapshot has trailing bytes"),
            SnapError::Invalid(what) => write!(f, "snapshot invalid: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// 64-bit FNV-1a over `bytes` — the hash behind both the envelope
/// checksum and [`Snapshot::snapshot_key`] content addressing.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Append-only encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// Consumes the writer, returning the raw (un-enveloped) payload.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian i32.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian i64.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an f64 as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes a usize as a u64 (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Cursor-based decoder over a byte slice. Every read is bounds
/// checked and returns [`SnapError::Truncated`] past the end.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Creates a reader over a raw (un-enveloped) payload.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian i32.
    pub fn get_i32(&mut self) -> Result<i32, SnapError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian i64.
    pub fn get_i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an f64 from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool, rejecting bytes other than 0/1.
    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Invalid("bool byte out of range")),
        }
    }

    /// Reads a usize written by [`SnapWriter::put_usize`].
    pub fn get_usize(&mut self) -> Result<usize, SnapError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| SnapError::Invalid("usize overflows this platform"))
    }

    /// Reads a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.get_usize()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Result<String, SnapError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Invalid("string not UTF-8"))
    }
}

/// Serializable simulator state.
///
/// Implementations live beside the type they serialize (in the same
/// module, with private-field access) and must encode *all* state that
/// affects future behavior — the round-trip contract is that a
/// restored value continues bit-identically to the original. State
/// that is re-attached after restore by construction (telemetry
/// handles, which are pure overlays) is exempt and documented per
/// type.
///
/// # Examples
///
/// ```
/// use cedar_snap::{SnapReader, SnapWriter, Snapshot};
///
/// let v: Vec<u64> = vec![3, 1, 4, 1, 5];
/// let bytes = v.to_snapshot_bytes();
/// let back = Vec::<u64>::from_snapshot_bytes(&bytes).unwrap();
/// assert_eq!(v, back);
/// ```
pub trait Snapshot: Sized {
    /// Encodes `self` into the writer.
    fn snap(&self, w: &mut SnapWriter);

    /// Decodes a value from the reader.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on truncated or invalid input.
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;

    /// Serializes into a checked envelope (magic, version, length,
    /// payload, FNV-1a checksum).
    fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        self.snap(&mut w);
        seal(&w.into_bytes())
    }

    /// Deserializes from a checked envelope, rejecting bad magic,
    /// version skew, corruption and trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns the specific [`SnapError`] describing the failure.
    fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapError> {
        let payload = unseal(bytes)?;
        let mut r = SnapReader::new(payload);
        let value = Self::restore(&mut r)?;
        if r.remaining() != 0 {
            return Err(SnapError::TrailingBytes);
        }
        Ok(value)
    }

    /// Content-addressed key of this value: the FNV-1a hash of
    /// `namespace`, the schema version and the canonical encoding,
    /// rendered as 16 hex digits. Equal values always map to equal
    /// keys; the namespace separates value spaces sharing an encoding.
    fn snapshot_key(&self, namespace: &str) -> String {
        let mut w = SnapWriter::new();
        w.put_str(namespace);
        w.put_u8(SNAP_VERSION);
        self.snap(&mut w);
        format!("{:016x}", fnv1a(&w.into_bytes()))
    }
}

/// Wraps a raw payload in the checked envelope (magic, version,
/// length, payload, FNV-1a checksum). Multi-part snapshots — several
/// values serialized into one [`SnapWriter`] — seal the combined
/// payload with this; single values go through
/// [`Snapshot::to_snapshot_bytes`].
#[must_use]
pub fn seal(payload: &[u8]) -> Vec<u8> {
    seal_as(SNAP_MAGIC, payload)
}

/// [`seal`] with a caller-chosen magic: the same checked envelope
/// (magic, version, length, payload, FNV-1a checksum) reused by other
/// wire protocols — e.g. the serving tier's `b"CSRV"` frames — so they
/// inherit the codec's corruption detection without inventing one.
#[must_use]
pub fn seal_as(magic: [u8; 4], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + ENVELOPE_OVERHEAD);
    out.extend_from_slice(&magic);
    out.push(SNAP_VERSION);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out
}

/// Validates a checked envelope and returns its payload, the inverse
/// of [`seal`].
///
/// # Errors
///
/// Returns the specific [`SnapError`] for bad magic, version skew,
/// truncation, trailing bytes or a checksum mismatch.
pub fn unseal(bytes: &[u8]) -> Result<&[u8], SnapError> {
    unseal_as(SNAP_MAGIC, bytes)
}

/// [`unseal`] with a caller-chosen magic, the inverse of [`seal_as`].
///
/// # Errors
///
/// Returns the specific [`SnapError`] for bad magic, version skew,
/// truncation, trailing bytes or a checksum mismatch.
pub fn unseal_as(magic: [u8; 4], bytes: &[u8]) -> Result<&[u8], SnapError> {
    if bytes.len() < ENVELOPE_OVERHEAD {
        return Err(SnapError::Truncated);
    }
    if bytes[0..4] != magic {
        return Err(SnapError::BadMagic);
    }
    let version = bytes[4];
    if version != SNAP_VERSION {
        return Err(SnapError::BadVersion {
            found: version,
            expected: SNAP_VERSION,
        });
    }
    let len = u64::from_le_bytes(bytes[5..ENVELOPE_HEADER_LEN].try_into().unwrap());
    let len = usize::try_from(len).map_err(|_| SnapError::Truncated)?;
    let end = ENVELOPE_HEADER_LEN
        .checked_add(len)
        .ok_or(SnapError::Truncated)?;
    if bytes.len() < end + ENVELOPE_CHECKSUM_LEN {
        return Err(SnapError::Truncated);
    }
    if bytes.len() > end + ENVELOPE_CHECKSUM_LEN {
        return Err(SnapError::TrailingBytes);
    }
    let payload = &bytes[ENVELOPE_HEADER_LEN..end];
    let checksum = u64::from_le_bytes(bytes[end..end + ENVELOPE_CHECKSUM_LEN].try_into().unwrap());
    if fnv1a(payload) != checksum {
        return Err(SnapError::BadChecksum);
    }
    Ok(payload)
}

/// Implements [`Snapshot`] for a struct by encoding its named fields
/// in declaration order. Expand inside the struct's own module so
/// private fields are reachable.
#[macro_export]
macro_rules! snapshot_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Snapshot for $ty {
            fn snap(&self, w: &mut $crate::SnapWriter) {
                $( $crate::Snapshot::snap(&self.$field, w); )+
            }
            fn restore(
                r: &mut $crate::SnapReader<'_>,
            ) -> Result<Self, $crate::SnapError> {
                Ok(Self { $( $field: $crate::Snapshot::restore(r)? ),+ })
            }
        }
    };
}

macro_rules! snapshot_primitive {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Snapshot for $ty {
            fn snap(&self, w: &mut SnapWriter) {
                w.$put(*self);
            }
            fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                r.$get()
            }
        }
    };
}

snapshot_primitive!(u8, put_u8, get_u8);
snapshot_primitive!(u32, put_u32, get_u32);
snapshot_primitive!(u64, put_u64, get_u64);
snapshot_primitive!(i32, put_i32, get_i32);
snapshot_primitive!(i64, put_i64, get_i64);
snapshot_primitive!(f64, put_f64, get_f64);
snapshot_primitive!(bool, put_bool, get_bool);
snapshot_primitive!(usize, put_usize, get_usize);

impl Snapshot for u16 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(u32::from(*self));
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        u16::try_from(r.get_u32()?).map_err(|_| SnapError::Invalid("u16 out of range"))
    }
}

impl Snapshot for String {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_str(self);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_string()
    }
}

impl Snapshot for () {
    fn snap(&self, _w: &mut SnapWriter) {}
    fn restore(_r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(())
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.snap(w);
            }
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(r)?)),
            _ => Err(SnapError::Invalid("Option tag out of range")),
        }
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for item in self {
            item.snap(w);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.get_usize()?;
        // Guard against absurd lengths from corrupt input before
        // allocating (each element costs at least one byte).
        if len > r.remaining() {
            return Err(SnapError::Truncated);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<T: Snapshot> Snapshot for VecDeque<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for item in self {
            item.snap(w);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Vec::<T>::restore(r)?.into())
    }
}

impl<K: Snapshot + Ord, V: Snapshot> Snapshot for BTreeMap<K, V> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for (k, v) in self {
            k.snap(w);
            v.snap(w);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.get_usize()?;
        if len > r.remaining() {
            return Err(SnapError::Truncated);
        }
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::restore(r)?;
            let v = V::restore(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::restore(r)?, B::restore(r)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot> Snapshot for (A, B, C) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
        self.2.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::restore(r)?, B::restore(r)?, C::restore(r)?))
    }
}

impl<T: Snapshot, const N: usize> Snapshot for [T; N] {
    fn snap(&self, w: &mut SnapWriter) {
        for item in self {
            item.snap(w);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::restore(r)?);
        }
        out.try_into()
            .map_err(|_| SnapError::Invalid("array length mismatch"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Demo {
        a: u64,
        b: f64,
        c: Vec<String>,
        d: Option<bool>,
    }
    snapshot_struct!(Demo { a, b, c, d });

    fn demo() -> Demo {
        Demo {
            a: 42,
            b: -0.5,
            c: vec!["x".into(), "yz".into()],
            d: Some(true),
        }
    }

    #[test]
    fn seal_as_round_trips_and_keeps_magics_apart() {
        let sealed = seal_as(*b"CSRV", b"hello");
        assert_eq!(unseal_as(*b"CSRV", &sealed).unwrap(), b"hello");
        // A CSRV envelope is not a CSNP envelope and vice versa.
        assert_eq!(unseal(&sealed), Err(SnapError::BadMagic));
        assert_eq!(
            unseal_as(*b"CSRV", &seal(b"hello")),
            Err(SnapError::BadMagic)
        );
        // seal() is exactly seal_as() with the snapshot magic.
        assert_eq!(seal(b"hello"), seal_as(SNAP_MAGIC, b"hello"));
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.put_u8(7);
        w.put_u32(u32::MAX);
        w.put_u64(u64::MAX);
        w.put_i32(-9);
        w.put_i64(i64::MIN);
        w.put_f64(f64::INFINITY);
        w.put_bool(true);
        w.put_str("hé");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), u32::MAX);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i32().unwrap(), -9);
        assert_eq!(r.get_i64().unwrap(), i64::MIN);
        assert_eq!(r.get_f64().unwrap(), f64::INFINITY);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_string().unwrap(), "hé");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn nan_and_negative_zero_round_trip_bitwise() {
        let values = [f64::NAN, -0.0, f64::NEG_INFINITY, f64::MIN_POSITIVE];
        for v in values {
            let bytes = v.to_snapshot_bytes();
            let back = f64::from_snapshot_bytes(&bytes).unwrap();
            assert_eq!(v.to_bits(), back.to_bits());
        }
    }

    #[test]
    fn envelope_round_trips_and_detects_corruption() {
        let value = demo();
        let bytes = value.to_snapshot_bytes();
        assert_eq!(Demo::from_snapshot_bytes(&bytes).unwrap(), value);

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            Demo::from_snapshot_bytes(&bad_magic),
            Err(SnapError::BadMagic)
        );

        let mut bad_version = bytes.clone();
        bad_version[4] = SNAP_VERSION + 1;
        assert!(matches!(
            Demo::from_snapshot_bytes(&bad_version),
            Err(SnapError::BadVersion { .. })
        ));

        let mut flipped = bytes.clone();
        let mid = 13 + (flipped.len() - 21) / 2;
        flipped[mid] ^= 0x40;
        assert_eq!(
            Demo::from_snapshot_bytes(&flipped),
            Err(SnapError::BadChecksum)
        );

        let truncated = &bytes[..bytes.len() - 3];
        assert_eq!(
            Demo::from_snapshot_bytes(truncated),
            Err(SnapError::Truncated)
        );

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            Demo::from_snapshot_bytes(&trailing),
            Err(SnapError::TrailingBytes)
        );
    }

    #[test]
    fn collections_round_trip() {
        let mut map = BTreeMap::new();
        map.insert(3u64, "c".to_string());
        map.insert(1, "a".to_string());
        let bytes = map.to_snapshot_bytes();
        assert_eq!(BTreeMap::from_snapshot_bytes(&bytes).unwrap(), map);

        let deque: VecDeque<u32> = [5, 6, 7].into_iter().collect();
        let bytes = deque.to_snapshot_bytes();
        assert_eq!(VecDeque::<u32>::from_snapshot_bytes(&bytes).unwrap(), deque);

        let arr = [1.5f64, 2.5, -3.5];
        let bytes = arr.to_snapshot_bytes();
        assert_eq!(<[f64; 3]>::from_snapshot_bytes(&bytes).unwrap(), arr);
    }

    #[test]
    fn corrupt_length_prefix_does_not_overallocate() {
        // A Vec claiming u64::MAX elements must fail fast, not OOM.
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX);
        let payload = w.into_bytes();
        let mut r = SnapReader::new(&payload);
        assert_eq!(Vec::<u64>::restore(&mut r), Err(SnapError::Truncated));
    }

    #[test]
    fn snapshot_key_is_content_addressed() {
        assert_eq!(demo().snapshot_key("t"), demo().snapshot_key("t"));
        assert_ne!(demo().snapshot_key("t"), demo().snapshot_key("u"));
        let mut other = demo();
        other.a += 1;
        assert_ne!(demo().snapshot_key("t"), other.snapshot_key("t"));
        assert_eq!(demo().snapshot_key("t").len(), 16);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
