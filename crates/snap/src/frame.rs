//! Length-prefixed framing of snapshot envelopes over byte streams.
//!
//! The cluster's coordinator↔worker wire protocol (and any future
//! binary transport) ships each message as one sealed envelope —
//! exactly the bytes [`seal`](crate::seal) produces: magic, version,
//! payload length, payload, FNV-1a checksum. The envelope already
//! carries its own length, so a frame needs no extra prefix: a reader
//! consumes the fixed 13-byte header, learns the payload length, reads
//! the remainder, and validates the whole thing through
//! [`unseal`](crate::unseal).
//!
//! Corruption is first-class here, not an afterthought: a supervisor
//! must distinguish *a peer that went away* (clean EOF at a frame
//! boundary) from *a peer writing garbage* (bad magic, bad checksum, a
//! length past the sanity cap, or an EOF mid-frame). [`FrameError`]
//! keeps those cases typed so the caller can reap, restart or
//! re-assign accordingly.

use std::io::{Read, Write};

use crate::codec::{
    seal, unseal, SnapError, ENVELOPE_CHECKSUM_LEN as CHECKSUM_LEN,
    ENVELOPE_HEADER_LEN as HEADER_LEN,
};

/// Default sanity cap on a frame's payload length. A corrupt or
/// adversarial length field must fail fast, not allocate gigabytes.
pub const MAX_FRAME_PAYLOAD: u64 = 64 * 1024 * 1024;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended cleanly at a frame boundary: the peer is gone
    /// but was not mid-message. Supervisors treat this as an exit, not
    /// corruption.
    Eof,
    /// The stream ended inside a frame, or an underlying read failed.
    Io(std::io::Error),
    /// The bytes did not form a valid envelope: bad magic, version
    /// skew, checksum mismatch or an impossible length. A peer doing
    /// this is writing garbage and cannot be trusted further.
    Corrupt(SnapError),
    /// The frame declared a payload longer than the sanity cap.
    TooLarge {
        /// Declared payload length.
        declared: u64,
        /// The cap it exceeded.
        cap: u64,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "stream closed at a frame boundary"),
            FrameError::Io(e) => write!(f, "frame read failed: {e}"),
            FrameError::Corrupt(e) => write!(f, "corrupt frame: {e}"),
            FrameError::TooLarge { declared, cap } => {
                write!(f, "frame declares {declared} payload bytes (cap {cap})")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes `payload` as one sealed frame.
///
/// # Errors
///
/// Returns the underlying I/O error if the write fails.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&seal(payload))?;
    w.flush()
}

/// Reads one sealed frame and returns its validated payload, honouring
/// [`MAX_FRAME_PAYLOAD`].
///
/// # Errors
///
/// See [`read_frame_limit`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    read_frame_limit(r, MAX_FRAME_PAYLOAD)
}

/// Reads one sealed frame with an explicit payload-length cap.
///
/// # Errors
///
/// * [`FrameError::Eof`] — the stream closed before any header byte.
/// * [`FrameError::Io`] — the stream closed mid-frame or a read failed.
/// * [`FrameError::Corrupt`] — bad magic, version skew, or a checksum
///   mismatch; the stream position is now unreliable and the peer
///   should be treated as compromised.
/// * [`FrameError::TooLarge`] — the declared length exceeds `cap`.
pub fn read_frame_limit<R: Read>(r: &mut R, cap: u64) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    // The first byte decides Eof-at-boundary vs truncated-mid-frame.
    let mut got = 0usize;
    while got < 1 {
        match r.read(&mut header[..1]) {
            Ok(0) => return Err(FrameError::Eof),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    r.read_exact(&mut header[1..]).map_err(FrameError::Io)?;
    // Validate magic/version up front so garbage fails before the
    // length field is trusted at all.
    if header[0..4] != *b"CSNP" {
        return Err(FrameError::Corrupt(SnapError::BadMagic));
    }
    let len = u64::from_le_bytes(header[5..HEADER_LEN].try_into().expect("8 bytes"));
    if len > cap {
        return Err(FrameError::TooLarge { declared: len, cap });
    }
    let len = usize::try_from(len).map_err(|_| FrameError::TooLarge { declared: len, cap })?;
    let mut rest = vec![0u8; len + CHECKSUM_LEN];
    r.read_exact(&mut rest).map_err(FrameError::Io)?;
    let mut envelope = Vec::with_capacity(HEADER_LEN + rest.len());
    envelope.extend_from_slice(&header);
    envelope.extend_from_slice(&rest);
    match unseal(&envelope) {
        Ok(payload) => Ok(payload.to_vec()),
        Err(e) => Err(FrameError::Corrupt(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0xAB; 1000]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), b"first");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), vec![0xAB; 1000]);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Eof)));
    }

    #[test]
    fn clean_eof_at_boundary_is_typed_eof() {
        let mut r = Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut r), Err(FrameError::Eof)));
    }

    #[test]
    fn eof_mid_frame_is_io_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"truncated").unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = Cursor::new(buf);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }

    #[test]
    fn garbage_magic_is_corrupt() {
        let mut r = Cursor::new(b"GARBAGEGARBAGEGARBAGE".to_vec());
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Corrupt(SnapError::BadMagic))
        ));
    }

    #[test]
    fn flipped_payload_byte_is_corrupt_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload-bytes").unwrap();
        buf[HEADER_LEN + 3] ^= 0xFF;
        let mut r = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Corrupt(SnapError::BadChecksum))
        ));
    }

    #[test]
    fn absurd_length_fails_fast_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CSNP");
        buf.push(crate::SNAP_VERSION);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut r = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn explicit_cap_is_honoured() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[1u8; 100]).unwrap();
        let mut r = Cursor::new(buf.clone());
        assert!(matches!(
            read_frame_limit(&mut r, 10),
            Err(FrameError::TooLarge {
                declared: 100,
                cap: 10
            })
        ));
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame_limit(&mut r, 100).unwrap().len(), 100);
    }
}
