//! The service's observability surface, built on `cedar-obs`.
//!
//! One [`ServeObs`] lives for the server's lifetime and is shared by
//! every connection handler and the dispatcher. `cedar-obs` keeps its
//! registry and trace sink deliberately single-threaded (the simulator
//! is), so the serving tier wraps each in a mutex: metrics touches are
//! short, and trace spans are appended post-hoc with explicit
//! timestamps, so neither lock shows up in request latency.
//!
//! Naming follows the workspace's dot-path convention under the
//! `serve.` prefix, so `rollup("serve.responses.")` totals every
//! response the server has produced, whatever its status.

use std::sync::Mutex;
use std::time::Instant;

use cedar_obs::export;
use cedar_obs::metrics::MetricsRegistry;
use cedar_obs::trace::TraceSink;

/// Trace track id for the request path (tid is the job seq).
pub const TRACE_PID: u64 = 1;

/// Histogram shape: 64 bins of 500µs covers 0–32ms fine-grained, with
/// the overflow bin catching the saturated tail.
const HIST_BINS: usize = 64;
const HIST_BIN_WIDTH_US: u64 = 500;

/// Shared metrics + tracing for the serving tier.
#[derive(Debug)]
pub struct ServeObs {
    metrics: Mutex<MetricsRegistry>,
    trace: Mutex<TraceSink>,
    start: Instant,
}

impl Default for ServeObs {
    fn default() -> Self {
        ServeObs::new()
    }
}

impl ServeObs {
    /// Creates the registry with every serve-path metric pre-interned,
    /// so exports show zeros instead of missing series before traffic
    /// arrives.
    #[must_use]
    pub fn new() -> Self {
        let mut m = MetricsRegistry::new();
        for name in [
            "serve.requests.received",
            "serve.responses.ok",
            "serve.responses.degraded",
            "serve.responses.rejected",
            "serve.responses.expired",
            "serve.responses.cancelled",
            "serve.responses.error",
            "serve.responses.invalid",
            "serve.jobs.executed",
            "serve.jobs.expired",
            "serve.dedup.coalesced",
            "serve.cache.hits",
            "serve.cache.stores",
            "serve.queue.rejected",
            "serve.conn.reaped_read",
            "serve.conn.reaped_write",
            "serve.conns.accepted",
            "serve.reactor.wakeups",
            "serve.proto.corrupt",
        ] {
            m.counter(name);
        }
        m.gauge("serve.queue.depth");
        m.gauge("serve.conns.open");
        for name in [
            "serve.queue.wait_us",
            "serve.job.service_us",
            "serve.request.latency_us",
        ] {
            m.histogram(name, HIST_BINS, HIST_BIN_WIDTH_US);
        }
        ServeObs {
            metrics: Mutex::new(m),
            trace: Mutex::new(TraceSink::new()),
            start: Instant::now(),
        }
    }

    /// Microseconds since the server started — the trace clock.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Adds one to the counter named `name`.
    pub fn inc(&self, name: &str) {
        let mut m = self.metrics.lock().expect("metrics lock poisoned");
        let id = m.counter(name);
        m.inc(id);
    }

    /// Adds `n` to the counter named `name`.
    pub fn add(&self, name: &str, n: u64) {
        let mut m = self.metrics.lock().expect("metrics lock poisoned");
        let id = m.counter(name);
        m.add(id, n);
    }

    /// Sets the gauge named `name`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut m = self.metrics.lock().expect("metrics lock poisoned");
        let id = m.gauge(name);
        m.set(id, value);
    }

    /// Records one µs sample into the histogram named `name`.
    pub fn observe_us(&self, name: &str, sample_us: u64) {
        let mut m = self.metrics.lock().expect("metrics lock poisoned");
        let id = m.histogram(name, HIST_BINS, HIST_BIN_WIDTH_US);
        m.record(id, sample_us);
    }

    /// Current value of the counter named `name`.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        self.metrics
            .lock()
            .expect("metrics lock poisoned")
            .counter_value(name)
    }

    /// Records one completed request-path span on the job's trace
    /// track, with explicit begin/end timestamps in µs-since-start.
    pub fn span(&self, tid: u64, name: &'static str, begin_us: u64, end_us: u64) {
        let mut t = self.trace.lock().expect("trace lock poisoned");
        t.begin(TRACE_PID, tid, name, begin_us);
        t.end(TRACE_PID, tid, name, end_us.max(begin_us));
    }

    /// Renders the Prometheus exposition of every metric.
    #[must_use]
    pub fn prometheus(&self) -> String {
        export::prometheus(&self.metrics.lock().expect("metrics lock poisoned"))
    }

    /// Renders the Chrome-trace JSON of every recorded span.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        export::chrome_trace(self.trace.lock().expect("trace lock poisoned").events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preinterned_metrics_export_as_zeros() {
        let obs = ServeObs::new();
        let text = obs.prometheus();
        let parsed = export::parse_prometheus(&text).unwrap();
        let received = export::sanitize_name("serve.requests.received");
        assert_eq!(parsed.get(&received), Some(&0.0));
        let depth = export::sanitize_name("serve.queue.depth");
        assert_eq!(parsed.get(&depth), Some(&0.0));
    }

    #[test]
    fn counters_and_histograms_round_trip_through_prometheus() {
        let obs = ServeObs::new();
        obs.inc("serve.requests.received");
        obs.add("serve.dedup.coalesced", 3);
        obs.observe_us("serve.request.latency_us", 1_250);
        obs.set_gauge("serve.queue.depth", 2.0);
        let parsed = export::parse_prometheus(&obs.prometheus()).unwrap();
        assert_eq!(
            parsed.get(&export::sanitize_name("serve.requests.received")),
            Some(&1.0)
        );
        assert_eq!(
            parsed.get(&export::sanitize_name("serve.dedup.coalesced")),
            Some(&3.0)
        );
        assert_eq!(
            parsed.get(&export::sanitize_name("serve.queue.depth")),
            Some(&2.0)
        );
    }

    #[test]
    fn spans_render_as_valid_chrome_trace() {
        let obs = ServeObs::new();
        obs.span(7, "queue", 10, 40);
        obs.span(7, "execute", 40, 90);
        let json = obs.chrome_trace();
        export::validate_json(&json).unwrap();
        assert!(json.contains("\"queue\"") && json.contains("\"execute\""));
    }

    #[test]
    fn spans_never_invert_even_with_clock_jitter() {
        let obs = ServeObs::new();
        obs.span(1, "x", 50, 20);
        let json = obs.chrome_trace();
        export::validate_json(&json).unwrap();
    }
}
