//! Per-connection state machine, free of any socket.
//!
//! A [`Conn`] owns everything about one connection *except* the fd:
//! protocol sniffing, frame/line reassembly, the outbound buffer, the
//! request lifecycle counters behind [`ConnState`], and the two reap
//! clocks (partial-read stall, write stall). The reactor shovels bytes
//! between the socket and this machine; tests drive the same machine
//! directly with byte slices, which is what makes every transition
//! unit-testable without a kernel in the loop.
//!
//! ```text
//!                  bytes in            admitted       started
//! ReadingFrame ───────────────▶ parse ─────────▶ Queued ─────▶ Executing
//!      ▲                                            │              │
//!      │ outbuf flushed                   resolve() │    resolve() │
//!      └─────────────── WritingResponse ◀───────────┴──────────────┘
//!                             │ close_after_flush
//!                             ▼
//!                          Draining ──flush──▶ (closed)
//! ```
//!
//! The protocol is sniffed from the first byte: `b'C'` starts a
//! `b"CSRV"` binary stream, `b'G'` an HTTP scrape (`GET /metrics`),
//! anything else the line-JSON protocol — so all three coexist on one
//! listener with zero configuration.

use std::time::{Duration, Instant};

use crate::proto::{FrameScanner, ProtoError, Request, MAX_REQUEST_PAYLOAD};

/// Reactor-wide identifier of one connection.
pub type ConnToken = u64;

/// Outbound high-water mark: while more than this many bytes are
/// buffered, the connection stops reading new requests. The client
/// feels backpressure instead of the server buffering unboundedly for
/// a peer that won't drain its replies.
pub const OUTBUF_HIGH_WATER: usize = 256 * 1024;

/// Which protocol the first byte revealed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnProto {
    /// No bytes yet.
    Unknown,
    /// `b"CSRV"` binary frames.
    Binary,
    /// Line-delimited JSON (the PR-5 protocol).
    Line,
    /// A one-shot HTTP GET (Prometheus scrape).
    Http,
}

/// The connection's position in the request lifecycle. With pipelining
/// the state reflects the most advanced pending work: a connection
/// with a reply being written *and* a job executing reports
/// `WritingResponse`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Waiting for (more of) a request.
    ReadingFrame,
    /// At least one admitted request is waiting for the dispatcher.
    Queued,
    /// At least one request's job is executing.
    Executing,
    /// Reply bytes are buffered for the wire.
    WritingResponse,
    /// Final bytes are flushing; the connection closes when empty.
    Draining,
}

/// One parsed inbound request, protocol-tagged.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// A validated binary frame.
    Binary(Request),
    /// One non-empty line (newline stripped, not yet JSON-parsed).
    Line(String),
    /// An HTTP request path (headers already consumed).
    Http(String),
}

/// Why [`Conn::tick`] wants the connection reaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reap {
    /// A request sat partially received past the line timeout
    /// (slow-loris); answer with a typed timeout and close.
    StalledRead,
    /// Buffered reply bytes made no progress for the write timeout
    /// (client stopped reading); close immediately.
    StalledWrite,
}

#[derive(Debug)]
enum Assembler {
    Sniffing,
    Binary(FrameScanner),
    Line {
        buf: Vec<u8>,
    },
    Http {
        buf: Vec<u8>,
        request_line: Option<String>,
        done: bool,
    },
}

/// The socket-free half of one connection. See the module docs.
#[derive(Debug)]
pub struct Conn {
    token: ConnToken,
    assembler: Assembler,
    outbuf: Vec<u8>,
    written: usize,
    queued: usize,
    executing: usize,
    partial_since: Option<Instant>,
    last_write_progress: Option<Instant>,
    close_after_flush: bool,
}

impl Conn {
    /// A fresh connection machine.
    #[must_use]
    pub fn new(token: ConnToken) -> Self {
        Conn {
            token,
            assembler: Assembler::Sniffing,
            outbuf: Vec::new(),
            written: 0,
            queued: 0,
            executing: 0,
            partial_since: None,
            last_write_progress: None,
            close_after_flush: false,
        }
    }

    /// This connection's reactor token.
    #[must_use]
    pub fn token(&self) -> ConnToken {
        self.token
    }

    /// The sniffed protocol.
    #[must_use]
    pub fn proto(&self) -> ConnProto {
        match &self.assembler {
            Assembler::Sniffing => ConnProto::Unknown,
            Assembler::Binary(_) => ConnProto::Binary,
            Assembler::Line { .. } => ConnProto::Line,
            Assembler::Http { .. } => ConnProto::Http,
        }
    }

    /// The lifecycle state (see [`ConnState`]).
    #[must_use]
    pub fn state(&self) -> ConnState {
        if self.close_after_flush {
            ConnState::Draining
        } else if self.written < self.outbuf.len() {
            ConnState::WritingResponse
        } else if self.executing > 0 {
            ConnState::Executing
        } else if self.queued > 0 {
            ConnState::Queued
        } else {
            ConnState::ReadingFrame
        }
    }

    /// Feeds raw stream bytes and returns every complete request they
    /// finished. `now` drives the partial-read reap clock.
    ///
    /// # Errors
    ///
    /// A typed [`ProtoError`] the moment a binary stream turns to
    /// garbage; the connection must be answered (best effort) and
    /// closed — stream state past the error is unreliable.
    pub fn on_bytes(&mut self, bytes: &[u8], now: Instant) -> Result<Vec<WireRequest>, ProtoError> {
        if bytes.is_empty() {
            return Ok(Vec::new());
        }
        if matches!(self.assembler, Assembler::Sniffing) {
            self.assembler = match bytes[0] {
                b'C' => Assembler::Binary(FrameScanner::new(MAX_REQUEST_PAYLOAD)),
                b'G' => Assembler::Http {
                    buf: Vec::new(),
                    request_line: None,
                    done: false,
                },
                _ => Assembler::Line { buf: Vec::new() },
            };
        }
        let mut out = Vec::new();
        match &mut self.assembler {
            Assembler::Sniffing => unreachable!("sniffed above"),
            Assembler::Binary(scanner) => {
                scanner.extend(bytes);
                while let Some(payload) = scanner.next_frame()? {
                    let req = Request::decode(&payload)?;
                    out.push(WireRequest::Binary(req));
                }
                self.partial_since = match (scanner.mid_frame(), self.partial_since) {
                    (false, _) => None,
                    (true, Some(t)) => Some(t),
                    (true, None) => Some(now),
                };
            }
            Assembler::Line { buf } => {
                buf.extend_from_slice(bytes);
                while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
                    let raw: Vec<u8> = buf.drain(..=nl).collect();
                    let line = String::from_utf8_lossy(&raw).trim().to_owned();
                    if !line.is_empty() {
                        out.push(WireRequest::Line(line));
                    }
                }
                self.partial_since = match (buf.is_empty(), self.partial_since) {
                    (true, _) => None,
                    (false, Some(t)) => Some(t),
                    (false, None) => Some(now),
                };
            }
            Assembler::Http {
                buf,
                request_line,
                done,
            } => {
                if *done {
                    // One request per scrape connection; trailing
                    // bytes (a keep-alive attempt) are ignored.
                    return Ok(out);
                }
                buf.extend_from_slice(bytes);
                while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
                    let raw: Vec<u8> = buf.drain(..=nl).collect();
                    let line = String::from_utf8_lossy(&raw).trim().to_owned();
                    if request_line.is_none() {
                        *request_line = Some(line);
                    } else if line.is_empty() {
                        // Blank line: headers done, emit the request.
                        let first = request_line.clone().expect("request line recorded");
                        let path = first.split_whitespace().nth(1).unwrap_or("/").to_owned();
                        out.push(WireRequest::Http(path));
                        *done = true;
                        buf.clear();
                        break;
                    }
                }
                self.partial_since = if *done || (buf.is_empty() && request_line.is_none()) {
                    None
                } else {
                    // Mid-header counts as a partial request: a scraper
                    // stalling between headers gets the loris reaping.
                    Some(self.partial_since.unwrap_or(now))
                };
            }
        }
        Ok(out)
    }

    /// Records one request admitted to the queue (or dedup-coalesced
    /// onto an in-flight one).
    pub fn admitted(&mut self) {
        self.queued += 1;
    }

    /// Records an admitted request entering execution.
    pub fn started(&mut self) {
        self.queued = self.queued.saturating_sub(1);
        self.executing += 1;
    }

    /// Resolves one pending (admitted) request with its reply bytes.
    pub fn resolve(&mut self, bytes: &[u8], now: Instant) {
        if self.executing > 0 {
            self.executing -= 1;
        } else {
            self.queued = self.queued.saturating_sub(1);
        }
        self.respond(bytes, now);
    }

    /// Buffers reply bytes for a request that never queued (immediate
    /// answers: pings, cache hits, typed errors).
    pub fn respond(&mut self, bytes: &[u8], now: Instant) {
        if self.flushed() {
            // Compact before growing again so `written` cannot creep.
            self.outbuf.clear();
            self.written = 0;
            self.last_write_progress = Some(now);
        }
        self.outbuf.extend_from_slice(bytes);
    }

    /// Pending requests (admitted or executing) without a reply yet.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.queued + self.executing
    }

    /// Marks the connection to close once the outbuf drains.
    pub fn mark_close_after_flush(&mut self) {
        self.close_after_flush = true;
    }

    /// Whether this connection closes after its current flush.
    #[must_use]
    pub fn closing(&self) -> bool {
        self.close_after_flush
    }

    /// Whether every buffered byte has been written.
    #[must_use]
    pub fn flushed(&self) -> bool {
        self.written == self.outbuf.len()
    }

    /// The bytes still owed to the wire.
    #[must_use]
    pub fn writable(&self) -> &[u8] {
        &self.outbuf[self.written..]
    }

    /// Whether the reactor should poll this fd for readability. False
    /// while closing or while the peer owes us a drain (backpressure).
    #[must_use]
    pub fn wants_read(&self) -> bool {
        !self.close_after_flush && self.outbuf.len() - self.written <= OUTBUF_HIGH_WATER
    }

    /// Whether the reactor should poll this fd for writability — only
    /// while bytes are owed, which is what keeps an idle connection
    /// from busy-looping on a permanently-writable socket.
    #[must_use]
    pub fn wants_write(&self) -> bool {
        !self.flushed()
    }

    /// Records `n` bytes accepted by the socket.
    pub fn did_write(&mut self, n: usize, now: Instant) {
        self.written += n;
        debug_assert!(self.written <= self.outbuf.len());
        if n > 0 {
            self.last_write_progress = Some(now);
        }
        if self.flushed() {
            self.outbuf.clear();
            self.written = 0;
            self.last_write_progress = None;
        }
    }

    /// Checks the two reap clocks. A closing connection only answers
    /// to the write clock — its partial read is already being
    /// abandoned, so re-reporting it would double-count the reap.
    #[must_use]
    pub fn tick(
        &self,
        now: Instant,
        line_timeout: Duration,
        write_timeout: Duration,
    ) -> Option<Reap> {
        if !self.close_after_flush {
            if let Some(since) = self.partial_since {
                if now.duration_since(since) >= line_timeout {
                    return Some(Reap::StalledRead);
                }
            }
        }
        if self.wants_write() {
            if let Some(since) = self.last_write_progress {
                if now.duration_since(since) >= write_timeout {
                    return Some(Reap::StalledWrite);
                }
            }
        }
        None
    }

    /// The earliest instant at which [`tick`](Conn::tick) could fire,
    /// for sizing the reactor's poll timeout. `None` means this
    /// connection never needs a timer wakeup — the idle fast path.
    #[must_use]
    pub fn next_deadline(
        &self,
        line_timeout: Duration,
        write_timeout: Duration,
    ) -> Option<Instant> {
        let read = (!self.close_after_flush)
            .then_some(self.partial_since)
            .flatten()
            .map(|t| t + line_timeout);
        let write = self
            .wants_write()
            .then_some(self.last_write_progress)
            .flatten()
            .map(|t| t + write_timeout);
        match (read, write) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    const LINE_T: Duration = Duration::from_millis(200);
    const WRITE_T: Duration = Duration::from_millis(400);

    fn run_frame(corr: u64) -> Vec<u8> {
        Request::Run {
            corr,
            priority: 1,
            deadline_ms: None,
            spec: JobSpec::Table2 {
                kernel: 0,
                ces: 2,
                blocks: 1,
            },
        }
        .encode()
    }

    #[test]
    fn full_binary_lifecycle_walks_the_state_table() {
        let now = Instant::now();
        let mut c = Conn::new(1);
        assert_eq!(c.state(), ConnState::ReadingFrame);
        assert_eq!(c.proto(), ConnProto::Unknown);

        // Half a frame: still reading, protocol locked to binary.
        let frame = run_frame(7);
        let reqs = c.on_bytes(&frame[..5], now).unwrap();
        assert!(reqs.is_empty());
        assert_eq!(c.proto(), ConnProto::Binary);
        assert_eq!(c.state(), ConnState::ReadingFrame);

        // Rest of the frame: one request out, admitted → Queued.
        let reqs = c.on_bytes(&frame[5..], now).unwrap();
        assert_eq!(reqs.len(), 1);
        c.admitted();
        assert_eq!(c.state(), ConnState::Queued);

        c.started();
        assert_eq!(c.state(), ConnState::Executing);

        c.resolve(b"reply-bytes", now);
        assert_eq!(c.state(), ConnState::WritingResponse);
        assert_eq!(c.writable(), b"reply-bytes");

        // Partial write keeps the state; full flush returns to reading.
        c.did_write(5, now);
        assert_eq!(c.state(), ConnState::WritingResponse);
        c.did_write(6, now);
        assert_eq!(c.state(), ConnState::ReadingFrame);
        assert!(!c.wants_write(), "flushed conn must not poll POLLOUT");
    }

    #[test]
    fn draining_closes_only_after_the_flush() {
        let now = Instant::now();
        let mut c = Conn::new(2);
        c.respond(b"final", now);
        c.mark_close_after_flush();
        assert_eq!(c.state(), ConnState::Draining);
        assert!(!c.wants_read(), "a draining conn reads nothing more");
        assert!(c.wants_write());
        c.did_write(5, now);
        assert!(c.flushed() && c.closing(), "flushed + closing = closed");
    }

    #[test]
    fn line_and_http_protocols_sniff_from_the_first_byte() {
        let now = Instant::now();
        let mut c = Conn::new(3);
        let reqs = c.on_bytes(b"{\"op\":\"ping\"}\nnot json\n\n", now).unwrap();
        assert_eq!(c.proto(), ConnProto::Line);
        // Two non-empty lines; the blank line is skipped.
        assert_eq!(
            reqs,
            vec![
                WireRequest::Line("{\"op\":\"ping\"}".into()),
                WireRequest::Line("not json".into()),
            ]
        );

        let mut h = Conn::new(4);
        let reqs = h
            .on_bytes(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n", now)
            .unwrap();
        assert_eq!(h.proto(), ConnProto::Http);
        assert_eq!(reqs, vec![WireRequest::Http("/metrics".into())]);
        // A second pipelined GET is ignored: scrapes are one-shot.
        assert!(h
            .on_bytes(b"GET / HTTP/1.1\r\n\r\n", now)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn binary_garbage_is_a_typed_error() {
        let now = Instant::now();
        let mut c = Conn::new(5);
        // 'C' sniffs binary; the next byte already breaks the magic.
        let err = c.on_bytes(b"CRAP", now).unwrap_err();
        assert!(matches!(err, ProtoError::Corrupt(_)));
    }

    #[test]
    fn partial_frame_ages_into_a_read_reap_but_idle_never_does() {
        let start = Instant::now();
        let mut c = Conn::new(6);
        // Idle forever: no clock runs.
        assert_eq!(c.tick(start + LINE_T * 100, LINE_T, WRITE_T), None);
        assert_eq!(c.next_deadline(LINE_T, WRITE_T), None);

        // First byte of a frame starts the clock...
        let frame = run_frame(1);
        c.on_bytes(&frame[..1], start).unwrap();
        assert_eq!(c.tick(start, LINE_T, WRITE_T), None);
        // ...and progress bytes must NOT reset it (anti-slow-loris).
        c.on_bytes(&frame[1..3], start + LINE_T / 2).unwrap();
        assert_eq!(
            c.tick(start + LINE_T, LINE_T, WRITE_T),
            Some(Reap::StalledRead)
        );

        // Completing the frame clears the clock.
        c.on_bytes(&frame[3..], start + LINE_T / 2).unwrap();
        assert_eq!(c.tick(start + LINE_T * 100, LINE_T, WRITE_T), None);
    }

    #[test]
    fn stalled_write_reaps_and_progress_resets_the_clock() {
        let start = Instant::now();
        let mut c = Conn::new(7);
        c.respond(b"0123456789", start);
        assert_eq!(c.tick(start, LINE_T, WRITE_T), None);
        // Progress at T/2 pushes the deadline out.
        c.did_write(4, start + WRITE_T / 2);
        assert_eq!(c.tick(start + WRITE_T, LINE_T, WRITE_T), None);
        assert_eq!(
            c.tick(start + WRITE_T / 2 + WRITE_T, LINE_T, WRITE_T),
            Some(Reap::StalledWrite)
        );
        // Full flush stops the clock entirely.
        c.did_write(6, start + WRITE_T / 2);
        assert_eq!(c.tick(start + WRITE_T * 100, LINE_T, WRITE_T), None);
    }

    #[test]
    fn outbuf_high_water_gates_reading() {
        let now = Instant::now();
        let mut c = Conn::new(8);
        assert!(c.wants_read());
        c.respond(&vec![0u8; OUTBUF_HIGH_WATER + 1], now);
        assert!(!c.wants_read(), "backpressure: stop reading while owed");
        c.did_write(2, now);
        assert!(c.wants_read(), "draining below the mark resumes reads");
    }

    #[test]
    fn pipelined_requests_keep_counters_consistent() {
        let now = Instant::now();
        let mut c = Conn::new(9);
        let bytes: Vec<u8> = run_frame(1)
            .into_iter()
            .chain(run_frame(2))
            .chain(run_frame(3))
            .collect();
        let reqs = c.on_bytes(&bytes, now).unwrap();
        assert_eq!(reqs.len(), 3);
        c.admitted();
        c.admitted();
        c.admitted();
        assert_eq!(c.inflight(), 3);
        c.started();
        assert_eq!(c.state(), ConnState::Executing);
        c.resolve(b"r1", now);
        c.resolve(b"r2", now);
        assert_eq!(c.state(), ConnState::WritingResponse);
        assert_eq!(c.inflight(), 1);
        c.did_write(4, now);
        // Replies flushed, one request still queued.
        assert_eq!(c.state(), ConnState::Queued);
        c.resolve(b"r3", now);
        c.did_write(2, now);
        assert_eq!(c.state(), ConnState::ReadingFrame);
        assert_eq!(c.inflight(), 0);
    }
}
