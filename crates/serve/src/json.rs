//! Minimal JSON value parsing for the wire protocol.
//!
//! The parser itself lives in [`cedar_obs::json`], next to the
//! workspace's JSON producers and structural validator, so the serving
//! tier and the benchmark-history tooling share one dialect (RFC 8259
//! bounded by [`MAX_DEPTH`] and [`MAX_LEN`] — a hostile request line
//! cannot blow the parse stack or memory). This module re-exports it
//! under the serving tier's historical path.

pub use cedar_obs::json::{parse, Json, MAX_DEPTH, MAX_LEN};
