//! The `b"CSRV"` length-prefixed binary wire protocol.
//!
//! Binary requests and responses travel inside the exact envelope
//! `cedar-snap` uses for snapshots and cluster frames — magic, version
//! byte, little-endian payload length, payload, FNV-1a checksum — with
//! the magic swapped to `b"CSRV"` so a serving-tier frame can never be
//! confused with a snapshot:
//!
//! ```text
//! offset  size  field
//! 0       4     magic      b"CSRV"
//! 4       1     version    (cedar_snap::SNAP_VERSION)
//! 5       8     payload length N, little-endian u64
//! 13      N     payload    (SnapWriter encoding, see below)
//! 13+N    8     checksum   FNV-1a of the payload, little-endian u64
//! ```
//!
//! Payloads start with a client-chosen `u64` correlation id (echoed on
//! the response, which is what lets one connection pipeline many
//! requests) followed by a kind tag byte. The `Outcome` response
//! carries the job's result as a complete *sealed CSNP envelope* — the
//! very bytes [`CacheDir`](cedar_snap::CacheDir) stores — so memoized
//! hits are forwarded zero-copy and clients get end-to-end checksum
//! coverage of the result for free.
//!
//! Every way a frame can be malformed maps to a typed [`ProtoError`];
//! the decoder never panics and the incremental [`FrameScanner`] never
//! hangs on garbage (a bad magic byte fails as soon as it arrives, a
//! declared length past the cap fails before buffering the body).

use cedar_snap::{
    fnv1a, seal_as, unseal_as, SnapError, SnapReader, SnapWriter, Snapshot, ENVELOPE_HEADER_LEN,
    ENVELOPE_OVERHEAD, SNAP_VERSION,
};

use crate::job::{JobError, JobSpec};

/// Envelope magic for serving-tier frames.
pub const PROTO_MAGIC: [u8; 4] = *b"CSRV";

/// Sanity cap on request payloads. Requests are a correlation id, a
/// tag and a job spec — kilobytes at most; anything bigger is garbage
/// or abuse and fails before it is buffered.
pub const MAX_REQUEST_PAYLOAD: u64 = 64 * 1024;

/// Sanity cap on response payloads (a Prometheus exposition or an
/// outcome envelope).
pub const MAX_RESPONSE_PAYLOAD: u64 = 16 * 1024 * 1024;

/// Why a binary frame or payload was rejected. Every variant is a
/// typed, connection-fatal protocol error: the stream position after
/// any of these is unreliable, so the server answers with an
/// [`Response::Error`] frame where it still can and closes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The envelope was malformed: wrong magic, version skew, checksum
    /// mismatch, truncation or trailing bytes.
    Corrupt(SnapError),
    /// The envelope declared a payload longer than the cap.
    Oversize {
        /// Declared payload length.
        declared: u64,
        /// The cap it exceeded.
        cap: u64,
    },
    /// The envelope checked out but its payload did not decode.
    BadPayload(SnapError),
    /// The payload named a request/response kind this build does not
    /// know.
    UnknownKind(u8),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Corrupt(e) => write!(f, "corrupt frame: {e}"),
            ProtoError::Oversize { declared, cap } => {
                write!(f, "frame declares {declared} payload bytes (cap {cap})")
            }
            ProtoError::BadPayload(e) => write!(f, "bad frame payload: {e}"),
            ProtoError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Wire `status` codes for [`Response::Error`], mirroring
/// [`JobError::status`] plus the connection-reap timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrStatus {
    /// Malformed or out-of-bounds request.
    Invalid,
    /// Admission control refused the job.
    Rejected,
    /// The deadline passed before execution.
    Expired,
    /// The server shut down before execution.
    Cancelled,
    /// The simulation wedged (watchdog).
    Stalled,
    /// The connection stalled mid-frame and was reaped.
    Timeout,
}

impl ErrStatus {
    /// The wire status string — identical to the line protocol's.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrStatus::Invalid => "invalid",
            ErrStatus::Rejected => "rejected",
            ErrStatus::Expired => "expired",
            ErrStatus::Cancelled => "cancelled",
            ErrStatus::Stalled => "error",
            ErrStatus::Timeout => "timeout",
        }
    }

    /// The [`JobError`] this status encodes, if any.
    #[must_use]
    pub fn from_job_error(err: &JobError) -> ErrStatus {
        match err {
            JobError::Invalid(_) => ErrStatus::Invalid,
            JobError::Rejected(_) => ErrStatus::Rejected,
            JobError::Expired => ErrStatus::Expired,
            JobError::Cancelled => ErrStatus::Cancelled,
            JobError::Stalled(_) => ErrStatus::Stalled,
        }
    }

    fn tag(self) -> u8 {
        match self {
            ErrStatus::Invalid => 0,
            ErrStatus::Rejected => 1,
            ErrStatus::Expired => 2,
            ErrStatus::Cancelled => 3,
            ErrStatus::Stalled => 4,
            ErrStatus::Timeout => 5,
        }
    }

    fn from_tag(tag: u8) -> Result<ErrStatus, ProtoError> {
        Ok(match tag {
            0 => ErrStatus::Invalid,
            1 => ErrStatus::Rejected,
            2 => ErrStatus::Expired,
            3 => ErrStatus::Cancelled,
            4 => ErrStatus::Stalled,
            5 => ErrStatus::Timeout,
            other => return Err(ProtoError::UnknownKind(other)),
        })
    }
}

/// One binary request. `corr` is chosen by the client and echoed on
/// the matching response.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping {
        /// Correlation id.
        corr: u64,
    },
    /// Run one job; answered with [`Response::Outcome`] or
    /// [`Response::Error`].
    Run {
        /// Correlation id.
        corr: u64,
        /// Priority lane (0 most urgent, clamped to 2).
        priority: u8,
        /// Optional deadline in milliseconds from admission.
        deadline_ms: Option<u64>,
        /// The work itself.
        spec: JobSpec,
    },
    /// Fetch the Prometheus exposition; answered with
    /// [`Response::MetricsText`].
    Metrics {
        /// Correlation id.
        corr: u64,
    },
    /// Begin graceful drain; answered with [`Response::ShutdownAck`]
    /// once the drain completes.
    Shutdown {
        /// Correlation id.
        corr: u64,
    },
}

impl Request {
    /// The request's correlation id.
    #[must_use]
    pub fn corr(&self) -> u64 {
        match *self {
            Request::Ping { corr }
            | Request::Run { corr, .. }
            | Request::Metrics { corr }
            | Request::Shutdown { corr } => corr,
        }
    }

    /// Encodes this request as one complete sealed frame.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        match self {
            Request::Ping { corr } => {
                w.put_u64(*corr);
                w.put_u8(0);
            }
            Request::Run {
                corr,
                priority,
                deadline_ms,
                spec,
            } => {
                w.put_u64(*corr);
                w.put_u8(1);
                w.put_u8(*priority);
                match deadline_ms {
                    Some(ms) => {
                        w.put_bool(true);
                        w.put_u64(*ms);
                    }
                    None => w.put_bool(false),
                }
                spec.snap(&mut w);
            }
            Request::Metrics { corr } => {
                w.put_u64(*corr);
                w.put_u8(2);
            }
            Request::Shutdown { corr } => {
                w.put_u64(*corr);
                w.put_u8(3);
            }
        }
        seal_as(PROTO_MAGIC, &w.into_bytes())
    }

    /// Decodes a request from an unsealed frame payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError::BadPayload`] on truncation or trailing bytes,
    /// [`ProtoError::UnknownKind`] on an unrecognized tag.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut r = SnapReader::new(payload);
        let corr = r.get_u64().map_err(ProtoError::BadPayload)?;
        let tag = r.get_u8().map_err(ProtoError::BadPayload)?;
        let req = match tag {
            0 => Request::Ping { corr },
            1 => {
                let priority = r.get_u8().map_err(ProtoError::BadPayload)?;
                let deadline_ms = if r.get_bool().map_err(ProtoError::BadPayload)? {
                    Some(r.get_u64().map_err(ProtoError::BadPayload)?)
                } else {
                    None
                };
                let spec = JobSpec::restore(&mut r).map_err(ProtoError::BadPayload)?;
                Request::Run {
                    corr,
                    priority,
                    deadline_ms,
                    spec,
                }
            }
            2 => Request::Metrics { corr },
            3 => Request::Shutdown { corr },
            other => return Err(ProtoError::UnknownKind(other)),
        };
        if r.remaining() != 0 {
            return Err(ProtoError::BadPayload(SnapError::TrailingBytes));
        }
        Ok(req)
    }
}

/// One binary response, echoing its request's correlation id.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness answer.
    Pong {
        /// Echoed correlation id.
        corr: u64,
        /// Whether the server is draining.
        draining: bool,
    },
    /// A completed job.
    Outcome {
        /// Echoed correlation id.
        corr: u64,
        /// Whether the result came from the memoization cache.
        cached: bool,
        /// The job's [`JobOutcome`](crate::job::JobOutcome) as a
        /// complete sealed CSNP envelope — cache-entry bytes verbatim.
        envelope: Vec<u8>,
    },
    /// A typed failure.
    Error {
        /// Echoed correlation id.
        corr: u64,
        /// Status code (same vocabulary as the line protocol).
        status: ErrStatus,
        /// Human-readable reason.
        reason: String,
    },
    /// The Prometheus exposition.
    MetricsText {
        /// Echoed correlation id.
        corr: u64,
        /// Exposition text.
        prometheus: String,
    },
    /// Graceful drain completed.
    ShutdownAck {
        /// Echoed correlation id.
        corr: u64,
        /// Always true: the ack is only sent once drained.
        drained: bool,
    },
}

impl Response {
    /// The response's correlation id.
    #[must_use]
    pub fn corr(&self) -> u64 {
        match *self {
            Response::Pong { corr, .. }
            | Response::Outcome { corr, .. }
            | Response::Error { corr, .. }
            | Response::MetricsText { corr, .. }
            | Response::ShutdownAck { corr, .. } => corr,
        }
    }

    /// Encodes this response as one complete sealed frame.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        match self {
            Response::Pong { corr, draining } => {
                w.put_u64(*corr);
                w.put_u8(0);
                w.put_bool(*draining);
            }
            Response::Outcome {
                corr,
                cached,
                envelope,
            } => {
                w.put_u64(*corr);
                w.put_u8(1);
                w.put_bool(*cached);
                w.put_bytes(envelope);
            }
            Response::Error {
                corr,
                status,
                reason,
            } => {
                w.put_u64(*corr);
                w.put_u8(2);
                w.put_u8(status.tag());
                w.put_str(reason);
            }
            Response::MetricsText { corr, prometheus } => {
                w.put_u64(*corr);
                w.put_u8(3);
                w.put_str(prometheus);
            }
            Response::ShutdownAck { corr, drained } => {
                w.put_u64(*corr);
                w.put_u8(4);
                w.put_bool(*drained);
            }
        }
        seal_as(PROTO_MAGIC, &w.into_bytes())
    }

    /// Decodes a response from an unsealed frame payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError::BadPayload`] on truncation or trailing bytes,
    /// [`ProtoError::UnknownKind`] on an unrecognized tag.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let mut r = SnapReader::new(payload);
        let corr = r.get_u64().map_err(ProtoError::BadPayload)?;
        let tag = r.get_u8().map_err(ProtoError::BadPayload)?;
        let resp = match tag {
            0 => Response::Pong {
                corr,
                draining: r.get_bool().map_err(ProtoError::BadPayload)?,
            },
            1 => Response::Outcome {
                corr,
                cached: r.get_bool().map_err(ProtoError::BadPayload)?,
                envelope: r.get_bytes().map_err(ProtoError::BadPayload)?.to_vec(),
            },
            2 => Response::Error {
                corr,
                status: ErrStatus::from_tag(r.get_u8().map_err(ProtoError::BadPayload)?)?,
                reason: r.get_string().map_err(ProtoError::BadPayload)?,
            },
            3 => Response::MetricsText {
                corr,
                prometheus: r.get_string().map_err(ProtoError::BadPayload)?,
            },
            4 => Response::ShutdownAck {
                corr,
                drained: r.get_bool().map_err(ProtoError::BadPayload)?,
            },
            other => return Err(ProtoError::UnknownKind(other)),
        };
        if r.remaining() != 0 {
            return Err(ProtoError::BadPayload(SnapError::TrailingBytes));
        }
        Ok(resp)
    }
}

/// Validates one complete frame buffer and returns its payload.
///
/// This is the non-incremental decode used on already-delimited
/// buffers (tests, recorded transcripts); live connections go through
/// [`FrameScanner`], which applies the same checks byte-by-byte.
///
/// # Errors
///
/// [`ProtoError::Oversize`] when the declared length exceeds `cap`,
/// [`ProtoError::Corrupt`] for every other malformation.
pub fn decode_frame(bytes: &[u8], cap: u64) -> Result<&[u8], ProtoError> {
    if bytes.len() >= ENVELOPE_HEADER_LEN && bytes[0..4] == PROTO_MAGIC && bytes[4] == SNAP_VERSION
    {
        let declared = u64::from_le_bytes(bytes[5..ENVELOPE_HEADER_LEN].try_into().unwrap());
        if declared > cap {
            return Err(ProtoError::Oversize { declared, cap });
        }
    }
    unseal_as(PROTO_MAGIC, bytes).map_err(ProtoError::Corrupt)
}

/// Incremental frame delimiter over an arbitrary byte stream.
///
/// Bytes are fed in whatever chunks the socket delivers;
/// [`next_frame`](FrameScanner::next_frame) yields one validated
/// payload per complete frame. Garbage fails *as early as it can be
/// detected* — a wrong magic byte the moment it arrives, a version
/// skew at byte 5, an over-cap length at byte 13 — so a hostile peer
/// can never make the scanner buffer unbounded data or wait forever
/// on a frame that cannot complete.
#[derive(Debug)]
pub struct FrameScanner {
    buf: Vec<u8>,
    cap: u64,
}

impl FrameScanner {
    /// A scanner enforcing `cap` on declared payload lengths.
    #[must_use]
    pub fn new(cap: u64) -> Self {
        FrameScanner {
            buf: Vec::new(),
            cap,
        }
    }

    /// Appends raw stream bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether a frame is in progress (some bytes buffered but no
    /// complete frame yet) — the condition the reap clock runs on.
    #[must_use]
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Yields the next complete validated payload, `Ok(None)` when
    /// more bytes are needed.
    ///
    /// # Errors
    ///
    /// A typed [`ProtoError`] as soon as the buffered prefix cannot be
    /// the start of a valid frame. After an error the scanner's state
    /// is unspecified; the connection must be closed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ProtoError> {
        let have = self.buf.len();
        // Magic and version are checked on whatever prefix has
        // arrived, so garbage fails at its first wrong byte.
        let prefix = have.min(4);
        if self.buf[..prefix] != PROTO_MAGIC[..prefix] {
            return Err(ProtoError::Corrupt(SnapError::BadMagic));
        }
        if have >= 5 && self.buf[4] != SNAP_VERSION {
            return Err(ProtoError::Corrupt(SnapError::BadVersion {
                found: self.buf[4],
                expected: SNAP_VERSION,
            }));
        }
        if have < ENVELOPE_HEADER_LEN {
            return Ok(None);
        }
        let declared = u64::from_le_bytes(self.buf[5..ENVELOPE_HEADER_LEN].try_into().unwrap());
        if declared > self.cap {
            return Err(ProtoError::Oversize {
                declared,
                cap: self.cap,
            });
        }
        let total = ENVELOPE_OVERHEAD + declared as usize;
        if have < total {
            return Ok(None);
        }
        let frame: Vec<u8> = self.buf.drain(..total).collect();
        let payload = &frame[ENVELOPE_HEADER_LEN..ENVELOPE_HEADER_LEN + declared as usize];
        let checksum = u64::from_le_bytes(frame[total - 8..].try_into().unwrap());
        if fnv1a(payload) != checksum {
            return Err(ProtoError::Corrupt(SnapError::BadChecksum));
        }
        Ok(Some(payload.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_and_responses_round_trip() {
        let reqs = [
            Request::Ping { corr: 7 },
            Request::Metrics { corr: u64::MAX },
            Request::Shutdown { corr: 0 },
            Request::Run {
                corr: 42,
                priority: 2,
                deadline_ms: Some(1500),
                spec: JobSpec::Table2 {
                    kernel: 1,
                    ces: 4,
                    blocks: 2,
                },
            },
            Request::Run {
                corr: 43,
                priority: 0,
                deadline_ms: None,
                spec: JobSpec::Degraded {
                    rate_ppm: 20_000,
                    ces: 8,
                    blocks: 2,
                    seed: 0xCEDA,
                },
            },
        ];
        for req in reqs {
            let frame = req.encode();
            let payload = decode_frame(&frame, MAX_REQUEST_PAYLOAD).unwrap();
            assert_eq!(Request::decode(payload).unwrap(), req);
        }
        let resps = [
            Response::Pong {
                corr: 7,
                draining: true,
            },
            Response::Outcome {
                corr: 1,
                cached: true,
                envelope: cedar_snap::seal(b"pretend-outcome"),
            },
            Response::Error {
                corr: 2,
                status: ErrStatus::Rejected,
                reason: "queue full".into(),
            },
            Response::MetricsText {
                corr: 3,
                prometheus: "# HELP x\n".into(),
            },
            Response::ShutdownAck {
                corr: 4,
                drained: true,
            },
        ];
        for resp in resps {
            let frame = resp.encode();
            let payload = decode_frame(&frame, MAX_RESPONSE_PAYLOAD).unwrap();
            assert_eq!(Response::decode(payload).unwrap(), resp);
        }
    }

    #[test]
    fn scanner_reassembles_frames_from_any_split() {
        let a = Request::Ping { corr: 1 }.encode();
        let b = Request::Run {
            corr: 2,
            priority: 1,
            deadline_ms: None,
            spec: JobSpec::Hotspot {
                hot_ppm: 1000,
                ces: 2,
                blocks: 1,
            },
        }
        .encode();
        let stream: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        // Split the two-frame stream at every byte boundary.
        for split in 0..=stream.len() {
            let mut s = FrameScanner::new(MAX_REQUEST_PAYLOAD);
            let mut got = Vec::new();
            s.extend(&stream[..split]);
            while let Some(p) = s.next_frame().unwrap() {
                got.push(p);
            }
            s.extend(&stream[split..]);
            while let Some(p) = s.next_frame().unwrap() {
                got.push(p);
            }
            assert_eq!(got.len(), 2, "split at {split}");
            assert_eq!(Request::decode(&got[0]).unwrap(), Request::Ping { corr: 1 });
            assert_eq!(Request::decode(&got[1]).unwrap().corr(), 2);
            assert_eq!(s.buffered(), 0);
        }
    }

    #[test]
    fn scanner_rejects_garbage_at_the_first_wrong_byte() {
        let mut s = FrameScanner::new(MAX_REQUEST_PAYLOAD);
        s.extend(b"X");
        assert_eq!(
            s.next_frame(),
            Err(ProtoError::Corrupt(SnapError::BadMagic))
        );
        // A CSNP snapshot envelope on the CSRV port is typed garbage
        // too, at its third byte.
        let mut s = FrameScanner::new(MAX_REQUEST_PAYLOAD);
        s.extend(b"CSN");
        assert_eq!(
            s.next_frame(),
            Err(ProtoError::Corrupt(SnapError::BadMagic))
        );
    }

    #[test]
    fn scanner_rejects_oversize_before_buffering_the_body() {
        let mut bad = Request::Ping { corr: 9 }.encode();
        bad[5..13].copy_from_slice(&(MAX_REQUEST_PAYLOAD + 1).to_le_bytes());
        let mut s = FrameScanner::new(MAX_REQUEST_PAYLOAD);
        s.extend(&bad[..ENVELOPE_HEADER_LEN]);
        assert!(matches!(
            s.next_frame(),
            Err(ProtoError::Oversize { cap, .. }) if cap == MAX_REQUEST_PAYLOAD
        ));
    }

    #[test]
    fn trailing_or_missing_payload_bytes_are_typed() {
        let frame = Request::Ping { corr: 5 }.encode();
        let payload = decode_frame(&frame, MAX_REQUEST_PAYLOAD).unwrap();
        let mut long = payload.to_vec();
        long.push(0);
        assert_eq!(
            Request::decode(&long),
            Err(ProtoError::BadPayload(SnapError::TrailingBytes))
        );
        assert!(matches!(
            Request::decode(&payload[..payload.len() - 1]),
            Err(ProtoError::BadPayload(_))
        ));
    }
}
