//! cedar-serve: a batching, backpressure-aware simulation service.
//!
//! The Cedar paper's performance study is a pile of individual
//! simulation experiments; this crate turns the repository's simulator
//! into a long-lived service that runs them on demand. A `std::net`
//! TCP listener speaks a line-delimited JSON protocol; admitted jobs
//! flow through a bounded priority queue with per-job deadlines into a
//! batching dispatcher that fans each batch across the `cedar-exec`
//! deterministic pool; identical requests collapse in flight and
//! memoize across runs through `cedar-snap`'s content-addressed cache.
//!
//! Three properties carry over from the rest of the workspace:
//!
//! - **Backpressure is typed.** A full queue or a draining server is a
//!   `rejected` reply, never a hung or dropped connection.
//! - **Degradation is typed.** Fault-injected jobs complete with
//!   degraded-mode outcomes (`cedar-faults` semantics); even a
//!   watchdog stall is an `error` reply with a reason.
//! - **Everything is observable.** Queue depth, wait/service/latency
//!   histograms and per-request spans flow through `cedar-obs` and
//!   export as Prometheus text or a Chrome trace.
//!
//! The `serve` binary runs the server; the `loadgen` binary drives it
//! (dedup burst, fault mix, closed- and open-loop load) and writes
//! `BENCH_serve.json`.

pub mod config;
pub mod job;
pub mod json;
pub mod loadgen;
pub mod queue;
pub mod server;
pub mod telemetry;

pub use config::ServeConfig;
pub use job::{JobError, JobOutcome, JobSpec};
pub use loadgen::{LoadReport, LoadgenConfig};
pub use server::{start, JobReply, ServerHandle};
pub use telemetry::ServeObs;
