//! cedar-serve: a batching, backpressure-aware simulation service.
//!
//! The Cedar paper's performance study is a pile of individual
//! simulation experiments; this crate turns the repository's simulator
//! into a long-lived service that runs them on demand. A small fixed
//! fleet of readiness-loop reactor threads (`poll(2)` over nonblocking
//! sockets — no thread per connection) multiplexes every client;
//! one listener speaks three protocols, sniffed from the first byte:
//! the `b"CSRV"` length-prefixed binary protocol, the line-delimited
//! JSON protocol, and one-shot HTTP scrapes. Admitted jobs flow
//! through a bounded priority queue with per-job deadlines into a
//! batching dispatcher that fans each batch across the `cedar-exec`
//! deterministic pool and streams completions back per job; identical
//! requests collapse in flight and memoize across runs through
//! `cedar-snap`'s content-addressed cache, whose sealed envelopes are
//! forwarded verbatim as binary `Outcome` payloads.
//!
//! Three properties carry over from the rest of the workspace:
//!
//! - **Backpressure is typed.** A full queue or a draining server is a
//!   `rejected` reply, never a hung or dropped connection.
//! - **Degradation is typed.** Fault-injected jobs complete with
//!   degraded-mode outcomes (`cedar-faults` semantics); even a
//!   watchdog stall is an `error` reply with a reason.
//! - **Everything is observable.** Queue depth, wait/service/latency
//!   histograms and per-request spans flow through `cedar-obs` and
//!   export as Prometheus text or a Chrome trace.
//!
//! The `serve` binary runs the server; the `loadgen` binary drives it
//! (dedup burst, fault mix, closed- and open-loop load) and writes
//! `BENCH_serve.json`.

pub mod config;
pub mod conn;
pub mod job;
pub mod json;
pub mod loadgen;
pub mod proto;
pub mod queue;
pub(crate) mod reactor;
pub mod server;
pub mod sys;
pub mod telemetry;

pub use config::ServeConfig;
pub use job::{JobError, JobOutcome, JobSpec};
pub use loadgen::{LoadReport, LoadgenConfig};
pub use server::{start, JobReply, ServerHandle};
pub use telemetry::ServeObs;
