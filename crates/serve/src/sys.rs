//! Thin `poll(2)` shim over `std::os::fd` — the only OS surface the
//! readiness loop needs, declared directly against the C ABI so the
//! workspace stays free of external crates. `std` already links libc
//! on every Unix target, so the symbol is always present.
//!
//! The shim is deliberately tiny: one `#[repr(C)]` struct matching
//! `struct pollfd`, the event bits the reactor uses, and a safe
//! wrapper that retries `EINTR`. Everything else (nonblocking sockets,
//! the wakeup pipe) comes from `std`.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// There is data to read.
pub const POLLIN: i16 = 0x001;
/// Writing will not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the `poll(2)` fd set, layout-compatible with the
/// kernel's `struct pollfd` on every Unix libc.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch (negative entries are ignored by
    /// the kernel, which is how the reactor masks dead slots without
    /// re-packing the array).
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Returned events, filled by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// A watch entry for `fd` with the given interest set.
    #[must_use]
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the kernel reported any of `mask` (or an error/hangup,
    /// which readers and writers must both observe to reap the fd).
    #[must_use]
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & (mask | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

// `nfds_t` is `unsigned long` on Linux and the BSDs; `c_ulong` matches
// both LP64 and ILP32 targets.
extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: i32) -> i32;
}

/// Blocks until at least one entry is ready, the timeout elapses
/// (`Ok(0)`), or a signal other than `EINTR` interrupts. `None` waits
/// forever — the reactor's wakeup pipe is always in the set, so a
/// forever wait is still interruptible by design.
///
/// # Errors
///
/// Returns the underlying OS error (except `EINTR`, which retries).
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: i32 = match timeout {
        // Round *up* so a 100µs deadline doesn't busy-spin on 0ms.
        Some(t) => i32::try_from(t.as_millis().max(1).min(i32::MAX as u128)).expect("clamped"),
        None => -1,
    };
    loop {
        for f in fds.iter_mut() {
            f.revents = 0;
        }
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout entries for the duration of the
        // call, and the kernel writes only within it.
        let rc = unsafe {
            poll(
                fds.as_mut_ptr(),
                fds.len() as std::os::raw::c_ulong,
                timeout_ms,
            )
        };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poll_reports_readable_after_a_write() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        // Nothing written yet: a zero timeout returns immediately dry.
        let n = poll_fds(&mut fds, Some(Duration::from_millis(1))).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].ready(POLLIN));
        a.write_all(b"x").unwrap();
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLIN));
    }

    #[test]
    fn poll_reports_writable_and_hangup() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1, "a fresh socket is writable");
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1, "hangup must wake a reader");
        assert!(fds[0].ready(POLLIN));
    }

    #[test]
    fn negative_fd_entries_are_ignored() {
        let (_a, b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(-1, POLLIN), PollFd::new(b.as_raw_fd(), POLLOUT)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(!fds[0].ready(POLLIN), "masked slot must stay silent");
        assert!(fds[1].ready(POLLOUT));
    }
}
