//! The load-generator harness: drives a running server over TCP,
//! checks the serving tier's end-to-end invariants, and writes the
//! `BENCH_serve.json` report.
//!
//! Four phases, each exercising one claim the service makes:
//!
//! 1. **Dedup burst** — a burst of identical requests must collapse to
//!    exactly one execution (or zero executions and all cache hits if
//!    a previous run warmed the disk cache), asserted from the
//!    server's own counters, not from client-side timing.
//! 2. **Fault mix** — a seeded mix with ~2% fault-injected jobs: every
//!    request gets a typed reply and no *healthy* request is dropped
//!    or errored because a degraded one shared its batch.
//! 3. **Closed loop** — `c` clients, each issuing unique jobs
//!    back-to-back, at increasing `c`: offered load versus p50/p95/p99
//!    latency, the saturation-knee curve.
//! 4. **Open loop** — seeded exponential arrivals at a fixed offered
//!    rate, the arrival process the closed loop can't produce.
//! 5. **Adversarial** (opt-in) — slow-loris connections that never
//!    finish a request line and clients that write half a line and
//!    vanish: every loris must be reaped with a typed `timeout` line
//!    while an idle well-behaved connection opened before the wave
//!    survives it untouched.
//! 6. **Binary peak** — the `b"CSRV"` protocol under multiplexed,
//!    pipelined load: a warm pass executes a small spec set to fill
//!    the memoization cache, then a connection sweep (up to
//!    `--conns`, default 10 000) replays those specs as cache hits
//!    from a single-threaded `poll(2)` client reactor, producing the
//!    connections-versus-p99 curve and the peak throughput figure.
//!
//! The seeded mix and arrival schedule make runs reproducible; only
//! the measured latencies vary with the host.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use cedar_obs::export::{parse_prometheus, sanitize_name, validate_json};
use cedar_sim::rng::SplitMix64;

use crate::job::JobSpec;
use crate::json::{self, Json};
use crate::proto::{FrameScanner, Request, Response, MAX_RESPONSE_PAYLOAD};
use crate::sys::{poll_fds, PollFd, POLLIN, POLLOUT};

/// Loadgen settings (see the `loadgen` binary for the flag surface).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Smoke mode: small counts, CI-friendly runtimes.
    pub smoke: bool,
    /// Seed for the job mix and the open-loop arrival schedule.
    pub seed: u64,
    /// Send a graceful `shutdown` after the run and assert it drained.
    pub shutdown: bool,
    /// Run the adversarial slow-loris / partial-write phase. Requires
    /// the server to be configured with `line_timeout` close to
    /// [`LoadgenConfig::line_timeout_ms`], or the phase will stall
    /// waiting for reaps that take the server's (longer) default.
    pub adversarial: bool,
    /// The `line_timeout` the *server* was started with, in ms — sets
    /// this harness's patience while waiting for loris reaps.
    pub line_timeout_ms: u64,
    /// Top of the binary-phase connection sweep. `0` picks the mode
    /// default: 64 in smoke, 10 000 in full.
    pub conns: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7878".to_owned(),
            smoke: false,
            seed: 0xCEDA,
            shutdown: false,
            adversarial: false,
            line_timeout_ms: 1_000,
            conns: 0,
        }
    }
}

/// One closed-loop load level's measurements.
#[derive(Debug, Clone)]
pub struct LevelReport {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests completed across all clients.
    pub requests: usize,
    /// Achieved throughput, requests per second.
    pub throughput_rps: f64,
    /// Latency percentiles in microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, µs.
    pub p95_us: u64,
    /// 99th percentile latency, µs.
    pub p99_us: u64,
}

/// One binary-protocol connection-sweep level: `conns` multiplexed
/// pipelined connections replaying memoized specs.
#[derive(Debug, Clone)]
pub struct ConnLevelReport {
    /// Concurrent multiplexed connections.
    pub conns: usize,
    /// Requests completed across the sweep.
    pub requests: usize,
    /// Achieved throughput, requests per second.
    pub throughput_rps: f64,
    /// Median latency, µs.
    pub p50_us: u64,
    /// 99th percentile latency, µs.
    pub p99_us: u64,
}

/// Binary-protocol phase results (schema's `binary` object).
#[derive(Debug, Clone)]
pub struct BinaryReport {
    /// Distinct specs executed by the warm pass (the replay set).
    pub warm_jobs: usize,
    /// Warm-pass throughput — lockstep, cold cache: the baseline the
    /// peak figure is honestly *not* comparable to.
    pub warm_rps: f64,
    /// The connections-versus-latency curve, increasing `conns`.
    pub curve: Vec<ConnLevelReport>,
    /// Best throughput across the curve (memoized, pipelined).
    pub peak_rps: f64,
    /// p50 at the peak-throughput level, µs.
    pub peak_p50_us: u64,
    /// p99 at the peak-throughput level, µs.
    pub peak_p99_us: u64,
}

/// Adversarial-phase measurements (schema's `adversarial` object).
#[derive(Debug, Clone)]
pub struct AdversarialReport {
    /// Slow-loris connections opened (each holding a partial line).
    pub loris_conns: usize,
    /// Connections the server reaped for a stalled read (must cover
    /// every loris).
    pub reaped_read: u64,
    /// Half-line-then-disconnect clients thrown at the server.
    pub partial_write_conns: usize,
    /// Whether the idle control connection opened before the wave was
    /// still serviceable after it — idleness must never be reaped.
    pub idle_survived: bool,
}

/// The full harness result, rendered into `BENCH_serve.json`.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// `smoke` or `full`.
    pub mode: &'static str,
    /// Dedup-burst phase: burst size sent.
    pub dedup_burst: usize,
    /// Executions the burst actually caused (asserted ≤ 1).
    pub dedup_executed: u64,
    /// Disk-cache hits the burst was served from.
    pub dedup_cache_hits: u64,
    /// In-flight coalesces the burst produced.
    pub dedup_coalesced: u64,
    /// Fault-mix phase: requests sent / ok / degraded / typed errors.
    pub mix_requests: usize,
    /// Healthy replies in the mix.
    pub mix_ok: usize,
    /// Typed degraded replies in the mix.
    pub mix_degraded: usize,
    /// Typed error replies in the mix (stalls); never raw disconnects.
    pub mix_errors: usize,
    /// Healthy requests that failed — the mix assertion requires 0.
    pub mix_healthy_dropped: usize,
    /// Closed-loop levels, in increasing offered load.
    pub levels: Vec<LevelReport>,
    /// Open-loop offered rate, requests per second.
    pub open_offered_rps: f64,
    /// Open-loop achieved completion rate.
    pub open_achieved_rps: f64,
    /// Open-loop p50 latency, µs.
    pub open_p50_us: u64,
    /// Open-loop p99 latency, µs.
    pub open_p99_us: u64,
    /// Adversarial phase results; `None` when the phase was not run.
    pub adversarial: Option<AdversarialReport>,
    /// Binary-protocol warm/peak phase and the connection curve.
    pub binary: BinaryReport,
    /// Top of the connection sweep (the `--conns` setting, resolved).
    pub conns: usize,
    /// The harness process's soft fd limit, for judging how honest the
    /// sweep could be (10 000 connections need ≥ ~10 050 fds).
    pub fd_limit: u64,
    /// End-of-run server observability snapshot: every `serve.*`
    /// series from the metrics exposition (sanitized names, `cedar_`
    /// prefix stripped), scraped over the control connection before
    /// shutdown. Queue depths, reap counts and shed totals land in the
    /// benchmark history through this.
    pub obs: Vec<(String, f64)>,
    /// Whether the post-run graceful shutdown drained cleanly.
    pub drained: Option<bool>,
    /// Git commit the run measured (stamped via cedar-track).
    pub commit: String,
    /// ISO-8601 UTC timestamp of the run.
    pub timestamp: String,
}

/// One line-protocol client connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr`, retrying briefly so a just-spawned server
    /// can finish binding.
    ///
    /// # Errors
    ///
    /// Returns a description if the server never becomes reachable.
    pub fn connect(addr: &str) -> Result<Client, String> {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    // Mirror the server: tiny request lines must not
                    // sit in Nagle's buffer behind a delayed ACK.
                    let _ = stream.set_nodelay(true);
                    let reader =
                        BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
                    return Ok(Client {
                        reader,
                        writer: stream,
                    });
                }
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(format!("connect {addr}: {e}")),
            }
        }
    }

    /// Sends one request line and reads the one reply line.
    ///
    /// # Errors
    ///
    /// Returns a description on I/O failure or an unparseable reply —
    /// both violations of the protocol's "always a typed line" rule.
    pub fn request(&mut self, line: &str) -> Result<Json, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        match self.reader.read_line(&mut reply) {
            Ok(0) => Err("server closed the connection mid-request".to_owned()),
            Ok(_) => json::parse(reply.trim()).map_err(|e| format!("bad reply: {e}")),
            Err(e) => Err(format!("recv: {e}")),
        }
    }

    /// Reads a named counter from the server's `metrics` op.
    ///
    /// # Errors
    ///
    /// Returns a description if the exposition cannot be fetched or
    /// parsed.
    pub fn counter(&mut self, name: &str) -> Result<f64, String> {
        let reply = self.request(r#"{"op":"metrics"}"#)?;
        let text = reply
            .get("prometheus")
            .and_then(Json::as_str)
            .ok_or("metrics reply missing prometheus field")?;
        let parsed = parse_prometheus(text)?;
        Ok(parsed.get(&sanitize_name(name)).copied().unwrap_or(0.0))
    }
}

/// One lockstep binary-protocol connection.
pub struct BinClient {
    stream: TcpStream,
    scanner: FrameScanner,
}

impl BinClient {
    /// Connects to `addr`, retrying briefly so a just-spawned server
    /// can finish binding.
    ///
    /// # Errors
    ///
    /// Returns a description if the server never becomes reachable.
    pub fn connect(addr: &str) -> Result<BinClient, String> {
        let stream = connect_retry(addr, Duration::from_secs(10))?;
        let _ = stream.set_nodelay(true);
        Ok(BinClient {
            stream,
            scanner: FrameScanner::new(MAX_RESPONSE_PAYLOAD),
        })
    }

    /// Sends one request frame and reads the one response frame.
    ///
    /// # Errors
    ///
    /// Returns a description on I/O failure or a malformed frame —
    /// both protocol violations on a healthy connection.
    pub fn request(&mut self, req: &Request) -> Result<Response, String> {
        self.stream
            .write_all(&req.encode())
            .map_err(|e| format!("send: {e}"))?;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(payload) = self
                .scanner
                .next_frame()
                .map_err(|e| format!("bad frame: {e}"))?
            {
                return Response::decode(&payload).map_err(|e| format!("bad response: {e}"));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err("server closed the connection mid-request".to_owned()),
                Ok(n) => self.scanner.extend(&chunk[..n]),
                Err(e) => return Err(format!("recv: {e}")),
            }
        }
    }
}

fn connect_retry(addr: &str, patience: Duration) -> Result<TcpStream, String> {
    let deadline = Instant::now() + patience;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            // Early connects can race the bind, and a mass sweep can
            // transiently overflow the accept backlog; both heal.
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(format!("connect {addr}: {e}")),
        }
    }
}

/// The harness process's soft limit on open fds, from
/// `/proc/self/limits` (0 if unreadable — non-Linux).
fn fd_limit() -> u64 {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| l.split_whitespace().nth(3))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Linearly interpolated percentile over a sorted sample set — the
/// standard "R-7" estimator. The old nearest-rank rounding overstated
/// tail percentiles on the small per-level sample counts this harness
/// collects (at 96 samples, `p99` rounded straight to the maximum);
/// interpolation keeps adjacent levels comparable.
fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = (sorted_us.len() - 1) as f64 * p.clamp(0.0, 1.0);
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    let a = sorted_us[lo] as f64;
    let b = sorted_us[hi] as f64;
    (a + (b - a) * frac).round() as u64
}

fn status_of(reply: &Json) -> &str {
    reply.get("status").and_then(Json::as_str).unwrap_or("?")
}

/// A unique-per-index job line: distinct `fraction` ppm means distinct
/// dedup keys, so saturation levels measure execution, not the cache.
fn unique_job(global_idx: u64) -> String {
    let ppm = 1 + (global_idx % 900_000);
    format!(
        "{{\"op\":\"run\",\"job\":{{\"type\":\"hotspot\",\"fraction\":{},\"ces\":2,\"blocks\":1}}}}",
        ppm as f64 / 1e6
    )
}

fn run_closed_level(
    addr: &str,
    clients: usize,
    per_client: usize,
    idx_base: u64,
) -> Result<LevelReport, String> {
    let started = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(clients * per_client);
    let results: Vec<Result<Vec<u64>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || -> Result<Vec<u64>, String> {
                    let mut client = Client::connect(addr)?;
                    let mut times = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let idx = idx_base + (c * per_client + i) as u64;
                        let sent = Instant::now();
                        let reply = client.request(&unique_job(idx))?;
                        let us = u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX);
                        match status_of(&reply) {
                            "ok" | "degraded" => times.push(us),
                            "rejected" => {} // shed load is legal at saturation
                            other => return Err(format!("unexpected status {other:?}")),
                        }
                    }
                    Ok(times)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("closed-loop client panicked"))
            .collect()
    });
    for r in results {
        latencies.extend(r?);
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_unstable();
    Ok(LevelReport {
        clients,
        requests: latencies.len(),
        throughput_rps: latencies.len() as f64 / elapsed,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
    })
}

/// Runs every phase against the server at `cfg.addr`.
///
/// # Errors
///
/// Returns a description of the first violated invariant — a dedup
/// burst that executed more than once, a healthy request lost to the
/// fault mix, a non-monotone saturation curve, or a protocol breach.
#[allow(clippy::too_many_lines)]
pub fn run(cfg: &LoadgenConfig) -> Result<LoadReport, String> {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut control = Client::connect(&cfg.addr)?;
    let ping = control.request(r#"{"op":"ping"}"#)?;
    if status_of(&ping) != "ok" {
        return Err("server did not answer ping".to_owned());
    }

    // Phase 1: dedup burst. All clients fire the same spec at once;
    // the server's own counters are the ground truth.
    let burst = if cfg.smoke { 8 } else { 16 };
    let executed_before = control.counter("serve.jobs.executed")?;
    let hits_before = control.counter("serve.cache.hits")?;
    let coalesced_before = control.counter("serve.dedup.coalesced")?;
    let burst_line = r#"{"op":"run","job":{"type":"table2","kernel":"CG","ces":4,"blocks":2}}"#;
    let addr = cfg.addr.clone();
    let burst_results: Vec<Result<String, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..burst)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || -> Result<String, String> {
                    let mut client = Client::connect(&addr)?;
                    let reply = client.request(burst_line)?;
                    Ok(status_of(&reply).to_owned())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("burst client panicked"))
            .collect()
    });
    for r in &burst_results {
        match r {
            Ok(status) if status == "ok" || status == "degraded" => {}
            Ok(other) => return Err(format!("burst request got status {other:?}")),
            Err(e) => return Err(format!("burst request failed: {e}")),
        }
    }
    let dedup_executed = (control.counter("serve.jobs.executed")? - executed_before) as u64;
    let dedup_cache_hits = (control.counter("serve.cache.hits")? - hits_before) as u64;
    let dedup_coalesced = (control.counter("serve.dedup.coalesced")? - coalesced_before) as u64;
    let burst_u64 = burst as u64;
    let deduped_ok = dedup_executed == 1 || (dedup_executed == 0 && dedup_cache_hits == burst_u64);
    if !deduped_ok {
        return Err(format!(
            "dedup failed: burst of {burst} identical requests caused \
             {dedup_executed} executions ({dedup_cache_hits} cache hits)"
        ));
    }

    // Phase 2: seeded fault mix, ~2% fault-injected jobs. Healthy
    // requests must all succeed even sharing batches with faulty ones.
    let mix_requests = if cfg.smoke { 24 } else { 96 };
    let mut mix_lines: Vec<(bool, String)> = Vec::with_capacity(mix_requests);
    for i in 0..mix_requests {
        // The first request is always faulty so every run — however
        // the 2% draws land — exercises the degraded path end to end.
        let faulty = i == 0 || rng.next_bool(0.02);
        let line = if faulty {
            format!(
                "{{\"op\":\"run\",\"job\":{{\"type\":\"degraded\",\"rate\":0.05,\
                 \"ces\":4,\"blocks\":1,\"seed\":{}}}}}",
                rng.next_u64() & 0xffff_ffff
            )
        } else {
            unique_job(1_000_000 + i as u64)
        };
        mix_lines.push((faulty, line));
    }
    let mix_clients = if cfg.smoke { 3 } else { 6 };
    let chunks: Vec<Vec<(bool, String)>> = (0..mix_clients)
        .map(|c| {
            mix_lines
                .iter()
                .skip(c)
                .step_by(mix_clients)
                .cloned()
                .collect()
        })
        .collect();
    let mix_results: Vec<Result<Vec<(bool, String)>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let addr = addr.clone();
                scope.spawn(move || -> Result<Vec<(bool, String)>, String> {
                    let mut client = Client::connect(&addr)?;
                    let mut out = Vec::with_capacity(chunk.len());
                    for (faulty, line) in chunk {
                        let reply = client.request(&line)?;
                        out.push((faulty, status_of(&reply).to_owned()));
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("mix client panicked"))
            .collect()
    });
    let (mut mix_ok, mut mix_degraded, mut mix_errors, mut mix_healthy_dropped) = (0, 0, 0, 0);
    for r in mix_results {
        for (faulty, status) in r? {
            match status.as_str() {
                "ok" => mix_ok += 1,
                "degraded" => mix_degraded += 1,
                "error" => mix_errors += 1,
                other => return Err(format!("mix request got status {other:?}")),
            }
            if !faulty && status != "ok" {
                mix_healthy_dropped += 1;
            }
        }
    }
    if mix_healthy_dropped > 0 {
        return Err(format!(
            "{mix_healthy_dropped} healthy requests were dropped or degraded by the fault mix"
        ));
    }

    // Phase 3: closed-loop saturation levels.
    let level_clients: &[usize] = if cfg.smoke { &[1, 2, 4] } else { &[1, 4, 16] };
    let per_client = if cfg.smoke { 6 } else { 16 };
    let mut levels = Vec::with_capacity(level_clients.len());
    let mut idx_base = 2_000_000u64;
    for &clients in level_clients {
        let level = run_closed_level(&addr, clients, per_client, idx_base)?;
        idx_base += (clients * per_client) as u64;
        levels.push(level);
    }
    // The knee check: more offered load must not *reduce* p50 beyond
    // noise — a shrinking latency under growing load means the harness
    // measured the cache, not the service.
    for pair in levels.windows(2) {
        let (lo, hi) = (&pair[0], &pair[1]);
        if lo.requests > 0 && hi.requests > 0 && (hi.p50_us as f64) < (lo.p50_us as f64) * 0.5 {
            return Err(format!(
                "saturation curve not monotone: p50 fell from {}µs at {} clients \
                 to {}µs at {} clients",
                lo.p50_us, lo.clients, hi.p50_us, hi.clients
            ));
        }
    }

    // Phase 4: open loop — seeded exponential arrivals at a fixed
    // offered rate, one thread per in-flight request.
    let offered_rps: f64 = if cfg.smoke { 40.0 } else { 120.0 };
    let open_n = if cfg.smoke { 20 } else { 120 };
    let mut schedule_us: Vec<u64> = Vec::with_capacity(open_n);
    let mut t = 0.0f64;
    for _ in 0..open_n {
        let u = rng.next_f64().max(1e-12);
        t += -u.ln() / offered_rps;
        schedule_us.push((t * 1e6) as u64);
    }
    let open_started = Instant::now();
    let open_results: Vec<Result<u64, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = schedule_us
            .iter()
            .enumerate()
            .map(|(i, &at_us)| {
                let addr = addr.clone();
                scope.spawn(move || -> Result<u64, String> {
                    let target = Duration::from_micros(at_us);
                    let now = open_started.elapsed();
                    if target > now {
                        std::thread::sleep(target - now);
                    }
                    let mut client = Client::connect(&addr)?;
                    let sent = Instant::now();
                    let reply = client.request(&unique_job(3_000_000 + i as u64))?;
                    match status_of(&reply) {
                        "ok" | "degraded" | "rejected" => {
                            Ok(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX))
                        }
                        other => Err(format!("open-loop status {other:?}")),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("open-loop client panicked"))
            .collect()
    });
    let open_elapsed = open_started.elapsed().as_secs_f64().max(1e-9);
    let mut open_latencies = Vec::with_capacity(open_n);
    for r in open_results {
        open_latencies.push(r?);
    }
    open_latencies.sort_unstable();

    // Phase 5 (opt-in): adversarial clients. Slow-loris connections
    // hold a partial request line open; the server must reap each with
    // a typed timeout line, while an idle-but-honest connection opened
    // before the wave sails through untouched.
    let adversarial = if cfg.adversarial {
        Some(run_adversarial(cfg, &mut control)?)
    } else {
        None
    };

    // Phase 6: binary warm pass and the multiplexed connection sweep,
    // sharing the listener with the line-protocol control connection —
    // which doubles as the mixed-protocol check under load.
    let max_conns = if cfg.conns > 0 {
        cfg.conns
    } else if cfg.smoke {
        64
    } else {
        10_000
    };
    let binary = run_binary_phase(cfg, max_conns)?;
    if status_of(&control.request(r#"{"op":"ping"}"#)?) != "ok" {
        return Err("line-protocol control connection broke during the binary sweep".to_owned());
    }

    // Observability snapshot: scrape the full exposition once, before
    // shutdown tears the server down, and keep every serve.* series.
    let obs = scrape_obs(&mut control)?;

    // Optional graceful shutdown: the drain must complete and answer.
    let drained = if cfg.shutdown {
        let reply = control.request(r#"{"op":"shutdown"}"#)?;
        Some(reply.get("drained").and_then(Json::as_bool) == Some(true))
    } else {
        None
    };
    if drained == Some(false) {
        return Err("graceful shutdown did not report a completed drain".to_owned());
    }

    Ok(LoadReport {
        mode: if cfg.smoke { "smoke" } else { "full" },
        dedup_burst: burst,
        dedup_executed,
        dedup_cache_hits,
        dedup_coalesced,
        mix_requests,
        mix_ok,
        mix_degraded,
        mix_errors,
        mix_healthy_dropped,
        levels,
        open_offered_rps: offered_rps,
        open_achieved_rps: open_latencies.len() as f64 / open_elapsed,
        open_p50_us: percentile(&open_latencies, 0.50),
        open_p99_us: percentile(&open_latencies, 0.99),
        adversarial,
        binary,
        conns: max_conns,
        fd_limit: fd_limit(),
        obs,
        drained,
        commit: cedar_track::meta::commit_id(),
        timestamp: cedar_track::meta::timestamp(),
    })
}

/// Scrapes the server's Prometheus exposition through the control
/// connection and returns every `serve.*` series (sanitized name with
/// the `cedar_` prefix stripped, so `serve.queue.depth` comes back as
/// `serve_queue_depth`).
fn scrape_obs(control: &mut Client) -> Result<Vec<(String, f64)>, String> {
    let reply = control.request(r#"{"op":"metrics"}"#)?;
    let text = reply
        .get("prometheus")
        .and_then(Json::as_str)
        .ok_or("metrics reply missing prometheus field")?;
    let parsed = parse_prometheus(text)?;
    Ok(parsed
        .into_iter()
        .filter_map(|(name, value)| {
            let short = name.strip_prefix("cedar_")?;
            // Scalar serve.* series only: the per-bucket histogram
            // rows (labelled `{le="..."}`) would bury the queue and
            // reap counters under hundreds of bucket entries.
            if short.starts_with("serve_") && !short.contains('{') && value.is_finite() {
                Some((short.to_owned(), value))
            } else {
                None
            }
        })
        .collect())
}

fn run_adversarial(cfg: &LoadgenConfig, control: &mut Client) -> Result<AdversarialReport, String> {
    let reaped_before = control.counter("serve.conn.reaped_read")?;
    // The survivor: opened before the wave, silent throughout it.
    let mut idle = Client::connect(&cfg.addr)?;

    let loris_conns = if cfg.smoke { 3 } else { 8 };
    let mut lorises = Vec::with_capacity(loris_conns);
    for _ in 0..loris_conns {
        let mut s = TcpStream::connect(&cfg.addr).map_err(|e| format!("loris connect: {e}"))?;
        s.write_all(b"{\"op\":\"run\",\"job\":{\"ty")
            .map_err(|e| format!("loris send: {e}"))?;
        lorises.push(s);
    }
    // Half a line, then gone: the server must just see EOF and move on.
    let partial_write_conns = if cfg.smoke { 2 } else { 4 };
    for _ in 0..partial_write_conns {
        let mut s = TcpStream::connect(&cfg.addr).map_err(|e| format!("partial connect: {e}"))?;
        let _ = s.write_all(b"{\"op\":\"ping\"");
        drop(s);
    }

    // Wait for the server to reap every loris.
    let deadline = Instant::now() + Duration::from_millis(cfg.line_timeout_ms * 4 + 2_000);
    let mut reaped_read;
    loop {
        reaped_read = (control.counter("serve.conn.reaped_read")? - reaped_before) as u64;
        if reaped_read >= loris_conns as u64 {
            break;
        }
        if Instant::now() > deadline {
            return Err(format!(
                "slow-loris reap incomplete: {reaped_read}/{loris_conns} \
                 connections reaped within the deadline"
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    // Each loris must have received a typed timeout line before close.
    for mut s in lorises {
        let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
        let mut text = String::new();
        match s.read_to_string(&mut text) {
            Ok(_) if text.contains("\"timeout\"") => {}
            Ok(_) => {
                return Err(format!(
                    "loris closed without a typed timeout line: {text:?}"
                ))
            }
            Err(e) => return Err(format!("loris read-back failed: {e}")),
        }
    }
    // The honest idle connection must still be serviceable.
    let idle_survived = status_of(&idle.request(r#"{"op":"ping"}"#)?) == "ok";
    if !idle_survived {
        return Err("an idle (zero-byte) connection was reaped by the line timeout".to_owned());
    }
    Ok(AdversarialReport {
        loris_conns,
        reaped_read,
        partial_write_conns,
        idle_survived,
    })
}

/// The replay spec set for the binary phase. `ces: 4` keeps these
/// keys disjoint from the line-protocol phases' `ces: 2` hotspot jobs,
/// so the warm pass measures real executions on a fresh server.
fn binary_spec(i: usize) -> JobSpec {
    JobSpec::Hotspot {
        hot_ppm: 1 + (i as u32 % 900_000),
        ces: 4,
        blocks: 1,
    }
}

/// Connection counts for the sweep: fixed low rungs for the curve's
/// shape, topped by the configured maximum.
fn curve_levels(smoke: bool, max_conns: usize) -> Vec<usize> {
    let base: &[usize] = if smoke { &[4, 16] } else { &[16, 256, 2048] };
    let mut levels: Vec<usize> = base.iter().copied().filter(|&c| c < max_conns).collect();
    levels.push(max_conns);
    levels
}

/// Phase 6: warm the memoization cache over one lockstep binary
/// connection, then sweep multiplexed connection counts replaying the
/// warmed specs — the connections-versus-p99 curve and the peak
/// throughput figure, both on the zero-copy memoized path.
fn run_binary_phase(cfg: &LoadgenConfig, max_conns: usize) -> Result<BinaryReport, String> {
    let warm_jobs = if cfg.smoke { 16 } else { 32 };
    let warm_started = Instant::now();
    let mut warm = BinClient::connect(&cfg.addr)?;
    for i in 0..warm_jobs {
        let req = Request::Run {
            corr: i as u64,
            priority: 1,
            deadline_ms: None,
            spec: binary_spec(i),
        };
        match warm.request(&req)? {
            Response::Outcome { corr, .. } if corr == i as u64 => {}
            other => return Err(format!("warm request got {other:?}")),
        }
    }
    let warm_rps = warm_jobs as f64 / warm_started.elapsed().as_secs_f64().max(1e-9);

    let mut curve = Vec::new();
    for conns in curve_levels(cfg.smoke, max_conns) {
        let total = if cfg.smoke {
            (conns * 4).max(256)
        } else {
            (conns * 2).max(4_000)
        };
        curve.push(run_conn_level(&cfg.addr, conns, total, warm_jobs)?);
    }
    let peak = curve
        .iter()
        .max_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps))
        .expect("curve has at least one level")
        .clone();
    Ok(BinaryReport {
        warm_jobs,
        warm_rps,
        curve,
        peak_rps: peak.throughput_rps,
        peak_p50_us: peak.p50_us,
        peak_p99_us: peak.p99_us,
    })
}

/// One sweep level: `conns` nonblocking connections driven by a
/// single-threaded `poll(2)` loop (the client-side mirror of the
/// server's reactor), each pipelining up to a fixed window of
/// requests. Latency is measured enqueue-to-decode per correlation id.
fn run_conn_level(
    addr: &str,
    conns: usize,
    total: usize,
    warm_jobs: usize,
) -> Result<ConnLevelReport, String> {
    const WINDOW: usize = 4;
    struct Mux {
        stream: TcpStream,
        scanner: FrameScanner,
        outbox: Vec<u8>,
        written: usize,
        inflight: usize,
    }
    fn enqueue(m: &mut Mux, idx: usize, warm_jobs: usize, send_time: &mut Vec<Instant>) {
        let req = Request::Run {
            corr: idx as u64,
            priority: 1,
            deadline_ms: None,
            spec: binary_spec(idx % warm_jobs),
        };
        m.outbox.extend_from_slice(&req.encode());
        m.inflight += 1;
        debug_assert_eq!(send_time.len(), idx, "corr must index send_time");
        send_time.push(Instant::now());
    }

    let mut muxes = Vec::with_capacity(conns);
    for _ in 0..conns {
        let stream = connect_retry(addr, Duration::from_secs(30))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking: {e}"))?;
        muxes.push(Mux {
            stream,
            scanner: FrameScanner::new(MAX_RESPONSE_PAYLOAD),
            outbox: Vec::new(),
            written: 0,
            inflight: 0,
        });
    }

    let mut send_time: Vec<Instant> = Vec::with_capacity(total);
    let mut latencies: Vec<u64> = Vec::with_capacity(total);
    let mut next = 0usize;
    let started = Instant::now();
    for m in &mut muxes {
        for _ in 0..WINDOW {
            if next < total {
                enqueue(m, next, warm_jobs, &mut send_time);
                next += 1;
            }
        }
    }

    let deadline = started + Duration::from_secs(120);
    let mut fds: Vec<PollFd> = Vec::with_capacity(conns);
    let mut idxs: Vec<usize> = Vec::with_capacity(conns);
    let mut chunk = [0u8; 16 * 1024];
    while latencies.len() < total {
        if Instant::now() > deadline {
            return Err(format!(
                "connection sweep wedged: {}/{total} replies after 120s at {conns} conns",
                latencies.len()
            ));
        }
        fds.clear();
        idxs.clear();
        for (i, m) in muxes.iter().enumerate() {
            let mut events = 0i16;
            if m.written < m.outbox.len() {
                events |= POLLOUT;
            }
            if m.inflight > 0 {
                events |= POLLIN;
            }
            if events != 0 {
                fds.push(PollFd::new(m.stream.as_raw_fd(), events));
                idxs.push(i);
            }
        }
        if fds.is_empty() {
            return Err("connection sweep wedged: replies missing with no pending I/O".to_owned());
        }
        poll_fds(&mut fds, Some(Duration::from_secs(10))).map_err(|e| format!("poll: {e}"))?;
        for (k, &ci) in idxs.iter().enumerate() {
            let m = &mut muxes[ci];
            if fds[k].ready(POLLOUT) && m.written < m.outbox.len() {
                loop {
                    match m.stream.write(&m.outbox[m.written..]) {
                        Ok(0) => return Err("server closed mid-sweep".to_owned()),
                        Ok(n) => {
                            m.written += n;
                            if m.written == m.outbox.len() {
                                m.outbox.clear();
                                m.written = 0;
                                break;
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(e) => return Err(format!("send: {e}")),
                    }
                }
            }
            if !fds[k].ready(POLLIN) {
                continue;
            }
            loop {
                match m.stream.read(&mut chunk) {
                    Ok(0) => return Err("server closed mid-sweep".to_owned()),
                    Ok(n) => {
                        m.scanner.extend(&chunk[..n]);
                        while let Some(payload) = m
                            .scanner
                            .next_frame()
                            .map_err(|e| format!("bad frame: {e}"))?
                        {
                            match Response::decode(&payload)
                                .map_err(|e| format!("bad response: {e}"))?
                            {
                                Response::Outcome { corr, .. } => {
                                    let us = send_time[usize::try_from(corr)
                                        .map_err(|_| "corr out of range".to_owned())?]
                                    .elapsed()
                                    .as_micros();
                                    latencies.push(u64::try_from(us).unwrap_or(u64::MAX));
                                    m.inflight -= 1;
                                    if next < total {
                                        enqueue(m, next, warm_jobs, &mut send_time);
                                        next += 1;
                                    }
                                }
                                Response::Error { status, reason, .. } => {
                                    return Err(format!(
                                        "sweep request failed: {} {reason:?}",
                                        status.as_str()
                                    ))
                                }
                                other => return Err(format!("unexpected response {other:?}")),
                            }
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => return Err(format!("recv: {e}")),
                }
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_unstable();
    Ok(ConnLevelReport {
        conns,
        requests: latencies.len(),
        throughput_rps: latencies.len() as f64 / elapsed,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
    })
}

impl LoadReport {
    /// Renders the report as the `BENCH_serve.json` document. The
    /// output always passes [`cedar_obs::export::validate_json`].
    #[must_use]
    pub fn to_json(&self) -> String {
        fn f(x: f64) -> String {
            if x.is_finite() {
                format!("{x:.3}")
            } else {
                "0".to_owned()
            }
        }
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"cedar-bench-serve/4\",\n");
        out.push_str(&format!(
            "  \"commit\": \"{}\",\n",
            cedar_obs::export::escape_json(&self.commit)
        ));
        out.push_str(&format!(
            "  \"timestamp\": \"{}\",\n",
            cedar_obs::export::escape_json(&self.timestamp)
        ));
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        out.push_str(&format!(
            "  \"dedup\": {{\"burst\": {}, \"executed\": {}, \"cache_hits\": {}, \
             \"coalesced\": {}}},\n",
            self.dedup_burst, self.dedup_executed, self.dedup_cache_hits, self.dedup_coalesced
        ));
        out.push_str(&format!(
            "  \"fault_mix\": {{\"requests\": {}, \"ok\": {}, \"degraded\": {}, \
             \"errors\": {}, \"healthy_dropped\": {}}},\n",
            self.mix_requests,
            self.mix_ok,
            self.mix_degraded,
            self.mix_errors,
            self.mix_healthy_dropped
        ));
        out.push_str("  \"closed_loop\": [\n");
        for (i, level) in self.levels.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"clients\": {}, \"requests\": {}, \"throughput_rps\": {}, \
                 \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}{}\n",
                level.clients,
                level.requests,
                f(level.throughput_rps),
                level.p50_us,
                level.p95_us,
                level.p99_us,
                if i + 1 == self.levels.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"open_loop\": {{\"offered_rps\": {}, \"achieved_rps\": {}, \
             \"p50_us\": {}, \"p99_us\": {}}},\n",
            f(self.open_offered_rps),
            f(self.open_achieved_rps),
            self.open_p50_us,
            self.open_p99_us
        ));
        match &self.adversarial {
            Some(adv) => out.push_str(&format!(
                "  \"adversarial\": {{\"loris_conns\": {}, \"reaped_read\": {}, \
                 \"partial_write_conns\": {}, \"idle_survived\": {}}},\n",
                adv.loris_conns, adv.reaped_read, adv.partial_write_conns, adv.idle_survived
            )),
            None => out.push_str("  \"adversarial\": null,\n"),
        }
        out.push_str(&format!(
            "  \"binary\": {{\"warm_jobs\": {}, \"warm_rps\": {}, \"peak_rps\": {}, \
             \"peak_p50_us\": {}, \"peak_p99_us\": {}, \"conn_curve\": [\n",
            self.binary.warm_jobs,
            f(self.binary.warm_rps),
            f(self.binary.peak_rps),
            self.binary.peak_p50_us,
            self.binary.peak_p99_us
        ));
        for (i, level) in self.binary.curve.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"conns\": {}, \"requests\": {}, \"throughput_rps\": {}, \
                 \"p50_us\": {}, \"p99_us\": {}}}{}\n",
                level.conns,
                level.requests,
                f(level.throughput_rps),
                level.p50_us,
                level.p99_us,
                if i + 1 == self.binary.curve.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ]},\n");
        out.push_str(&format!(
            "  \"conns\": {}, \"fd_limit\": {},\n",
            self.conns, self.fd_limit
        ));
        out.push_str("  \"obs\": {");
        for (i, (name, value)) in self.obs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{}\": {}",
                cedar_obs::export::escape_json(name),
                f(*value)
            ));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"drained\": {}\n}}\n",
            match self.drained {
                Some(b) => b.to_string(),
                None => "null".to_owned(),
            }
        ));
        debug_assert!(validate_json(&out).is_ok(), "report must be valid JSON");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate_between_ranks() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        // Rank 49.5 over 1..=100: halfway between 50 and 51.
        assert_eq!(percentile(&v, 0.50), 51);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        // The interpolation itself: p50 of [0, 10] is 5, not either
        // endpoint, and p75 of [0, 10, 20, 30] lands between samples.
        assert_eq!(percentile(&[0, 10], 0.50), 5);
        assert_eq!(percentile(&[0, 10, 20, 30], 0.75), 23);
        // A two-sample tail must not snap to the max (the old
        // nearest-rank bug): p99 of [100, 200] is 199, not 200.
        assert_eq!(percentile(&[100, 200], 0.99), 199);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn unique_jobs_have_unique_specs() {
        let a = unique_job(1);
        let b = unique_job(2);
        assert_ne!(a, b);
        assert!(json::parse(&a).is_ok());
    }

    #[test]
    fn report_renders_valid_json() {
        let report = LoadReport {
            mode: "smoke",
            dedup_burst: 8,
            dedup_executed: 1,
            dedup_cache_hits: 0,
            dedup_coalesced: 7,
            mix_requests: 24,
            mix_ok: 23,
            mix_degraded: 1,
            mix_errors: 0,
            mix_healthy_dropped: 0,
            levels: vec![LevelReport {
                clients: 1,
                requests: 6,
                throughput_rps: 12.5,
                p50_us: 800,
                p95_us: 1200,
                p99_us: 1500,
            }],
            open_offered_rps: 40.0,
            open_achieved_rps: 39.2,
            open_p50_us: 900,
            open_p99_us: 2100,
            adversarial: Some(AdversarialReport {
                loris_conns: 3,
                reaped_read: 3,
                partial_write_conns: 2,
                idle_survived: true,
            }),
            binary: BinaryReport {
                warm_jobs: 16,
                warm_rps: 850.0,
                curve: vec![
                    ConnLevelReport {
                        conns: 4,
                        requests: 256,
                        throughput_rps: 9000.0,
                        p50_us: 300,
                        p99_us: 900,
                    },
                    ConnLevelReport {
                        conns: 64,
                        requests: 256,
                        throughput_rps: 15000.0,
                        p50_us: 400,
                        p99_us: 2100,
                    },
                ],
                peak_rps: 15000.0,
                peak_p50_us: 400,
                peak_p99_us: 2100,
            },
            conns: 64,
            fd_limit: 1024,
            obs: vec![
                ("serve_conn_reaped_read".to_owned(), 3.0),
                ("serve_queue_shed".to_owned(), 0.0),
            ],
            drained: Some(true),
            commit: "abc123".to_owned(),
            timestamp: "2026-08-08T00:00:00Z".to_owned(),
        };
        let text = report.to_json();
        validate_json(&text).unwrap();
        let parsed = json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("cedar-bench-serve/4")
        );
        assert_eq!(parsed.get("commit").and_then(Json::as_str), Some("abc123"));
        assert_eq!(
            parsed
                .get("binary")
                .and_then(|b| b.get("peak_rps"))
                .and_then(Json::as_f64),
            Some(15000.0)
        );
        match parsed.get("binary").and_then(|b| b.get("conn_curve")) {
            Some(Json::Arr(levels)) => assert_eq!(levels.len(), 2),
            other => panic!("conn_curve should be a 2-entry array, got {other:?}"),
        }
        assert_eq!(parsed.get("conns").and_then(Json::as_u64), Some(64));
        assert_eq!(parsed.get("fd_limit").and_then(Json::as_u64), Some(1024));
        assert_eq!(
            parsed
                .get("obs")
                .and_then(|o| o.get("serve_conn_reaped_read"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
        assert_eq!(
            parsed
                .get("adversarial")
                .and_then(|a| a.get("reaped_read"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(
            parsed
                .get("dedup")
                .and_then(|d| d.get("executed"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }
}
