//! The load-generator harness: drives a running server over TCP,
//! checks the serving tier's end-to-end invariants, and writes the
//! `BENCH_serve.json` report.
//!
//! Four phases, each exercising one claim the service makes:
//!
//! 1. **Dedup burst** — a burst of identical requests must collapse to
//!    exactly one execution (or zero executions and all cache hits if
//!    a previous run warmed the disk cache), asserted from the
//!    server's own counters, not from client-side timing.
//! 2. **Fault mix** — a seeded mix with ~2% fault-injected jobs: every
//!    request gets a typed reply and no *healthy* request is dropped
//!    or errored because a degraded one shared its batch.
//! 3. **Closed loop** — `c` clients, each issuing unique jobs
//!    back-to-back, at increasing `c`: offered load versus p50/p95/p99
//!    latency, the saturation-knee curve.
//! 4. **Open loop** — seeded exponential arrivals at a fixed offered
//!    rate, the arrival process the closed loop can't produce.
//! 5. **Adversarial** (opt-in) — slow-loris connections that never
//!    finish a request line and clients that write half a line and
//!    vanish: every loris must be reaped with a typed `timeout` line
//!    while an idle well-behaved connection opened before the wave
//!    survives it untouched.
//!
//! The seeded mix and arrival schedule make runs reproducible; only
//! the measured latencies vary with the host.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cedar_obs::export::{parse_prometheus, sanitize_name, validate_json};
use cedar_sim::rng::SplitMix64;

use crate::json::{self, Json};

/// Loadgen settings (see the `loadgen` binary for the flag surface).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Smoke mode: small counts, CI-friendly runtimes.
    pub smoke: bool,
    /// Seed for the job mix and the open-loop arrival schedule.
    pub seed: u64,
    /// Send a graceful `shutdown` after the run and assert it drained.
    pub shutdown: bool,
    /// Run the adversarial slow-loris / partial-write phase. Requires
    /// the server to be configured with `line_timeout` close to
    /// [`LoadgenConfig::line_timeout_ms`], or the phase will stall
    /// waiting for reaps that take the server's (longer) default.
    pub adversarial: bool,
    /// The `line_timeout` the *server* was started with, in ms — sets
    /// this harness's patience while waiting for loris reaps.
    pub line_timeout_ms: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7878".to_owned(),
            smoke: false,
            seed: 0xCEDA,
            shutdown: false,
            adversarial: false,
            line_timeout_ms: 1_000,
        }
    }
}

/// One closed-loop load level's measurements.
#[derive(Debug, Clone)]
pub struct LevelReport {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests completed across all clients.
    pub requests: usize,
    /// Achieved throughput, requests per second.
    pub throughput_rps: f64,
    /// Latency percentiles in microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, µs.
    pub p95_us: u64,
    /// 99th percentile latency, µs.
    pub p99_us: u64,
}

/// Adversarial-phase measurements (schema's `adversarial` object).
#[derive(Debug, Clone)]
pub struct AdversarialReport {
    /// Slow-loris connections opened (each holding a partial line).
    pub loris_conns: usize,
    /// Connections the server reaped for a stalled read (must cover
    /// every loris).
    pub reaped_read: u64,
    /// Half-line-then-disconnect clients thrown at the server.
    pub partial_write_conns: usize,
    /// Whether the idle control connection opened before the wave was
    /// still serviceable after it — idleness must never be reaped.
    pub idle_survived: bool,
}

/// The full harness result, rendered into `BENCH_serve.json`.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// `smoke` or `full`.
    pub mode: &'static str,
    /// Dedup-burst phase: burst size sent.
    pub dedup_burst: usize,
    /// Executions the burst actually caused (asserted ≤ 1).
    pub dedup_executed: u64,
    /// Disk-cache hits the burst was served from.
    pub dedup_cache_hits: u64,
    /// In-flight coalesces the burst produced.
    pub dedup_coalesced: u64,
    /// Fault-mix phase: requests sent / ok / degraded / typed errors.
    pub mix_requests: usize,
    /// Healthy replies in the mix.
    pub mix_ok: usize,
    /// Typed degraded replies in the mix.
    pub mix_degraded: usize,
    /// Typed error replies in the mix (stalls); never raw disconnects.
    pub mix_errors: usize,
    /// Healthy requests that failed — the mix assertion requires 0.
    pub mix_healthy_dropped: usize,
    /// Closed-loop levels, in increasing offered load.
    pub levels: Vec<LevelReport>,
    /// Open-loop offered rate, requests per second.
    pub open_offered_rps: f64,
    /// Open-loop achieved completion rate.
    pub open_achieved_rps: f64,
    /// Open-loop p50 latency, µs.
    pub open_p50_us: u64,
    /// Open-loop p99 latency, µs.
    pub open_p99_us: u64,
    /// Adversarial phase results; `None` when the phase was not run.
    pub adversarial: Option<AdversarialReport>,
    /// End-of-run server observability snapshot: every `serve.*`
    /// series from the metrics exposition (sanitized names, `cedar_`
    /// prefix stripped), scraped over the control connection before
    /// shutdown. Queue depths, reap counts and shed totals land in the
    /// benchmark history through this.
    pub obs: Vec<(String, f64)>,
    /// Whether the post-run graceful shutdown drained cleanly.
    pub drained: Option<bool>,
    /// Git commit the run measured (stamped via cedar-track).
    pub commit: String,
    /// ISO-8601 UTC timestamp of the run.
    pub timestamp: String,
}

/// One line-protocol client connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr`, retrying briefly so a just-spawned server
    /// can finish binding.
    ///
    /// # Errors
    ///
    /// Returns a description if the server never becomes reachable.
    pub fn connect(addr: &str) -> Result<Client, String> {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    // Mirror the server: tiny request lines must not
                    // sit in Nagle's buffer behind a delayed ACK.
                    let _ = stream.set_nodelay(true);
                    let reader =
                        BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
                    return Ok(Client {
                        reader,
                        writer: stream,
                    });
                }
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(format!("connect {addr}: {e}")),
            }
        }
    }

    /// Sends one request line and reads the one reply line.
    ///
    /// # Errors
    ///
    /// Returns a description on I/O failure or an unparseable reply —
    /// both violations of the protocol's "always a typed line" rule.
    pub fn request(&mut self, line: &str) -> Result<Json, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        match self.reader.read_line(&mut reply) {
            Ok(0) => Err("server closed the connection mid-request".to_owned()),
            Ok(_) => json::parse(reply.trim()).map_err(|e| format!("bad reply: {e}")),
            Err(e) => Err(format!("recv: {e}")),
        }
    }

    /// Reads a named counter from the server's `metrics` op.
    ///
    /// # Errors
    ///
    /// Returns a description if the exposition cannot be fetched or
    /// parsed.
    pub fn counter(&mut self, name: &str) -> Result<f64, String> {
        let reply = self.request(r#"{"op":"metrics"}"#)?;
        let text = reply
            .get("prometheus")
            .and_then(Json::as_str)
            .ok_or("metrics reply missing prometheus field")?;
        let parsed = parse_prometheus(text)?;
        Ok(parsed.get(&sanitize_name(name)).copied().unwrap_or(0.0))
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn status_of(reply: &Json) -> &str {
    reply.get("status").and_then(Json::as_str).unwrap_or("?")
}

/// A unique-per-index job line: distinct `fraction` ppm means distinct
/// dedup keys, so saturation levels measure execution, not the cache.
fn unique_job(global_idx: u64) -> String {
    let ppm = 1 + (global_idx % 900_000);
    format!(
        "{{\"op\":\"run\",\"job\":{{\"type\":\"hotspot\",\"fraction\":{},\"ces\":2,\"blocks\":1}}}}",
        ppm as f64 / 1e6
    )
}

fn run_closed_level(
    addr: &str,
    clients: usize,
    per_client: usize,
    idx_base: u64,
) -> Result<LevelReport, String> {
    let started = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(clients * per_client);
    let results: Vec<Result<Vec<u64>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || -> Result<Vec<u64>, String> {
                    let mut client = Client::connect(addr)?;
                    let mut times = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let idx = idx_base + (c * per_client + i) as u64;
                        let sent = Instant::now();
                        let reply = client.request(&unique_job(idx))?;
                        let us = u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX);
                        match status_of(&reply) {
                            "ok" | "degraded" => times.push(us),
                            "rejected" => {} // shed load is legal at saturation
                            other => return Err(format!("unexpected status {other:?}")),
                        }
                    }
                    Ok(times)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("closed-loop client panicked"))
            .collect()
    });
    for r in results {
        latencies.extend(r?);
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_unstable();
    Ok(LevelReport {
        clients,
        requests: latencies.len(),
        throughput_rps: latencies.len() as f64 / elapsed,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
    })
}

/// Runs every phase against the server at `cfg.addr`.
///
/// # Errors
///
/// Returns a description of the first violated invariant — a dedup
/// burst that executed more than once, a healthy request lost to the
/// fault mix, a non-monotone saturation curve, or a protocol breach.
#[allow(clippy::too_many_lines)]
pub fn run(cfg: &LoadgenConfig) -> Result<LoadReport, String> {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut control = Client::connect(&cfg.addr)?;
    let ping = control.request(r#"{"op":"ping"}"#)?;
    if status_of(&ping) != "ok" {
        return Err("server did not answer ping".to_owned());
    }

    // Phase 1: dedup burst. All clients fire the same spec at once;
    // the server's own counters are the ground truth.
    let burst = if cfg.smoke { 8 } else { 16 };
    let executed_before = control.counter("serve.jobs.executed")?;
    let hits_before = control.counter("serve.cache.hits")?;
    let coalesced_before = control.counter("serve.dedup.coalesced")?;
    let burst_line = r#"{"op":"run","job":{"type":"table2","kernel":"CG","ces":4,"blocks":2}}"#;
    let addr = cfg.addr.clone();
    let burst_results: Vec<Result<String, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..burst)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || -> Result<String, String> {
                    let mut client = Client::connect(&addr)?;
                    let reply = client.request(burst_line)?;
                    Ok(status_of(&reply).to_owned())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("burst client panicked"))
            .collect()
    });
    for r in &burst_results {
        match r {
            Ok(status) if status == "ok" || status == "degraded" => {}
            Ok(other) => return Err(format!("burst request got status {other:?}")),
            Err(e) => return Err(format!("burst request failed: {e}")),
        }
    }
    let dedup_executed = (control.counter("serve.jobs.executed")? - executed_before) as u64;
    let dedup_cache_hits = (control.counter("serve.cache.hits")? - hits_before) as u64;
    let dedup_coalesced = (control.counter("serve.dedup.coalesced")? - coalesced_before) as u64;
    let burst_u64 = burst as u64;
    let deduped_ok = dedup_executed == 1 || (dedup_executed == 0 && dedup_cache_hits == burst_u64);
    if !deduped_ok {
        return Err(format!(
            "dedup failed: burst of {burst} identical requests caused \
             {dedup_executed} executions ({dedup_cache_hits} cache hits)"
        ));
    }

    // Phase 2: seeded fault mix, ~2% fault-injected jobs. Healthy
    // requests must all succeed even sharing batches with faulty ones.
    let mix_requests = if cfg.smoke { 24 } else { 96 };
    let mut mix_lines: Vec<(bool, String)> = Vec::with_capacity(mix_requests);
    for i in 0..mix_requests {
        // The first request is always faulty so every run — however
        // the 2% draws land — exercises the degraded path end to end.
        let faulty = i == 0 || rng.next_bool(0.02);
        let line = if faulty {
            format!(
                "{{\"op\":\"run\",\"job\":{{\"type\":\"degraded\",\"rate\":0.05,\
                 \"ces\":4,\"blocks\":1,\"seed\":{}}}}}",
                rng.next_u64() & 0xffff_ffff
            )
        } else {
            unique_job(1_000_000 + i as u64)
        };
        mix_lines.push((faulty, line));
    }
    let mix_clients = if cfg.smoke { 3 } else { 6 };
    let chunks: Vec<Vec<(bool, String)>> = (0..mix_clients)
        .map(|c| {
            mix_lines
                .iter()
                .skip(c)
                .step_by(mix_clients)
                .cloned()
                .collect()
        })
        .collect();
    let mix_results: Vec<Result<Vec<(bool, String)>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let addr = addr.clone();
                scope.spawn(move || -> Result<Vec<(bool, String)>, String> {
                    let mut client = Client::connect(&addr)?;
                    let mut out = Vec::with_capacity(chunk.len());
                    for (faulty, line) in chunk {
                        let reply = client.request(&line)?;
                        out.push((faulty, status_of(&reply).to_owned()));
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("mix client panicked"))
            .collect()
    });
    let (mut mix_ok, mut mix_degraded, mut mix_errors, mut mix_healthy_dropped) = (0, 0, 0, 0);
    for r in mix_results {
        for (faulty, status) in r? {
            match status.as_str() {
                "ok" => mix_ok += 1,
                "degraded" => mix_degraded += 1,
                "error" => mix_errors += 1,
                other => return Err(format!("mix request got status {other:?}")),
            }
            if !faulty && status != "ok" {
                mix_healthy_dropped += 1;
            }
        }
    }
    if mix_healthy_dropped > 0 {
        return Err(format!(
            "{mix_healthy_dropped} healthy requests were dropped or degraded by the fault mix"
        ));
    }

    // Phase 3: closed-loop saturation levels.
    let level_clients: &[usize] = if cfg.smoke { &[1, 2, 4] } else { &[1, 4, 16] };
    let per_client = if cfg.smoke { 6 } else { 16 };
    let mut levels = Vec::with_capacity(level_clients.len());
    let mut idx_base = 2_000_000u64;
    for &clients in level_clients {
        let level = run_closed_level(&addr, clients, per_client, idx_base)?;
        idx_base += (clients * per_client) as u64;
        levels.push(level);
    }
    // The knee check: more offered load must not *reduce* p50 beyond
    // noise — a shrinking latency under growing load means the harness
    // measured the cache, not the service.
    for pair in levels.windows(2) {
        let (lo, hi) = (&pair[0], &pair[1]);
        if lo.requests > 0 && hi.requests > 0 && (hi.p50_us as f64) < (lo.p50_us as f64) * 0.5 {
            return Err(format!(
                "saturation curve not monotone: p50 fell from {}µs at {} clients \
                 to {}µs at {} clients",
                lo.p50_us, lo.clients, hi.p50_us, hi.clients
            ));
        }
    }

    // Phase 4: open loop — seeded exponential arrivals at a fixed
    // offered rate, one thread per in-flight request.
    let offered_rps: f64 = if cfg.smoke { 40.0 } else { 120.0 };
    let open_n = if cfg.smoke { 20 } else { 120 };
    let mut schedule_us: Vec<u64> = Vec::with_capacity(open_n);
    let mut t = 0.0f64;
    for _ in 0..open_n {
        let u = rng.next_f64().max(1e-12);
        t += -u.ln() / offered_rps;
        schedule_us.push((t * 1e6) as u64);
    }
    let open_started = Instant::now();
    let open_results: Vec<Result<u64, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = schedule_us
            .iter()
            .enumerate()
            .map(|(i, &at_us)| {
                let addr = addr.clone();
                scope.spawn(move || -> Result<u64, String> {
                    let target = Duration::from_micros(at_us);
                    let now = open_started.elapsed();
                    if target > now {
                        std::thread::sleep(target - now);
                    }
                    let mut client = Client::connect(&addr)?;
                    let sent = Instant::now();
                    let reply = client.request(&unique_job(3_000_000 + i as u64))?;
                    match status_of(&reply) {
                        "ok" | "degraded" | "rejected" => {
                            Ok(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX))
                        }
                        other => Err(format!("open-loop status {other:?}")),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("open-loop client panicked"))
            .collect()
    });
    let open_elapsed = open_started.elapsed().as_secs_f64().max(1e-9);
    let mut open_latencies = Vec::with_capacity(open_n);
    for r in open_results {
        open_latencies.push(r?);
    }
    open_latencies.sort_unstable();

    // Phase 5 (opt-in): adversarial clients. Slow-loris connections
    // hold a partial request line open; the server must reap each with
    // a typed timeout line, while an idle-but-honest connection opened
    // before the wave sails through untouched.
    let adversarial = if cfg.adversarial {
        Some(run_adversarial(cfg, &mut control)?)
    } else {
        None
    };

    // Observability snapshot: scrape the full exposition once, before
    // shutdown tears the server down, and keep every serve.* series.
    let obs = scrape_obs(&mut control)?;

    // Optional graceful shutdown: the drain must complete and answer.
    let drained = if cfg.shutdown {
        let reply = control.request(r#"{"op":"shutdown"}"#)?;
        Some(reply.get("drained").and_then(Json::as_bool) == Some(true))
    } else {
        None
    };
    if drained == Some(false) {
        return Err("graceful shutdown did not report a completed drain".to_owned());
    }

    Ok(LoadReport {
        mode: if cfg.smoke { "smoke" } else { "full" },
        dedup_burst: burst,
        dedup_executed,
        dedup_cache_hits,
        dedup_coalesced,
        mix_requests,
        mix_ok,
        mix_degraded,
        mix_errors,
        mix_healthy_dropped,
        levels,
        open_offered_rps: offered_rps,
        open_achieved_rps: open_latencies.len() as f64 / open_elapsed,
        open_p50_us: percentile(&open_latencies, 0.50),
        open_p99_us: percentile(&open_latencies, 0.99),
        adversarial,
        obs,
        drained,
        commit: cedar_track::meta::commit_id(),
        timestamp: cedar_track::meta::timestamp(),
    })
}

/// Scrapes the server's Prometheus exposition through the control
/// connection and returns every `serve.*` series (sanitized name with
/// the `cedar_` prefix stripped, so `serve.queue.depth` comes back as
/// `serve_queue_depth`).
fn scrape_obs(control: &mut Client) -> Result<Vec<(String, f64)>, String> {
    let reply = control.request(r#"{"op":"metrics"}"#)?;
    let text = reply
        .get("prometheus")
        .and_then(Json::as_str)
        .ok_or("metrics reply missing prometheus field")?;
    let parsed = parse_prometheus(text)?;
    Ok(parsed
        .into_iter()
        .filter_map(|(name, value)| {
            let short = name.strip_prefix("cedar_")?;
            // Scalar serve.* series only: the per-bucket histogram
            // rows (labelled `{le="..."}`) would bury the queue and
            // reap counters under hundreds of bucket entries.
            if short.starts_with("serve_") && !short.contains('{') && value.is_finite() {
                Some((short.to_owned(), value))
            } else {
                None
            }
        })
        .collect())
}

fn run_adversarial(cfg: &LoadgenConfig, control: &mut Client) -> Result<AdversarialReport, String> {
    let reaped_before = control.counter("serve.conn.reaped_read")?;
    // The survivor: opened before the wave, silent throughout it.
    let mut idle = Client::connect(&cfg.addr)?;

    let loris_conns = if cfg.smoke { 3 } else { 8 };
    let mut lorises = Vec::with_capacity(loris_conns);
    for _ in 0..loris_conns {
        let mut s = TcpStream::connect(&cfg.addr).map_err(|e| format!("loris connect: {e}"))?;
        s.write_all(b"{\"op\":\"run\",\"job\":{\"ty")
            .map_err(|e| format!("loris send: {e}"))?;
        lorises.push(s);
    }
    // Half a line, then gone: the server must just see EOF and move on.
    let partial_write_conns = if cfg.smoke { 2 } else { 4 };
    for _ in 0..partial_write_conns {
        let mut s = TcpStream::connect(&cfg.addr).map_err(|e| format!("partial connect: {e}"))?;
        let _ = s.write_all(b"{\"op\":\"ping\"");
        drop(s);
    }

    // Wait for the server to reap every loris.
    let deadline = Instant::now() + Duration::from_millis(cfg.line_timeout_ms * 4 + 2_000);
    let mut reaped_read;
    loop {
        reaped_read = (control.counter("serve.conn.reaped_read")? - reaped_before) as u64;
        if reaped_read >= loris_conns as u64 {
            break;
        }
        if Instant::now() > deadline {
            return Err(format!(
                "slow-loris reap incomplete: {reaped_read}/{loris_conns} \
                 connections reaped within the deadline"
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    // Each loris must have received a typed timeout line before close.
    for mut s in lorises {
        let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
        let mut text = String::new();
        match s.read_to_string(&mut text) {
            Ok(_) if text.contains("\"timeout\"") => {}
            Ok(_) => {
                return Err(format!(
                    "loris closed without a typed timeout line: {text:?}"
                ))
            }
            Err(e) => return Err(format!("loris read-back failed: {e}")),
        }
    }
    // The honest idle connection must still be serviceable.
    let idle_survived = status_of(&idle.request(r#"{"op":"ping"}"#)?) == "ok";
    if !idle_survived {
        return Err("an idle (zero-byte) connection was reaped by the line timeout".to_owned());
    }
    Ok(AdversarialReport {
        loris_conns,
        reaped_read,
        partial_write_conns,
        idle_survived,
    })
}

impl LoadReport {
    /// Renders the report as the `BENCH_serve.json` document. The
    /// output always passes [`cedar_obs::export::validate_json`].
    #[must_use]
    pub fn to_json(&self) -> String {
        fn f(x: f64) -> String {
            if x.is_finite() {
                format!("{x:.3}")
            } else {
                "0".to_owned()
            }
        }
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"cedar-bench-serve/3\",\n");
        out.push_str(&format!(
            "  \"commit\": \"{}\",\n",
            cedar_obs::export::escape_json(&self.commit)
        ));
        out.push_str(&format!(
            "  \"timestamp\": \"{}\",\n",
            cedar_obs::export::escape_json(&self.timestamp)
        ));
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        out.push_str(&format!(
            "  \"dedup\": {{\"burst\": {}, \"executed\": {}, \"cache_hits\": {}, \
             \"coalesced\": {}}},\n",
            self.dedup_burst, self.dedup_executed, self.dedup_cache_hits, self.dedup_coalesced
        ));
        out.push_str(&format!(
            "  \"fault_mix\": {{\"requests\": {}, \"ok\": {}, \"degraded\": {}, \
             \"errors\": {}, \"healthy_dropped\": {}}},\n",
            self.mix_requests,
            self.mix_ok,
            self.mix_degraded,
            self.mix_errors,
            self.mix_healthy_dropped
        ));
        out.push_str("  \"closed_loop\": [\n");
        for (i, level) in self.levels.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"clients\": {}, \"requests\": {}, \"throughput_rps\": {}, \
                 \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}{}\n",
                level.clients,
                level.requests,
                f(level.throughput_rps),
                level.p50_us,
                level.p95_us,
                level.p99_us,
                if i + 1 == self.levels.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"open_loop\": {{\"offered_rps\": {}, \"achieved_rps\": {}, \
             \"p50_us\": {}, \"p99_us\": {}}},\n",
            f(self.open_offered_rps),
            f(self.open_achieved_rps),
            self.open_p50_us,
            self.open_p99_us
        ));
        match &self.adversarial {
            Some(adv) => out.push_str(&format!(
                "  \"adversarial\": {{\"loris_conns\": {}, \"reaped_read\": {}, \
                 \"partial_write_conns\": {}, \"idle_survived\": {}}},\n",
                adv.loris_conns, adv.reaped_read, adv.partial_write_conns, adv.idle_survived
            )),
            None => out.push_str("  \"adversarial\": null,\n"),
        }
        out.push_str("  \"obs\": {");
        for (i, (name, value)) in self.obs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{}\": {}",
                cedar_obs::export::escape_json(name),
                f(*value)
            ));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"drained\": {}\n}}\n",
            match self.drained {
                Some(b) => b.to_string(),
                None => "null".to_owned(),
            }
        ));
        debug_assert!(validate_json(&out).is_ok(), "report must be valid JSON");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_the_right_samples() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 0.50), 51);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn unique_jobs_have_unique_specs() {
        let a = unique_job(1);
        let b = unique_job(2);
        assert_ne!(a, b);
        assert!(json::parse(&a).is_ok());
    }

    #[test]
    fn report_renders_valid_json() {
        let report = LoadReport {
            mode: "smoke",
            dedup_burst: 8,
            dedup_executed: 1,
            dedup_cache_hits: 0,
            dedup_coalesced: 7,
            mix_requests: 24,
            mix_ok: 23,
            mix_degraded: 1,
            mix_errors: 0,
            mix_healthy_dropped: 0,
            levels: vec![LevelReport {
                clients: 1,
                requests: 6,
                throughput_rps: 12.5,
                p50_us: 800,
                p95_us: 1200,
                p99_us: 1500,
            }],
            open_offered_rps: 40.0,
            open_achieved_rps: 39.2,
            open_p50_us: 900,
            open_p99_us: 2100,
            adversarial: Some(AdversarialReport {
                loris_conns: 3,
                reaped_read: 3,
                partial_write_conns: 2,
                idle_survived: true,
            }),
            obs: vec![
                ("serve_conn_reaped_read".to_owned(), 3.0),
                ("serve_queue_shed".to_owned(), 0.0),
            ],
            drained: Some(true),
            commit: "abc123".to_owned(),
            timestamp: "2026-08-08T00:00:00Z".to_owned(),
        };
        let text = report.to_json();
        validate_json(&text).unwrap();
        let parsed = json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("cedar-bench-serve/3")
        );
        assert_eq!(parsed.get("commit").and_then(Json::as_str), Some("abc123"));
        assert_eq!(
            parsed
                .get("obs")
                .and_then(|o| o.get("serve_conn_reaped_read"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
        assert_eq!(
            parsed
                .get("adversarial")
                .and_then(|a| a.get("reaped_read"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(
            parsed
                .get("dedup")
                .and_then(|d| d.get("executed"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }
}
