//! Bounded, priority-laned job queue with admission control.
//!
//! The queue is the service's backpressure point: capacity is fixed at
//! construction, and a push against a full queue fails *immediately*
//! with a typed rejection instead of blocking the accept loop — the
//! client learns the server is saturated while its connection is still
//! healthy. Three priority lanes (high / normal / low) drain strictly
//! in priority order, FIFO within a lane, so dequeue order is a pure
//! function of push order and priorities.
//!
//! Closing the queue is how graceful drain starts: pushes stop being
//! admitted, poppers drain what remains, and `pop_batch` returns `None`
//! only once the queue is both closed and empty — the dispatcher's
//! signal that the drain is complete.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::job::JobSpec;

/// Number of priority lanes (0 = high, 2 = low).
pub const LANES: usize = 3;

/// One admitted job waiting for the worker tier.
#[derive(Debug, Clone)]
pub struct JobTicket {
    /// Server-wide admission sequence number (also the trace tid).
    pub seq: u64,
    /// Content-addressed dedup key of [`JobTicket::spec`].
    pub key: String,
    /// The work itself.
    pub spec: JobSpec,
    /// Priority lane, clamped to `0..LANES` (0 is most urgent).
    pub priority: u8,
    /// When admission control accepted the job.
    pub enqueued_at: Instant,
    /// Latest instant at which starting the job is still useful.
    pub deadline: Option<Instant>,
}

/// Why a push was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; shed load at the caller.
    Full,
    /// The queue is closed (server draining); no new work.
    Closed,
}

#[derive(Debug)]
struct QueueState {
    lanes: [VecDeque<JobTicket>; LANES],
    depth: usize,
    closed: bool,
}

/// The bounded priority queue between admission and the worker tier.
#[derive(Debug)]
pub struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// Creates a queue admitting at most `capacity` jobs at once.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                depth: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The admission capacity this queue was built with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued (not yet handed to a worker).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").depth
    }

    /// Admits `ticket`, or rejects it without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when at capacity, [`PushError::Closed`] when
    /// draining.
    pub fn push(&self, ticket: JobTicket) -> Result<(), PushError> {
        let mut st = self.state.lock().expect("queue lock poisoned");
        if st.closed {
            return Err(PushError::Closed);
        }
        if st.depth >= self.capacity {
            return Err(PushError::Full);
        }
        let lane = usize::from(ticket.priority).min(LANES - 1);
        st.lanes[lane].push_back(ticket);
        st.depth += 1;
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until work is available, then pops up to `max` jobs in
    /// priority order (FIFO within a lane). Returns `None` once the
    /// queue is closed *and* empty — drain complete.
    #[must_use]
    pub fn pop_batch(&self, max: usize) -> Option<Vec<JobTicket>> {
        let mut st = self.state.lock().expect("queue lock poisoned");
        loop {
            if st.depth > 0 {
                let take = max.min(st.depth).max(1);
                let mut batch = Vec::with_capacity(take);
                'fill: for lane in 0..LANES {
                    while let Some(ticket) = st.lanes[lane].pop_front() {
                        batch.push(ticket);
                        if batch.len() == take {
                            break 'fill;
                        }
                    }
                }
                st.depth -= batch.len();
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// poppers drain the backlog and then observe `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Whether [`close`](JobQueue::close) has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticket(seq: u64, priority: u8) -> JobTicket {
        JobTicket {
            seq,
            key: format!("k{seq}"),
            spec: JobSpec::Table2 {
                kernel: 0,
                ces: 1,
                blocks: 1,
            },
            priority,
            enqueued_at: Instant::now(),
            deadline: None,
        }
    }

    #[test]
    fn drains_priority_order_fifo_within_lane() {
        let q = JobQueue::new(16);
        for (seq, pri) in [(0, 2), (1, 0), (2, 1), (3, 0), (4, 2), (5, 1)] {
            q.push(ticket(seq, pri)).unwrap();
        }
        let batch = q.pop_batch(16).unwrap();
        let seqs: Vec<u64> = batch.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, [1, 3, 2, 5, 0, 4]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn batch_size_is_respected() {
        let q = JobQueue::new(16);
        for seq in 0..5 {
            q.push(ticket(seq, 1)).unwrap();
        }
        assert_eq!(q.pop_batch(2).unwrap().len(), 2);
        assert_eq!(q.pop_batch(2).unwrap().len(), 2);
        assert_eq!(q.pop_batch(2).unwrap().len(), 1);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = JobQueue::new(2);
        q.push(ticket(0, 1)).unwrap();
        q.push(ticket(1, 1)).unwrap();
        assert_eq!(q.push(ticket(2, 1)), Err(PushError::Full));
        let _ = q.pop_batch(1).unwrap();
        q.push(ticket(3, 1)).unwrap();
    }

    #[test]
    fn close_drains_then_signals_none() {
        let q = JobQueue::new(8);
        q.push(ticket(0, 1)).unwrap();
        q.close();
        assert_eq!(q.push(ticket(1, 1)), Err(PushError::Closed));
        assert_eq!(q.pop_batch(8).unwrap().len(), 1);
        assert!(q.pop_batch(8).is_none(), "closed+empty must end the drain");
    }

    #[test]
    fn out_of_range_priority_clamps_to_lowest_lane() {
        let q = JobQueue::new(4);
        q.push(ticket(0, 250)).unwrap();
        q.push(ticket(1, 0)).unwrap();
        let seqs: Vec<u64> = q.pop_batch(4).unwrap().iter().map(|t| t.seq).collect();
        assert_eq!(seqs, [1, 0]);
    }

    #[test]
    fn blocked_popper_wakes_on_push() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        let q2 = q.clone();
        let popper = std::thread::spawn(move || q2.pop_batch(4).map(|b| b.len()));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(ticket(0, 1)).unwrap();
        assert_eq!(popper.join().unwrap(), Some(1));
    }
}
