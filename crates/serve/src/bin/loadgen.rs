//! The cedar-serve load-generator binary.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--addr-file PATH] [--smoke]
//!         [--seed N] [--conns N] [--shutdown] [--out PATH]
//!         [--adversarial] [--line-timeout-ms N] [--track HISTORY]
//! ```
//!
//! Drives the server through the dedup-burst, fault-mix, closed-loop,
//! open-loop and binary-protocol phases, asserts the serving
//! invariants (exactly-one execution per identical burst, no healthy
//! request lost to the fault mix, monotone saturation curve), and
//! writes the report to `--out`. `--conns N` caps the binary-protocol
//! connection sweep (default: 64 in smoke mode, 10000 in full mode)
//! (default `BENCH_serve.json`). Exits non-zero the moment any
//! invariant is violated. `--track HISTORY` additionally appends the
//! finished report to the cedar-track benchmark history.

use std::path::PathBuf;
use std::process::ExitCode;

use cedar_serve::loadgen::{run, LoadgenConfig};

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--addr-file PATH] [--smoke] [--seed N] \
         [--conns N] [--shutdown] [--out PATH] [--adversarial] [--line-timeout-ms N] \
         [--track HISTORY]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut cfg = LoadgenConfig::default();
    let mut out = PathBuf::from("BENCH_serve.json");
    let mut track: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => cfg.addr = value(),
            "--addr-file" => {
                // The server writes this file once its listener is up;
                // wait for it so "serve & loadgen" needs no sleep.
                let path = value();
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
                cfg.addr = loop {
                    match std::fs::read_to_string(&path) {
                        Ok(text) if !text.trim().is_empty() => break text.trim().to_owned(),
                        _ if std::time::Instant::now() < deadline => {
                            std::thread::sleep(std::time::Duration::from_millis(50));
                        }
                        Ok(_) => {
                            eprintln!("loadgen: {path} stayed empty");
                            return ExitCode::FAILURE;
                        }
                        Err(e) => {
                            eprintln!("loadgen: cannot read {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                };
            }
            "--smoke" => cfg.smoke = true,
            "--seed" => cfg.seed = value().parse().unwrap_or_else(|_| usage()),
            "--conns" => cfg.conns = value().parse().unwrap_or_else(|_| usage()),
            "--shutdown" => cfg.shutdown = true,
            "--adversarial" => cfg.adversarial = true,
            "--line-timeout-ms" => {
                cfg.line_timeout_ms = value().parse().unwrap_or_else(|_| usage())
            }
            "--out" => out = PathBuf::from(value()),
            "--track" => track = Some(PathBuf::from(value())),
            _ => usage(),
        }
    }
    match run(&cfg) {
        Ok(report) => {
            let text = report.to_json();
            if let Err(e) = std::fs::write(&out, &text) {
                eprintln!("loadgen: cannot write {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
            if let Some(history) = &track {
                let appended = cedar_track::ingest::serve_report(&text)
                    .and_then(|ing| {
                        cedar_track::ingest::build_entry(
                            &[ing],
                            report.commit.clone(),
                            report.timestamp.clone(),
                            cedar_track::meta::host_fingerprint(),
                            None,
                        )
                    })
                    .and_then(|entry| {
                        cedar_track::history::append(history, &entry)
                            .map(|()| entry.metrics.len())
                            .map_err(|e| e.to_string())
                    });
                match appended {
                    Ok(n) => eprintln!("loadgen: tracked {n} metrics to {}", history.display()),
                    Err(e) => {
                        eprintln!("loadgen: cannot track to {}: {e}", history.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            eprintln!(
                "loadgen: {} mode — dedup {}x→{} exec, mix {} req ({} degraded), \
                 {} levels, binary peak {:.0} rps @ {} conns, report at {}",
                report.mode,
                report.dedup_burst,
                report.dedup_executed,
                report.mix_requests,
                report.mix_degraded,
                report.levels.len(),
                report.binary.peak_rps,
                report.conns,
                out.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("loadgen: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}
