//! The cedar-serve server binary.
//!
//! ```text
//! serve [--addr HOST:PORT] [--queue N] [--workers N] [--batch N]
//!       [--reactors N] [--cache DIR] [--port-file PATH]
//!       [--line-timeout-ms N] [--write-timeout-ms N]
//! ```
//!
//! Runs until a client sends the `shutdown` op; exits 0 after a clean
//! drain. `--port-file` writes the bound address (one line) once the
//! listener is up, so harnesses using an ephemeral port can find it.

use std::path::PathBuf;
use std::process::ExitCode;

use cedar_serve::config::ServeConfig;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--queue N] [--workers N] [--batch N] \
         [--reactors N] [--cache DIR] [--port-file PATH] [--line-timeout-ms N] \
         [--write-timeout-ms N]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut cfg = ServeConfig::default();
    let mut port_file: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => cfg.addr = value(),
            "--queue" => cfg.queue_capacity = value().parse().unwrap_or_else(|_| usage()),
            "--workers" => cfg.workers = value().parse().unwrap_or_else(|_| usage()),
            "--batch" => cfg.batch_max = value().parse().unwrap_or_else(|_| usage()),
            "--reactors" => cfg.reactor_threads = value().parse().unwrap_or_else(|_| usage()),
            "--cache" => cfg.cache_dir = Some(PathBuf::from(value())),
            "--port-file" => port_file = Some(PathBuf::from(value())),
            "--line-timeout-ms" => {
                cfg.line_timeout =
                    std::time::Duration::from_millis(value().parse().unwrap_or_else(|_| usage()));
            }
            "--write-timeout-ms" => {
                cfg.write_timeout =
                    std::time::Duration::from_millis(value().parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }
    let handle = match cedar_serve::server::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("serve: listening on {}", handle.addr());
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, format!("{}\n", handle.addr())) {
            eprintln!("serve: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    // Blocks until a shutdown op completes the drain and stops the
    // accept loop; joining the threads IS the clean exit.
    handle.join();
    eprintln!("serve: drained, exiting");
    ExitCode::SUCCESS
}
