//! The cedar-serve server: accept loop, admission control, dedup,
//! batching dispatcher, and graceful drain.
//!
//! # Request path
//!
//! ```text
//! TCP line ──parse──▶ admission ──▶ JobQueue ──▶ dispatcher batch
//!                        │  │                        │
//!                        │  └─ dedup map (collapse)  └─ cedar-exec pool
//!                        └─ CacheDir (memoize)             │
//!                 ◀────────────── reply channel ◀──────────┘
//! ```
//!
//! Identical in-flight requests collapse onto one execution: the first
//! arrival inserts an entry in the dedup map and queues a ticket, later
//! arrivals just register a reply channel. Completed outcomes are
//! memoized in a [`CacheDir`] keyed by the spec's content hash, so
//! repeats across runs are cache hits that never touch the queue.
//!
//! # Shutdown
//!
//! Graceful drain (`shutdown` op or [`ServerHandle::shutdown`]) closes
//! the queue: admission starts rejecting `run`s with a typed
//! `draining` reason, the dispatcher finishes the backlog, every
//! waiter gets its reply, and only then does the accept loop stop —
//! deterministic in the sense that every admitted job completes and
//! every connection sees a final line. [`ServerHandle::kill`] is the
//! hard variant: the in-flight sweep stops at the next point boundary
//! via `cedar-exec` cancellation and queued jobs answer `cancelled`.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cedar_exec::{run_sweep_cancellable_on, CancelToken, Cancelled};
use cedar_obs::export::escape_json;
use cedar_snap::CacheDir;

use crate::config::ServeConfig;
use crate::job::{JobError, JobOutcome, JobSpec};
use crate::json::{self, Json};
use crate::queue::{JobQueue, JobTicket, PushError};
use crate::telemetry::ServeObs;

/// The terminal state of one request.
#[derive(Debug, Clone)]
pub enum JobReply {
    /// The job produced an outcome (`cached` marks a memoized hit).
    Done {
        /// The measurement.
        outcome: JobOutcome,
        /// Whether it came from the disk cache rather than execution.
        cached: bool,
    },
    /// The job failed in a typed way.
    Failed(JobError),
}

struct InFlight {
    waiters: Vec<mpsc::Sender<JobReply>>,
}

struct Lifecycle {
    drained: Mutex<bool>,
    done: Condvar,
}

struct Shared {
    cfg: ServeConfig,
    queue: JobQueue,
    dedup: Mutex<HashMap<String, InFlight>>,
    obs: ServeObs,
    draining: AtomicBool,
    stop_accept: AtomicBool,
    kill: CancelToken,
    cache: Option<CacheDir>,
    seq: AtomicU64,
    lifecycle: Lifecycle,
    addr: SocketAddr,
}

impl Shared {
    /// Resolves `key` for every registered waiter and retires it from
    /// the dedup map.
    fn complete(&self, key: &str, reply: &JobReply) {
        let entry = self.dedup.lock().expect("dedup lock poisoned").remove(key);
        if let Some(inflight) = entry {
            for waiter in inflight.waiters {
                // A waiter that timed out or hung up is its own
                // problem; everyone else still gets the reply.
                let _ = waiter.send(reply.clone());
            }
        }
    }

    fn mark_drained(&self) {
        *self
            .lifecycle
            .drained
            .lock()
            .expect("lifecycle lock poisoned") = true;
        self.lifecycle.done.notify_all();
    }

    fn wait_drained(&self) {
        let mut drained = self
            .lifecycle
            .drained
            .lock()
            .expect("lifecycle lock poisoned");
        while !*drained {
            drained = self
                .lifecycle
                .done
                .wait(drained)
                .expect("lifecycle lock poisoned");
        }
    }

    /// Starts the graceful drain: reject new work, let the dispatcher
    /// finish the backlog.
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    /// Unblocks the accept loop so it can observe the stop flag.
    fn poke_accept(&self) {
        self.stop_accept.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server and the handles to stop it.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The server's observability surface.
    #[must_use]
    pub fn obs(&self) -> &ServeObs {
        &self.shared.obs
    }

    /// Gracefully drains and stops the server: queued jobs finish,
    /// waiters get replies, then the accept loop exits.
    pub fn shutdown(mut self) {
        self.shared.begin_drain();
        self.shared.wait_drained();
        self.shared.poke_accept();
        self.join_threads();
    }

    /// Blocks until the server stops on its own — i.e. until a client
    /// sends the `shutdown` op and its drain completes. This is the
    /// server binary's main loop.
    pub fn join(mut self) {
        self.join_threads();
    }

    /// Hard-stops the server: the in-flight sweep cancels at the next
    /// point boundary and queued jobs answer `cancelled`.
    pub fn kill(mut self) {
        self.shared.kill.cancel();
        self.shared.begin_drain();
        self.shared.wait_drained();
        self.shared.poke_accept();
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.dispatcher.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shared.kill.cancel();
            self.shared.begin_drain();
            self.shared.wait_drained();
            self.shared.poke_accept();
            self.join_threads();
        }
    }
}

/// Binds, spawns the accept loop and dispatcher, and returns.
///
/// # Errors
///
/// Returns the underlying I/O error if the bind or the cache directory
/// fails.
pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let cache = match &cfg.cache_dir {
        Some(dir) => Some(CacheDir::new(dir.clone())?),
        None => None,
    };
    let shared = Arc::new(Shared {
        queue: JobQueue::new(cfg.queue_capacity),
        dedup: Mutex::new(HashMap::new()),
        obs: ServeObs::new(),
        draining: AtomicBool::new(false),
        stop_accept: AtomicBool::new(false),
        kill: CancelToken::new(),
        cache,
        seq: AtomicU64::new(0),
        lifecycle: Lifecycle {
            drained: Mutex::new(false),
            done: Condvar::new(),
        },
        addr,
        cfg,
    });

    let dispatcher = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("serve-dispatch".into())
            .spawn(move || dispatch_loop(&shared))?
    };
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(&listener, &shared))?
    };

    Ok(ServerHandle {
        shared,
        accept: Some(accept),
        dispatcher: Some(dispatcher),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop_accept.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        // One thread per connection: clients are few (a loadgen, a
        // scraper, an operator with nc) and the queue, not the accept
        // tier, is the concurrency limiter.
        let _ = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || handle_connection(stream, &shared));
    }
}

/// What [`TimedLineReader::next_line`] observed on the wire.
enum NextLine {
    /// One complete request line (newline stripped by the caller's
    /// `trim`).
    Line(String),
    /// A partial line sat unfinished past the line timeout.
    TimedOut,
    /// Clean EOF or a connection-level I/O error.
    Closed,
}

/// A line reader that distinguishes *idle* from *stalled mid-line*.
///
/// The kernel read timeout is only a polling quantum: waking up with
/// no bytes is fine forever as long as no request line is in progress.
/// The reap clock starts at the first byte of a line and stops at its
/// newline, so a slow-loris dripping bytes cannot keep a line open past
/// `line_timeout`, while a control connection that pings once a minute
/// lives as long as it likes.
struct TimedLineReader {
    stream: TcpStream,
    pending: Vec<u8>,
    partial_since: Option<Instant>,
    line_timeout: Duration,
}

impl TimedLineReader {
    fn new(stream: TcpStream, line_timeout: Duration) -> std::io::Result<Self> {
        let quantum =
            (line_timeout / 4).clamp(Duration::from_millis(5), Duration::from_millis(100));
        stream.set_read_timeout(Some(quantum))?;
        Ok(TimedLineReader {
            stream,
            pending: Vec::new(),
            partial_since: None,
            line_timeout,
        })
    }

    fn next_line(&mut self) -> NextLine {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(nl) = self.pending.iter().position(|&b| b == b'\n') {
                let raw: Vec<u8> = self.pending.drain(..=nl).collect();
                // Bytes past the newline are the next line already in
                // progress; its budget starts now.
                self.partial_since = (!self.pending.is_empty()).then(Instant::now);
                return NextLine::Line(String::from_utf8_lossy(&raw).into_owned());
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return NextLine::Closed,
                Ok(n) => {
                    if self.partial_since.is_none() {
                        self.partial_since = Some(Instant::now());
                    }
                    self.pending.extend_from_slice(&chunk[..n]);
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if self
                        .partial_since
                        .is_some_and(|t| t.elapsed() >= self.line_timeout)
                    {
                        return NextLine::TimedOut;
                    }
                }
                Err(_) => return NextLine::Closed,
            }
        }
    }
}

/// Writes one reply line; on a send-timeout (the client stopped
/// reading) counts the reap. Returns false when the connection is done.
fn send_reply(writer: &mut TcpStream, reply: &str, shared: &Shared) -> bool {
    match writer
        .write_all(reply.as_bytes())
        .and_then(|()| writer.flush())
    {
        Ok(()) => true,
        Err(e) => {
            if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                shared.obs.inc("serve.conn.reaped_write");
            }
            false
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    // One-line requests and replies are far smaller than a segment;
    // letting Nagle batch them just adds delayed-ACK stalls (~40ms per
    // round trip on a reused connection) to every latency sample.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let mut reader = match stream
        .try_clone()
        .and_then(|s| TimedLineReader::new(s, shared.cfg.line_timeout))
    {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = stream;
    let mut first = true;
    loop {
        let line = match reader.next_line() {
            NextLine::Line(l) => l,
            NextLine::TimedOut => {
                shared.obs.inc("serve.conn.reaped_read");
                let _ = send_reply(
                    &mut writer,
                    "{\"status\":\"timeout\",\"reason\":\"request line stalled; connection reaped\"}\n",
                    shared,
                );
                return;
            }
            NextLine::Closed => return,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // A plain HTTP scraper is welcome: sniff the request line and
        // answer one exposition, then close (Connection: close).
        if first && trimmed.starts_with("GET ") {
            serve_http(&mut reader, &mut writer, trimmed, shared);
            return;
        }
        first = false;
        let (reply, was_shutdown) = handle_line(trimmed, shared);
        if !send_reply(&mut writer, &reply, shared) {
            return;
        }
        if was_shutdown {
            // The drain this connection requested is complete; stop
            // accepting and let the process exit.
            shared.poke_accept();
            return;
        }
    }
}

fn serve_http(
    reader: &mut TimedLineReader,
    writer: &mut TcpStream,
    request_line: &str,
    shared: &Arc<Shared>,
) {
    // Drain the header block so the client sees a clean close; a
    // scraper stalling mid-header gets the same partial-line reaping
    // as the line protocol.
    loop {
        match reader.next_line() {
            NextLine::Line(hdr) if hdr.trim().is_empty() => break,
            NextLine::Line(_) => {}
            NextLine::TimedOut => {
                shared.obs.inc("serve.conn.reaped_read");
                return;
            }
            NextLine::Closed => return,
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, ctype, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            shared.obs.prometheus(),
        ),
        "/trace" => ("200 OK", "application/json", shared.obs.chrome_trace()),
        _ => ("404 Not Found", "text/plain", "not found\n".to_owned()),
    };
    let _ = write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = writer.flush();
}

fn handle_line(line: &str, shared: &Arc<Shared>) -> (String, bool) {
    let received_us = shared.obs.now_us();
    shared.obs.inc("serve.requests.received");
    let parsed = match json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            shared.obs.inc("serve.responses.invalid");
            return (
                render_error(None, &JobError::Invalid(format!("bad json: {e}"))),
                false,
            );
        }
    };
    let id = parsed.get("id").and_then(Json::as_str).map(str::to_owned);
    let op = parsed.get("op").and_then(Json::as_str).unwrap_or("run");
    let reply = match op {
        "ping" => format!(
            "{{\"status\":\"ok\",\"op\":\"ping\",\"draining\":{}}}\n",
            shared.draining.load(Ordering::SeqCst)
        ),
        "metrics" => format!(
            "{{\"status\":\"ok\",\"op\":\"metrics\",\"prometheus\":\"{}\"}}\n",
            escape_json(&shared.obs.prometheus())
        ),
        "trace" => format!(
            "{{\"status\":\"ok\",\"op\":\"trace\",\"chrome_trace\":{}}}\n",
            // The exporter pretty-prints one event per line; the line
            // protocol needs one line total. Newlines outside strings
            // are insignificant JSON whitespace (escape_json encodes
            // the ones inside), so flattening is loss-free.
            shared.obs.chrome_trace().replace('\n', " ")
        ),
        "shutdown" => {
            shared.begin_drain();
            shared.wait_drained();
            return (
                "{\"status\":\"ok\",\"op\":\"shutdown\",\"drained\":true}\n".to_owned(),
                true,
            );
        }
        "run" => {
            let run_reply = admit_and_wait(&parsed, shared);
            render_run_reply(id.as_deref(), &run_reply, shared, received_us)
        }
        other => {
            shared.obs.inc("serve.responses.invalid");
            render_error(
                id.as_deref(),
                &JobError::Invalid(format!("unknown op {other:?}")),
            )
        }
    };
    (reply, false)
}

fn admit_and_wait(parsed: &Json, shared: &Arc<Shared>) -> JobReply {
    let Some(job) = parsed.get("job") else {
        return JobReply::Failed(JobError::Invalid("job object missing".into()));
    };
    let spec = match JobSpec::from_json(job) {
        Ok(s) => s,
        Err(e) => return JobReply::Failed(e),
    };
    if shared.draining.load(Ordering::SeqCst) {
        return JobReply::Failed(JobError::Rejected("draining".into()));
    }
    let key = spec.key();

    // Memoized? Serve from disk without touching the queue.
    if let Some(cache) = &shared.cache {
        if let Some(outcome) = cache.load::<JobOutcome>(&key) {
            shared.obs.inc("serve.cache.hits");
            return JobReply::Done {
                outcome,
                cached: true,
            };
        }
    }

    let (tx, rx) = mpsc::channel();
    let mut owner = false;
    {
        let mut dedup = shared.dedup.lock().expect("dedup lock poisoned");
        match dedup.get_mut(&key) {
            Some(inflight) => {
                inflight.waiters.push(tx);
                shared.obs.inc("serve.dedup.coalesced");
            }
            None => {
                dedup.insert(key.clone(), InFlight { waiters: vec![tx] });
                owner = true;
            }
        }
    }
    if owner {
        let seq = shared.seq.fetch_add(1, Ordering::Relaxed);
        let priority = parsed
            .get("priority")
            .and_then(Json::as_u64)
            .map_or(1, |p| u8::try_from(p.min(2)).expect("clamped"));
        let deadline = parsed
            .get("deadline_ms")
            .and_then(Json::as_u64)
            .map(|ms| Instant::now() + std::time::Duration::from_millis(ms));
        let ticket = JobTicket {
            seq,
            key: key.clone(),
            spec,
            priority,
            enqueued_at: Instant::now(),
            deadline,
        };
        if let Err(err) = shared.queue.push(ticket) {
            let reason = match err {
                PushError::Full => "queue full",
                PushError::Closed => "draining",
            };
            shared.obs.inc("serve.queue.rejected");
            shared.complete(&key, &JobReply::Failed(JobError::Rejected(reason.into())));
        } else {
            shared
                .obs
                .set_gauge("serve.queue.depth", shared.queue.depth() as f64);
        }
    }
    match rx.recv_timeout(shared.cfg.reply_timeout) {
        Ok(reply) => reply,
        Err(_) => JobReply::Failed(JobError::Stalled(
            "reply channel timed out — dispatcher wedged?".into(),
        )),
    }
}

fn dispatch_loop(shared: &Arc<Shared>) {
    while let Some(batch) = shared.queue.pop_batch(shared.cfg.batch_max) {
        shared
            .obs
            .set_gauge("serve.queue.depth", shared.queue.depth() as f64);
        let now = Instant::now();
        let now_us = shared.obs.now_us();
        let mut live: Vec<JobTicket> = Vec::with_capacity(batch.len());
        for ticket in batch {
            let waited_us =
                u64::try_from(ticket.enqueued_at.elapsed().as_micros()).unwrap_or(u64::MAX);
            shared.obs.observe_us("serve.queue.wait_us", waited_us);
            shared.obs.span(
                ticket.seq,
                "queue",
                now_us.saturating_sub(waited_us),
                now_us,
            );
            if ticket.deadline.is_some_and(|d| d <= now) {
                shared.obs.inc("serve.jobs.expired");
                shared.complete(&ticket.key, &JobReply::Failed(JobError::Expired));
            } else {
                live.push(ticket);
            }
        }
        if live.is_empty() {
            continue;
        }
        let max_net_cycles = shared.cfg.max_net_cycles;
        let outcome = run_sweep_cancellable_on(
            shared.cfg.workers,
            live.clone(),
            |ticket| {
                // The deadline may have passed while earlier batch
                // members ran; re-check at the last possible moment.
                if ticket.deadline.is_some_and(|d| d <= Instant::now()) {
                    return (JobReply::Failed(JobError::Expired), 0);
                }
                let begin = Instant::now();
                let reply = match ticket.spec.execute(max_net_cycles) {
                    Ok(outcome) => JobReply::Done {
                        outcome,
                        cached: false,
                    },
                    Err(e) => JobReply::Failed(e),
                };
                let service_us = u64::try_from(begin.elapsed().as_micros()).unwrap_or(u64::MAX);
                (reply, service_us)
            },
            &shared.kill,
        );
        match outcome {
            Ok(results) => {
                for (ticket, (reply, service_us)) in live.iter().zip(results) {
                    let end_us = shared.obs.now_us();
                    match &reply {
                        JobReply::Done { outcome, .. } => {
                            shared.obs.inc("serve.jobs.executed");
                            shared.obs.observe_us("serve.job.service_us", service_us);
                            shared.obs.span(
                                ticket.seq,
                                "execute",
                                end_us.saturating_sub(service_us),
                                end_us,
                            );
                            if let Some(cache) = &shared.cache {
                                if cache.store(&ticket.key, outcome).is_ok() {
                                    shared.obs.inc("serve.cache.stores");
                                }
                            }
                        }
                        JobReply::Failed(JobError::Expired) => {
                            shared.obs.inc("serve.jobs.expired");
                        }
                        JobReply::Failed(_) => {}
                    }
                    shared.complete(&ticket.key, &reply);
                }
            }
            Err(Cancelled) => {
                for ticket in &live {
                    shared.complete(&ticket.key, &JobReply::Failed(JobError::Cancelled));
                }
            }
        }
    }
    // Queue closed and empty: resolve any stragglers (admission lost a
    // race with close) so no waiter blocks forever, then report drained.
    let keys: Vec<String> = shared
        .dedup
        .lock()
        .expect("dedup lock poisoned")
        .keys()
        .cloned()
        .collect();
    for key in keys {
        shared.complete(&key, &JobReply::Failed(JobError::Cancelled));
    }
    shared.mark_drained();
}

fn num(f: f64) -> String {
    if f.is_finite() {
        format!("{f}")
    } else {
        "0".to_owned()
    }
}

fn render_run_reply(
    id: Option<&str>,
    reply: &JobReply,
    shared: &Arc<Shared>,
    received_us: u64,
) -> String {
    let latency_us = shared.obs.now_us().saturating_sub(received_us);
    shared
        .obs
        .observe_us("serve.request.latency_us", latency_us);
    match reply {
        JobReply::Done { outcome, cached } => {
            let status = if outcome.degraded { "degraded" } else { "ok" };
            shared.obs.inc(&format!("serve.responses.{status}"));
            let id_field = id.map_or(String::new(), |i| format!("\"id\":\"{}\",", escape_json(i)));
            format!(
                "{{{id_field}\"status\":\"{status}\",\"cached\":{cached},\
                 \"latency\":{},\"interarrival\":{},\"bandwidth\":{},\
                 \"net_cycles\":{},\"words_dropped\":{},\"retries\":{},\"failed\":{}}}\n",
                num(outcome.latency),
                num(outcome.interarrival),
                num(outcome.bandwidth),
                outcome.net_cycles,
                outcome.words_dropped,
                outcome.retries,
                outcome.failed,
            )
        }
        JobReply::Failed(err) => {
            shared.obs.inc(&format!("serve.responses.{}", err.status()));
            render_error(id, err)
        }
    }
}

fn render_error(id: Option<&str>, err: &JobError) -> String {
    let id_field = id.map_or(String::new(), |i| format!("\"id\":\"{}\",", escape_json(i)));
    format!(
        "{{{id_field}\"status\":\"{}\",\"reason\":\"{}\"}}\n",
        err.status(),
        escape_json(&err.reason())
    )
}
